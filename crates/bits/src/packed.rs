//! A fixed-size vector of `b`-bit unsigned integers.
//!
//! This is the storage for timing-Bloom-filter entries (§4): `m` cells of
//! `O(log N)` bits each. Entries may straddle word boundaries; get/set are
//! branch-light and constant-time.

use crate::words::{low_mask, WORD_BITS};

/// A fixed-size vector of `len` entries, each `bits` wide (1..=64).
///
/// ```rust
/// use cfd_bits::PackedIntVec;
/// let mut v = PackedIntVec::new(10, 21);
/// v.set(3, 0x1F_FFFF);
/// assert_eq!(v.get(3), 0x1F_FFFF);
/// assert_eq!(v.get(2), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedIntVec {
    words: Vec<u64>,
    len: usize,
    bits: u32,
    max: u64,
}

impl PackedIntVec {
    /// Creates a vector of `len` zero entries of `bits` width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 64.
    #[must_use]
    pub fn new(len: usize, bits: u32) -> Self {
        assert!((1..=64).contains(&bits), "entry width must be 1..=64 bits");
        let total_bits = len
            .checked_mul(bits as usize)
            .expect("packed vector size overflow");
        Self {
            words: vec![0; total_bits.div_ceil(WORD_BITS)],
            len,
            bits,
            max: low_mask(bits),
        }
    }

    /// Creates a vector with every entry set to the all-ones pattern.
    ///
    /// The timing Bloom filter initializes "all bits in all entries ... to
    /// bit 1" (§4.1), reserving all-ones as the *empty* marker.
    #[must_use]
    pub fn new_all_ones(len: usize, bits: u32) -> Self {
        let mut v = Self::new(len, bits);
        v.fill(v.max);
        v
    }

    /// Number of entries.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the vector has zero entries.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Width of each entry in bits.
    #[inline]
    #[must_use]
    pub fn entry_bits(&self) -> u32 {
        self.bits
    }

    /// Largest storable value (`2^bits − 1`), i.e. the all-ones pattern.
    #[inline]
    #[must_use]
    pub fn max_value(&self) -> u64 {
        self.max
    }

    /// Memory footprint of the payload in bits.
    #[inline]
    #[must_use]
    pub fn memory_bits(&self) -> usize {
        self.words.len() * WORD_BITS
    }

    /// Reads entry `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "entry index {i} out of range {}", self.len);
        let bit = i * self.bits as usize;
        let (w, off) = (bit / WORD_BITS, (bit % WORD_BITS) as u32);
        let lo = self.words[w] >> off;
        let have = WORD_BITS as u32 - off;
        let val = if have >= self.bits {
            lo
        } else {
            lo | (self.words[w + 1] << have)
        };
        val & self.max
    }

    /// Hints the CPU to pull entry `i`'s cache line early; a no-op when
    /// the index is out of range.
    ///
    /// Batch frontends that know their probe indices ahead of time (see
    /// `Tbf::observe_batch`) issue this a few elements early so the
    /// random reads of [`PackedIntVec::get`] land in cache (see
    /// [`crate::words::prefetch`]).
    #[inline]
    pub fn prefetch(&self, i: usize) {
        if i < self.len {
            crate::words::prefetch(&self.words[i * self.bits as usize / WORD_BITS]);
        }
    }

    /// Writes entry `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len` or `value` does not fit in the entry width.
    #[inline]
    pub fn set(&mut self, i: usize, value: u64) {
        assert!(i < self.len, "entry index {i} out of range {}", self.len);
        assert!(
            value <= self.max,
            "value {value} exceeds {}-bit entry",
            self.bits
        );
        let bit = i * self.bits as usize;
        let (w, off) = (bit / WORD_BITS, (bit % WORD_BITS) as u32);
        self.words[w] = (self.words[w] & !(self.max << off)) | (value << off);
        let have = WORD_BITS as u32 - off;
        if have < self.bits {
            let spill = self.bits - have;
            let hi_mask = low_mask(spill);
            self.words[w + 1] = (self.words[w + 1] & !hi_mask) | (value >> have);
        }
    }

    /// Applies `f` to `count` consecutive entries starting at `start`,
    /// rewriting an entry when `f` returns `Some(new)`. Returns the
    /// number of entries rewritten.
    ///
    /// This is the linear-maintenance primitive (TBF expiry sweeps):
    /// entries that sit wholly inside one backing word are decoded from
    /// a register instead of paying [`PackedIntVec::get`]'s per-entry
    /// bounds check and word fetch, and a word is written back at most
    /// once — several times cheaper than per-entry `get`/`set` over the
    /// same range.
    ///
    /// # Panics
    ///
    /// Panics if `start + count > len` or `f` returns a value that does
    /// not fit in the entry width.
    pub fn update_range(
        &mut self,
        start: usize,
        count: usize,
        mut f: impl FnMut(u64) -> Option<u64>,
    ) -> usize {
        let end = start
            .checked_add(count)
            .expect("entry range overflows usize");
        assert!(
            end <= self.len,
            "entry range {start}+{count} exceeds {}",
            self.len
        );
        let bits = self.bits as usize;
        let mut changed = 0usize;
        let mut i = start;
        while i < end {
            let (w, off) = ((i * bits) / WORD_BITS, (i * bits) % WORD_BITS);
            if off + bits > WORD_BITS {
                // Entry straddles a word boundary: take the slow path.
                let old = self.get(i);
                if let Some(new) = f(old) {
                    self.set(i, new);
                    changed += 1;
                }
                i += 1;
                continue;
            }
            // Decode every entry wholly inside word `w` from a register.
            let mut word = self.words[w];
            let mut dirty = false;
            let mut off = off;
            while off + bits <= WORD_BITS && i < end {
                let old = (word >> off) & self.max;
                if let Some(new) = f(old) {
                    assert!(
                        new <= self.max,
                        "value {new} exceeds {}-bit entry",
                        self.bits
                    );
                    word = (word & !(self.max << off)) | (new << off);
                    dirty = true;
                    changed += 1;
                }
                off += bits;
                i += 1;
            }
            if dirty {
                self.words[w] = word;
            }
        }
        changed
    }

    /// Wide compare-and-store expiry sweep over `count` consecutive
    /// entries starting at `start` — the cleaning primitive shared by
    /// every wraparound-timestamp table (TBF entries, SWBF cells and
    /// side stamps, TimeTbf units).
    ///
    /// For each entry `v`: the timestamp field is `v & ts_mask` with
    /// all-ones meaning empty; an occupied entry whose wraparound age
    /// from `now` (clock period `range`) falls **outside**
    /// `[active_lo, active_hi]` is expired and rewritten to `empty`.
    /// Returns the number of entries rewritten.
    ///
    /// On the wide dispatch every entry is decoded from an independent
    /// two-word window and classified with branch-free flag arithmetic
    /// (the same compare set [`crate::simd::classify_stamps`] applies
    /// lane-wise); only expired entries pay a store. The scalar
    /// dispatch is the original register-cached per-entry branch chain
    /// ([`PackedIntVec::update_range`]), so `CFD_FORCE_SCALAR=1`
    /// measures the pre-SIMD code path. Both are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `start + count > len` or `empty` does not fit in the
    /// entry width.
    #[allow(clippy::too_many_arguments)]
    pub fn expire_timestamps(
        &mut self,
        start: usize,
        count: usize,
        ts_mask: u64,
        empty: u64,
        now: u64,
        range: u64,
        active_lo: u64,
        active_hi: u64,
    ) -> usize {
        let end = start
            .checked_add(count)
            .expect("entry range overflows usize");
        assert!(
            end <= self.len,
            "entry range {start}+{count} exceeds {}",
            self.len
        );
        assert!(empty <= self.max, "value {empty} exceeds entry width");
        const LANES: usize = 8;
        if !crate::simd::wide_enabled() || count < LANES {
            // Scalar dispatch reproduces the pre-SIMD sweep exactly:
            // the register-cached per-entry loop with one branch chain
            // per entry, so forcing scalar (`CFD_FORCE_SCALAR=1`)
            // measures and behaves like the original code path. Short
            // segments (deep range extensions shrink the cleaning quota
            // to a handful of entries) take it too: the shift-register
            // setup costs more than it saves under one block.
            return self.update_range(start, count, |e| {
                let ts = e & ts_mask;
                if ts == ts_mask {
                    return None;
                }
                let age = if now >= ts {
                    now - ts
                } else {
                    range - ts + now
                };
                (!(active_lo..=active_hi).contains(&age)).then_some(empty)
            });
        }
        let bits = self.bits as usize;
        let max = self.max;
        let words = &mut self.words[..];
        let last = words.len() - 1;
        let mut changed = 0usize;
        // Branchless per-entry classification. The scalar sweep's branch
        // chain (empty? wrapped? active?) predicts perfectly in a tight
        // benchmark loop but mispredicts heavily once the sweep is
        // interleaved with probe/insert traffic in the real pipeline —
        // the predictor cannot hold per-entry history across thousands
        // of intervening branches, and that misprediction tax (not
        // memory) is the dominant in-situ sweep cost. Here every entry
        // is decoded with an independent two-word window (no serial
        // shift-register dependency, so decodes overlap across entries)
        // and classified with flag arithmetic; the only data-dependent
        // branch left is the rewrite itself, which is rare (few entries
        // expire per call) and therefore predicts well.
        for i in start..end {
            let bit = i * bits;
            let (w, off) = (bit / WORD_BITS, (bit % WORD_BITS) as u32);
            // `w + 1` is clamped, not checked: the second word only
            // contributes when the entry straddles, and a straddling
            // entry always has a real successor word.
            let pair = (u128::from(words[(w + 1).min(last)]) << WORD_BITS) | u128::from(words[w]);
            let v = (pair >> off) as u64 & max;
            let ts = v & ts_mask;
            let occupied = ts != ts_mask;
            let wrapped = ts > now;
            let age = now
                .wrapping_sub(ts)
                .wrapping_add(range & (wrapped as u64).wrapping_neg());
            let active = age >= active_lo && age <= active_hi;
            if occupied & !active {
                words[w] = (words[w] & !(max << off)) | (empty << off);
                let have = WORD_BITS as u32 - off;
                if (have as usize) < bits {
                    let hi_mask = low_mask(bits as u32 - have);
                    words[w + 1] = (words[w + 1] & !hi_mask) | (empty >> have);
                }
                changed += 1;
            }
        }
        changed
    }

    /// Writes `value` into every entry listed in `idxs` — the insert
    /// primitive of the blocked probe layout, where all `k` probes land
    /// in one cache line.
    ///
    /// On the wide dispatch the writes are merged in registers: the
    /// (mask, pattern) pair of every entry is OR-accumulated into a
    /// small word window that is stored once per word, replacing `k`
    /// read-modify-write round trips with one pass over the line. The
    /// scalar dispatch (and any index spread wider than the window) is
    /// the plain per-entry [`PackedIntVec::set`] loop. Both orders
    /// write identical words: the per-entry bit ranges are disjoint
    /// (or identical, for repeated indices), so OR-merging cannot mix
    /// two entries.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or `value` does not fit in
    /// the entry width.
    pub fn set_all(&mut self, idxs: &[usize], value: u64) {
        const WINDOW: usize = 16;
        let bits = self.bits as usize;
        let entry_bits = self.bits;
        let max = self.max;
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        for &i in idxs {
            lo = lo.min(i);
            hi = hi.max(i);
        }
        if !crate::simd::wide_enabled()
            || idxs.len() < 3
            || hi >= self.len
            || (hi * bits + bits - 1) / WORD_BITS - lo * bits / WORD_BITS >= WINDOW
        {
            // Scalar dispatch, tiny batches, and spreads wider than the
            // merge window take the plain per-entry store loop (it also
            // carries the out-of-range panic).
            for &i in idxs {
                self.set(i, value);
            }
            return;
        }
        assert!(value <= max, "value {value} exceeds {entry_bits}-bit entry");
        let base = lo * bits / WORD_BITS;
        let mut mask = [0u64; WINDOW];
        let mut pat = [0u64; WINDOW];
        let mut hi_w = 0usize;
        for &i in idxs {
            let bit = i * bits;
            let (w, off) = (bit / WORD_BITS - base, (bit % WORD_BITS) as u32);
            mask[w] |= max << off;
            pat[w] |= value << off;
            let have = WORD_BITS as u32 - off;
            let mut top = w;
            if have < entry_bits {
                mask[w + 1] |= low_mask(entry_bits - have);
                pat[w + 1] |= value >> have;
                top = w + 1;
            }
            hi_w = hi_w.max(top);
        }
        for (j, wd) in self.words[base..=base + hi_w].iter_mut().enumerate() {
            *wd = (*wd & !mask[j]) | pat[j];
        }
    }

    /// Sets every entry to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in the entry width.
    pub fn fill(&mut self, value: u64) {
        assert!(value <= self.max, "value {value} exceeds entry width");
        // Entry-by-entry is O(len) but only used at construction/reset.
        for i in 0..self.len {
            self.set(i, value);
        }
    }

    /// The raw backing words (for checkpointing).
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a vector from raw words produced by
    /// [`PackedIntVec::as_words`]. Returns `None` when the word count
    /// does not match `(len, bits)`.
    #[must_use]
    pub fn from_words(words: Vec<u64>, len: usize, bits: u32) -> Option<Self> {
        if !(1..=64).contains(&bits) {
            return None;
        }
        let total_bits = len.checked_mul(bits as usize)?;
        if words.len() != total_bits.div_ceil(crate::words::WORD_BITS) {
            return None;
        }
        Some(Self {
            words,
            len,
            bits,
            max: crate::words::low_mask(bits),
        })
    }

    /// Iterates over all entries in index order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Number of entries equal to `value`.
    #[must_use]
    pub fn count_eq(&self, value: u64) -> usize {
        self.iter().filter(|&v| v == value).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_initialized_and_sized() {
        let v = PackedIntVec::new(100, 21);
        assert_eq!(v.len(), 100);
        assert_eq!(v.entry_bits(), 21);
        assert_eq!(v.max_value(), (1 << 21) - 1);
        assert!(v.iter().all(|x| x == 0));
        assert!(v.memory_bits() >= 2100);
    }

    #[test]
    fn all_ones_constructor() {
        let v = PackedIntVec::new_all_ones(50, 13);
        assert!(v.iter().all(|x| x == (1 << 13) - 1));
        assert_eq!(v.count_eq((1 << 13) - 1), 50);
    }

    #[test]
    fn straddling_entries_roundtrip() {
        // 21-bit entries straddle every third word boundary.
        let mut v = PackedIntVec::new(64, 21);
        for i in 0..64 {
            v.set(i, (i as u64 * 0x1_0101) & v.max_value());
        }
        for i in 0..64 {
            assert_eq!(v.get(i), (i as u64 * 0x1_0101) & v.max_value(), "i={i}");
        }
    }

    #[test]
    fn neighbors_are_not_disturbed() {
        let mut v = PackedIntVec::new(10, 21);
        v.fill(0x15_5555);
        v.set(5, 0);
        for i in 0..10 {
            let want = if i == 5 { 0 } else { 0x15_5555 };
            assert_eq!(v.get(i), want, "i={i}");
        }
    }

    #[test]
    fn full_width_64_bit_entries() {
        let mut v = PackedIntVec::new(5, 64);
        v.set(0, u64::MAX);
        v.set(4, 0x0123_4567_89AB_CDEF);
        assert_eq!(v.get(0), u64::MAX);
        assert_eq!(v.get(4), 0x0123_4567_89AB_CDEF);
        assert_eq!(v.get(1), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn overwide_value_panics() {
        let mut v = PackedIntVec::new(4, 7);
        v.set(0, 128);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let v = PackedIntVec::new(4, 7);
        let _ = v.get(4);
    }

    #[test]
    #[should_panic(expected = "entry width")]
    fn zero_width_panics() {
        let _ = PackedIntVec::new(4, 0);
    }

    #[test]
    fn update_range_rewrites_and_counts() {
        // 21-bit entries straddle word boundaries inside the range.
        let mut v = PackedIntVec::new(64, 21);
        for i in 0..64 {
            v.set(i, i as u64);
        }
        let changed = v.update_range(10, 40, |e| (e % 2 == 0).then_some(e + 1));
        assert_eq!(changed, 20);
        for i in 0..64 {
            let want = if (10..50).contains(&i) && i % 2 == 0 {
                i as u64 + 1
            } else {
                i as u64
            };
            assert_eq!(v.get(i), want, "i={i}");
        }
    }

    #[test]
    fn update_range_empty_and_full_width() {
        let mut v = PackedIntVec::new(8, 64);
        v.set(3, u64::MAX);
        assert_eq!(v.update_range(0, 0, |_| Some(0)), 0);
        let changed = v.update_range(0, 8, |e| (e == u64::MAX).then_some(7));
        assert_eq!(changed, 1);
        assert_eq!(v.get(3), 7);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn update_range_out_of_bounds_panics() {
        let mut v = PackedIntVec::new(16, 7);
        v.update_range(10, 7, |_| None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::default())]
        #[test]
        fn update_range_matches_get_set_model(
            bits in 1u32..=64,
            start in 0usize..150,
            count in 0usize..150,
            threshold in any::<u64>(),
        ) {
            let count = count.min(200 - start);
            let mask = if bits == 64 { u64::MAX } else { (1 << bits) - 1 };
            let mut v = PackedIntVec::new(200, bits);
            for i in 0..200 {
                v.set(i, (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask);
            }
            let mut model: Vec<u64> = (0..200).map(|i| v.get(i)).collect();
            let th = threshold & mask;
            let changed = v.update_range(start, count, |e| (e > th).then_some(e / 2));
            let mut expect_changed = 0;
            for item in model.iter_mut().take(start + count).skip(start) {
                if *item > th {
                    *item /= 2;
                    expect_changed += 1;
                }
            }
            prop_assert_eq!(changed, expect_changed);
            for (i, want) in model.iter().enumerate() {
                prop_assert_eq!(v.get(i), *want, "i={}", i);
            }
        }

        #[test]
        fn expire_timestamps_matches_get_set_model(
            bits in 4u32..=24,
            ts_bits in 2u32..=24,
            start in 0usize..150,
            count in 0usize..150,
            now_seed in any::<u64>(),
            lo in 0u64..=1,
        ) {
            let ts_bits = ts_bits.min(bits);
            let ts_mask = (1u64 << ts_bits) - 1;
            let range = ts_mask.max(2); // all-ones stays reserved for "empty"
            let now = now_seed % range;
            let hi = (range / 2).max(lo);
            let count = count.min(200 - start);
            let mask = low_mask(bits);
            let empty = mask; // whole-entry all-ones, the TBF/SWBF idiom
            let mut v = PackedIntVec::new(200, bits);
            for i in 0..200 {
                // Mix of empty markers and stamps all over the clock.
                let raw = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let val = if raw.is_multiple_of(5) {
                    empty
                } else {
                    ((raw >> 8) % range) | (raw & !ts_mask & mask)
                };
                v.set(i, val);
            }
            let mut model: Vec<u64> = (0..200).map(|i| v.get(i)).collect();
            let changed = v.expire_timestamps(start, count, ts_mask, empty, now, range, lo, hi);
            let mut expect_changed = 0;
            for item in model.iter_mut().take(start + count).skip(start) {
                let ts = *item & ts_mask;
                if ts == ts_mask {
                    continue;
                }
                let age = if now >= ts { now - ts } else { range - ts + now };
                if !(lo..=hi).contains(&age) {
                    *item = empty;
                    expect_changed += 1;
                }
            }
            prop_assert_eq!(changed, expect_changed);
            for (i, want) in model.iter().enumerate() {
                prop_assert_eq!(v.get(i), *want, "i={}", i);
            }
        }

        #[test]
        #[allow(clippy::needless_range_loop)]
        fn matches_vec_model(
            bits in 1u32..=64,
            writes in prop::collection::vec((0usize..200, any::<u64>()), 0..400),
        ) {
            let mut v = PackedIntVec::new(200, bits);
            let mut model = vec![0u64; 200];
            let mask = if bits == 64 { u64::MAX } else { (1 << bits) - 1 };
            for (i, raw) in writes {
                let val = raw & mask;
                v.set(i, val);
                model[i] = val;
            }
            for i in 0..200 {
                prop_assert_eq!(v.get(i), model[i]);
            }
        }
    }
}
