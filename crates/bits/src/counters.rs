//! Saturating packed counters — the counting-Bloom-filter substrate.
//!
//! Metwally et al. \[21\] (the baseline the paper compares against in §3.3)
//! replace each Bloom bit with a small counter so expired sub-windows can
//! be *subtracted* from a main filter. The paper's critique is that the
//! counters must be wide enough to avoid saturation (worst case `N/Q` in a
//! sub-window filter and `N` in the main filter) or the scheme produces
//! both false negatives and false positives. This type therefore tracks
//! saturation events explicitly so the benches can report them.

use crate::packed::PackedIntVec;

/// A fixed-size vector of saturating `b`-bit counters.
///
/// ```rust
/// use cfd_bits::PackedCounterVec;
/// let mut c = PackedCounterVec::new(8, 2); // 2-bit counters saturate at 3
/// for _ in 0..5 { c.increment(0); }
/// assert_eq!(c.get(0), 3);
/// assert_eq!(c.saturations(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedCounterVec {
    cells: PackedIntVec,
    saturations: u64,
    underflows: u64,
}

impl PackedCounterVec {
    /// Creates `len` zeroed counters of `bits` width (1..=64).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 64.
    #[must_use]
    pub fn new(len: usize, bits: u32) -> Self {
        Self {
            cells: PackedIntVec::new(len, bits),
            saturations: 0,
            underflows: 0,
        }
    }

    /// Number of counters.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if there are zero counters.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Width of each counter in bits.
    #[inline]
    #[must_use]
    pub fn counter_bits(&self) -> u32 {
        self.cells.entry_bits()
    }

    /// Maximum counter value before saturation.
    #[inline]
    #[must_use]
    pub fn max_value(&self) -> u64 {
        self.cells.max_value()
    }

    /// Memory footprint of the payload in bits.
    #[inline]
    #[must_use]
    pub fn memory_bits(&self) -> usize {
        self.cells.memory_bits()
    }

    /// Reads counter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> u64 {
        self.cells.get(i)
    }

    /// Increments counter `i`, saturating at the maximum.
    ///
    /// Returns the *new* value. Saturated increments are counted in
    /// [`PackedCounterVec::saturations`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn increment(&mut self, i: usize) -> u64 {
        let v = self.cells.get(i);
        if v == self.cells.max_value() {
            self.saturations += 1;
            v
        } else {
            self.cells.set(i, v + 1);
            v + 1
        }
    }

    /// Decrements counter `i`, flooring at zero.
    ///
    /// Returns the *new* value. Decrements of an already-zero counter are
    /// counted in [`PackedCounterVec::underflows`]; they indicate the
    /// counting-filter invariant was already violated by saturation.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn decrement(&mut self, i: usize) -> u64 {
        let v = self.cells.get(i);
        if v == 0 {
            self.underflows += 1;
            0
        } else {
            self.cells.set(i, v - 1);
            v - 1
        }
    }

    /// Adds counter vector `other` into `self` (saturating per cell).
    ///
    /// This is the \[21\] "combining two counting Bloom filters is performed
    /// by adding the corresponding counters" operation.
    ///
    /// Counter widths may differ: values are compared numerically and
    /// saturate at `self`'s maximum.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn add_assign_saturating(&mut self, other: &Self) {
        assert_eq!(self.len(), other.len(), "length mismatch");
        let max = self.max_value();
        for i in 0..self.len() {
            let sum = self.cells.get(i) + other.cells.get(i);
            if sum > max {
                self.saturations += 1;
                self.cells.set(i, max);
            } else {
                self.cells.set(i, sum);
            }
        }
    }

    /// Subtracts counter vector `other` from `self` (flooring per cell).
    ///
    /// The \[21\] "deleting an old counting Bloom filter is performed by
    /// subtracting its counters from the main Bloom filter" operation.
    /// This is the `O(m)` bulk step the paper's GBF avoids.
    ///
    /// Counter widths may differ (the Metwally main filter is wider than
    /// its sub-window filters).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn sub_assign_flooring(&mut self, other: &Self) {
        assert_eq!(self.len(), other.len(), "length mismatch");
        for i in 0..self.len() {
            let a = self.cells.get(i);
            let b = other.cells.get(i);
            if b > a {
                self.underflows += 1;
                self.cells.set(i, 0);
            } else {
                self.cells.set(i, a - b);
            }
        }
    }

    /// Resets every counter to zero (keeps the event statistics).
    pub fn clear_all(&mut self) {
        self.cells.fill(0);
    }

    /// Total saturating-increment (or saturating-add) events so far.
    #[inline]
    #[must_use]
    pub fn saturations(&self) -> u64 {
        self.saturations
    }

    /// Total floored-decrement (or floored-subtract) events so far.
    #[inline]
    #[must_use]
    pub fn underflows(&self) -> u64 {
        self.underflows
    }

    /// Number of non-zero counters.
    #[must_use]
    pub fn count_nonzero(&self) -> usize {
        self.cells.iter().filter(|&v| v != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn increment_decrement_roundtrip() {
        let mut c = PackedCounterVec::new(16, 4);
        for _ in 0..7 {
            c.increment(3);
        }
        assert_eq!(c.get(3), 7);
        for _ in 0..7 {
            c.decrement(3);
        }
        assert_eq!(c.get(3), 0);
        assert_eq!(c.saturations(), 0);
        assert_eq!(c.underflows(), 0);
    }

    #[test]
    fn saturation_is_sticky_and_counted() {
        let mut c = PackedCounterVec::new(4, 2);
        for _ in 0..10 {
            c.increment(1);
        }
        assert_eq!(c.get(1), 3);
        assert_eq!(c.saturations(), 7);
    }

    #[test]
    fn underflow_floors_and_is_counted() {
        let mut c = PackedCounterVec::new(4, 4);
        assert_eq!(c.decrement(0), 0);
        assert_eq!(c.underflows(), 1);
    }

    #[test]
    fn add_and_sub_vectors() {
        let mut a = PackedCounterVec::new(8, 4);
        let mut b = PackedCounterVec::new(8, 4);
        for _ in 0..9 {
            a.increment(0);
        }
        for _ in 0..8 {
            b.increment(0);
        }
        b.increment(5);
        a.add_assign_saturating(&b); // 9 + 8 saturates at 15
        assert_eq!(a.get(0), 15);
        assert_eq!(a.get(5), 1);
        assert_eq!(a.saturations(), 1);
        a.sub_assign_flooring(&b);
        assert_eq!(a.get(0), 7); // 15 - 8: saturation already lost 2
        assert_eq!(a.get(5), 0);
    }

    #[test]
    fn count_nonzero_tracks_occupancy() {
        let mut c = PackedCounterVec::new(10, 3);
        c.increment(2);
        c.increment(2);
        c.increment(9);
        assert_eq!(c.count_nonzero(), 2);
        c.clear_all();
        assert_eq!(c.count_nonzero(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::default())]
        #[test]
        #[allow(clippy::needless_range_loop)]
        fn matches_saturating_model(
            bits in 1u32..=8,
            ops in prop::collection::vec((0usize..32, any::<bool>()), 0..500),
        ) {
            let mut c = PackedCounterVec::new(32, bits);
            let max = c.max_value();
            let mut model = vec![0u64; 32];
            for (i, inc) in ops {
                if inc {
                    c.increment(i);
                    model[i] = (model[i] + 1).min(max);
                } else {
                    c.decrement(i);
                    model[i] = model[i].saturating_sub(1);
                }
            }
            for i in 0..32 {
                prop_assert_eq!(c.get(i), model[i]);
            }
        }
    }
}
