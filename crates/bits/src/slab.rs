//! Shared-slab storage for multi-tenant detector arenas.
//!
//! One logical filter per (advertiser, campaign) at millions of tenants
//! cannot afford millions of allocations: [`WordSlab`] packs every
//! tenant's table into a single `Vec<u64>` of fixed-stride regions, and
//! [`PackedView`] / [`PackedRef`] give a region the same `b`-bit-entry
//! semantics as [`crate::PackedIntVec`] without owning storage. A tenant
//! is then nothing but a (slot index, geometry) pair over shared words —
//! cheap to create, cheap to recycle, and contiguous for prefetching.
//!
//! The stride is rounded up to eight words (one 64-byte cache line), so
//! every region starts line-aligned and the blocked probe layout keeps
//! its one-line guarantee inside a region.

use crate::words::{low_mask, WORD_BITS};

/// Words per cache line; region strides round up to this so every
/// region starts on a line boundary.
pub const LINE_WORDS: usize = 8;

/// A growable arena of fixed-stride word regions.
///
/// ```rust
/// use cfd_bits::slab::{PackedView, WordSlab};
/// let mut slab = WordSlab::new(4, 70);
/// let mut view = PackedView::new(slab.region_mut(2), 409, 11);
/// view.set(3, 42);
/// assert_eq!(view.get(3), 42);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordSlab {
    words: Vec<u64>,
    stride: usize,
    slots: usize,
}

impl WordSlab {
    /// Creates a slab of `slots` zeroed regions of at least
    /// `stride_words` words each (rounded up to [`LINE_WORDS`]).
    ///
    /// # Panics
    ///
    /// Panics if `stride_words` is 0 or the total size overflows.
    #[must_use]
    pub fn new(slots: usize, stride_words: usize) -> Self {
        assert!(stride_words > 0, "region stride must be non-zero");
        let stride = stride_words.div_ceil(LINE_WORDS) * LINE_WORDS;
        let total = slots
            .checked_mul(stride)
            .expect("slab size overflows usize");
        Self {
            words: vec![0; total],
            stride,
            slots,
        }
    }

    /// Number of regions.
    #[inline]
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Words per region (after line rounding).
    #[inline]
    #[must_use]
    pub fn stride_words(&self) -> usize {
        self.stride
    }

    /// Memory footprint of the whole slab in bits.
    #[inline]
    #[must_use]
    pub fn memory_bits(&self) -> usize {
        self.words.len() * WORD_BITS
    }

    /// Appends `additional` zeroed regions (amortized O(1) per word).
    pub fn grow(&mut self, additional: usize) {
        let add = additional
            .checked_mul(self.stride)
            .expect("slab growth overflows usize");
        self.words.resize(self.words.len() + add, 0);
        self.slots += additional;
    }

    /// Read-only view of region `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= slots`.
    #[inline]
    #[must_use]
    pub fn region(&self, slot: usize) -> &[u64] {
        assert!(slot < self.slots, "slot {slot} out of range {}", self.slots);
        &self.words[slot * self.stride..(slot + 1) * self.stride]
    }

    /// Mutable view of region `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= slots`.
    #[inline]
    #[must_use]
    pub fn region_mut(&mut self, slot: usize) -> &mut [u64] {
        assert!(slot < self.slots, "slot {slot} out of range {}", self.slots);
        &mut self.words[slot * self.stride..(slot + 1) * self.stride]
    }

    /// Fills region `slot` with `word` (tenant reset / recycle).
    pub fn fill_region(&mut self, slot: usize, word: u64) {
        self.region_mut(slot).fill(word);
    }

    /// Hints the CPU to pull the first line of region `slot` early; a
    /// no-op when the slot is out of range.
    #[inline]
    pub fn prefetch(&self, slot: usize) {
        if slot < self.slots {
            crate::words::prefetch(&self.words[slot * self.stride]);
        }
    }

    /// The raw backing words (checkpointing).
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a slab from checkpointed words; `None` when the word
    /// count does not match `(slots, stride_words)` after line rounding.
    #[must_use]
    pub fn from_words(words: Vec<u64>, slots: usize, stride_words: usize) -> Option<Self> {
        if stride_words == 0 {
            return None;
        }
        let stride = stride_words.div_ceil(LINE_WORDS) * LINE_WORDS;
        if words.len() != slots.checked_mul(stride)? {
            return None;
        }
        Some(Self {
            words,
            stride,
            slots,
        })
    }
}

#[inline]
fn decode(words: &[u64], bits: u32, max: u64, i: usize) -> u64 {
    let bit = i * bits as usize;
    let (w, off) = (bit / WORD_BITS, (bit % WORD_BITS) as u32);
    let lo = words[w] >> off;
    let have = WORD_BITS as u32 - off;
    let val = if have >= bits {
        lo
    } else {
        lo | (words[w + 1] << have)
    };
    val & max
}

/// Read-only `b`-bit-entry view over a borrowed word region.
///
/// The decoding is identical to [`crate::PackedIntVec::get`]
/// (differential-tested in this module), so a region written through
/// [`PackedView`] reads back exactly like the owning vector would.
#[derive(Debug, Clone, Copy)]
pub struct PackedRef<'a> {
    words: &'a [u64],
    len: usize,
    bits: u32,
    max: u64,
}

impl<'a> PackedRef<'a> {
    /// Views `len` entries of `bits` width over `words`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=64` or `words` is too short.
    #[must_use]
    pub fn new(words: &'a [u64], len: usize, bits: u32) -> Self {
        assert!((1..=64).contains(&bits), "entry width must be 1..=64 bits");
        let need = len
            .checked_mul(bits as usize)
            .expect("view size overflows usize")
            .div_ceil(WORD_BITS);
        assert!(
            words.len() >= need,
            "region of {} words cannot hold {len} x {bits}-bit entries",
            words.len()
        );
        Self {
            words,
            len,
            bits,
            max: low_mask(bits),
        }
    }

    /// Number of entries.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the view has zero entries.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest storable value (the all-ones pattern).
    #[inline]
    #[must_use]
    pub fn max_value(&self) -> u64 {
        self.max
    }

    /// Reads entry `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "entry index {i} out of range {}", self.len);
        decode(self.words, self.bits, self.max, i)
    }

    /// Number of entries equal to `value` (O(len); stats cadence only).
    #[must_use]
    pub fn count_eq(&self, value: u64) -> usize {
        (0..self.len).filter(|&i| self.get(i) == value).count()
    }
}

/// Mutable `b`-bit-entry view over a borrowed word region — the
/// [`crate::PackedIntVec`] contract without owned storage, so one
/// [`WordSlab`] region can act as a tenant's timestamp table.
#[derive(Debug)]
pub struct PackedView<'a> {
    words: &'a mut [u64],
    len: usize,
    bits: u32,
    max: u64,
}

impl<'a> PackedView<'a> {
    /// Views `len` entries of `bits` width over `words`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=64` or `words` is too short.
    #[must_use]
    pub fn new(words: &'a mut [u64], len: usize, bits: u32) -> Self {
        assert!((1..=64).contains(&bits), "entry width must be 1..=64 bits");
        let need = len
            .checked_mul(bits as usize)
            .expect("view size overflows usize")
            .div_ceil(WORD_BITS);
        assert!(
            words.len() >= need,
            "region of {} words cannot hold {len} x {bits}-bit entries",
            words.len()
        );
        Self {
            words,
            len,
            bits,
            max: low_mask(bits),
        }
    }

    /// Number of entries.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the view has zero entries.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest storable value (the all-ones pattern).
    #[inline]
    #[must_use]
    pub fn max_value(&self) -> u64 {
        self.max
    }

    /// Reads entry `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "entry index {i} out of range {}", self.len);
        decode(self.words, self.bits, self.max, i)
    }

    /// Writes entry `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len` or `value` does not fit the entry width.
    #[inline]
    pub fn set(&mut self, i: usize, value: u64) {
        assert!(i < self.len, "entry index {i} out of range {}", self.len);
        assert!(
            value <= self.max,
            "value {value} exceeds {}-bit entry",
            self.bits
        );
        let bit = i * self.bits as usize;
        let (w, off) = (bit / WORD_BITS, (bit % WORD_BITS) as u32);
        self.words[w] = (self.words[w] & !(self.max << off)) | (value << off);
        let have = WORD_BITS as u32 - off;
        if have < self.bits {
            let hi_mask = low_mask(self.bits - have);
            self.words[w + 1] = (self.words[w + 1] & !hi_mask) | (value >> have);
        }
    }

    /// Sets every entry to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit the entry width.
    pub fn fill(&mut self, value: u64) {
        for i in 0..self.len {
            self.set(i, value);
        }
    }

    /// Wraparound-timestamp expiry over `count` entries from `start`:
    /// the tenant-arena sweep, scalar by design. A tenant's per-arrival
    /// quota is a handful of entries (`⌈m_t/n_t⌉`), far below the
    /// break-even batch of the wide kernels, so the scalar predicate —
    /// the exact one [`crate::PackedIntVec::expire_timestamps`] uses on
    /// its scalar dispatch — is also the fast path here, and forced
    /// scalar runs (`CFD_FORCE_SCALAR=1`) are bit-identical for free.
    ///
    /// An entry is the all-ones `empty` marker or a stamp on a clock of
    /// period `range`; occupied entries whose age from `now` falls
    /// outside `[active_lo, active_hi]` are rewritten to `empty`.
    /// Returns the number of entries rewritten.
    ///
    /// # Panics
    ///
    /// Panics if `start + count > len`.
    pub fn expire_range(
        &mut self,
        start: usize,
        count: usize,
        now: u64,
        range: u64,
        active_lo: u64,
        active_hi: u64,
    ) -> usize {
        let end = start
            .checked_add(count)
            .expect("entry range overflows usize");
        assert!(
            end <= self.len,
            "entry range {start}+{count} exceeds {}",
            self.len
        );
        let empty = self.max;
        let mut changed = 0;
        for i in start..end {
            let ts = self.get(i);
            if ts == empty {
                continue;
            }
            let age = if now >= ts {
                now - ts
            } else {
                range - ts + now
            };
            if !(active_lo..=active_hi).contains(&age) {
                self.set(i, empty);
                changed += 1;
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PackedIntVec;
    use proptest::prelude::*;

    #[test]
    fn slab_rounds_stride_to_cache_lines() {
        let slab = WordSlab::new(3, 9);
        assert_eq!(slab.stride_words(), 16);
        assert_eq!(slab.slots(), 3);
        assert_eq!(slab.memory_bits(), 3 * 16 * 64);
        assert!(slab.as_words().iter().all(|&w| w == 0));
    }

    #[test]
    fn regions_are_disjoint_and_recyclable() {
        let mut slab = WordSlab::new(4, 8);
        slab.fill_region(1, u64::MAX);
        slab.region_mut(2)[0] = 7;
        assert!(slab.region(0).iter().all(|&w| w == 0));
        assert!(slab.region(1).iter().all(|&w| w == u64::MAX));
        assert_eq!(slab.region(2)[0], 7);
        slab.fill_region(1, 0);
        assert!(slab.region(1).iter().all(|&w| w == 0));
    }

    #[test]
    fn grow_appends_zeroed_slots() {
        let mut slab = WordSlab::new(1, 8);
        slab.fill_region(0, 3);
        slab.grow(2);
        assert_eq!(slab.slots(), 3);
        assert!(slab.region(0).iter().all(|&w| w == 3));
        assert!(slab.region(2).iter().all(|&w| w == 0));
    }

    #[test]
    fn slab_words_roundtrip() {
        let mut slab = WordSlab::new(2, 10);
        slab.region_mut(1)[3] = 99;
        let back = WordSlab::from_words(slab.as_words().to_vec(), 2, 10).expect("roundtrip");
        assert_eq!(back, slab);
        assert!(WordSlab::from_words(vec![0; 7], 2, 10).is_none());
        assert!(WordSlab::from_words(vec![], 0, 0).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slot_panics() {
        let slab = WordSlab::new(2, 8);
        let _ = slab.region(2);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn undersized_region_panics() {
        let mut words = vec![0u64; 2];
        let _ = PackedView::new(&mut words, 100, 13);
    }

    proptest! {
        /// Differential: a PackedView over a raw word region behaves
        /// exactly like the owning PackedIntVec for every interleaving
        /// of writes and reads.
        #[test]
        fn view_matches_packed_int_vec(
            bits in 1u32..=64,
            writes in prop::collection::vec((0usize..150, any::<u64>()), 0..200),
        ) {
            let len = 150usize;
            let mut owned = PackedIntVec::new(len, bits);
            let mut words = vec![0u64; (len * bits as usize).div_ceil(64)];
            let mask = low_mask(bits);
            {
                let mut view = PackedView::new(&mut words, len, bits);
                for &(i, raw) in &writes {
                    owned.set(i, raw & mask);
                    view.set(i, raw & mask);
                }
                for i in 0..len {
                    prop_assert_eq!(view.get(i), owned.get(i), "i={}", i);
                }
            }
            prop_assert_eq!(&words[..], owned.as_words());
            let read = PackedRef::new(&words, len, bits);
            for i in 0..len {
                prop_assert_eq!(read.get(i), owned.get(i), "i={}", i);
            }
            prop_assert_eq!(read.count_eq(0), owned.count_eq(0));
        }

        /// Differential: the scalar expiry sweep matches
        /// PackedIntVec::expire_timestamps over the whole-entry
        /// timestamp idiom the arena uses.
        #[test]
        fn expire_range_matches_expire_timestamps(
            bits in 2u32..=24,
            start in 0usize..100,
            count in 0usize..100,
            now_seed in any::<u64>(),
        ) {
            let len = 150usize;
            let count = count.min(len - start);
            let mask = low_mask(bits);
            let range = mask.max(2);
            let now = now_seed % range;
            let (lo, hi) = (1u64, range / 2);
            let mut owned = PackedIntVec::new(len, bits);
            let mut words = vec![0u64; (len * bits as usize).div_ceil(64)];
            {
                let mut view = PackedView::new(&mut words, len, bits);
                for i in 0..len {
                    let raw = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let val = if raw.is_multiple_of(5) { mask } else { (raw >> 8) % range };
                    owned.set(i, val);
                    view.set(i, val);
                }
                let changed_view = view.expire_range(start, count, now, range, lo, hi);
                let changed_owned =
                    owned.expire_timestamps(start, count, mask, mask, now, range, lo, hi);
                prop_assert_eq!(changed_view, changed_owned);
            }
            prop_assert_eq!(&words[..], owned.as_words());
        }
    }
}
