//! A fixed-size bit vector backed by `u64` words.

use crate::words::{low_mask, split_index, words_for_bits, WORD_BITS};

/// A fixed-size vector of bits, all initialized to 0.
///
/// The backing store for classical Bloom filters. Capacity is fixed at
/// construction; out-of-range accesses panic (the Bloom layer always
/// derives indices with `% m`, so a panic here indicates a logic bug, not
/// bad user input).
///
/// ```rust
/// use cfd_bits::BitVec;
/// let mut v = BitVec::new(100);
/// assert!(!v.set(42)); // returns the previous value
/// assert!(v.get(42));
/// assert_eq!(v.count_ones(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates a bit vector of `len` zero bits.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; words_for_bits(len)],
            len,
        }
    }

    /// Number of bits.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the vector has zero bits.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = split_index(i);
        (self.words[w] >> b) & 1 == 1
    }

    /// Sets bit `i` to 1, returning its previous value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = split_index(i);
        let prev = (self.words[w] >> b) & 1 == 1;
        self.words[w] |= 1u64 << b;
        prev
    }

    /// Clears bit `i` to 0, returning its previous value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn clear(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = split_index(i);
        let prev = (self.words[w] >> b) & 1 == 1;
        self.words[w] &= !(1u64 << b);
        prev
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Clears the word-aligned range of bits `[word_start * 64, word_end * 64)`.
    ///
    /// Used for the paper's *incremental* cleaning of an expired Bloom
    /// filter (§3.1): the caller wipes a few words per arriving element
    /// instead of the whole filter at once.
    ///
    /// # Panics
    ///
    /// Panics if `word_end` exceeds the word count or `word_start > word_end`.
    pub fn clear_word_range(&mut self, word_start: usize, word_end: usize) {
        assert!(word_start <= word_end && word_end <= self.words.len());
        self.words[word_start..word_end].fill(0);
    }

    /// Clears the arbitrary bit range `[start, start + len)`.
    ///
    /// The bit-granular companion of [`BitVec::clear_word_range`], for
    /// incremental wipes whose stripes are narrower than a word (e.g.
    /// the per-line slice lanes of a blocked age-partitioned filter).
    /// Interior whole words are wiped with word stores.
    ///
    /// # Panics
    ///
    /// Panics if `start + len` exceeds the bit length.
    pub fn clear_range(&mut self, start: usize, len: usize) {
        let end = start + len;
        assert!(end <= self.len, "bit range {start}..{end} out of range");
        if len == 0 {
            return;
        }
        let (first_w, first_b) = split_index(start);
        let (last_w, last_b) = split_index(end - 1);
        if first_w == last_w {
            self.words[first_w] &= low_mask(first_b) | !low_mask(last_b + 1);
            return;
        }
        self.words[first_w] &= low_mask(first_b);
        self.words[first_w + 1..last_w].fill(0);
        self.words[last_w] &= !low_mask(last_b + 1);
    }

    /// Hints the CPU to pull bit `i`'s cache line early; a no-op when
    /// the index is out of range (see [`crate::words::prefetch`]).
    #[inline]
    pub fn prefetch(&self, i: usize) {
        if i < self.len {
            crate::words::prefetch(&self.words[i / WORD_BITS]);
        }
    }

    /// The raw backing words (checkpoint serialization).
    #[inline]
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a vector from raw words, or `None` if the word count
    /// does not match `len` or trailing bits beyond `len` are set.
    #[must_use]
    pub fn from_words(words: Vec<u64>, len: usize) -> Option<Self> {
        if words.len() != words_for_bits(len) {
            return None;
        }
        if !len.is_multiple_of(WORD_BITS) && !words.is_empty() {
            let used = (len % WORD_BITS) as u32;
            if words[words.len() - 1] & !low_mask(used) != 0 {
                return None;
            }
        }
        Some(Self { words, len })
    }

    /// Number of words backing this vector.
    #[inline]
    #[must_use]
    pub fn word_len(&self) -> usize {
        self.words.len()
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of set bits (`0.0` for an empty vector).
    #[must_use]
    pub fn fill_ratio(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Memory footprint of the payload in bits (excluding the struct).
    #[inline]
    #[must_use]
    pub fn memory_bits(&self) -> usize {
        self.words.len() * WORD_BITS
    }

    /// Bitwise OR of another vector of identical length into `self`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn union_with(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `true` if every bit set in `self` is also set in `other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[must_use]
    pub fn is_subset_of(&self, other: &Self) -> bool {
        assert_eq!(self.len, other.len, "length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the indices of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + b)
                }
            })
        })
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        let mut v = BitVec::new(bits.len());
        for (i, b) in bits.into_iter().enumerate() {
            if b {
                v.set(i);
            }
        }
        v
    }
}

/// Ensures trailing bits beyond `len` in the last word stay zero even
/// after bulk operations (relevant for `count_ones`).
impl BitVec {
    #[allow(dead_code)]
    fn debug_trailing_clear(&self) -> bool {
        if self.len.is_multiple_of(WORD_BITS) || self.words.is_empty() {
            return true;
        }
        let used = (self.len % WORD_BITS) as u32;
        self.words[self.words.len() - 1] & !low_mask(used) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_is_all_zero() {
        let v = BitVec::new(130);
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_ones(), 0);
        assert!((0..130).all(|i| !v.get(i)));
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut v = BitVec::new(200);
        assert!(!v.set(0));
        assert!(v.set(0));
        assert!(!v.set(63));
        assert!(!v.set(64));
        assert!(!v.set(199));
        assert_eq!(v.count_ones(), 4);
        assert!(v.clear(63));
        assert!(!v.clear(63));
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BitVec::new(10);
        let _ = v.get(10);
    }

    #[test]
    fn clear_word_range_wipes_only_that_range() {
        let mut v = BitVec::new(256);
        for i in 0..256 {
            v.set(i);
        }
        v.clear_word_range(1, 3); // bits 64..192
        for i in 0..256 {
            assert_eq!(v.get(i), !(64..192).contains(&i), "bit {i}");
        }
    }

    #[test]
    fn clear_range_within_one_word() {
        let mut v = BitVec::new(128);
        for i in 0..128 {
            v.set(i);
        }
        v.clear_range(70, 10); // bits 70..80, inside word 1
        for i in 0..128 {
            assert_eq!(v.get(i), !(70..80).contains(&i), "bit {i}");
        }
    }

    #[test]
    fn clear_range_straddles_words() {
        let mut v = BitVec::new(256);
        for i in 0..256 {
            v.set(i);
        }
        v.clear_range(60, 140); // bits 60..200 across four words
        for i in 0..256 {
            assert_eq!(v.get(i), !(60..200).contains(&i), "bit {i}");
        }
    }

    #[test]
    fn clear_range_word_aligned_and_edges() {
        let mut v = BitVec::new(192);
        for i in 0..192 {
            v.set(i);
        }
        v.clear_range(64, 64); // exactly word 1
        for i in 0..192 {
            assert_eq!(v.get(i), !(64..128).contains(&i), "bit {i}");
        }
        v.clear_range(0, 0); // empty range is a no-op
        assert_eq!(v.count_ones(), 128);
        v.clear_range(191, 1); // final bit
        assert!(!v.get(191));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn clear_range_out_of_range_panics() {
        let mut v = BitVec::new(100);
        v.clear_range(90, 11);
    }

    #[test]
    fn from_words_roundtrip_and_rejection() {
        let mut v = BitVec::new(130);
        v.set(0);
        v.set(64);
        v.set(129);
        let restored = BitVec::from_words(v.as_words().to_vec(), 130).unwrap();
        assert_eq!(restored, v);
        // Wrong word count.
        assert!(BitVec::from_words(vec![0; 2], 130).is_none());
        // Trailing bit beyond len set.
        let mut words = v.as_words().to_vec();
        words[2] |= 1 << 10;
        assert!(BitVec::from_words(words, 130).is_none());
    }

    #[test]
    fn union_and_subset() {
        let mut a = BitVec::new(100);
        let mut b = BitVec::new(100);
        a.set(1);
        b.set(1);
        b.set(99);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        a.union_with(&b);
        assert!(b.is_subset_of(&a));
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    fn iter_ones_yields_sorted_positions() {
        let mut v = BitVec::new(300);
        let positions = [0usize, 5, 63, 64, 128, 255, 299];
        for &p in &positions {
            v.set(p);
        }
        let got: Vec<usize> = v.iter_ones().collect();
        assert_eq!(got, positions);
    }

    #[test]
    fn from_iterator_builds_expected() {
        let v: BitVec = [true, false, true, true].into_iter().collect();
        assert_eq!(v.len(), 4);
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn fill_ratio_edges() {
        assert_eq!(BitVec::new(0).fill_ratio(), 0.0);
        let mut v = BitVec::new(4);
        v.set(0);
        v.set(1);
        assert!((v.fill_ratio() - 0.5).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn matches_model_hashset(ops in prop::collection::vec((0usize..512, any::<bool>()), 0..300)) {
            let mut v = BitVec::new(512);
            let mut model = std::collections::HashSet::new();
            for (i, set) in ops {
                if set {
                    prop_assert_eq!(v.set(i), !model.insert(i));
                } else {
                    prop_assert_eq!(v.clear(i), model.remove(&i));
                }
            }
            prop_assert_eq!(v.count_ones(), model.len());
            for i in 0..512 {
                prop_assert_eq!(v.get(i), model.contains(&i));
            }
            prop_assert!(v.debug_trailing_clear());
        }
    }
}
