//! Bit-level storage substrate for the click-fraud detection suite.
//!
//! Everything the paper's data structures need to touch memory lives here:
//!
//! * [`bitvec::BitVec`] — a fixed-size bit vector (classical Bloom
//!   filters).
//! * [`interleave::InterleavedBitMatrix`] — the *group Bloom filter*
//!   layout of §3: bit `j` of every sub-window filter shares a machine
//!   word, so one membership probe across all sub-windows is `k` word
//!   reads, an AND, and a mask.
//! * [`packed::PackedIntVec`] — a vector of `b`-bit unsigned entries
//!   (the `O(log N)`-bit timestamp cells of the timing Bloom filter, §4).
//! * [`counters::PackedCounterVec`] — saturating `b`-bit counters (the
//!   counting Bloom filter baseline of Metwally et al. \[21\]).
//! * [`words`] — shared word-math helpers.
//!
//! All structures are safe Rust, fixed-capacity after construction, and
//! expose explicit word-operation accounting hooks so the benchmark
//! harness can reproduce the paper's running-time claims (Theorems 1
//! and 2) in *memory operations*, not just wall-clock time. `unsafe` is
//! confined to two places: the architectural cache-prefetch hint in
//! [`words::prefetch`] (no architectural effect beyond cache state,
//! cannot fault) and the runtime-dispatched AVX2 kernels in [`simd`],
//! where every intrinsic call sits behind runtime feature detection and
//! a bounds check, each documented by a `SAFETY` comment.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bitvec;
pub mod counters;
pub mod interleave;
pub mod packed;
pub mod simd;
pub mod slab;
pub mod tight;
pub mod words;

pub use bitvec::BitVec;
pub use counters::PackedCounterVec;
pub use interleave::InterleavedBitMatrix;
pub use packed::PackedIntVec;
pub use tight::TightBitMatrix;
