//! The group-Bloom-filter memory layout (paper §3.1).
//!
//! Instead of `Q + 1` separate Bloom filters, the bits with the same index
//! in each filter are grouped into the same machine word(s): *group* `g`
//! holds bit `g` of every filter (one *lane* per filter). A membership
//! probe across all filters then reads `k × ⌈lanes/64⌉` words, ANDs them,
//! masks the inactive lanes, and tests for non-zero — exactly the CPU-word
//! trick the paper describes with its `Q = 31`, 32-bit-word example.

use crate::words::WORD_BITS;

/// A matrix of `groups × lanes` bits, stored group-major so that all the
/// lanes of one group are adjacent in memory.
///
/// * `groups` = `m`, the per-filter size in bits.
/// * `lanes`  = the number of filters sharing the layout (`Q + 1` for GBF:
///   `Q` active sub-windows plus one spare being cleaned).
///
/// ```rust
/// use cfd_bits::InterleavedBitMatrix;
/// let mut mx = InterleavedBitMatrix::new(1024, 9);
/// mx.set(17, 3);
/// assert!(mx.get(17, 3));
/// assert!(!mx.get(17, 4));
/// // Probe: which lanes have bit 17 AND bit 40 set?
/// let mut acc = mx.full_lane_mask();
/// mx.and_group_into(17, &mut acc);
/// mx.and_group_into(40, &mut acc);
/// assert!(acc.iter().all(|&w| w == 0)); // bit 40 never set
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterleavedBitMatrix {
    words: Vec<u64>,
    groups: usize,
    lanes: usize,
    lane_words: usize,
}

impl InterleavedBitMatrix {
    /// Creates an all-zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if `groups` or `lanes` is zero.
    #[must_use]
    pub fn new(groups: usize, lanes: usize) -> Self {
        assert!(groups > 0, "groups must be positive");
        assert!(lanes > 0, "lanes must be positive");
        let lane_words = lanes.div_ceil(WORD_BITS);
        Self {
            words: vec![
                0;
                groups
                    .checked_mul(lane_words)
                    .expect("matrix size overflow")
            ],
            groups,
            lanes,
            lane_words,
        }
    }

    /// Number of groups (`m`, the per-filter bit count).
    #[inline]
    #[must_use]
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Number of lanes (filters).
    #[inline]
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Words per group (`⌈lanes/64⌉`); the unit cost of one group access.
    #[inline]
    #[must_use]
    pub fn lane_words(&self) -> usize {
        self.lane_words
    }

    /// Memory footprint of the payload in bits.
    #[inline]
    #[must_use]
    pub fn memory_bits(&self) -> usize {
        self.words.len() * WORD_BITS
    }

    /// The raw backing words (for checkpointing).
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a matrix from raw words produced by
    /// [`InterleavedBitMatrix::as_words`]. Returns `None` on a size
    /// mismatch.
    #[must_use]
    pub fn from_words(words: Vec<u64>, groups: usize, lanes: usize) -> Option<Self> {
        if groups == 0 || lanes == 0 {
            return None;
        }
        let lane_words = lanes.div_ceil(crate::words::WORD_BITS);
        if words.len() != groups.checked_mul(lane_words)? {
            return None;
        }
        Some(Self {
            words,
            groups,
            lanes,
            lane_words,
        })
    }

    #[inline]
    fn base(&self, group: usize) -> usize {
        debug_assert!(group < self.groups);
        group * self.lane_words
    }

    /// Reads the bit at (`group`, `lane`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    #[must_use]
    pub fn get(&self, group: usize, lane: usize) -> bool {
        assert!(group < self.groups, "group {group} out of range");
        assert!(lane < self.lanes, "lane {lane} out of range");
        let w = self.base(group) + lane / WORD_BITS;
        (self.words[w] >> (lane % WORD_BITS)) & 1 == 1
    }

    /// Sets the bit at (`group`, `lane`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn set(&mut self, group: usize, lane: usize) {
        assert!(group < self.groups, "group {group} out of range");
        assert!(lane < self.lanes, "lane {lane} out of range");
        let w = self.base(group) + lane / WORD_BITS;
        self.words[w] |= 1u64 << (lane % WORD_BITS);
    }

    /// Clears the bit at (`group`, `lane`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn clear(&mut self, group: usize, lane: usize) {
        assert!(group < self.groups, "group {group} out of range");
        assert!(lane < self.lanes, "lane {lane} out of range");
        let w = self.base(group) + lane / WORD_BITS;
        self.words[w] &= !(1u64 << (lane % WORD_BITS));
    }

    /// ANDs group `group`'s lane words into `acc`.
    ///
    /// This is the probe primitive: after ANDing the `k` hashed groups,
    /// `acc` has a 1 exactly in the lanes whose filter contains all `k`
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range or `acc.len() != lane_words`.
    #[inline]
    pub fn and_group_into(&self, group: usize, acc: &mut [u64]) {
        assert!(group < self.groups, "group {group} out of range");
        assert_eq!(acc.len(), self.lane_words, "accumulator width mismatch");
        let base = self.base(group);
        let src = &self.words[base..base + self.lane_words];
        if self.lane_words >= 4 {
            // Wide-lane matrices (> 192 sub-windows) reduce four words
            // per step on AVX2; identical to the scalar loop below.
            crate::simd::and_words(acc, src);
            return;
        }
        for (a, w) in acc.iter_mut().zip(src) {
            *a &= w;
        }
    }

    /// Hints the CPU to pull group `group`'s cache line early; a no-op
    /// when the group is out of range.
    ///
    /// Same idiom as `PackedIntVec::prefetch`: batch frontends that know
    /// future probe groups issue this a few elements ahead so the random
    /// reads of [`InterleavedBitMatrix::and_group_into`] land in cache
    /// (see [`crate::words::prefetch`]).
    #[inline]
    pub fn prefetch(&self, group: usize) {
        if group < self.groups {
            crate::words::prefetch(&self.words[self.base(group)]);
        }
    }

    /// A lane mask with all `lanes` bits set (1s in every valid lane).
    #[must_use]
    pub fn full_lane_mask(&self) -> Vec<u64> {
        let mut mask = vec![u64::MAX; self.lane_words];
        let used = self.lanes % WORD_BITS;
        if used != 0 {
            *mask.last_mut().expect("lane_words >= 1") = (1u64 << used) - 1;
        }
        mask
    }

    /// A lane mask with a single lane bit set.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    #[must_use]
    pub fn single_lane_mask(&self, lane: usize) -> Vec<u64> {
        assert!(lane < self.lanes, "lane {lane} out of range");
        let mut mask = vec![0u64; self.lane_words];
        mask[lane / WORD_BITS] = 1u64 << (lane % WORD_BITS);
        mask
    }

    /// Clears lane `lane` in `count` consecutive groups starting at
    /// `group_start` (no wraparound; the caller splits a wrapping range).
    ///
    /// This is the incremental-cleaning primitive of §3.1: the expired
    /// filter is wiped a few groups per arriving element instead of all
    /// `m` at once. Returns the number of words touched.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the group count or `lane` is invalid.
    pub fn clear_lane_range(&mut self, lane: usize, group_start: usize, count: usize) -> usize {
        assert!(lane < self.lanes, "lane {lane} out of range");
        assert!(
            group_start + count <= self.groups,
            "group range {group_start}+{count} exceeds {}",
            self.groups
        );
        let lw = lane / WORD_BITS;
        let mask = !(1u64 << (lane % WORD_BITS));
        if self.lane_words == 1 && crate::simd::wide_enabled() {
            // One word per group: the swept span is a contiguous word
            // slice, which compiles to a wide AND-store loop — the
            // cleaning daemon touches whole cache lines per step. Kept
            // behind the wide dispatch so forcing scalar
            // (`CFD_FORCE_SCALAR=1`) measures the original per-group
            // read-modify-write path.
            for w in &mut self.words[group_start..group_start + count] {
                *w &= mask;
            }
            return count;
        }
        for g in group_start..group_start + count {
            let w = g * self.lane_words + lw;
            self.words[w] &= mask;
        }
        count
    }

    /// Clears lane `lane` in every group (`O(m)` — construction/reset only).
    pub fn clear_lane_all(&mut self, lane: usize) {
        self.clear_lane_range(lane, 0, self.groups);
    }

    /// Clears the whole matrix.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits in lane `lane` (diagnostics; `O(m)`).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    #[must_use]
    pub fn count_ones_in_lane(&self, lane: usize) -> usize {
        assert!(lane < self.lanes, "lane {lane} out of range");
        let lw = lane / WORD_BITS;
        let bit = lane % WORD_BITS;
        (0..self.groups)
            .filter(|&g| (self.words[g * self.lane_words + lw] >> bit) & 1 == 1)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_clear_independent_lanes() {
        let mut mx = InterleavedBitMatrix::new(100, 9);
        mx.set(50, 0);
        mx.set(50, 8);
        assert!(mx.get(50, 0));
        assert!(mx.get(50, 8));
        assert!(!mx.get(50, 4));
        assert!(!mx.get(49, 0));
        mx.clear(50, 0);
        assert!(!mx.get(50, 0));
        assert!(mx.get(50, 8));
    }

    #[test]
    fn lane_words_scale_past_64_lanes() {
        let mx = InterleavedBitMatrix::new(10, 65);
        assert_eq!(mx.lane_words(), 2);
        let mut mx = mx;
        mx.set(3, 64);
        assert!(mx.get(3, 64));
        assert!(!mx.get(3, 63));
    }

    #[test]
    fn probe_semantics_via_and() {
        let mut mx = InterleavedBitMatrix::new(64, 5);
        // Lane 2 contains "element" hashing to groups {7, 9, 11}.
        for g in [7, 9, 11] {
            mx.set(g, 2);
        }
        // Lane 4 contains only groups {7, 9}.
        for g in [7, 9] {
            mx.set(g, 4);
        }
        let mut acc = mx.full_lane_mask();
        for g in [7, 9, 11] {
            mx.and_group_into(g, &mut acc);
        }
        assert_eq!(acc, vec![0b00100]); // only lane 2 has all three bits
    }

    #[test]
    fn full_lane_mask_covers_exactly_lanes() {
        let mx = InterleavedBitMatrix::new(4, 64);
        assert_eq!(mx.full_lane_mask(), vec![u64::MAX]);
        let mx = InterleavedBitMatrix::new(4, 9);
        assert_eq!(mx.full_lane_mask(), vec![0x1FF]);
        let mx = InterleavedBitMatrix::new(4, 70);
        assert_eq!(mx.full_lane_mask(), vec![u64::MAX, 0x3F]);
    }

    #[test]
    fn single_lane_mask_selects_one() {
        let mx = InterleavedBitMatrix::new(4, 70);
        assert_eq!(mx.single_lane_mask(0), vec![1, 0]);
        assert_eq!(mx.single_lane_mask(69), vec![0, 1 << 5]);
    }

    #[test]
    fn clear_lane_range_clears_only_that_lane_and_range() {
        let mut mx = InterleavedBitMatrix::new(100, 3);
        for g in 0..100 {
            for l in 0..3 {
                mx.set(g, l);
            }
        }
        let touched = mx.clear_lane_range(1, 20, 30);
        assert_eq!(touched, 30);
        for g in 0..100 {
            assert!(mx.get(g, 0));
            assert!(mx.get(g, 2));
            assert_eq!(mx.get(g, 1), !(20..50).contains(&g), "g={g}");
        }
        assert_eq!(mx.count_ones_in_lane(1), 70);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn clear_lane_range_out_of_bounds_panics() {
        let mut mx = InterleavedBitMatrix::new(10, 2);
        mx.clear_lane_range(0, 5, 6);
    }

    #[test]
    fn memory_bits_accounts_for_padding() {
        let mx = InterleavedBitMatrix::new(1000, 9);
        // 9 lanes round up to one word per group.
        assert_eq!(mx.memory_bits(), 1000 * 64);
    }

    proptest! {
        #[test]
        #[allow(clippy::needless_range_loop)]
        fn matches_dense_model(
            lanes in 1usize..130,
            ops in prop::collection::vec((0usize..64, 0usize..130, any::<bool>()), 0..300),
        ) {
            let mut mx = InterleavedBitMatrix::new(64, lanes);
            let mut model = vec![vec![false; lanes]; 64];
            for (g, l, on) in ops {
                let l = l % lanes;
                if on {
                    mx.set(g, l);
                } else {
                    mx.clear(g, l);
                }
                model[g][l] = on;
            }
            for g in 0..64 {
                for l in 0..lanes {
                    prop_assert_eq!(mx.get(g, l), model[g][l], "g={} l={}", g, l);
                }
            }
            // AND-probe agrees with the model for a random pair of groups.
            let mut acc = mx.full_lane_mask();
            mx.and_group_into(3, &mut acc);
            mx.and_group_into(42, &mut acc);
            for l in 0..lanes {
                let bit = (acc[l / 64] >> (l % 64)) & 1 == 1;
                prop_assert_eq!(bit, model[3][l] && model[42][l]);
            }
        }
    }
}
