//! Tightly packed group-Bloom-filter layout for small lane counts.
//!
//! [`crate::InterleavedBitMatrix`] pads each group to whole 64-bit words,
//! which wastes `64 − (Q+1)` bits per group when `Q + 1 < 64` — e.g. a
//! `Q = 8` GBF spends 64 bits per group on 9 useful lanes. This layout
//! packs `⌊64/lanes⌋` groups into each word instead, matching the
//! paper's example where `Q + 1` exactly fills a machine word: one probe
//! still reads one word per hash index and extracts the group's lanes
//! with a shift and mask.
//!
//! Trade-off vs. the padded layout: ~`⌊64/lanes⌋`× less memory, one
//! extra shift per probe, and lane-cleaning touches the same word as
//! neighbouring groups (still a single read-modify-write per group).

use crate::words::low_mask;

/// A matrix of `groups × lanes` bits with several groups packed per
/// 64-bit word. Lane count is limited to 32 so at least two groups share
/// a word (use [`crate::InterleavedBitMatrix`] beyond that).
///
/// ```rust
/// use cfd_bits::TightBitMatrix;
/// let mut mx = TightBitMatrix::new(1000, 9); // 7 groups per word
/// mx.set(123, 4);
/// assert!(mx.get(123, 4));
/// assert!(!mx.get(123, 5));
/// assert_eq!(mx.read_group(123), 1 << 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TightBitMatrix {
    words: Vec<u64>,
    groups: usize,
    lanes: usize,
    groups_per_word: usize,
    lane_mask: u64,
}

impl TightBitMatrix {
    /// Creates an all-zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if `groups == 0` or `lanes` is not in `1..=32`.
    #[must_use]
    pub fn new(groups: usize, lanes: usize) -> Self {
        assert!(groups > 0, "groups must be positive");
        assert!(
            (1..=32).contains(&lanes),
            "tight layout supports 1..=32 lanes (got {lanes}); use the padded layout beyond"
        );
        let groups_per_word = 64 / lanes;
        Self {
            words: vec![0; groups.div_ceil(groups_per_word)],
            groups,
            lanes,
            groups_per_word,
            lane_mask: low_mask(lanes as u32),
        }
    }

    /// Number of groups (`m`).
    #[inline]
    #[must_use]
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Number of lanes.
    #[inline]
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Groups stored in each word.
    #[inline]
    #[must_use]
    pub fn groups_per_word(&self) -> usize {
        self.groups_per_word
    }

    /// Payload memory in bits.
    #[inline]
    #[must_use]
    pub fn memory_bits(&self) -> usize {
        self.words.len() * 64
    }

    /// The raw backing words (for checkpointing).
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a matrix from raw words produced by
    /// [`TightBitMatrix::as_words`]. Returns `None` on a size mismatch.
    #[must_use]
    pub fn from_words(words: Vec<u64>, groups: usize, lanes: usize) -> Option<Self> {
        if groups == 0 || !(1..=32).contains(&lanes) {
            return None;
        }
        let groups_per_word = 64 / lanes;
        if words.len() != groups.div_ceil(groups_per_word) {
            return None;
        }
        Some(Self {
            words,
            groups,
            lanes,
            groups_per_word,
            lane_mask: low_mask(lanes as u32),
        })
    }

    #[inline]
    fn locate(&self, group: usize) -> (usize, u32) {
        debug_assert!(group < self.groups);
        (
            group / self.groups_per_word,
            ((group % self.groups_per_word) * self.lanes) as u32,
        )
    }

    /// Reads all lanes of `group` into the low `lanes` bits of a word.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    #[inline]
    #[must_use]
    pub fn read_group(&self, group: usize) -> u64 {
        assert!(group < self.groups, "group {group} out of range");
        let (w, off) = self.locate(group);
        (self.words[w] >> off) & self.lane_mask
    }

    /// ANDs the lanes of `group` into `acc` (probe primitive).
    #[inline]
    pub fn and_group_into(&self, group: usize, acc: &mut u64) {
        *acc &= self.read_group(group);
    }

    /// Hints the CPU to pull group `group`'s cache line early; a no-op
    /// when the group is out of range (see `PackedIntVec::prefetch` for
    /// the idiom and [`crate::words::prefetch`] for the mechanism).
    #[inline]
    pub fn prefetch(&self, group: usize) {
        if group < self.groups {
            let (w, _) = self.locate(group);
            crate::words::prefetch(&self.words[w]);
        }
    }

    /// Reads the bit at (`group`, `lane`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    #[must_use]
    pub fn get(&self, group: usize, lane: usize) -> bool {
        assert!(lane < self.lanes, "lane {lane} out of range");
        (self.read_group(group) >> lane) & 1 == 1
    }

    /// Sets the bit at (`group`, `lane`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn set(&mut self, group: usize, lane: usize) {
        assert!(group < self.groups, "group {group} out of range");
        assert!(lane < self.lanes, "lane {lane} out of range");
        let (w, off) = self.locate(group);
        self.words[w] |= 1u64 << (off + lane as u32);
    }

    /// Clears the bit at (`group`, `lane`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn clear(&mut self, group: usize, lane: usize) {
        assert!(group < self.groups, "group {group} out of range");
        assert!(lane < self.lanes, "lane {lane} out of range");
        let (w, off) = self.locate(group);
        self.words[w] &= !(1u64 << (off + lane as u32));
    }

    /// Clears lane `lane` in `count` consecutive groups starting at
    /// `group_start` (the incremental-cleaning primitive). Returns the
    /// number of groups touched.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the group count or `lane` is invalid.
    pub fn clear_lane_range(&mut self, lane: usize, group_start: usize, count: usize) -> usize {
        assert!(lane < self.lanes, "lane {lane} out of range");
        assert!(
            group_start + count <= self.groups,
            "group range {group_start}+{count} exceeds {}",
            self.groups
        );
        // Build a per-word mask clearing `lane` in every packed group,
        // then apply it whole-word in the interior of the range.
        let mut g = group_start;
        let end = group_start + count;
        while g < end {
            let (w, _) = self.locate(g);
            let word_first = w * self.groups_per_word;
            let word_last = (word_first + self.groups_per_word).min(self.groups);
            if g == word_first && end >= word_last {
                // Whole word covered: clear the lane in all its groups.
                let mut mask = 0u64;
                for slot in 0..self.groups_per_word {
                    mask |= 1u64 << (slot * self.lanes + lane);
                }
                self.words[w] &= !mask;
                g = word_last;
            } else {
                let upto = end.min(word_last);
                while g < upto {
                    let (w2, off) = self.locate(g);
                    self.words[w2] &= !(1u64 << (off + lane as u32));
                    g += 1;
                }
            }
        }
        count
    }

    /// Clears the whole matrix.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Set bits in lane `lane` (diagnostics, `O(m)`).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    #[must_use]
    pub fn count_ones_in_lane(&self, lane: usize) -> usize {
        assert!(lane < self.lanes, "lane {lane} out of range");
        (0..self.groups).filter(|&g| self.get(g, lane)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interleave::InterleavedBitMatrix;
    use proptest::prelude::*;

    #[test]
    fn packs_multiple_groups_per_word() {
        let mx = TightBitMatrix::new(1000, 9);
        assert_eq!(mx.groups_per_word(), 7);
        assert_eq!(mx.memory_bits(), 1000_usize.div_ceil(7) * 64);
        // Padded layout would spend 64 bits per group.
        assert!(mx.memory_bits() * 6 < 1000 * 64);
    }

    #[test]
    fn set_get_probe_roundtrip() {
        let mut mx = TightBitMatrix::new(100, 9);
        for g in [0usize, 6, 7, 55, 99] {
            mx.set(g, 3);
            mx.set(g, 8);
        }
        for g in [0usize, 6, 7, 55, 99] {
            assert_eq!(mx.read_group(g), (1 << 3) | (1 << 8), "g={g}");
            assert!(mx.get(g, 3) && mx.get(g, 8) && !mx.get(g, 0));
        }
        assert_eq!(mx.read_group(1), 0);
        let mut acc = u64::MAX;
        mx.and_group_into(0, &mut acc);
        mx.and_group_into(6, &mut acc);
        assert_eq!(acc, (1 << 3) | (1 << 8));
    }

    #[test]
    fn clear_lane_range_spans_word_boundaries() {
        let mut mx = TightBitMatrix::new(100, 9); // 7 groups/word
        for g in 0..100 {
            for l in 0..9 {
                mx.set(g, l);
            }
        }
        mx.clear_lane_range(4, 3, 50); // crosses several whole words
        for g in 0..100 {
            assert_eq!(mx.get(g, 4), !(3..53).contains(&g), "g={g}");
            assert!(mx.get(g, 3), "other lanes untouched at g={g}");
        }
        assert_eq!(mx.count_ones_in_lane(4), 50);
    }

    #[test]
    #[should_panic(expected = "1..=32 lanes")]
    fn too_many_lanes_panics() {
        let _ = TightBitMatrix::new(10, 33);
    }

    proptest! {
        #[test]
        fn behaves_identically_to_padded_layout(
            lanes in 1usize..=32,
            ops in prop::collection::vec((0usize..200, 0usize..32, any::<bool>()), 0..400),
            clean in prop::collection::vec((0usize..32, 0usize..200, 0usize..200), 0..10),
        ) {
            let mut tight = TightBitMatrix::new(200, lanes);
            let mut padded = InterleavedBitMatrix::new(200, lanes);
            for (g, l, on) in ops {
                let l = l % lanes;
                if on {
                    tight.set(g, l);
                    padded.set(g, l);
                } else {
                    tight.clear(g, l);
                    padded.clear(g, l);
                }
            }
            for (l, start, len) in clean {
                let l = l % lanes;
                let start = start.min(199);
                let len = len.min(200 - start);
                tight.clear_lane_range(l, start, len);
                padded.clear_lane_range(l, start, len);
            }
            for g in 0..200 {
                let mut acc_p = padded.full_lane_mask();
                padded.and_group_into(g, &mut acc_p);
                prop_assert_eq!(tight.read_group(g), acc_p[0], "group {}", g);
            }
        }
    }
}
