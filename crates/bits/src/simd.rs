//! Runtime-dispatched SIMD kernels for the probe/apply hot path.
//!
//! Every kernel here has two implementations: an AVX2 body (gathers,
//! wide 64-bit compares reduced to lane masks via `movemask`) and a
//! portable scalar/SWAR body. The two are **bit-identical by
//! construction** — the AVX2 side evaluates exactly the same integer
//! predicates, just four lanes at a time — so the dispatch decision can
//! never change a verdict, only how fast it is reached. Differential
//! proptests in `tests/backend_props.rs` (repo root) enforce this
//! end-to-end through every registry backend.
//!
//! Dispatch follows the same discipline as `cfd_hash::lanes`: the wide
//! path is taken only when AVX2 is detected at runtime **and** the
//! scalar override is off. `CFD_FORCE_SCALAR` (any non-empty value
//! other than `0`, read once via [`OnceLock`]) forces the portable path
//! for a whole process; [`set_scalar_override`] flips it within a
//! process so benches and differential tests can compare both paths
//! side by side.
//!
//! This module is the **only** place in `cfd-bits` where the crate's
//! `#![deny(unsafe_code)]` is relaxed beyond the `words::prefetch`
//! hint: each `unsafe` block wraps an AVX2 intrinsic call whose
//! preconditions (CPU support, in-bounds pointers) are discharged right
//! above it and documented in a `SAFETY` comment.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Lanes processed per iteration by the wide kernels when AVX2 is
/// active (two 4-lane `__m256i` halves).
pub const LANES_WIDE: usize = 8;

/// `CFD_FORCE_SCALAR` read once: any non-empty value other than `"0"`
/// disables the wide kernels for the whole process.
fn env_force_scalar() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE
        .get_or_init(|| std::env::var("CFD_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0"))
}

/// In-process override: 0 = inherit the environment, 1 = force scalar,
/// 2 = allow wide (even under `CFD_FORCE_SCALAR`).
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Overrides the scalar/wide dispatch for this process: `Some(true)`
/// forces the scalar kernels, `Some(false)` re-enables the wide ones,
/// `None` restores the environment-driven default.
///
/// The env var is read once per process, which is the right contract
/// for production but useless for a bench (or differential test) that
/// wants to time both paths in one run. Because both paths are
/// bit-identical, flipping this mid-stream is always safe — it can
/// never change a verdict.
pub fn set_scalar_override(force: Option<bool>) {
    let v = match force {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// `true` when the scalar kernels are forced (override or environment).
#[must_use]
pub fn force_scalar() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => env_force_scalar(),
    }
}

/// Runtime CPU support for the wide kernels.
#[must_use]
fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The lane width the wide kernels will use on this machine right now:
/// [`LANES_WIDE`] with AVX2 detected and scalar not forced, else 1.
///
/// Surfaced as the `pipeline.simd_lanes` telemetry gauge.
#[must_use]
pub fn active_lanes() -> usize {
    if !force_scalar() && avx2_available() {
        LANES_WIDE
    } else {
        1
    }
}

/// `true` when the wide kernels are active ([`active_lanes`] > 1).
#[must_use]
pub fn wide_enabled() -> bool {
    active_lanes() > 1
}

/// Per-lane classification of wraparound timestamps, as lane bitmasks
/// (bit `i` = lane `i`; at most 32 lanes per call).
///
/// Produced by [`classify_stamps`]; `active ⊆ occupied` and
/// `recent ⊆ active` always hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StampMasks {
    /// Lanes whose timestamp field is not the all-ones empty marker.
    pub occupied: u32,
    /// Occupied lanes whose wraparound age is within `[lo, hi]`.
    pub active: u32,
    /// Active lanes whose age is `<= recent_within` — the speculation
    /// hazard window for grouped replay (a stamp this young may have
    /// crossed the age-0 alias point during the group).
    pub recent: u32,
}

/// Scalar reference predicate shared by both paths: wraparound age of
/// timestamp `ts` as seen from `now` on a clock of period `range`.
#[inline]
fn stamp_age(now: u64, range: u64, ts: u64) -> u64 {
    if now >= ts {
        now - ts
    } else {
        range.wrapping_sub(ts).wrapping_add(now)
    }
}

#[inline]
fn classify_stamps_scalar(
    vals: &[u64],
    ts_mask: u64,
    now: u64,
    range: u64,
    lo: u64,
    hi: u64,
    recent_within: u64,
) -> StampMasks {
    let mut m = StampMasks {
        occupied: 0,
        active: 0,
        recent: 0,
    };
    for (i, &v) in vals.iter().enumerate() {
        let ts = v & ts_mask;
        if ts == ts_mask {
            continue;
        }
        m.occupied |= 1 << i;
        let age = stamp_age(now, range, ts);
        if lo <= age && age <= hi {
            m.active |= 1 << i;
            if age <= recent_within {
                m.recent |= 1 << i;
            }
        }
    }
    m
}

/// Operand bound under which the AVX2 signed-compare lanes agree with
/// the scalar unsigned predicates: everything the kernels compare stays
/// below `2^62`, far above any real timestamp range.
const SIGNED_SAFE: u64 = 1 << 62;

/// Classifies up to 32 wraparound timestamps in one pass.
///
/// For each lane `v`: the timestamp field is `v & ts_mask`, all-ones is
/// the empty marker, and an occupied lane is *active* when its
/// wraparound age from `now` (period `range`) lies in `[lo, hi]`. The
/// `recent` mask flags active lanes with age `<= recent_within` —
/// callers that speculate across a group of arrivals use it to detect
/// stamps that could have crossed the age-0 alias point mid-group.
///
/// # Panics
///
/// Panics if `vals.len() > 32`.
#[must_use]
#[allow(unsafe_code)] // dispatch into the AVX2 bodies below
pub fn classify_stamps(
    vals: &[u64],
    ts_mask: u64,
    now: u64,
    range: u64,
    lo: u64,
    hi: u64,
    recent_within: u64,
) -> StampMasks {
    assert!(vals.len() <= 32, "at most 32 lanes per classify");
    #[cfg(target_arch = "x86_64")]
    {
        // The wide body compares lanes with signed 64-bit compares;
        // keep it to operand ranges where signed == unsigned. Real
        // clocks are tiny (range ≈ 2N), so this never excludes a
        // production configuration.
        if wide_enabled()
            && vals.len() >= 4
            && ts_mask < SIGNED_SAFE
            && range < SIGNED_SAFE
            && now < SIGNED_SAFE
            && hi < SIGNED_SAFE
            && recent_within < SIGNED_SAFE
        {
            // SAFETY: AVX2 support was verified at runtime by
            // `wide_enabled()` on this very call.
            return unsafe {
                avx2::classify_stamps(vals, ts_mask, now, range, lo, hi, recent_within)
            };
        }
    }
    classify_stamps_scalar(vals, ts_mask, now, range, lo, hi, recent_within)
}

/// Lane mask of `(vals[i] >> shift) == target` for up to 32 lanes —
/// the fingerprint-compare reduction of the SWBF cell probe.
///
/// # Panics
///
/// Panics if `vals.len() > 32` or `shift >= 64`.
#[must_use]
#[allow(unsafe_code)] // dispatch into the AVX2 bodies below
pub fn eq_shifted_mask(vals: &[u64], shift: u32, target: u64) -> u32 {
    assert!(vals.len() <= 32, "at most 32 lanes per compare");
    assert!(shift < 64, "shift must be < 64");
    #[cfg(target_arch = "x86_64")]
    {
        if wide_enabled() && vals.len() >= 4 {
            // SAFETY: AVX2 support was verified at runtime by
            // `wide_enabled()` on this very call.
            return unsafe { avx2::eq_shifted_mask(vals, shift, target) };
        }
    }
    let mut m = 0u32;
    for (i, &v) in vals.iter().enumerate() {
        if (v >> shift) == target {
            m |= 1 << i;
        }
    }
    m
}

/// Gathers `out[i] = base[idx[i]]` for four indices — one AVX2 gather
/// replacing four dependent scalar line loads in the grouped blocked
/// probe path.
///
/// # Panics
///
/// Panics if any index is out of bounds.
#[inline]
#[must_use]
#[allow(unsafe_code)] // dispatch into the AVX2 bodies below
pub fn gather4(base: &[u64], idx: [usize; 4]) -> [u64; 4] {
    assert!(
        idx.iter().all(|&i| i < base.len()),
        "gather index out of bounds"
    );
    #[cfg(target_arch = "x86_64")]
    {
        if wide_enabled() {
            // SAFETY: AVX2 support was verified at runtime by
            // `wide_enabled()`, and every index was bounds-checked
            // against `base` just above, so the gather reads only
            // in-bounds `u64`s.
            return unsafe { avx2::gather4(base.as_ptr(), idx) };
        }
    }
    [base[idx[0]], base[idx[1]], base[idx[2]], base[idx[3]]]
}

/// ANDs `src` into `acc` word by word (`acc[i] &= src[i]`) — the GBF
/// interleaved-word AND-mask reduction, four words per step on AVX2.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[allow(unsafe_code)] // dispatch into the AVX2 bodies below
pub fn and_words(acc: &mut [u64], src: &[u64]) {
    assert_eq!(acc.len(), src.len(), "AND-reduce width mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if acc.len() >= 4 && wide_enabled() {
            // SAFETY: AVX2 support was verified at runtime by
            // `wide_enabled()`, and both slices were length-checked
            // above; the helper stays within `acc.len()` words.
            unsafe { avx2::and_words(acc, src) };
            return;
        }
    }
    for (a, &s) in acc.iter_mut().zip(src) {
        *a &= s;
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    //! AVX2 bodies. Every function is `unsafe fn` + `target_feature`:
    //! callers discharge the CPU-support precondition (runtime
    //! detection) and any pointer bounds before the call.

    use super::StampMasks;
    use core::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_and_si256, _mm256_andnot_si256, _mm256_castsi256_pd,
        _mm256_cmpeq_epi64, _mm256_cmpgt_epi64, _mm256_i64gather_epi64, _mm256_loadu_si256,
        _mm256_movemask_pd, _mm256_set1_epi64x, _mm256_setr_epi64x, _mm256_srl_epi64,
        _mm256_storeu_si256, _mm256_sub_epi64, _mm_cvtsi64_si128,
    };

    /// One bit per 64-bit lane from a full-width lane mask.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn movemask4(m: __m256i) -> u32 {
        _mm256_movemask_pd(_mm256_castsi256_pd(m)) as u32
    }

    /// Classifies one 4-lane block starting at `vals[at]`, merging the
    /// lane bits into `out` at bit offset `at`.
    #[inline]
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn classify4(
        vals: &[u64],
        at: usize,
        ts_mask: __m256i,
        now: __m256i,
        range: __m256i,
        lo_m1: __m256i,
        hi: __m256i,
        recent: __m256i,
        out: &mut StampMasks,
    ) {
        // SAFETY (caller): `at + 4 <= vals.len()`, so the load reads
        // four in-bounds `u64`s; alignment is irrelevant for `loadu`.
        let v = _mm256_loadu_si256(vals.as_ptr().add(at).cast());
        let ts = _mm256_and_si256(v, ts_mask);
        let empty = _mm256_cmpeq_epi64(ts, ts_mask);
        let occupied = movemask4(_mm256_andnot_si256(empty, _mm256_set1_epi64x(-1)));
        // age = now - ts, plus one period when the stamp is "ahead" of
        // the clock (ts > now). The wrapping u64 subtraction plus the
        // masked add reproduces `stamp_age` exactly for every operand
        // the dispatcher admits (all < 2^62, so signed cmpgt == u64
        // ordering).
        let ahead = _mm256_cmpgt_epi64(ts, now);
        let age = _mm256_add_epi64(_mm256_sub_epi64(now, ts), _mm256_and_si256(ahead, range));
        let ge_lo = _mm256_cmpgt_epi64(age, lo_m1);
        let gt_hi = _mm256_cmpgt_epi64(age, hi);
        let in_win = movemask4(ge_lo) & !movemask4(gt_hi);
        let active = occupied & in_win;
        let gt_recent = movemask4(_mm256_cmpgt_epi64(age, recent));
        out.occupied |= occupied << at;
        out.active |= active << at;
        out.recent |= (active & !gt_recent) << at;
    }

    /// AVX2 body of [`super::classify_stamps`]: 4-lane blocks plus a
    /// scalar tail, bit-identical to the scalar body by construction.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn classify_stamps(
        vals: &[u64],
        ts_mask: u64,
        now: u64,
        range: u64,
        lo: u64,
        hi: u64,
        recent_within: u64,
    ) -> StampMasks {
        let mask_v = _mm256_set1_epi64x(ts_mask as i64);
        let now_v = _mm256_set1_epi64x(now as i64);
        let range_v = _mm256_set1_epi64x(range as i64);
        // `lo` is 0 or 1; `age >= lo` as signed `age > lo - 1` is exact
        // (age >= 0 always, and -1 compares below every age).
        let lo_m1 = _mm256_set1_epi64x(lo as i64 - 1);
        let hi_v = _mm256_set1_epi64x(hi as i64);
        let recent_v = _mm256_set1_epi64x(recent_within as i64);
        let mut out = StampMasks {
            occupied: 0,
            active: 0,
            recent: 0,
        };
        let full = vals.len() - vals.len() % 4;
        let mut at = 0;
        while at < full {
            classify4(
                vals, at, mask_v, now_v, range_v, lo_m1, hi_v, recent_v, &mut out,
            );
            at += 4;
        }
        if at < vals.len() {
            let tail = super::classify_stamps_scalar(
                &vals[at..],
                ts_mask,
                now,
                range,
                lo,
                hi,
                recent_within,
            );
            out.occupied |= tail.occupied << at;
            out.active |= tail.active << at;
            out.recent |= tail.recent << at;
        }
        out
    }

    /// AVX2 body of [`super::eq_shifted_mask`].
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn eq_shifted_mask(vals: &[u64], shift: u32, target: u64) -> u32 {
        let count = _mm_cvtsi64_si128(shift as i64);
        let target_v = _mm256_set1_epi64x(target as i64);
        let mut m = 0u32;
        let full = vals.len() - vals.len() % 4;
        let mut at = 0;
        while at < full {
            // SAFETY: `at + 4 <= vals.len()` by the loop bound.
            let v = _mm256_loadu_si256(vals.as_ptr().add(at).cast());
            let eq = _mm256_cmpeq_epi64(_mm256_srl_epi64(v, count), target_v);
            m |= movemask4(eq) << at;
            at += 4;
        }
        for (i, &v) in vals[at..].iter().enumerate() {
            if (v >> shift) == target {
                m |= 1 << (at + i);
            }
        }
        m
    }

    /// AVX2 body of [`super::gather4`]. Caller bounds-checks `idx`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gather4(base: *const u64, idx: [usize; 4]) -> [u64; 4] {
        let idx_v = _mm256_setr_epi64x(idx[0] as i64, idx[1] as i64, idx[2] as i64, idx[3] as i64);
        // SAFETY (caller): every `idx[i] < len(base)`, so each gathered
        // address `base + idx[i] * 8` reads one in-bounds `u64`.
        let v = _mm256_i64gather_epi64::<8>(base.cast(), idx_v);
        let mut out = [0u64; 4];
        _mm256_storeu_si256(out.as_mut_ptr().cast(), v);
        out
    }

    /// AVX2 body of [`super::and_words`]. Caller length-checks slices.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn and_words(acc: &mut [u64], src: &[u64]) {
        let full = acc.len() - acc.len() % 4;
        let mut at = 0;
        while at < full {
            // SAFETY: `at + 4 <= acc.len() == src.len()` by the loop
            // bound and the caller's length check.
            let a = _mm256_loadu_si256(acc.as_ptr().add(at).cast());
            let s = _mm256_loadu_si256(src.as_ptr().add(at).cast());
            _mm256_storeu_si256(acc.as_mut_ptr().add(at).cast(), _mm256_and_si256(a, s));
            at += 4;
        }
        for (a, &s) in acc[at..].iter_mut().zip(&src[at..]) {
            *a &= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `f` under both dispatch settings and asserts it returns the
    /// same value; restores the override afterwards.
    fn both_paths<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) -> T {
        set_scalar_override(Some(true));
        let scalar = f();
        set_scalar_override(Some(false));
        let wide = f();
        set_scalar_override(None);
        assert_eq!(scalar, wide, "scalar and wide kernels disagree");
        scalar
    }

    #[test]
    fn active_lanes_honors_override() {
        set_scalar_override(Some(true));
        assert_eq!(active_lanes(), 1);
        assert!(!wide_enabled());
        set_scalar_override(None);
    }

    #[test]
    fn classify_matches_reference_model() {
        let range = 1023u64;
        let ts_mask = 2047u64;
        let hi = 511u64;
        let vals: Vec<u64> = (0..13)
            .map(|i| match i % 4 {
                0 => ts_mask,                    // empty
                1 => (i as u64 * 97) % range,    // somewhere on the clock
                2 => 700,                        // fixed stamp
                _ => range - 1 - (i as u64 % 3), // near the top of the clock
            })
            .collect();
        for now in [0u64, 1, 500, 700, 702, 1022] {
            let got = both_paths(|| classify_stamps(&vals, ts_mask, now, range, 1, hi, 7));
            for (i, &v) in vals.iter().enumerate() {
                let ts = v & ts_mask;
                let occupied = ts != ts_mask;
                let age = stamp_age(now, range, ts);
                let active = occupied && (1..=hi).contains(&age);
                let recent = active && age <= 7;
                assert_eq!(
                    got.occupied >> i & 1 == 1,
                    occupied,
                    "occ lane {i} now {now}"
                );
                assert_eq!(got.active >> i & 1 == 1, active, "act lane {i} now {now}");
                assert_eq!(got.recent >> i & 1 == 1, recent, "rec lane {i} now {now}");
            }
        }
    }

    #[test]
    fn classify_lo_zero_counts_age_zero_as_active() {
        // The timed-window sweep predicate: active = age in [0, hi].
        let got = both_paths(|| classify_stamps(&[5, 6, 7, 8], 63, 5, 32, 0, 2, 0));
        assert_eq!(got.occupied, 0b1111);
        // ages from now=5: 0, 31, 30, 29 -> only lane 0 is in [0, 2].
        assert_eq!(got.active, 0b0001);
        assert_eq!(got.recent, 0b0001);
    }

    #[test]
    fn eq_shifted_matches_reference() {
        let vals: Vec<u64> = (0..9).map(|i| (i as u64) << 10 | 3).collect();
        let got = both_paths(|| eq_shifted_mask(&vals, 10, 4));
        assert_eq!(got, 1 << 4);
        let all = both_paths(|| eq_shifted_mask(&vals, 63, 0));
        assert_eq!(all, (1 << 9) - 1);
    }

    #[test]
    fn gather4_reads_the_right_words() {
        let base: Vec<u64> = (0..100).map(|i| i * i).collect();
        let got = both_paths(|| gather4(&base, [0, 99, 42, 7]));
        assert_eq!(got, [0, 99 * 99, 42 * 42, 7 * 7]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather4_out_of_bounds_panics() {
        let base = vec![0u64; 4];
        let _ = gather4(&base, [0, 1, 2, 4]);
    }

    #[test]
    fn and_words_matches_reference() {
        let src: Vec<u64> = (0..11).map(|i| 0xF0F0_F0F0_F0F0_F0F0 ^ i).collect();
        let got = both_paths(|| {
            let mut acc: Vec<u64> = (0..11).map(|i| 0xFF00_FF00_FF00_FF00 | i).collect();
            and_words(&mut acc, &src);
            acc
        });
        for (i, &g) in got.iter().enumerate() {
            assert_eq!(
                g,
                (0xFF00_FF00_FF00_FF00u64 | i as u64) & (0xF0F0_F0F0_F0F0_F0F0u64 ^ i as u64)
            );
        }
    }
}
