//! Word-math helpers shared by the bit containers.

/// Bits per storage word.
pub const WORD_BITS: usize = u64::BITS as usize;

/// Number of `u64` words needed to store `bits` bits.
///
/// ```rust
/// use cfd_bits::words::words_for_bits;
/// assert_eq!(words_for_bits(0), 0);
/// assert_eq!(words_for_bits(1), 1);
/// assert_eq!(words_for_bits(64), 1);
/// assert_eq!(words_for_bits(65), 2);
/// ```
#[inline]
#[must_use]
pub const fn words_for_bits(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

/// Splits a bit index into `(word, bit-in-word)`.
#[inline]
#[must_use]
pub const fn split_index(bit: usize) -> (usize, u32) {
    (bit / WORD_BITS, (bit % WORD_BITS) as u32)
}

/// A mask with the low `n` bits set (`n <= 64`).
///
/// # Panics
///
/// Panics in debug builds if `n > 64`.
#[inline]
#[must_use]
pub const fn low_mask(n: u32) -> u64 {
    debug_assert!(n <= 64);
    if n == 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Number of bits required to represent every value in `0..=max_value`.
///
/// ```rust
/// use cfd_bits::words::bits_for_value;
/// assert_eq!(bits_for_value(0), 1);
/// assert_eq!(bits_for_value(1), 1);
/// assert_eq!(bits_for_value(2), 2);
/// assert_eq!(bits_for_value(255), 8);
/// assert_eq!(bits_for_value(256), 9);
/// ```
#[inline]
#[must_use]
pub const fn bits_for_value(max_value: u64) -> u32 {
    if max_value == 0 {
        1
    } else {
        64 - max_value.leading_zeros()
    }
}

/// Integer ceiling division.
#[inline]
#[must_use]
pub const fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// Hints the CPU to pull the cache line containing `word` into L1.
///
/// This is the batch-replay latency-hiding primitive: frontends that
/// know their probe words several elements ahead (`Tbf::observe_batch`
/// and friends) issue it early so the random reads land in cache. On
/// x86-64 it lowers to `prefetcht0`, which retires immediately without
/// waiting for the fill — unlike a discarded demand load, its reach is
/// not limited by the out-of-order window, so a software prefetch
/// distance of several elements actually materializes. Other
/// architectures fall back to a `black_box` read.
#[inline]
pub fn prefetch(word: &u64) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `prefetcht0` is an architectural hint: it performs no
    // memory access, cannot fault, and has no effect beyond cache
    // state. The reference guarantees the address is valid anyway.
    #[allow(unsafe_code)]
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(std::ptr::from_ref(word).cast::<i8>());
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        std::hint::black_box(*word);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_index_roundtrips() {
        for bit in [0usize, 1, 63, 64, 65, 127, 128, 1_000_003] {
            let (w, b) = split_index(bit);
            assert_eq!(w * WORD_BITS + b as usize, bit);
            assert!(b < 64);
        }
    }

    #[test]
    fn low_mask_edges() {
        assert_eq!(low_mask(0), 0);
        assert_eq!(low_mask(1), 1);
        assert_eq!(low_mask(63), u64::MAX >> 1);
        assert_eq!(low_mask(64), u64::MAX);
    }

    #[test]
    fn bits_for_value_covers_powers_of_two() {
        for b in 1..=63u32 {
            assert_eq!(bits_for_value((1u64 << b) - 1), b);
            assert_eq!(bits_for_value(1u64 << b), b + 1);
        }
    }
}
