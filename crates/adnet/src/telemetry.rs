//! Pipeline instrumentation: the metric bundle threaded through the
//! stages of [`crate::pipeline::run_sharded_pipeline_instrumented`].
//!
//! [`PipelineTelemetry`] registers every pipeline metric into a caller
//! supplied [`cfd_telemetry::Registry`] and hands the stages cheap,
//! lock-free handles:
//!
//! * **per-shard channel depth** — a [`Gauge`] incremented by ingest on
//!   send and decremented by the owning worker on receive, so a snapshot
//!   shows how many batches sit in each worker's bounded queue
//!   (backpressure made visible).
//! * **per-stage latency** — log2-bucketed [`Histogram`]s of per-batch
//!   wall time for the four stages: `hash` (key building), `probe`
//!   (detector [`observe_batch`](cfd_windows::DuplicateDetector::observe_batch)),
//!   `resequence` (heap traffic), and `billing` (ledger settlement).
//! * **resequencer stalls** — a [`Counter`] of judged batches that
//!   could not release a single click because the head-of-line sequence
//!   number was still missing, plus a high-water gauge of the pending
//!   heap.
//! * **detector health** — per-shard [`FloatGauge`]s (fill ratio,
//!   online FP estimate, duplicate rate, cleaning backlog, sweep
//!   position) fed by [`cfd_telemetry::DetectorStats::health`].
//!
//! Health is the one metric family that is *not* free: computing a fill
//! ratio scans the filter (`O(m)`). The workers therefore never compute
//! it spontaneously — a reporter thread calls
//! [`PipelineTelemetry::request_detector_health`], which raises one
//! [`AtomicBool`] per shard; each worker swaps its flag once per batch
//! and only pays the scan when the flag was up. The steady-state hot
//! path costs one relaxed atomic swap per *batch*, not per click.

use cfd_telemetry::Registry as MetricsRegistry;
use cfd_telemetry::{Counter, DetectorHealth, FloatGauge, Gauge, Histogram, TenantHealth};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Per-shard instrument handles (one set per detector worker).
struct ShardInstruments {
    /// Batches currently in this worker's bounded raw channel.
    queue_depth: Arc<Gauge>,
    /// Batches this worker has judged.
    batches: Arc<Counter>,
    /// Raised by the reporter; swapped down by the worker, which then
    /// publishes a fresh health sample into the gauges below.
    health_request: AtomicBool,
    /// Mean fill ratio over the detector's sub-windows/lanes.
    fill: Arc<FloatGauge>,
    /// Online false-positive estimate from current occupancy.
    fp_estimate: Arc<FloatGauge>,
    /// Duplicate verdicts / observed elements.
    duplicate_rate: Arc<FloatGauge>,
    /// GBF spare-lane cleaning backlog (0 when idle or not a GBF).
    clean_backlog: Arc<FloatGauge>,
    /// TBF incremental sweep position in [0, 1).
    sweep_position: Arc<FloatGauge>,
    /// Ring transport: ingest pushes onto this shard's raw ring that
    /// found it full and had to wait (0 on the channel transport).
    raw_full_waits: Arc<Counter>,
    /// Ring transport: worker pushes onto this shard's judged ring that
    /// found it full and had to wait (0 on the channel transport).
    judged_full_waits: Arc<Counter>,
    /// Multi-tenant slot-economy gauges (`arena.*`), registered lazily
    /// on the first [`TenantHealth`] sample so single-tenant runs never
    /// carry them.
    arena: OnceLock<ArenaInstruments>,
}

/// The `arena.shard{i}.*` gauge set, present only when the shard's
/// detector reports [`TenantHealth`] (i.e. is a tenant arena).
struct ArenaInstruments {
    slots: Arc<Gauge>,
    live_tenants: Arc<Gauge>,
    evictions: Arc<Gauge>,
    occupancy: Arc<FloatGauge>,
    bytes_per_tenant: Arc<FloatGauge>,
}

/// Lock-free instrument bundle for one pipeline run.
///
/// Construct with [`PipelineTelemetry::new`], wrap in an [`Arc`], and
/// pass to `run_pipeline_instrumented` / `run_sharded_pipeline_instrumented`.
/// All metrics live in the [`cfd_telemetry::Registry`] given at
/// construction, so a [`cfd_telemetry::Reporter`] polling that registry
/// sees them alongside any caller-registered metrics.
pub struct PipelineTelemetry {
    registry: Arc<MetricsRegistry>,
    ingest_clicks: Arc<Counter>,
    stage_hash_ns: Arc<Histogram>,
    stage_probe_ns: Arc<Histogram>,
    stage_resequence_ns: Arc<Histogram>,
    stage_billing_ns: Arc<Histogram>,
    reseq_stalls: Arc<Counter>,
    pending_peak: Arc<Gauge>,
    reseq_empty_polls: Arc<Counter>,
    pool_raw_misses: Arc<Counter>,
    pool_judged_misses: Arc<Counter>,
    shards: Vec<ShardInstruments>,
}

impl std::fmt::Debug for PipelineTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineTelemetry")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl PipelineTelemetry {
    /// Registers the full pipeline metric set (for `shard_count`
    /// workers) into `registry`.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero or if any of the metric names is
    /// already taken in `registry` (register one bundle per run).
    #[must_use]
    pub fn new(registry: &Arc<MetricsRegistry>, shard_count: usize) -> Self {
        assert!(shard_count > 0, "telemetry needs at least one shard");
        let shards = (0..shard_count)
            .map(|i| ShardInstruments {
                queue_depth: registry.gauge(
                    &format!("pipeline.shard{i}.queue_depth"),
                    "batches",
                    "batches waiting in this worker's bounded channel",
                ),
                batches: registry.counter(
                    &format!("pipeline.shard{i}.batches"),
                    "batches",
                    "batches judged by this worker",
                ),
                health_request: AtomicBool::new(false),
                fill: registry.float_gauge(
                    &format!("pipeline.shard{i}.fill"),
                    "ratio",
                    "mean detector fill ratio over active sub-windows",
                ),
                fp_estimate: registry.float_gauge(
                    &format!("pipeline.shard{i}.fp_estimate"),
                    "prob",
                    "online false-positive estimate from occupancy",
                ),
                duplicate_rate: registry.float_gauge(
                    &format!("pipeline.shard{i}.duplicate_rate"),
                    "ratio",
                    "duplicate verdicts / observed clicks",
                ),
                clean_backlog: registry.float_gauge(
                    &format!("pipeline.shard{i}.clean_backlog"),
                    "ratio",
                    "GBF spare-lane cleaning backlog (unswept fraction)",
                ),
                sweep_position: registry.float_gauge(
                    &format!("pipeline.shard{i}.sweep_pos"),
                    "ratio",
                    "TBF incremental sweep position",
                ),
                raw_full_waits: registry.counter(
                    &format!("pipeline.shard{i}.raw_full_waits"),
                    "waits",
                    "ingest pushes that found this shard's raw ring full",
                ),
                judged_full_waits: registry.counter(
                    &format!("pipeline.shard{i}.judged_full_waits"),
                    "waits",
                    "worker pushes that found this shard's judged ring full",
                ),
                arena: OnceLock::new(),
            })
            .collect();
        let telemetry = Self {
            registry: Arc::clone(registry),
            ingest_clicks: registry.counter(
                "pipeline.ingest.clicks",
                "clicks",
                "clicks routed to shard workers",
            ),
            stage_hash_ns: registry.histogram(
                "pipeline.stage.hash_ns",
                "ns",
                "per-batch click-key building latency",
            ),
            stage_probe_ns: registry.histogram(
                "pipeline.stage.probe_ns",
                "ns",
                "per-batch detector observe_batch latency",
            ),
            stage_resequence_ns: registry.histogram(
                "pipeline.stage.resequence_ns",
                "ns",
                "per-batch resequencer heap latency",
            ),
            stage_billing_ns: registry.histogram(
                "pipeline.stage.billing_ns",
                "ns",
                "per-batch billing settlement latency",
            ),
            reseq_stalls: registry.counter(
                "pipeline.reseq.stalls",
                "batches",
                "judged batches that released no click (head-of-line gap)",
            ),
            pending_peak: registry.gauge(
                "pipeline.reseq.pending_peak",
                "clicks",
                "high-water mark of the resequencer heap",
            ),
            reseq_empty_polls: registry.counter(
                "pipeline.reseq.empty_polls",
                "polls",
                "billing sweeps over the judged rings that found nothing",
            ),
            pool_raw_misses: registry.counter(
                "pipeline.pool.raw_misses",
                "allocs",
                "raw-batch pool gets that had to allocate a fresh buffer",
            ),
            pool_judged_misses: registry.counter(
                "pipeline.pool.judged_misses",
                "allocs",
                "judged-batch pool gets that had to allocate a fresh buffer",
            ),
            shards,
        };
        // Snapshot of the probe-kernel dispatch at construction: 8 when
        // the AVX2 wide path is active, 1 when scalar is forced
        // (`CFD_FORCE_SCALAR`) or unavailable. A dashboard comparing two
        // deployments' throughput reads this first.
        telemetry
            .registry
            .gauge(
                "pipeline.simd_lanes",
                "lanes",
                "probe-kernel SIMD lane width (1 = scalar dispatch)",
            )
            .set(cfd_core::simd::active_lanes() as i64);
        telemetry
    }

    /// The registry all instruments were registered into.
    #[must_use]
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Number of shard workers this bundle was sized for.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Asks every shard worker to publish a fresh detector-health
    /// sample at its next batch boundary.
    ///
    /// Call this from a reporter tick (see
    /// [`cfd_telemetry::Reporter::spawn`]'s `on_tick` hook) right
    /// before taking a snapshot: health scans are `O(m)` so the workers
    /// only pay for them on request.
    pub fn request_detector_health(&self) {
        for shard in &self.shards {
            shard.health_request.store(true, Ordering::Relaxed);
        }
    }

    /// Publishes a health sample into shard `idx`'s gauges.
    ///
    /// Also used by the pipeline for the final unconditional sample at
    /// worker shutdown, so even a metrics-off-until-the-end run reports
    /// terminal detector state.
    pub fn publish_health(&self, idx: usize, health: &DetectorHealth) {
        let s = &self.shards[idx];
        s.fill.set(health.mean_fill());
        s.fp_estimate.set(health.estimated_fp);
        s.duplicate_rate.set(health.duplicate_rate());
        s.clean_backlog.set(health.cleaning_backlog);
        s.sweep_position.set(health.sweep_position);
    }

    /// Publishes a multi-tenant slot-economy sample into shard `idx`'s
    /// `arena.*` gauges, registering them on first use — so the gauge
    /// family only exists for runs whose detector actually is a tenant
    /// arena.
    pub fn publish_tenant_health(&self, idx: usize, tenant: &TenantHealth) {
        let a = self.shards[idx].arena.get_or_init(|| ArenaInstruments {
            slots: self.registry.gauge(
                &format!("arena.shard{idx}.slots"),
                "slots",
                "tenant slots allocated (live + free)",
            ),
            live_tenants: self.registry.gauge(
                &format!("arena.shard{idx}.live_tenants"),
                "tenants",
                "tenants currently materialized in the slab",
            ),
            evictions: self.registry.gauge(
                &format!("arena.shard{idx}.evictions"),
                "tenants",
                "tenants decayed by idle eviction since start",
            ),
            occupancy: self.registry.float_gauge(
                &format!("arena.shard{idx}.occupancy"),
                "ratio",
                "live tenants / allocated slots",
            ),
            bytes_per_tenant: self.registry.float_gauge(
                &format!("arena.shard{idx}.bytes_per_tenant"),
                "bytes",
                "amortized slab bytes per live tenant",
            ),
        });
        a.slots.set(tenant.slots as i64);
        a.live_tenants.set(tenant.live_tenants as i64);
        a.evictions
            .set(i64::try_from(tenant.evictions).unwrap_or(i64::MAX));
        a.occupancy.set(tenant.occupancy);
        a.bytes_per_tenant.set(tenant.bytes_per_live_tenant);
    }

    /// Consumes shard `idx`'s health-request flag (true at most once
    /// per [`request_detector_health`](Self::request_detector_health)).
    pub(crate) fn take_health_request(&self, idx: usize) -> bool {
        self.shards[idx]
            .health_request
            .swap(false, Ordering::Relaxed)
    }

    pub(crate) fn ingest_clicks(&self) -> &Counter {
        &self.ingest_clicks
    }

    pub(crate) fn shard_queue_depth(&self, idx: usize) -> &Gauge {
        &self.shards[idx].queue_depth
    }

    pub(crate) fn shard_batches(&self, idx: usize) -> &Counter {
        &self.shards[idx].batches
    }

    pub(crate) fn stage_hash_ns(&self) -> &Histogram {
        &self.stage_hash_ns
    }

    pub(crate) fn stage_probe_ns(&self) -> &Histogram {
        &self.stage_probe_ns
    }

    pub(crate) fn stage_resequence_ns(&self) -> &Histogram {
        &self.stage_resequence_ns
    }

    pub(crate) fn stage_billing_ns(&self) -> &Histogram {
        &self.stage_billing_ns
    }

    pub(crate) fn reseq_stalls(&self) -> &Counter {
        &self.reseq_stalls
    }

    pub(crate) fn pending_peak(&self) -> &Gauge {
        &self.pending_peak
    }

    pub(crate) fn reseq_empty_polls(&self) -> &Counter {
        &self.reseq_empty_polls
    }

    pub(crate) fn pool_raw_misses(&self) -> &Counter {
        &self.pool_raw_misses
    }

    pub(crate) fn pool_judged_misses(&self) -> &Counter {
        &self.pool_judged_misses
    }

    pub(crate) fn shard_raw_full_waits(&self, idx: usize) -> &Counter {
        &self.shards[idx].raw_full_waits
    }

    pub(crate) fn shard_judged_full_waits(&self, idx: usize) -> &Counter {
        &self.shards[idx].judged_full_waits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_full_metric_set() {
        let registry = Arc::new(MetricsRegistry::new());
        let t = PipelineTelemetry::new(&registry, 3);
        assert_eq!(t.shard_count(), 3);
        let snap = registry.snapshot();
        // 11 global metrics + 9 per shard.
        assert_eq!(snap.entries.len(), 11 + 3 * 9);
        assert!(snap.get_counter("pipeline.ingest.clicks").is_some());
        let lanes = snap.get_gauge("pipeline.simd_lanes");
        assert!(
            lanes == Some(1) || lanes == Some(cfd_core::simd::LANES_WIDE as i64),
            "simd_lanes gauge must report the dispatch width, got {lanes:?}"
        );
        assert!(snap.get_histogram("pipeline.stage.probe_ns").is_some());
        assert!(snap.get_counter("pipeline.shard2.batches").is_some());
        assert!(snap.get_counter("pipeline.shard2.raw_full_waits").is_some());
        assert!(snap.get_counter("pipeline.pool.raw_misses").is_some());
        assert!(snap.get_counter("pipeline.reseq.empty_polls").is_some());
    }

    #[test]
    fn arena_gauges_register_lazily_and_update() {
        let registry = Arc::new(MetricsRegistry::new());
        let t = PipelineTelemetry::new(&registry, 2);
        let before = registry.snapshot().entries.len();
        let sample = TenantHealth {
            slots: 64,
            live_tenants: 48,
            evictions: 3,
            occupancy: 0.75,
            bytes_per_live_tenant: 256.0,
        };
        t.publish_tenant_health(1, &sample);
        let snap = registry.snapshot();
        // Only shard 1 grew the five arena.* gauges; shard 0 stays bare.
        assert_eq!(snap.entries.len(), before + 5);
        assert_eq!(snap.get_gauge("arena.shard1.slots"), Some(64));
        assert_eq!(snap.get_gauge("arena.shard1.live_tenants"), Some(48));
        assert_eq!(snap.get_gauge("arena.shard1.evictions"), Some(3));
        assert!(snap.get_gauge("arena.shard0.slots").is_none());
        // Re-publishing updates in place, no re-registration.
        t.publish_tenant_health(
            1,
            &TenantHealth {
                live_tenants: 50,
                ..sample
            },
        );
        let snap = registry.snapshot();
        assert_eq!(snap.entries.len(), before + 5);
        assert_eq!(snap.get_gauge("arena.shard1.live_tenants"), Some(50));
    }

    #[test]
    fn health_requests_are_consumed_once() {
        let registry = Arc::new(MetricsRegistry::new());
        let t = PipelineTelemetry::new(&registry, 2);
        assert!(!t.take_health_request(0));
        t.request_detector_health();
        assert!(t.take_health_request(0));
        assert!(!t.take_health_request(0), "swap must consume the flag");
        assert!(t.take_health_request(1), "each shard has its own flag");
    }

    #[test]
    fn publish_health_lands_in_gauges() {
        let registry = Arc::new(MetricsRegistry::new());
        let t = PipelineTelemetry::new(&registry, 1);
        let h = DetectorHealth {
            detector: "tbf",
            fill_ratios: vec![0.25, 0.75],
            cleaning_backlog: 0.0,
            sweep_position: 0.0,
            cleaned_entries: 0,
            observed_elements: 100,
            observed_duplicates: 10,
            estimated_fp: 0.01,
        };
        t.publish_health(0, &h);
        let snap = registry.snapshot();
        let get = |name: &str| {
            snap.entries
                .iter()
                .find(|e| e.name == name)
                .map(|e| match e.value {
                    cfd_telemetry::MetricValue::Float(f) => f,
                    _ => panic!("expected float gauge"),
                })
                .expect("metric registered")
        };
        assert!((get("pipeline.shard0.fill") - 0.5).abs() < 1e-12);
        assert!((get("pipeline.shard0.fp_estimate") - 0.01).abs() < 1e-12);
        assert!((get("pipeline.shard0.duplicate_rate") - 0.1).abs() < 1e-12);
    }
}
