//! Publisher-level fraud scoring.
//!
//! The paper's future work (§6) points at "various sophisticated click
//! fraud attacks" and its related work (§2.4, Metwally et al. \[20\]) at
//! *coalitions* of publishers laundering shared identities through each
//! other. Duplicate detection gives a per-click signal; this module
//! aggregates it per publisher: a publisher whose blocked-duplicate rate
//! is far above the network norm is either extraordinarily unlucky or
//! inflating its clicks.
//!
//! Scoring: a one-sided binomial z-test of each publisher's blocked rate
//! against the pooled rate of all *other* publishers, so a large
//! coalition cannot hide by dragging the global mean up.

use cfd_stream::{Click, PublisherId};
use cfd_windows::Verdict;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-publisher fraud score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PublisherScore {
    /// The publisher.
    pub publisher: PublisherId,
    /// Clicks routed through this publisher.
    pub clicks: u64,
    /// Clicks blocked as duplicates.
    pub blocked: u64,
    /// Blocked rate.
    pub rate: f64,
    /// One-sided z-score of the rate against the rest of the network.
    pub z_score: f64,
}

impl PublisherScore {
    /// `true` when the score exceeds `threshold` standard deviations
    /// (3.0 is a reasonable default at these volumes).
    #[must_use]
    pub fn is_suspicious(&self, threshold: f64) -> bool {
        self.z_score >= threshold
    }
}

/// Streaming per-publisher duplicate tallies.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FraudScorer {
    per_publisher: HashMap<u32, (u64, u64)>, // clicks, blocked
}

impl FraudScorer {
    /// Creates an empty scorer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one click and its duplicate verdict.
    pub fn record(&mut self, click: &Click, verdict: Verdict) {
        let entry = self
            .per_publisher
            .entry(click.publisher.0)
            .or_insert((0, 0));
        entry.0 += 1;
        if verdict == Verdict::Duplicate {
            entry.1 += 1;
        }
    }

    /// Folds another scorer's tallies into this one.
    ///
    /// The sharded pipeline gives each detector worker its own scorer
    /// (no shared state on the hot path) and merges them at join time;
    /// merging is exact because the tallies are plain sums.
    pub fn merge(&mut self, other: FraudScorer) {
        for (publisher, (clicks, blocked)) in other.per_publisher {
            let entry = self.per_publisher.entry(publisher).or_insert((0, 0));
            entry.0 += clicks;
            entry.1 += blocked;
        }
    }

    /// Iterates the raw `(publisher, clicks, blocked)` tallies in
    /// unspecified order — the serve checkpoint writer sorts them
    /// itself for a deterministic encoding.
    pub fn tallies(&self) -> impl Iterator<Item = (u32, u64, u64)> + '_ {
        self.per_publisher
            .iter()
            .map(|(&p, &(clicks, blocked))| (p, clicks, blocked))
    }

    /// Sets one publisher's raw tally, replacing any previous value
    /// (checkpoint restore).
    pub fn set_tally(&mut self, publisher: u32, clicks: u64, blocked: u64) {
        self.per_publisher.insert(publisher, (clicks, blocked));
    }

    /// Total clicks recorded.
    #[must_use]
    pub fn total_clicks(&self) -> u64 {
        self.per_publisher.values().map(|&(c, _)| c).sum()
    }

    /// Computes the per-publisher scores, highest z first.
    ///
    /// Publishers with fewer than `min_clicks` are skipped (a z-test on
    /// ten clicks means nothing).
    #[must_use]
    pub fn scores(&self, min_clicks: u64) -> Vec<PublisherScore> {
        let total: u64 = self.total_clicks();
        let total_blocked: u64 = self.per_publisher.values().map(|&(_, b)| b).sum();
        let mut out = Vec::new();
        for (&publisher, &(clicks, blocked)) in &self.per_publisher {
            if clicks < min_clicks {
                continue;
            }
            // Pooled rate of everyone else.
            let rest_clicks = total - clicks;
            let rest_blocked = total_blocked - blocked;
            let p0 = if rest_clicks == 0 {
                0.0
            } else {
                rest_blocked as f64 / rest_clicks as f64
            };
            let rate = blocked as f64 / clicks as f64;
            let se = (p0 * (1.0 - p0) / clicks as f64).sqrt();
            let z_score = if se > 0.0 {
                (rate - p0) / se
            } else if rate > p0 {
                f64::INFINITY
            } else {
                0.0
            };
            out.push(PublisherScore {
                publisher: PublisherId(publisher),
                clicks,
                blocked,
                rate,
                z_score,
            });
        }
        out.sort_by(|a, b| b.z_score.total_cmp(&a.z_score));
        out
    }

    /// Publishers exceeding `threshold` standard deviations.
    #[must_use]
    pub fn suspicious(&self, min_clicks: u64, threshold: f64) -> Vec<PublisherScore> {
        self.scores(min_clicks)
            .into_iter()
            .filter(|s| s.is_suspicious(threshold))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_core::{Tbf, TbfConfig};
    use cfd_stream::{CoalitionConfig, CoalitionStream};
    use cfd_windows::DuplicateDetector;

    #[test]
    fn coalition_members_score_high_honest_score_low() {
        let cfg = CoalitionConfig::default();
        let members: Vec<u32> = cfg.members.iter().map(|p| p.0).collect();
        let honest: Vec<u32> = cfg.honest.iter().map(|p| p.0).collect();
        let stream = CoalitionStream::new(cfg);

        let window = 8_192;
        let mut detector = Tbf::new(
            TbfConfig::builder(window)
                .entries(window * 14)
                .build()
                .expect("cfg"),
        )
        .expect("detector");
        let mut scorer = FraudScorer::new();
        for cc in stream.take(200_000) {
            let v = detector.observe(&cc.click.key());
            scorer.record(&cc.click, v);
        }

        let flagged = scorer.suspicious(1_000, 3.0);
        let flagged_ids: Vec<u32> = flagged.iter().map(|s| s.publisher.0).collect();
        for m in &members {
            assert!(flagged_ids.contains(m), "coalition member {m} not flagged");
        }
        for h in &honest {
            assert!(
                !flagged_ids.contains(h),
                "honest publisher {h} falsely flagged"
            );
        }
    }

    #[test]
    fn scores_are_sorted_and_rated() {
        let mut s = FraudScorer::new();
        use cfd_stream::{AdId, ClickId};
        let mk = |p: u32| Click::new(ClickId::new(1, 2, AdId(3)), 0, PublisherId(p), 1);
        for _ in 0..100 {
            s.record(&mk(1), Verdict::Distinct);
            s.record(&mk(2), Verdict::Duplicate);
        }
        let scores = s.scores(10);
        assert_eq!(scores.len(), 2);
        assert_eq!(scores[0].publisher, PublisherId(2));
        assert!(scores[0].rate > 0.99);
        assert!(scores[0].z_score > scores[1].z_score);
        assert_eq!(s.total_clicks(), 200);
    }

    #[test]
    fn merged_scorers_equal_one_scorer_over_the_whole_stream() {
        use cfd_stream::{AdId, ClickId};
        let mk = |p: u32, ip: u32| Click::new(ClickId::new(ip, 2, AdId(3)), 0, PublisherId(p), 1);
        let mut whole = FraudScorer::new();
        let mut left = FraudScorer::new();
        let mut right = FraudScorer::new();
        for i in 0..500u32 {
            let c = mk(i % 7, i);
            let v = if i % 3 == 0 {
                Verdict::Duplicate
            } else {
                Verdict::Distinct
            };
            whole.record(&c, v);
            if i % 2 == 0 { &mut left } else { &mut right }.record(&c, v);
        }
        let mut merged = FraudScorer::new();
        merged.merge(left);
        merged.merge(right);
        assert_eq!(merged.total_clicks(), whole.total_clicks());
        let by_publisher = |mut v: Vec<PublisherScore>| {
            v.sort_by_key(|s| s.publisher.0);
            v
        };
        assert_eq!(
            by_publisher(merged.scores(1)),
            by_publisher(whole.scores(1))
        );
    }

    #[test]
    fn min_clicks_filters_noise() {
        let mut s = FraudScorer::new();
        use cfd_stream::{AdId, ClickId};
        let c = Click::new(ClickId::new(1, 2, AdId(3)), 0, PublisherId(9), 1);
        s.record(&c, Verdict::Duplicate);
        assert!(s.scores(10).is_empty());
        assert_eq!(s.scores(1).len(), 1);
    }
}
