//! The ad-network orchestrator.

use crate::billing::{BillingEngine, ClickOutcome};
use crate::entities::Registry;
use crate::report::NetworkReport;
use cfd_stream::Click;
use cfd_windows::DuplicateDetector;

/// A pay-per-click network: registry + detector-guarded billing.
///
/// ```rust
/// use cfd_adnet::{AdNetwork, Advertiser, AdvertiserId, Campaign};
/// use cfd_stream::{AdId, Click, ClickId, PublisherId};
/// use cfd_windows::ExactSlidingDedup;
///
/// let mut net = AdNetwork::new(ExactSlidingDedup::new(1000));
/// net.registry_mut().add_advertiser(Advertiser::new(AdvertiserId(1), "acme", 10_000));
/// net.registry_mut()
///     .add_campaign(Campaign { ad: AdId(1), advertiser: AdvertiserId(1), cpc_micros: 100 })
///     .expect("advertiser exists");
///
/// let click = Click::new(ClickId::new(7, 7, AdId(1)), 0, PublisherId(1), 100);
/// assert!(net.process(&click).is_charged());
/// assert!(!net.process(&click).is_charged()); // duplicate blocked
/// ```
#[derive(Debug)]
pub struct AdNetwork<D> {
    registry: Registry,
    billing: BillingEngine<D>,
    savings_micros: u64,
}

impl<D: DuplicateDetector> AdNetwork<D> {
    /// Creates a network guarded by `detector`.
    #[must_use]
    pub fn new(detector: D) -> Self {
        Self {
            registry: Registry::new(),
            billing: BillingEngine::new(detector),
            savings_micros: 0,
        }
    }

    /// Mutable registry access for setup.
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Immutable registry access.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Processes one click through detection and billing.
    pub fn process(&mut self, click: &Click) -> ClickOutcome {
        let outcome = self.billing.process(click, &mut self.registry);
        if outcome == ClickOutcome::DuplicateBlocked {
            if let Some(c) = self.registry.campaign(click.id.ad) {
                self.savings_micros += c.cpc_micros;
            }
        }
        outcome
    }

    /// Processes a whole stream, returning the final report.
    pub fn run<'a, I>(&mut self, clicks: I) -> NetworkReport
    where
        I: IntoIterator<Item = &'a Click>,
    {
        for c in clicks {
            self.process(c);
        }
        self.report()
    }

    /// Snapshot report of the run so far.
    #[must_use]
    pub fn report(&self) -> NetworkReport {
        NetworkReport::from_ledger(
            self.billing.detector().name(),
            self.billing.detector().memory_bits(),
            self.billing.ledger(),
            self.savings_micros,
        )
    }

    /// The detector (for op-counter inspection).
    #[must_use]
    pub fn detector(&self) -> &D {
        self.billing.detector()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::{Advertiser, AdvertiserId, Campaign};
    use cfd_core::{Tbf, TbfConfig};
    use cfd_stream::{AdId, BotnetConfig, BotnetStream};
    use cfd_windows::ExactSlidingDedup;

    fn register(net_reg: &mut Registry, ads: u32) {
        net_reg.add_advertiser(Advertiser::new(AdvertiserId(1), "acme", u64::MAX / 2));
        for ad in 0..ads {
            net_reg
                .add_campaign(Campaign {
                    ad: AdId(ad),
                    advertiser: AdvertiserId(1),
                    cpc_micros: 100,
                })
                .expect("advertiser exists");
        }
    }

    #[test]
    fn botnet_attack_is_mostly_blocked_with_tbf() {
        let cfg = TbfConfig::builder(4_096).entries(1 << 16).build().unwrap();
        let mut net = AdNetwork::new(Tbf::new(cfg).unwrap());
        register(net.registry_mut(), 64);

        let clicks: Vec<_> = BotnetStream::new(
            BotnetConfig {
                bots: 50,
                attack_fraction: 0.3,
                ..BotnetConfig::default()
            },
            8,
            64,
        )
        .take(20_000)
        .collect();
        let bot_clicks = clicks.iter().filter(|c| c.is_bot).count() as u64;
        let report = net.run(clicks.iter().map(|c| &c.click));

        // 50 bots x one valid click per window; everything else blocked.
        assert!(report.duplicates_blocked > bot_clicks * 9 / 10 - 100);
        assert!(report.savings_micros > 0);
        assert!(report.blocked_rate() > 0.25);
    }

    #[test]
    fn exact_and_tbf_agree_when_tbf_has_ample_memory() {
        let clicks: Vec<_> = BotnetStream::new(BotnetConfig::default(), 4, 16)
            .take(5_000)
            .map(|c| c.click)
            .collect();

        let cfg = TbfConfig::builder(2_048).entries(1 << 18).build().unwrap();
        let mut a = AdNetwork::new(Tbf::new(cfg).unwrap());
        register(a.registry_mut(), 64);
        let ra = a.run(clicks.iter());

        let mut b = AdNetwork::new(ExactSlidingDedup::new(2_048));
        register(b.registry_mut(), 64);
        let rb = b.run(clicks.iter());

        // Zero FN: TBF blocks at least everything exact blocks; with this
        // much memory the FP surplus is tiny.
        assert!(ra.duplicates_blocked >= rb.duplicates_blocked);
        assert!(ra.duplicates_blocked - rb.duplicates_blocked < 20);
    }

    #[test]
    fn report_reflects_detector_identity() {
        let mut net = AdNetwork::new(ExactSlidingDedup::new(10));
        register(net.registry_mut(), 1);
        let r = net.report();
        assert_eq!(r.detector, "exact-sliding");
        assert_eq!(r.clicks, 0);
    }
}
