//! Advertisers, campaigns, and the registry binding ads to both.

use cfd_stream::AdId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An advertiser account.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AdvertiserId(pub u32);

/// An advertiser with a spending budget.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Advertiser {
    /// Account id.
    pub id: AdvertiserId,
    /// Display name.
    pub name: String,
    /// Total budget in micro-currency units.
    pub budget_micros: u64,
    /// Amount spent so far.
    pub spent_micros: u64,
}

impl Advertiser {
    /// Creates an advertiser with a budget.
    #[must_use]
    pub fn new(id: AdvertiserId, name: impl Into<String>, budget_micros: u64) -> Self {
        Self {
            id,
            name: name.into(),
            budget_micros,
            spent_micros: 0,
        }
    }

    /// Remaining budget.
    #[must_use]
    pub fn remaining_micros(&self) -> u64 {
        self.budget_micros.saturating_sub(self.spent_micros)
    }

    /// Attempts to charge `amount`; returns `false` (and charges nothing)
    /// if the remaining budget is insufficient.
    pub fn try_charge(&mut self, amount: u64) -> bool {
        if self.remaining_micros() >= amount {
            self.spent_micros += amount;
            true
        } else {
            false
        }
    }

    /// Refunds `amount` (capped at the amount spent), returning the
    /// refunded value. Used by fraud-audit settlements (§1.1's
    /// "credit refund to advertisers who claim click fraud").
    pub fn refund(&mut self, amount: u64) -> u64 {
        let refunded = amount.min(self.spent_micros);
        self.spent_micros -= refunded;
        refunded
    }
}

/// A pay-per-click campaign: one ad link owned by one advertiser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Campaign {
    /// The ad link being bid on.
    pub ad: AdId,
    /// The advertiser paying for clicks.
    pub advertiser: AdvertiserId,
    /// Cost per (valid) click, micro-units.
    pub cpc_micros: u64,
}

/// The network's directory of advertisers and campaigns.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Registry {
    advertisers: HashMap<AdvertiserId, Advertiser>,
    campaigns: HashMap<AdId, Campaign>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an advertiser, replacing any previous entry.
    pub fn add_advertiser(&mut self, advertiser: Advertiser) {
        self.advertisers.insert(advertiser.id, advertiser);
    }

    /// Registers a campaign.
    ///
    /// # Errors
    ///
    /// Returns the campaign if its advertiser is unknown.
    pub fn add_campaign(&mut self, campaign: Campaign) -> Result<(), Campaign> {
        if !self.advertisers.contains_key(&campaign.advertiser) {
            return Err(campaign);
        }
        self.campaigns.insert(campaign.ad, campaign);
        Ok(())
    }

    /// Looks up the campaign for an ad link.
    #[must_use]
    pub fn campaign(&self, ad: AdId) -> Option<&Campaign> {
        self.campaigns.get(&ad)
    }

    /// Immutable advertiser access.
    #[must_use]
    pub fn advertiser(&self, id: AdvertiserId) -> Option<&Advertiser> {
        self.advertisers.get(&id)
    }

    /// Mutable advertiser access (budget charging).
    pub fn advertiser_mut(&mut self, id: AdvertiserId) -> Option<&mut Advertiser> {
        self.advertisers.get_mut(&id)
    }

    /// Number of registered advertisers.
    #[must_use]
    pub fn advertiser_count(&self) -> usize {
        self.advertisers.len()
    }

    /// Number of registered campaigns.
    #[must_use]
    pub fn campaign_count(&self) -> usize {
        self.campaigns.len()
    }

    /// Iterates advertisers in unspecified order.
    pub fn advertisers(&self) -> impl Iterator<Item = &Advertiser> {
        self.advertisers.values()
    }

    /// Iterates campaigns in unspecified order — the serve checkpoint
    /// writer sorts them itself for a deterministic encoding.
    pub fn campaigns(&self) -> impl Iterator<Item = &Campaign> {
        self.campaigns.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charging_respects_budget() {
        let mut a = Advertiser::new(AdvertiserId(1), "acme", 1_000);
        assert!(a.try_charge(600));
        assert!(!a.try_charge(600), "over-budget charge must fail");
        assert_eq!(a.remaining_micros(), 400);
        assert!(a.try_charge(400));
        assert_eq!(a.remaining_micros(), 0);
    }

    #[test]
    fn refund_caps_at_spent() {
        let mut a = Advertiser::new(AdvertiserId(1), "acme", 1_000);
        a.try_charge(300);
        assert_eq!(a.refund(500), 300);
        assert_eq!(a.spent_micros, 0);
    }

    #[test]
    fn campaign_requires_known_advertiser() {
        let mut r = Registry::new();
        let c = Campaign {
            ad: AdId(1),
            advertiser: AdvertiserId(9),
            cpc_micros: 100,
        };
        assert_eq!(r.add_campaign(c), Err(c));
        r.add_advertiser(Advertiser::new(AdvertiserId(9), "n", 10));
        assert!(r.add_campaign(c).is_ok());
        assert_eq!(r.campaign(AdId(1)), Some(&c));
        assert_eq!(r.campaign_count(), 1);
        assert_eq!(r.advertiser_count(), 1);
    }

    #[test]
    fn registry_lookup_misses_cleanly() {
        let r = Registry::new();
        assert!(r.campaign(AdId(5)).is_none());
        assert!(r.advertiser(AdvertiserId(5)).is_none());
    }
}
