//! The charging pipeline: detector verdict → billing outcome.

use crate::entities::Registry;
use cfd_stream::{Click, PublisherId};
use cfd_windows::{DuplicateDetector, Verdict};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What happened to one click in the billing pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClickOutcome {
    /// Valid click: the advertiser was charged `cpc_micros`.
    Charged {
        /// Amount charged, micro-units.
        cpc_micros: u64,
    },
    /// Flagged duplicate within the detection window: not charged
    /// (paper Definition 1).
    DuplicateBlocked,
    /// The advertiser's budget could not cover the click.
    BudgetExhausted,
    /// No campaign is registered for the clicked ad.
    UnknownAd,
}

impl ClickOutcome {
    /// `true` when the advertiser paid for this click.
    #[must_use]
    pub fn is_charged(&self) -> bool {
        matches!(self, ClickOutcome::Charged { .. })
    }
}

/// Per-publisher and global billing tallies.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Ledger {
    /// Clicks processed.
    pub clicks: u64,
    /// Clicks charged.
    pub charged: u64,
    /// Clicks blocked as duplicates.
    pub duplicates_blocked: u64,
    /// Clicks rejected for budget exhaustion.
    pub budget_rejections: u64,
    /// Clicks on unregistered ads.
    pub unknown_ads: u64,
    /// Total revenue (micro-units) credited to publishers.
    pub revenue_micros: u64,
    /// Revenue per publisher.
    pub per_publisher_micros: HashMap<u32, u64>,
}

impl Ledger {
    /// Revenue credited to one publisher.
    #[must_use]
    pub fn publisher_revenue(&self, p: PublisherId) -> u64 {
        self.per_publisher_micros.get(&p.0).copied().unwrap_or(0)
    }
}

/// Billing engine: detector + registry + ledger.
///
/// The detector is *pluggable* — exact oracle, GBF, TBF, or any other
/// [`DuplicateDetector`] — which is what the comparison benches exploit.
#[derive(Debug)]
pub struct BillingEngine<D> {
    detector: D,
    ledger: Ledger,
}

impl<D> BillingEngine<D> {
    /// Creates an engine around a detector.
    ///
    /// `detector` may be any type at all — engines that only ever settle
    /// precomputed verdicts via [`BillingEngine::process_judged`] (the
    /// pipeline's billing stage) pass `()`.
    #[must_use]
    pub fn new(detector: D) -> Self {
        Self {
            detector,
            ledger: Ledger::default(),
        }
    }

    /// Creates an engine that resumes from a carried ledger.
    ///
    /// The serve path runs the pipeline in checkpoint-delimited
    /// segments; each segment's billing stage picks up the ledger the
    /// previous segment (or a restored checkpoint) left off with, so
    /// the tallies across segments equal one continuous run.
    #[must_use]
    pub fn with_ledger(detector: D, ledger: Ledger) -> Self {
        Self { detector, ledger }
    }

    /// Settles one click whose fraud verdict was already computed
    /// elsewhere (e.g. by the pipeline's detector stage), charging
    /// budgets and crediting publisher revenue.
    ///
    /// The detector is *not* consulted: verdict computation and billing
    /// are decoupled so they can run on different threads.
    pub fn process_judged(
        &mut self,
        click: &Click,
        verdict: Verdict,
        registry: &mut Registry,
    ) -> ClickOutcome {
        self.ledger.clicks += 1;
        let Some(campaign) = registry.campaign(click.id.ad).copied() else {
            self.ledger.unknown_ads += 1;
            return ClickOutcome::UnknownAd;
        };
        self.settle(click, campaign, verdict, registry)
    }

    /// Shared billing tail: verdict → ledger/budget bookkeeping.
    fn settle(
        &mut self,
        click: &Click,
        campaign: crate::entities::Campaign,
        verdict: Verdict,
        registry: &mut Registry,
    ) -> ClickOutcome {
        if verdict == Verdict::Duplicate {
            self.ledger.duplicates_blocked += 1;
            return ClickOutcome::DuplicateBlocked;
        }
        let advertiser = registry
            .advertiser_mut(campaign.advertiser)
            .expect("registry enforces advertiser existence");
        if !advertiser.try_charge(campaign.cpc_micros) {
            self.ledger.budget_rejections += 1;
            return ClickOutcome::BudgetExhausted;
        }
        self.ledger.charged += 1;
        self.ledger.revenue_micros += campaign.cpc_micros;
        *self
            .ledger
            .per_publisher_micros
            .entry(click.publisher.0)
            .or_insert(0) += campaign.cpc_micros;
        ClickOutcome::Charged {
            cpc_micros: campaign.cpc_micros,
        }
    }

    /// The running ledger.
    #[must_use]
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Consumes the engine, returning the final ledger.
    #[must_use]
    pub fn into_ledger(self) -> Ledger {
        self.ledger
    }
}

impl<D: DuplicateDetector> BillingEngine<D> {
    /// Processes one click against `registry`, charging budgets and
    /// crediting publisher revenue.
    pub fn process(&mut self, click: &Click, registry: &mut Registry) -> ClickOutcome {
        self.ledger.clicks += 1;
        let Some(campaign) = registry.campaign(click.id.ad).copied() else {
            self.ledger.unknown_ads += 1;
            return ClickOutcome::UnknownAd;
        };
        // One pass over the stream: the detector sees every click for a
        // registered ad, duplicates included, so its window semantics
        // match the oracle definitions exactly.
        let verdict = self.detector.observe(&click.key());
        self.settle(click, campaign, verdict, registry)
    }

    /// The wrapped detector (e.g. for op-counter inspection).
    #[must_use]
    pub fn detector(&self) -> &D {
        &self.detector
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::{Advertiser, AdvertiserId, Campaign};
    use cfd_stream::{AdId, Click, ClickId};
    use cfd_windows::ExactSlidingDedup;

    fn setup() -> (Registry, BillingEngine<ExactSlidingDedup>) {
        let mut r = Registry::new();
        r.add_advertiser(Advertiser::new(AdvertiserId(1), "acme", 1_000));
        r.add_campaign(Campaign {
            ad: AdId(7),
            advertiser: AdvertiserId(1),
            cpc_micros: 250,
        })
        .expect("advertiser registered");
        (r, BillingEngine::new(ExactSlidingDedup::new(100)))
    }

    fn click(ip: u32) -> Click {
        Click::new(ClickId::new(ip, 1, AdId(7)), 0, PublisherId(3), 250)
    }

    #[test]
    fn distinct_clicks_charge_until_budget_runs_out() {
        let (mut r, mut e) = setup();
        for ip in 0..4 {
            assert!(e.process(&click(ip), &mut r).is_charged());
        }
        // Budget 1000 / 250 cpc = 4 clicks.
        assert_eq!(e.process(&click(99), &mut r), ClickOutcome::BudgetExhausted);
        let l = e.ledger();
        assert_eq!(l.charged, 4);
        assert_eq!(l.revenue_micros, 1_000);
        assert_eq!(l.publisher_revenue(PublisherId(3)), 1_000);
        assert_eq!(l.budget_rejections, 1);
    }

    #[test]
    fn duplicates_are_not_charged() {
        let (mut r, mut e) = setup();
        assert!(e.process(&click(5), &mut r).is_charged());
        assert_eq!(e.process(&click(5), &mut r), ClickOutcome::DuplicateBlocked);
        assert_eq!(e.ledger().duplicates_blocked, 1);
        assert_eq!(
            r.advertiser(AdvertiserId(1)).expect("exists").spent_micros,
            250
        );
    }

    #[test]
    fn process_judged_settles_precomputed_verdicts_without_a_detector() {
        let (mut r, _) = setup();
        // A detector-less engine: verdicts come from elsewhere.
        let mut e = BillingEngine::new(());
        assert!(e
            .process_judged(&click(1), Verdict::Distinct, &mut r)
            .is_charged());
        assert_eq!(
            e.process_judged(&click(1), Verdict::Duplicate, &mut r),
            ClickOutcome::DuplicateBlocked
        );
        let stray = Click::new(ClickId::new(1, 1, AdId(999)), 0, PublisherId(3), 1);
        assert_eq!(
            e.process_judged(&stray, Verdict::Distinct, &mut r),
            ClickOutcome::UnknownAd
        );
        let l = e.ledger();
        assert_eq!(
            (l.clicks, l.charged, l.duplicates_blocked, l.unknown_ads),
            (3, 1, 1, 1)
        );
    }

    #[test]
    fn process_and_process_judged_agree_ledger_for_ledger() {
        let (mut ra, mut ea) = setup();
        let (mut rb, _) = setup();
        let mut oracle = ExactSlidingDedup::new(100);
        let mut eb = BillingEngine::new(());
        for ip in [1u32, 2, 1, 3, 2, 2, 4, 1] {
            let c = click(ip);
            let a = ea.process(&c, &mut ra);
            let v = oracle.observe(&c.key());
            let b = eb.process_judged(&c, v, &mut rb);
            assert_eq!(a, b);
        }
        assert_eq!(ea.ledger().clicks, eb.ledger().clicks);
        assert_eq!(ea.ledger().charged, eb.ledger().charged);
        assert_eq!(
            ea.ledger().duplicates_blocked,
            eb.ledger().duplicates_blocked
        );
        assert_eq!(ea.ledger().revenue_micros, eb.ledger().revenue_micros);
    }

    #[test]
    fn unknown_ads_are_ignored_by_detector_and_budget() {
        let (mut r, mut e) = setup();
        let stray = Click::new(ClickId::new(1, 1, AdId(999)), 0, PublisherId(3), 1);
        assert_eq!(e.process(&stray, &mut r), ClickOutcome::UnknownAd);
        assert_eq!(e.ledger().unknown_ads, 1);
        assert_eq!(e.ledger().revenue_micros, 0);
    }
}
