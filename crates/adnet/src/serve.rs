//! `cfd serve`: long-running network ingest with reconnect,
//! backpressure, and checkpointed restart.
//!
//! This module turns the batch pipeline of [`crate::pipeline`] into a
//! *gateway process*: clicks arrive over a socket (or are tailed from a
//! growing frame file) speaking the [`cfd_stream::wire`] format, flow
//! through a bounded hub into checkpoint-delimited
//! [`run_sharded_segment`] runs, and the complete billing state is
//! persisted after every segment so a killed server restarts without
//! false negatives.
//!
//! ```text
//! client ──frames──► reader ─┐
//! client ──frames──► reader ─┼─► Hub ─► SegmentSource ─► run_sharded_segment
//!       (TCP/Unix)           │  (bounded)                │ (rings, shards,
//! file  ──frames──► tailer ──┘                           │  resequencer,
//!                                                        ▼  billing)
//!                                              checkpoint (CFDG) per segment
//! ```
//!
//! **Backpressure** is propagated end to end without drops: the hub is
//! a bounded queue, so when detection falls behind, readers block in
//! the hub send and *stop reading their sockets*; the kernel
//! buffers fill and TCP flow control pushes back on the client. Every
//! blocked send increments a counter surfaced as
//! `serve.hub.full_waits`, so an operator sees backpressure instead of
//! silent loss.
//!
//! **Resume** is position-based: the server greets every connection
//! with a `HELLO` frame announcing how many clicks it has accepted so
//! far (its *position*); a [`replay_client`] skips that prefix of its
//! trace. After a crash the restarted server's position comes from the
//! last checkpoint, so the client replays exactly the clicks the
//! checkpoint had not captured. This assumes **one logical stream
//! writer**: concurrent clients may interleave freely (the soak test
//! exercises that), but position-based resume is only meaningful for a
//! single trace replayed by a single client at a time, and a reconnect
//! racing the previous connection's final in-flight batch can replay a
//! batch twice (see `docs/OPERATIONS.md`).
//!
//! **Drain** is cooperative: a client `DRAIN` frame or a local
//! [`DrainControl::request_drain`] (the CLI wires `SIGTERM` to this)
//! stops the acceptor and readers; once every producer detaches, the
//! hub closes, the final segment completes, a last checkpoint is
//! written, and [`serve`] returns the final [`NetworkReport`].

use crate::billing::Ledger;
use crate::entities::{Advertiser, AdvertiserId, Campaign, Registry};
use crate::fraud::FraudScorer;
use crate::pipeline::{run_sharded_segment, PipelineConfig, PipelineProgress, SegmentState};
use crate::report::NetworkReport;
use crate::ring::Pool;
use crate::telemetry::PipelineTelemetry;
use cfd_core::{CheckpointError, CheckpointState, ShardedDetector};
use cfd_stream::wire::{self, FrameReader, WireError};
use cfd_stream::{AdId, Click};
use cfd_telemetry::{Counter, DetectorHealth, DetectorStats, Gauge, Registry as MetricsRegistry};
use cfd_windows::DuplicateDetector;
use std::collections::VecDeque;
use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// Magic bytes opening a `CFDG` gateway checkpoint.
pub const CHECKPOINT_MAGIC: &[u8; 4] = b"CFDG";

/// `CFDG` format version this build writes and accepts.
pub const CHECKPOINT_VERSION: u16 = 1;

/// How long readers and the acceptor sleep between poll rounds while
/// idle; bounds drain-request latency.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Socket read timeout: how often a blocked reader re-checks the drain
/// flag.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Bytes read from a socket per syscall.
const READ_CHUNK: usize = 16 * 1024;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Everything that can go wrong serving or replaying a stream.
#[derive(Debug)]
pub enum ServeError {
    /// An OS-level I/O failure (bind, accept, read, write, file ops).
    Io(io::Error),
    /// A malformed frame on the wire.
    Wire(WireError),
    /// A malformed detector blob inside a checkpoint.
    Checkpoint(CheckpointError),
    /// A structurally invalid `CFDG` checkpoint.
    BadCheckpoint(&'static str),
    /// An endpoint string without a `unix:`/`tcp:`/`tail:` scheme.
    BadEndpoint(String),
    /// The client exhausted its connection attempts.
    Connect {
        /// Attempts made before giving up.
        attempts: u32,
        /// The last connection error.
        last: io::Error,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Wire(e) => write!(f, "wire protocol error: {e}"),
            ServeError::Checkpoint(e) => write!(f, "detector checkpoint error: {e}"),
            ServeError::BadCheckpoint(msg) => write!(f, "bad CFDG checkpoint: {msg}"),
            ServeError::BadEndpoint(s) => {
                write!(
                    f,
                    "bad endpoint {s:?}: expected unix:PATH, tcp:ADDR, or tail:PATH"
                )
            }
            ServeError::Connect { attempts, last } => {
                write!(f, "could not connect after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) | ServeError::Connect { last: e, .. } => Some(e),
            ServeError::Wire(e) => Some(e),
            ServeError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}

// ---------------------------------------------------------------------------
// Endpoints
// ---------------------------------------------------------------------------

/// Where clicks come from (server) or go to (client).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix domain socket at this path. The server removes a stale
    /// socket file before binding and after shutting down.
    Unix(PathBuf),
    /// A TCP listen/connect address, e.g. `127.0.0.1:4100`.
    Tcp(String),
    /// A growing file of wire frames: the server tails it, the client
    /// appends to it. No `HELLO`/resume handshake in this mode.
    FileTail(PathBuf),
}

impl Endpoint {
    /// Parses `unix:PATH`, `tcp:ADDR`, or `tail:PATH`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadEndpoint`] on any other scheme.
    pub fn parse(s: &str) -> Result<Self, ServeError> {
        if let Some(p) = s.strip_prefix("unix:") {
            Ok(Endpoint::Unix(PathBuf::from(p)))
        } else if let Some(a) = s.strip_prefix("tcp:") {
            Ok(Endpoint::Tcp(a.to_owned()))
        } else if let Some(p) = s.strip_prefix("tail:") {
            Ok(Endpoint::FileTail(PathBuf::from(p)))
        } else {
            Err(ServeError::BadEndpoint(s.to_owned()))
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
            Endpoint::FileTail(p) => write!(f, "tail:{}", p.display()),
        }
    }
}

/// One accepted or dialed connection, Unix or TCP.
enum NetStream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl NetStream {
    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            NetStream::Unix(s) => s.set_read_timeout(d),
            NetStream::Tcp(s) => s.set_read_timeout(d),
        }
    }
}

impl Read for NetStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            NetStream::Unix(s) => s.read(buf),
            NetStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for NetStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            NetStream::Unix(s) => s.write(buf),
            NetStream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            NetStream::Unix(s) => s.flush(),
            NetStream::Tcp(s) => s.flush(),
        }
    }
}

/// A bound, non-blocking listener, Unix or TCP.
enum NetListener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl NetListener {
    fn bind(endpoint: &Endpoint) -> Result<Option<Self>, ServeError> {
        match endpoint {
            Endpoint::Unix(path) => {
                // The serve process owns the socket path: a leftover
                // file from a killed predecessor would make bind fail.
                let _ = fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok(Some(NetListener::Unix(l)))
            }
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                Ok(Some(NetListener::Tcp(l)))
            }
            Endpoint::FileTail(_) => Ok(None),
        }
    }

    /// Non-blocking accept: `Ok(None)` when no connection is pending.
    fn poll_accept(&self) -> io::Result<Option<NetStream>> {
        let r = match self {
            NetListener::Unix(l) => l.accept().map(|(s, _)| NetStream::Unix(s)),
            NetListener::Tcp(l) => l.accept().map(|(s, _)| NetStream::Tcp(s)),
        };
        match r {
            Ok(s) => Ok(Some(s)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

// ---------------------------------------------------------------------------
// Drain control
// ---------------------------------------------------------------------------

/// A one-way "finish up and exit" switch shared by the serve loop, its
/// reader threads, and external signal handlers.
///
/// The CLI flips this from its `SIGTERM`/`SIGINT` handler; a client can
/// flip it remotely with a `DRAIN` frame. Once raised it never lowers.
#[derive(Debug, Default)]
pub struct DrainControl {
    draining: AtomicBool,
}

impl DrainControl {
    /// Creates a control in the serving (not draining) state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a graceful drain: stop accepting, stop reading, finish
    /// the in-flight clicks, checkpoint, report, exit.
    pub fn request_drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// `true` once a drain has been requested.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }
}

// ---------------------------------------------------------------------------
// The hub: bounded many-producer/one-consumer batch queue
// ---------------------------------------------------------------------------

/// Hub interior: the batch queue plus the count of attached producers.
struct HubInner {
    queue: VecDeque<Vec<Click>>,
    producers: usize,
}

/// A bounded MPSC queue of pooled click batches between the connection
/// readers and the segment runner.
///
/// Built on `Mutex` + `Condvar` rather than the SPSC rings of
/// [`crate::ring`] because the producer side is *dynamic* (one per live
/// connection) — and unlike a channel, it counts the sends that found
/// the queue full ([`Hub::full_waits`]), which is exactly the
/// backpressure signal `serve.hub.full_waits` exports.
struct Hub {
    inner: Mutex<HubInner>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    full_waits: AtomicU64,
    /// Clicks accepted into the hub since stream position zero; seeded
    /// from the checkpoint on restart. This is the position `HELLO`
    /// announces to connecting clients.
    received: AtomicU64,
}

impl Hub {
    /// Locks the hub, recovering the guard from a poisoned mutex.
    ///
    /// A reader thread that panics mid-send (a malformed frame, a bug
    /// in decode) poisons this mutex; `.lock().expect(..)` here would
    /// then cascade the panic into every other reader, the segment
    /// runner, and the drain path — one bad connection would wedge the
    /// whole gateway with work still queued. The inner state (queue +
    /// producer count) is consistent at every unlock point, so the
    /// recovered guard is safe to keep serving with.
    fn lock_inner(&self) -> std::sync::MutexGuard<'_, HubInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn new(capacity: usize, position: u64) -> Self {
        Self {
            inner: Mutex::new(HubInner {
                queue: VecDeque::with_capacity(capacity),
                producers: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
            full_waits: AtomicU64::new(0),
            received: AtomicU64::new(position),
        }
    }

    /// Attaches a producer; the hub closes when the last one detaches.
    fn producer(&self) -> HubProducer<'_> {
        self.lock_inner().producers += 1;
        HubProducer { hub: self }
    }

    /// Clicks accepted so far (the server's stream position).
    fn received(&self) -> u64 {
        self.received.load(Ordering::Relaxed)
    }

    /// Sends that found the queue full and had to wait.
    fn full_waits(&self) -> u64 {
        self.full_waits.load(Ordering::Relaxed)
    }

    /// Pops the next batch; blocks while the queue is empty and at
    /// least one producer is attached. `None` once the hub is closed
    /// (no producers) and drained.
    fn recv(&self) -> Option<Vec<Click>> {
        let mut inner = self.lock_inner();
        loop {
            if let Some(b) = inner.queue.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(b);
            }
            if inner.producers == 0 {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// A reader's handle on the hub; detaches on drop.
struct HubProducer<'a> {
    hub: &'a Hub,
}

impl HubProducer<'_> {
    /// Enqueues one batch, blocking while the hub is at capacity.
    ///
    /// The batch is counted into the stream position *before* the
    /// capacity wait, so a `HELLO` composed while this send is blocked
    /// already covers it — the resuming client will not replay clicks
    /// that are merely stuck behind backpressure.
    fn send(&self, batch: Vec<Click>) {
        self.hub
            .received
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        let mut inner = self.hub.lock_inner();
        if inner.queue.len() >= self.hub.capacity {
            self.hub.full_waits.fetch_add(1, Ordering::Relaxed);
            while inner.queue.len() >= self.hub.capacity {
                inner = self
                    .hub
                    .not_full
                    .wait(inner)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        inner.queue.push_back(batch);
        drop(inner);
        self.hub.not_empty.notify_one();
    }
}

impl Drop for HubProducer<'_> {
    fn drop(&mut self) {
        let mut inner = self.hub.lock_inner();
        inner.producers -= 1;
        let last = inner.producers == 0;
        drop(inner);
        if last {
            self.hub.not_empty.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Segment source: hub → bounded click iterator
// ---------------------------------------------------------------------------

/// Feeds [`run_sharded_segment`] at most `limit` clicks per segment
/// from the hub, carrying a partially-consumed batch across segment
/// boundaries and recycling drained batch buffers through the pool.
struct SegmentSource<'a> {
    hub: &'a Hub,
    pool: &'a Pool<Vec<Click>>,
    current: Option<(Vec<Click>, usize)>,
    left: u64,
    taken: u64,
    closed: bool,
}

impl<'a> SegmentSource<'a> {
    fn new(hub: &'a Hub, pool: &'a Pool<Vec<Click>>) -> Self {
        Self {
            hub,
            pool,
            current: None,
            left: 0,
            taken: 0,
            closed: false,
        }
    }

    /// Arms the source for one segment of at most `limit` clicks.
    fn begin_segment(&mut self, limit: u64) {
        self.left = limit;
        self.taken = 0;
    }

    /// Clicks this segment actually delivered.
    fn taken(&self) -> u64 {
        self.taken
    }

    /// `true` once the hub closed and every buffered click was
    /// delivered — no further segment can produce anything.
    fn is_closed(&self) -> bool {
        self.closed
    }

    fn retire(&mut self) {
        if let Some((mut b, _)) = self.current.take() {
            b.clear();
            self.pool.put(b);
        }
    }
}

impl Iterator for SegmentSource<'_> {
    type Item = Click;

    fn next(&mut self) -> Option<Click> {
        if self.left == 0 {
            return None;
        }
        loop {
            if let Some((batch, idx)) = &mut self.current {
                if *idx < batch.len() {
                    let c = batch[*idx];
                    *idx += 1;
                    if *idx == batch.len() {
                        self.retire();
                    }
                    self.left -= 1;
                    self.taken += 1;
                    return Some(c);
                }
                self.retire();
            }
            match self.hub.recv() {
                Some(b) if b.is_empty() => self.pool.put(b),
                Some(b) => self.current = Some((b, 0)),
                None => {
                    self.closed = true;
                    return None;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

/// The serve-loop instrument bundle (see `docs/OBSERVABILITY.md`).
///
/// Registers every gateway metric into a caller-supplied
/// [`cfd_telemetry::Registry`] so a `Reporter` polling that registry
/// sees them alongside the pipeline metrics.
pub struct ServeTelemetry {
    connections: Arc<Counter>,
    active: Arc<Gauge>,
    frames: Arc<Counter>,
    clicks_received: Arc<Counter>,
    protocol_errors: Arc<Counter>,
    disconnects: Arc<Counter>,
    hub_full_waits: Arc<Counter>,
    segments: Arc<Counter>,
    checkpoints: Arc<Counter>,
    checkpoint_bytes: Arc<Counter>,
    position: Arc<Gauge>,
    checkpoint_position: Arc<Gauge>,
    drain_requests: Arc<Counter>,
}

impl ServeTelemetry {
    /// Registers the serve metrics into `registry`.
    #[must_use]
    pub fn new(registry: &Arc<MetricsRegistry>) -> Self {
        Self {
            connections: registry.counter(
                "serve.connections",
                "conns",
                "Connections accepted since start",
            ),
            active: registry.gauge("serve.active", "conns", "Connections currently attached"),
            frames: registry.counter("serve.frames", "frames", "Wire frames decoded"),
            clicks_received: registry.counter(
                "serve.clicks_received",
                "clicks",
                "Clicks accepted into the ingest hub",
            ),
            protocol_errors: registry.counter(
                "serve.protocol_errors",
                "errors",
                "Connections dropped for malformed frames (bad CRC, bad payload)",
            ),
            disconnects: registry.counter(
                "serve.disconnects",
                "conns",
                "Connections that ended (EOF, error, or drain)",
            ),
            hub_full_waits: registry.counter(
                "serve.hub.full_waits",
                "waits",
                "Reader sends that blocked on a full hub (backpressure)",
            ),
            segments: registry.counter("serve.segments", "segments", "Pipeline segments completed"),
            checkpoints: registry.counter(
                "serve.checkpoints",
                "checkpoints",
                "Checkpoints written",
            ),
            checkpoint_bytes: registry.counter(
                "serve.checkpoint_bytes",
                "bytes",
                "Total checkpoint bytes written",
            ),
            position: registry.gauge(
                "serve.position",
                "clicks",
                "Stream position: clicks fully processed by the pipeline",
            ),
            checkpoint_position: registry.gauge(
                "serve.checkpoint_position",
                "clicks",
                "Stream position covered by the newest checkpoint (lag behind serve.position = loss window on kill -9)",
            ),
            drain_requests: registry.counter(
                "serve.drain_requests",
                "requests",
                "Drain requests observed (DRAIN frames + local signals)",
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Server state + CFDG checkpoints
// ---------------------------------------------------------------------------

/// Everything a gateway must persist to restart without false
/// negatives: the detector's window state, the billing state, and the
/// stream position the two are synchronized at.
#[derive(Debug)]
pub struct ServerState<D> {
    /// The sharded duplicate detector with its window state.
    pub detector: ShardedDetector<D>,
    /// Advertiser budgets and campaigns (spend carried forward).
    pub registry: Registry,
    /// The billing ledger.
    pub ledger: Ledger,
    /// Fraud savings so far, micro-units.
    pub savings_micros: u64,
    /// Per-publisher fraud tallies.
    pub scorer: FraudScorer,
    /// Clicks fully processed: the position the rest of this state is
    /// exact *as of*. `HELLO` resume positions start from here.
    pub position: u64,
}

impl<D> ServerState<D> {
    /// Fresh state at stream position zero.
    #[must_use]
    pub fn new(detector: ShardedDetector<D>, registry: Registry) -> Self {
        Self {
            detector,
            registry,
            ledger: Ledger::default(),
            savings_micros: 0,
            scorer: FraudScorer::new(),
            position: 0,
        }
    }
}

/// Little-endian byte cursor for `CFDG` decoding.
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ServeError::BadCheckpoint("truncated"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, ServeError> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ServeError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ServeError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn len(&mut self) -> Result<usize, ServeError> {
        usize::try_from(self.u64()?).map_err(|_| ServeError::BadCheckpoint("length overflows"))
    }

    fn done(&self) -> Result<(), ServeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ServeError::BadCheckpoint("trailing bytes"))
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

impl<D> ServerState<D>
where
    ShardedDetector<D>: CheckpointState,
{
    /// Serializes the complete gateway state as one `CFDG` blob.
    ///
    /// Layout (all integers little-endian): magic `CFDG` · version u16
    /// · position u64 · savings u64 · length-prefixed detector `CFDS`
    /// blob · advertisers (count, then id/name/budget/spent sorted by
    /// id) · campaigns (count, then ad/advertiser/cpc sorted by ad) ·
    /// ledger (6 totals + per-publisher pairs sorted by publisher) ·
    /// fraud tallies (sorted by publisher) · CRC-32 of everything
    /// before it. Map entries are sorted so identical states serialize
    /// byte-identically.
    #[must_use]
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4096);
        out.extend_from_slice(CHECKPOINT_MAGIC);
        put_u16(&mut out, CHECKPOINT_VERSION);
        put_u64(&mut out, self.position);
        put_u64(&mut out, self.savings_micros);

        let det = self.detector.checkpoint();
        put_u64(&mut out, det.len() as u64);
        out.extend_from_slice(&det);

        let mut advertisers: Vec<&Advertiser> = self.registry.advertisers().collect();
        advertisers.sort_by_key(|a| a.id);
        put_u64(&mut out, advertisers.len() as u64);
        for a in advertisers {
            put_u32(&mut out, a.id.0);
            put_u64(&mut out, a.name.len() as u64);
            out.extend_from_slice(a.name.as_bytes());
            put_u64(&mut out, a.budget_micros);
            put_u64(&mut out, a.spent_micros);
        }

        let mut campaigns: Vec<&Campaign> = self.registry.campaigns().collect();
        campaigns.sort_by_key(|c| c.ad.0);
        put_u64(&mut out, campaigns.len() as u64);
        for c in campaigns {
            put_u32(&mut out, c.ad.0);
            put_u32(&mut out, c.advertiser.0);
            put_u64(&mut out, c.cpc_micros);
        }

        let l = &self.ledger;
        for v in [
            l.clicks,
            l.charged,
            l.duplicates_blocked,
            l.budget_rejections,
            l.unknown_ads,
            l.revenue_micros,
        ] {
            put_u64(&mut out, v);
        }
        let mut per_pub: Vec<(u32, u64)> = l
            .per_publisher_micros
            .iter()
            .map(|(&p, &m)| (p, m))
            .collect();
        per_pub.sort_unstable();
        put_u64(&mut out, per_pub.len() as u64);
        for (p, m) in per_pub {
            put_u32(&mut out, p);
            put_u64(&mut out, m);
        }

        let mut tallies: Vec<(u32, u64, u64)> = self.scorer.tallies().collect();
        tallies.sort_unstable();
        put_u64(&mut out, tallies.len() as u64);
        for (p, clicks, blocked) in tallies {
            put_u32(&mut out, p);
            put_u64(&mut out, clicks);
            put_u64(&mut out, blocked);
        }

        let crc = wire::crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Restores a gateway state from [`ServerState::checkpoint_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on a CRC mismatch, structural damage, or
    /// a detector blob the [`CheckpointState`] impl rejects.
    pub fn restore(buf: &[u8]) -> Result<Self, ServeError> {
        if buf.len() < 4 + 2 + 4 {
            return Err(ServeError::BadCheckpoint("too short"));
        }
        let (body, crc_bytes) = buf.split_at(buf.len() - 4);
        let want = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if wire::crc32(body) != want {
            return Err(ServeError::BadCheckpoint("CRC mismatch"));
        }
        let mut r = ByteReader::new(body);
        if r.bytes(4)? != CHECKPOINT_MAGIC {
            return Err(ServeError::BadCheckpoint("bad magic"));
        }
        if r.u16()? != CHECKPOINT_VERSION {
            return Err(ServeError::BadCheckpoint("unsupported version"));
        }
        let position = r.u64()?;
        let savings_micros = r.u64()?;

        let det_len = r.len()?;
        let detector = ShardedDetector::<D>::restore(r.bytes(det_len)?)?;

        let mut registry = Registry::new();
        let advertiser_count = r.len()?;
        for _ in 0..advertiser_count {
            let id = AdvertiserId(r.u32()?);
            let name_len = r.len()?;
            let name = std::str::from_utf8(r.bytes(name_len)?)
                .map_err(|_| ServeError::BadCheckpoint("advertiser name not UTF-8"))?
                .to_owned();
            let budget_micros = r.u64()?;
            let spent_micros = r.u64()?;
            let mut a = Advertiser::new(id, name, budget_micros);
            a.spent_micros = spent_micros;
            registry.add_advertiser(a);
        }
        let campaign_count = r.len()?;
        for _ in 0..campaign_count {
            let campaign = Campaign {
                ad: AdId(r.u32()?),
                advertiser: AdvertiserId(r.u32()?),
                cpc_micros: r.u64()?,
            };
            registry
                .add_campaign(campaign)
                .map_err(|_| ServeError::BadCheckpoint("campaign references unknown advertiser"))?;
        }

        let mut ledger = Ledger {
            clicks: r.u64()?,
            charged: r.u64()?,
            duplicates_blocked: r.u64()?,
            budget_rejections: r.u64()?,
            unknown_ads: r.u64()?,
            revenue_micros: r.u64()?,
            ..Ledger::default()
        };
        let per_pub_count = r.len()?;
        for _ in 0..per_pub_count {
            let p = r.u32()?;
            let m = r.u64()?;
            ledger.per_publisher_micros.insert(p, m);
        }

        let mut scorer = FraudScorer::new();
        let tally_count = r.len()?;
        for _ in 0..tally_count {
            let p = r.u32()?;
            let clicks = r.u64()?;
            let blocked = r.u64()?;
            scorer.set_tally(p, clicks, blocked);
        }
        r.done()?;

        Ok(Self {
            detector,
            registry,
            ledger,
            savings_micros,
            scorer,
            position,
        })
    }

    /// Writes the checkpoint atomically (`path.tmp` + rename), so a
    /// crash mid-write leaves the previous checkpoint intact. Returns
    /// the byte size written.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] on filesystem failure.
    pub fn write_checkpoint(&self, path: &Path) -> Result<usize, ServeError> {
        let bytes = self.checkpoint_bytes();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, path)?;
        Ok(bytes.len())
    }

    /// Reads a checkpoint written by [`ServerState::write_checkpoint`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on filesystem failure or a corrupt blob.
    pub fn read_checkpoint(path: &Path) -> Result<Self, ServeError> {
        let bytes = fs::read(path)?;
        Self::restore(&bytes)
    }
}

// ---------------------------------------------------------------------------
// Serve configuration + outcome
// ---------------------------------------------------------------------------

/// Gateway tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Pipeline knobs for each segment run.
    pub pipeline: PipelineConfig,
    /// Where to persist checkpoints; `None` disables checkpointing.
    pub checkpoint_path: Option<PathBuf>,
    /// Clicks per segment (and therefore per checkpoint). `0` means a
    /// single unbounded segment: checkpoint only at drain.
    pub checkpoint_every: u64,
    /// Hub capacity in batches; the backpressure depth between readers
    /// and the pipeline.
    pub hub_batches: usize,
    /// Batch buffers to pre-fill the pool with at startup, each sized
    /// for [`ServeConfig::pool_clicks`] clicks. Sized to the worst-case
    /// in-flight population (`hub_batches` + expected concurrent
    /// connections + 1), this pins the gateway's buffer population at
    /// startup so the steady state never allocates a batch. `0` grows
    /// the pool on demand instead.
    pub pool_buffers: usize,
    /// Click capacity of each pre-filled pool buffer; size it to the
    /// largest `CLICKS` frame clients send.
    pub pool_clicks: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            pipeline: PipelineConfig::default(),
            checkpoint_path: None,
            checkpoint_every: 0,
            hub_batches: 64,
            pool_buffers: 0,
            pool_clicks: 0,
        }
    }
}

/// Optional instruments threaded into [`serve`].
#[derive(Default)]
pub struct ServeInstruments {
    /// Gateway counters (connections, frames, checkpoints, …).
    pub serve: Option<Arc<ServeTelemetry>>,
    /// Per-segment pipeline instruments; pass the same bundle across
    /// the whole serve so counters accumulate.
    pub pipeline: Option<Arc<PipelineTelemetry>>,
    /// Lock-free progress counters (clicks detected/billed).
    pub progress: Option<Arc<PipelineProgress>>,
}

/// What a drained [`serve`] run hands back.
#[derive(Debug)]
pub struct ServeOutcome<D> {
    /// The final billing report over everything processed (including
    /// state restored from a checkpoint).
    pub report: NetworkReport,
    /// The final gateway state — already persisted if checkpointing
    /// was configured.
    pub state: ServerState<D>,
    /// Final per-shard detector health samples (empty without pipeline
    /// telemetry).
    pub health: Vec<DetectorHealth>,
}

// ---------------------------------------------------------------------------
// Connection readers
// ---------------------------------------------------------------------------

/// Decodes frames arriving on one connection into hub batches.
///
/// Exits on EOF, an I/O error, a protocol error, a `DRAIN` frame, or a
/// raised drain flag; the server keeps serving other connections unless
/// the exit was a drain.
fn run_reader(
    mut stream: NetStream,
    guard: &HubProducer<'_>,
    pool: &Pool<Vec<Click>>,
    control: &DrainControl,
    t: Option<&ServeTelemetry>,
) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    if let Some(t) = t {
        t.connections.inc();
        t.active.add(1);
    }
    let mut hello = Vec::with_capacity(32);
    wire::encode_hello(&mut hello, guard.hub.received());
    if stream.write_all(&hello).is_err() {
        if let Some(t) = t {
            t.active.sub(1);
            t.disconnects.inc();
        }
        return;
    }
    let mut reader = FrameReader::with_capacity(2 * READ_CHUNK);
    let mut chunk = [0u8; READ_CHUNK];
    'conn: loop {
        if control.is_draining() {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // client went away; keep serving
            Ok(n) => {
                reader.extend(&chunk[..n]);
                loop {
                    match reader.next_frame() {
                        Ok(Some(f)) => {
                            if let Some(t) = t {
                                t.frames.inc();
                            }
                            match f.kind {
                                wire::FRAME_CLICKS => {
                                    let mut batch = pool.get();
                                    batch.clear();
                                    match wire::decode_clicks_into(f.payload, &mut batch) {
                                        Ok(count) => {
                                            if let Some(t) = t {
                                                t.clicks_received.add(count as u64);
                                            }
                                            guard.send(batch);
                                        }
                                        Err(_) => {
                                            pool.put(batch);
                                            if let Some(t) = t {
                                                t.protocol_errors.inc();
                                            }
                                            break 'conn;
                                        }
                                    }
                                }
                                wire::FRAME_DRAIN => {
                                    if let Some(t) = t {
                                        t.drain_requests.inc();
                                    }
                                    control.request_drain();
                                    break 'conn;
                                }
                                _ => {
                                    if let Some(t) = t {
                                        t.protocol_errors.inc();
                                    }
                                    break 'conn;
                                }
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            if let Some(t) = t {
                                t.protocol_errors.inc();
                            }
                            break 'conn;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => break,
        }
    }
    if let Some(t) = t {
        t.active.sub(1);
        t.disconnects.inc();
    }
}

/// Tails a growing frame file, feeding its `CLICKS` frames into the
/// hub. Waits for the file to appear; at EOF it polls for growth
/// instead of exiting. No `HELLO` handshake in this mode.
fn run_tailer(
    path: &Path,
    guard: &HubProducer<'_>,
    pool: &Pool<Vec<Click>>,
    control: &DrainControl,
    t: Option<&ServeTelemetry>,
) {
    let mut file = loop {
        if control.is_draining() {
            return;
        }
        match fs::File::open(path) {
            Ok(f) => break f,
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    };
    if let Some(t) = t {
        t.connections.inc();
        t.active.add(1);
    }
    let mut reader = FrameReader::with_capacity(2 * READ_CHUNK);
    let mut chunk = [0u8; READ_CHUNK];
    'tail: loop {
        if control.is_draining() {
            break;
        }
        match file.read(&mut chunk) {
            Ok(0) => thread::sleep(POLL_INTERVAL), // at EOF: wait for growth
            Ok(n) => {
                reader.extend(&chunk[..n]);
                loop {
                    match reader.next_frame() {
                        Ok(Some(f)) if f.kind == wire::FRAME_CLICKS => {
                            if let Some(t) = t {
                                t.frames.inc();
                            }
                            let mut batch = pool.get();
                            batch.clear();
                            match wire::decode_clicks_into(f.payload, &mut batch) {
                                Ok(count) => {
                                    if let Some(t) = t {
                                        t.clicks_received.add(count as u64);
                                    }
                                    guard.send(batch);
                                }
                                Err(_) => {
                                    pool.put(batch);
                                    if let Some(t) = t {
                                        t.protocol_errors.inc();
                                    }
                                    break 'tail;
                                }
                            }
                        }
                        Ok(Some(f)) if f.kind == wire::FRAME_DRAIN => {
                            if let Some(t) = t {
                                t.frames.inc();
                                t.drain_requests.inc();
                            }
                            control.request_drain();
                            break 'tail;
                        }
                        Ok(Some(_)) | Err(_) => {
                            if let Some(t) = t {
                                t.protocol_errors.inc();
                            }
                            break 'tail;
                        }
                        Ok(None) => break,
                    }
                }
            }
            Err(_) => break,
        }
    }
    if let Some(t) = t {
        t.active.sub(1);
        t.disconnects.inc();
    }
}

// ---------------------------------------------------------------------------
// The serve loop
// ---------------------------------------------------------------------------

/// Runs the gateway until drained: accept connections (or tail a
/// file), pump clicks through checkpoint-delimited pipeline segments,
/// persist state after every segment, and return the final report.
///
/// See the module docs for the architecture; `docs/OPERATIONS.md` is
/// the operator-facing runbook.
///
/// # Errors
///
/// Returns [`ServeError::Io`] when the endpoint cannot be bound or a
/// checkpoint cannot be written. Connection-level errors never abort
/// the serve — they end that connection and are counted.
///
/// # Panics
///
/// Panics if a pipeline stage panics (propagated from
/// [`run_sharded_segment`]).
pub fn serve<D>(
    state: ServerState<D>,
    endpoint: &Endpoint,
    config: &ServeConfig,
    control: &DrainControl,
    instruments: &ServeInstruments,
) -> Result<ServeOutcome<D>, ServeError>
where
    D: DuplicateDetector + DetectorStats + Send,
    ShardedDetector<D>: CheckpointState,
{
    let ServerState {
        detector,
        registry,
        ledger,
        savings_micros,
        scorer,
        position,
    } = state;
    let mut detector = detector;
    let mut seg_state = SegmentState {
        registry,
        ledger,
        savings_micros,
        scorer,
    };
    let mut position = position;

    let hub = Hub::new(config.hub_batches, position);
    let pool: Pool<Vec<Click>> = Pool::new();
    for _ in 0..config.pool_buffers {
        pool.put(Vec::with_capacity(config.pool_clicks));
    }
    let serve_t = instruments.serve.as_deref();
    if let Some(t) = serve_t {
        t.position.set(i64::try_from(position).unwrap_or(i64::MAX));
        t.checkpoint_position
            .set(i64::try_from(position).unwrap_or(i64::MAX));
    }

    let listener = NetListener::bind(endpoint)?;

    let result = thread::scope(|s| -> Result<ServeOutcome<D>, ServeError> {
        // The intake guard keeps the hub open while connections can
        // still arrive; it drops (closing the hub once the readers
        // finish too) when a drain stops the acceptor/tailer.
        let intake_guard = hub.producer();
        let hub_ref = &hub;
        let pool_ref = &pool;
        match (listener, endpoint) {
            (Some(l), _) => {
                s.spawn(move || {
                    let guard = intake_guard;
                    loop {
                        if control.is_draining() {
                            break;
                        }
                        match l.poll_accept() {
                            Ok(Some(stream)) => {
                                let reader_guard = hub_ref.producer();
                                s.spawn(move || {
                                    run_reader(stream, &reader_guard, pool_ref, control, serve_t);
                                });
                            }
                            Ok(None) | Err(_) => thread::sleep(POLL_INTERVAL),
                        }
                    }
                    drop(guard);
                });
            }
            (None, Endpoint::FileTail(path)) => {
                let path = path.as_path();
                s.spawn(move || {
                    let guard = intake_guard;
                    run_tailer(path, &guard, pool_ref, control, serve_t);
                });
            }
            (None, _) => unreachable!("bind() returns a listener for socket endpoints"),
        }

        let mut source = SegmentSource::new(&hub, &pool);
        let mut hub_waits_seen = 0u64;
        let (report, health) = loop {
            let limit = if config.checkpoint_every == 0 {
                u64::MAX
            } else {
                config.checkpoint_every
            };
            source.begin_segment(limit);
            let out = run_sharded_segment(
                detector,
                seg_state,
                &mut source,
                config.pipeline,
                instruments.progress.clone(),
                instruments.pipeline.clone(),
            );
            position += source.taken();
            let report = out.report();
            detector = out.detector;
            seg_state = out.state;
            let finished = source.is_closed();
            if let Some(t) = serve_t {
                t.segments.inc();
                t.position.set(i64::try_from(position).unwrap_or(i64::MAX));
                let waits = hub.full_waits();
                t.hub_full_waits.add(waits - hub_waits_seen);
                hub_waits_seen = waits;
            }
            if let Some(path) = &config.checkpoint_path {
                // Borrow the state into a throwaway view just long
                // enough to serialize it.
                let view = ServerState {
                    detector,
                    registry: seg_state.registry,
                    ledger: seg_state.ledger,
                    savings_micros: seg_state.savings_micros,
                    scorer: seg_state.scorer,
                    position,
                };
                let written = match view.write_checkpoint(path) {
                    Ok(w) => w,
                    Err(e) => {
                        // Losing the checkpoint target is fatal, but the
                        // readers must detach before we can return, or
                        // thread::scope would wait on them forever.
                        control.request_drain();
                        while let Some(b) = hub.recv() {
                            pool.put(b);
                        }
                        return Err(e);
                    }
                };
                detector = view.detector;
                seg_state = SegmentState {
                    registry: view.registry,
                    ledger: view.ledger,
                    savings_micros: view.savings_micros,
                    scorer: view.scorer,
                };
                if let Some(t) = serve_t {
                    t.checkpoints.inc();
                    t.checkpoint_bytes.add(written as u64);
                    t.checkpoint_position
                        .set(i64::try_from(position).unwrap_or(i64::MAX));
                }
            }
            if finished {
                break (report, out.health);
            }
        };

        Ok(ServeOutcome {
            report,
            state: ServerState {
                detector,
                registry: seg_state.registry,
                ledger: seg_state.ledger,
                savings_micros: seg_state.savings_micros,
                scorer: seg_state.scorer,
                position,
            },
            health,
        })
    });

    if let Endpoint::Unix(path) = endpoint {
        let _ = fs::remove_file(path);
    }
    result
}

// ---------------------------------------------------------------------------
// Replay client
// ---------------------------------------------------------------------------

/// [`replay_client`] tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Clicks per `CLICKS` frame.
    pub frame_clicks: usize,
    /// Stream at most this prefix of the trace (`None` = all of it).
    pub limit: Option<u64>,
    /// Send a `DRAIN` frame after the last click, asking the server to
    /// flush, checkpoint, report, and exit.
    pub drain: bool,
    /// Connection attempts per (re)connect before giving up.
    pub connect_attempts: u32,
    /// First retry delay; doubles per failure up to `max_backoff`.
    pub initial_backoff: Duration,
    /// Retry delay ceiling.
    pub max_backoff: Duration,
    /// Mid-stream reconnects before giving up on the whole replay.
    pub max_reconnects: u32,
    /// Optional pause between frames (rate limiting for soak runs).
    pub throttle: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            frame_clicks: 256,
            limit: None,
            drain: false,
            connect_attempts: 50,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            max_reconnects: 100,
            throttle: None,
        }
    }
}

/// What a finished [`replay_client`] run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Clicks written to the server this run.
    pub sent_clicks: u64,
    /// Trace prefix skipped because the server's first `HELLO` said it
    /// already held those clicks (resume after restart).
    pub skipped_clicks: u64,
    /// Mid-stream reconnects after an established connection failed.
    pub reconnects: u64,
    /// Failed dials that were retried with backoff (counts the
    /// client-starts-before-server grace window).
    pub connect_retries: u64,
    /// The position from the most recent `HELLO`.
    pub server_position: u64,
}

fn connect(endpoint: &Endpoint) -> io::Result<NetStream> {
    match endpoint {
        Endpoint::Unix(path) => UnixStream::connect(path).map(NetStream::Unix),
        Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(NetStream::Tcp),
        Endpoint::FileTail(_) => unreachable!("file mode handled before dialing"),
    }
}

fn connect_backoff(
    endpoint: &Endpoint,
    config: &ClientConfig,
) -> Result<(NetStream, u64), ServeError> {
    let attempts = config.connect_attempts.max(1);
    let mut delay = config.initial_backoff;
    let mut retries = 0u64;
    for attempt in 0..attempts {
        match connect(endpoint) {
            Ok(s) => return Ok((s, retries)),
            Err(e) => {
                if attempt + 1 == attempts {
                    return Err(ServeError::Connect { attempts, last: e });
                }
                retries += 1;
                thread::sleep(delay);
                delay = delay.saturating_mul(2).min(config.max_backoff);
            }
        }
    }
    unreachable!("loop returns on the last attempt")
}

/// Reads the server's `HELLO`, returning its resume position.
fn read_hello(stream: &mut NetStream) -> Result<u64, ServeError> {
    let mut reader = FrameReader::new();
    let mut chunk = [0u8; 256];
    loop {
        if let Some(f) = reader.next_frame()? {
            if f.kind == wire::FRAME_HELLO {
                return Ok(wire::decode_hello(f.payload)?);
            }
            return Err(ServeError::Wire(WireError::BadPayload(
                "expected HELLO as the first server frame",
            )));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ServeError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before HELLO",
            )));
        }
        reader.extend(&chunk[..n]);
    }
}

/// Streams (a prefix of) a recorded trace to a gateway, resuming from
/// the server's announced position and reconnecting with capped
/// exponential backoff on failure.
///
/// In [`Endpoint::FileTail`] mode the client appends frames to the
/// file instead; there is no handshake, so `limit` is the only cursor
/// and restarts re-append from zero.
///
/// # Errors
///
/// Returns [`ServeError::Connect`] when dialing keeps failing, and
/// [`ServeError::Io`]/[`ServeError::Wire`] on unrecoverable transport
/// or handshake failures.
pub fn replay_client(
    endpoint: &Endpoint,
    clicks: &[Click],
    config: &ClientConfig,
) -> Result<ClientStats, ServeError> {
    let total = config
        .limit
        .map_or(clicks.len() as u64, |l| l.min(clicks.len() as u64));
    let frame_clicks = config.frame_clicks.max(1);
    let mut stats = ClientStats::default();

    if let Endpoint::FileTail(path) = endpoint {
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let mut buf = Vec::with_capacity(frame_clicks * wire::CLICK_RECORD_BYTES + 64);
        for chunk in
            clicks[..usize::try_from(total).expect("trace fits in memory")].chunks(frame_clicks)
        {
            buf.clear();
            wire::encode_clicks(&mut buf, chunk);
            file.write_all(&buf)?;
            stats.sent_clicks += chunk.len() as u64;
            if let Some(d) = config.throttle {
                thread::sleep(d);
            }
        }
        if config.drain {
            buf.clear();
            wire::encode_drain(&mut buf);
            file.write_all(&buf)?;
        }
        return Ok(stats);
    }

    let mut first_hello = true;
    let mut buf = Vec::with_capacity(frame_clicks * wire::CLICK_RECORD_BYTES + 64);
    loop {
        let (mut stream, retries) = connect_backoff(endpoint, config)?;
        stats.connect_retries += retries;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        let position = match read_hello(&mut stream) {
            Ok(p) => p,
            Err(_) if stats.reconnects < u64::from(config.max_reconnects) => {
                stats.reconnects += 1;
                continue;
            }
            Err(e) => return Err(e),
        };
        stats.server_position = position;
        if first_hello {
            stats.skipped_clicks = position.min(total);
            first_hello = false;
        }
        let mut cursor = position.min(total);
        let mut broke = false;
        while cursor < total {
            let end = (cursor + frame_clicks as u64).min(total);
            buf.clear();
            wire::encode_clicks(
                &mut buf,
                &clicks[usize::try_from(cursor).expect("cursor fits")
                    ..usize::try_from(end).expect("cursor fits")],
            );
            if stream.write_all(&buf).is_err() {
                broke = true;
                break;
            }
            stats.sent_clicks += end - cursor;
            cursor = end;
            if let Some(d) = config.throttle {
                thread::sleep(d);
            }
        }
        if broke {
            if stats.reconnects >= u64::from(config.max_reconnects) {
                return Err(ServeError::Io(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "connection kept failing mid-stream",
                )));
            }
            stats.reconnects += 1;
            continue;
        }
        if config.drain {
            buf.clear();
            wire::encode_drain(&mut buf);
            if stream.write_all(&buf).is_err() {
                if stats.reconnects >= u64::from(config.max_reconnects) {
                    return Err(ServeError::Io(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "connection failed sending DRAIN",
                    )));
                }
                stats.reconnects += 1;
                continue;
            }
            // Hold the connection until the draining server closes it,
            // so every buffered byte is consumed before we exit.
            let mut sink = [0u8; 64];
            loop {
                match stream.read(&mut sink) {
                    Ok(0) => break,
                    Ok(_) => {}
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut => {}
                    Err(_) => break,
                }
            }
        }
        return Ok(stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_core::{Tbf, TbfConfig};
    use cfd_stream::{ClickId, PublisherId};

    fn mk_click(ip: u32) -> Click {
        Click::new(
            ClickId::new(ip, 7, AdId(ip % 4)),
            u64::from(ip),
            PublisherId(2),
            100,
        )
    }

    fn tbf_sharded(shards: usize) -> ShardedDetector<Tbf> {
        ShardedDetector::from_fn(9, shards, |_| {
            Tbf::new(
                TbfConfig::builder(1 << 10)
                    .entries((1 << 10) * 14)
                    .build()
                    .expect("cfg"),
            )
        })
        .expect("detector")
    }

    #[test]
    fn endpoint_parse_roundtrips() {
        for s in ["unix:/tmp/x.sock", "tcp:127.0.0.1:4100", "tail:/tmp/t.cfdw"] {
            let e = Endpoint::parse(s).expect("parses");
            assert_eq!(e.to_string(), s);
        }
        assert!(matches!(
            Endpoint::parse("http://nope"),
            Err(ServeError::BadEndpoint(_))
        ));
        assert!(
            Endpoint::parse("unix:").is_ok(),
            "empty path parses; bind fails later"
        );
    }

    #[test]
    fn hub_counts_full_waits_deterministically() {
        let hub = Hub::new(1, 0);
        let p = hub.producer();
        p.send(vec![mk_click(1)]); // fills capacity without waiting
        assert_eq!(hub.full_waits(), 0);
        thread::scope(|s| {
            let hub_ref = &hub;
            let p_ref = &p;
            s.spawn(move || {
                p_ref.send(vec![mk_click(2)]); // must block: queue is full
            });
            // The blocked send increments full_waits *before* waiting,
            // so this poll terminates deterministically.
            while hub_ref.full_waits() == 0 {
                thread::yield_now();
            }
            assert_eq!(hub_ref.recv().expect("first batch")[0].id.ip, 1);
            assert_eq!(hub_ref.recv().expect("second batch")[0].id.ip, 2);
        });
        assert_eq!(hub.full_waits(), 1);
        assert_eq!(hub.received(), 2);
        drop(p);
        assert!(hub.recv().is_none(), "closed and empty");
    }

    #[test]
    fn hub_survives_a_reader_panicking_under_the_lock() {
        // Regression: every Hub lock site used `.expect("hub lock")`,
        // so one reader thread panicking while holding the mutex
        // poisoned it and cascaded the panic into every other reader,
        // the segment runner, and the drain path — a wedged gateway
        // with work still queued. The sites now recover the guard via
        // `PoisonError::into_inner`.
        let hub = Arc::new(Hub::new(4, 0));
        let h = Arc::clone(&hub);
        thread::spawn(move || {
            let _guard = h.inner.lock().expect("first lock is clean");
            panic!("reader crashed while holding the hub lock");
        })
        .join()
        .expect_err("the reader thread must have panicked");
        assert!(hub.inner.is_poisoned(), "the panic poisoned the mutex");

        // The hub must keep serving: attach, send, recv, and drain all
        // cross the poisoned lock.
        let p = hub.producer();
        p.send(vec![mk_click(1)]);
        let batch = hub.recv().expect("queued batch survives the poison");
        assert_eq!(batch[0].id.ip, 1);
        assert_eq!(hub.received(), 1);
        drop(p);
        assert!(hub.recv().is_none(), "hub still drains cleanly to None");
    }

    #[test]
    fn hub_position_seeds_from_checkpoint() {
        let hub = Hub::new(4, 7_000);
        let p = hub.producer();
        p.send(vec![mk_click(1), mk_click(2)]);
        assert_eq!(hub.received(), 7_002);
    }

    #[test]
    fn segment_source_limits_and_carries_across_segments() {
        let hub = Hub::new(8, 0);
        let pool: Pool<Vec<Click>> = Pool::new();
        let p = hub.producer();
        for base in [0u32, 5] {
            p.send((base..base + 5).map(mk_click).collect());
        }
        drop(p);
        let mut source = SegmentSource::new(&hub, &pool);
        source.begin_segment(3);
        let first: Vec<u32> = source.by_ref().map(|c| c.id.ip).collect();
        assert_eq!(first, vec![0, 1, 2], "segment stops mid-batch at the limit");
        assert_eq!(source.taken(), 3);
        assert!(!source.is_closed());
        source.begin_segment(u64::MAX);
        let rest: Vec<u32> = source.by_ref().map(|c| c.id.ip).collect();
        assert_eq!(
            rest,
            vec![3, 4, 5, 6, 7, 8, 9],
            "carry resumes where the limit hit"
        );
        assert!(source.is_closed());
        source.begin_segment(u64::MAX);
        assert_eq!(source.next(), None, "closed source stays empty");
    }

    #[test]
    fn checkpoint_roundtrips_bit_for_bit() {
        let mut state = ServerState::new(tbf_sharded(2), Registry::new());
        state
            .registry
            .add_advertiser(Advertiser::new(AdvertiserId(1), "acme", 500_000));
        state
            .registry
            .add_campaign(Campaign {
                ad: AdId(3),
                advertiser: AdvertiserId(1),
                cpc_micros: 100,
            })
            .expect("advertiser registered");
        state
            .registry
            .advertiser_mut(AdvertiserId(1))
            .expect("exists")
            .try_charge(1_300);
        state.ledger.clicks = 40;
        state.ledger.charged = 13;
        state.ledger.duplicates_blocked = 27;
        state.ledger.revenue_micros = 1_300;
        state.ledger.per_publisher_micros.insert(2, 1_300);
        state.savings_micros = 2_700;
        state.scorer.set_tally(2, 40, 27);
        state.position = 40;
        for ip in 0..32 {
            let c = mk_click(ip);
            state.detector.observe(&c.key());
        }

        let bytes = state.checkpoint_bytes();
        let restored = ServerState::<Tbf>::restore(&bytes).expect("restores");
        assert_eq!(restored.position, 40);
        assert_eq!(restored.savings_micros, 2_700);
        assert_eq!(restored.ledger.clicks, 40);
        assert_eq!(restored.ledger.charged, 13);
        assert_eq!(restored.ledger.duplicates_blocked, 27);
        assert_eq!(restored.ledger.per_publisher_micros.get(&2), Some(&1_300));
        assert_eq!(
            restored
                .registry
                .advertiser(AdvertiserId(1))
                .expect("restored")
                .spent_micros,
            1_300
        );
        assert_eq!(
            restored
                .registry
                .campaign(AdId(3))
                .expect("restored")
                .cpc_micros,
            100
        );
        let tallies: Vec<_> = restored.scorer.tallies().collect();
        assert_eq!(tallies, vec![(2, 40, 27)]);
        // The detector round-trips exactly, and the whole state
        // re-serializes byte-identically (sorted maps → canonical).
        assert_eq!(restored.detector.checkpoint(), state.detector.checkpoint());
        assert_eq!(restored.checkpoint_bytes(), bytes);
    }

    #[test]
    fn checkpoint_rejects_corruption() {
        let state = ServerState::new(tbf_sharded(1), Registry::new());
        let bytes = state.checkpoint_bytes();
        assert!(matches!(
            ServerState::<Tbf>::restore(&bytes[..bytes.len() - 1]),
            Err(ServeError::BadCheckpoint("CRC mismatch"))
        ));
        let mut flipped = bytes.clone();
        flipped[10] ^= 0xFF;
        assert!(matches!(
            ServerState::<Tbf>::restore(&flipped),
            Err(ServeError::BadCheckpoint("CRC mismatch"))
        ));
        assert!(ServerState::<Tbf>::restore(&[]).is_err());
        // Valid CRC but wrong magic.
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        let crc = wire::crc32(&wrong[..wrong.len() - 4]);
        let n = wrong.len();
        wrong[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            ServerState::<Tbf>::restore(&wrong),
            Err(ServeError::BadCheckpoint("bad magic"))
        ));
    }

    #[test]
    fn checkpoint_file_write_is_atomic_and_readable() {
        let dir = std::env::temp_dir().join(format!("cfd-serve-test-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("state.cfdg");
        let mut state = ServerState::new(tbf_sharded(2), Registry::new());
        state.position = 123;
        let written = state.write_checkpoint(&path).expect("writes");
        assert_eq!(written, fs::metadata(&path).expect("exists").len() as usize);
        assert!(!path.with_extension("cfdg.tmp").exists() && !dir.join("state.cfdg.tmp").exists());
        let restored = ServerState::<Tbf>::read_checkpoint(&path).expect("reads");
        assert_eq!(restored.position, 123);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_error_displays() {
        let cases: Vec<(ServeError, &str)> = vec![
            (ServeError::BadEndpoint("x".into()), "bad endpoint"),
            (ServeError::BadCheckpoint("short"), "bad CFDG"),
            (
                ServeError::Connect {
                    attempts: 3,
                    last: io::Error::new(io::ErrorKind::ConnectionRefused, "refused"),
                },
                "3 attempts",
            ),
            (ServeError::Wire(WireError::BadMagic), "wire"),
            (ServeError::Io(io::Error::other("disk")), "i/o"),
        ];
        for (e, needle) in cases {
            assert!(
                e.to_string().contains(needle),
                "{e} should contain {needle}"
            );
        }
    }
}
