//! A concurrent click-processing pipeline.
//!
//! Real ad networks separate ingestion, fraud filtering, and billing
//! into stages. This module wires the suite's components into a
//! three-stage pipeline over bounded `crossbeam` channels
//! (backpressure included):
//!
//! ```text
//! ingest (caller) ──► detector stage ──► billing stage ──► report
//! ```
//!
//! The detector stage owns the [`DuplicateDetector`] exclusively — the
//! one-pass algorithms are inherently sequential over the stream, which
//! is exactly why they must be fast per element (Theorems 1 & 2). The
//! billing stage owns the registry/ledger. A shared [`parking_lot`]
//! snapshot slot lets other threads read progress without stopping the
//! pipeline.

use crate::billing::BillingEngine;
use crate::entities::Registry;
use crate::fraud::FraudScorer;
use crate::report::NetworkReport;
use cfd_stream::Click;
use cfd_windows::{DuplicateDetector, Verdict};
use crossbeam::channel;
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread;

/// A click annotated with its fraud verdict (detector → billing stage).
#[derive(Debug, Clone, Copy)]
struct JudgedClick {
    click: Click,
    verdict: Verdict,
}

/// Live progress counters readable while the pipeline runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineProgress {
    /// Clicks that passed the detector stage.
    pub detected: u64,
    /// Clicks fully billed.
    pub billed: u64,
}

/// Result of a pipeline run.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// The final network report.
    pub report: NetworkReport,
    /// Per-publisher fraud scores recorded by the detector stage.
    pub scorer: FraudScorer,
    /// The registry with final budget states.
    pub registry: Registry,
}

/// Runs `clicks` through a detector stage and a billing stage on
/// separate threads, with a bounded channel (capacity `queue`) between
/// each stage.
///
/// `progress` (optional) is updated continuously and can be polled from
/// other threads.
///
/// # Panics
///
/// Panics if a pipeline stage panics.
pub fn run_pipeline<D, I>(
    detector: D,
    registry: Registry,
    clicks: I,
    queue: usize,
    progress: Option<Arc<Mutex<PipelineProgress>>>,
) -> PipelineOutcome
where
    D: DuplicateDetector + Send,
    I: IntoIterator<Item = Click>,
{
    let (tx_raw, rx_raw) = channel::bounded::<Click>(queue.max(1));
    let (tx_judged, rx_judged) = channel::bounded::<JudgedClick>(queue.max(1));
    let progress_det = progress.clone();
    let progress_bill = progress;

    thread::scope(|s| {
        // Stage 1: fraud detection (exclusive detector ownership).
        let detector_stage = s.spawn(move || {
            let mut detector = detector;
            let mut scorer = FraudScorer::new();
            for click in rx_raw {
                let verdict = detector.observe(&click.key());
                scorer.record(&click, verdict);
                if let Some(p) = &progress_det {
                    p.lock().detected += 1;
                }
                if tx_judged.send(JudgedClick { click, verdict }).is_err() {
                    break; // billing stage gone; drain and stop
                }
            }
            (scorer, detector.memory_bits(), detector.name())
        });

        // Stage 2: billing (exclusive registry/ledger ownership). The
        // engine re-checks nothing: it trusts the verdict computed by
        // stage 1, so the detector is observed exactly once per click.
        let billing_stage = s.spawn(move || {
            let mut registry = registry;
            // An engine with a pass-through detector would observe twice;
            // instead apply verdicts directly against the ledger.
            let mut engine = BillingEngine::new(PrejudgedGate::default());
            let mut savings = 0u64;
            for judged in rx_judged {
                engine.detector_mut().next_verdict = judged.verdict;
                let outcome = engine.process(&judged.click, &mut registry);
                if outcome == crate::billing::ClickOutcome::DuplicateBlocked {
                    if let Some(c) = registry.campaign(judged.click.id.ad) {
                        savings += c.cpc_micros;
                    }
                }
                if let Some(p) = &progress_bill {
                    p.lock().billed += 1;
                }
            }
            (engine.into_ledger(), savings, registry)
        });

        // Ingest on the caller's thread.
        for click in clicks {
            if tx_raw.send(click).is_err() {
                break;
            }
        }
        drop(tx_raw);

        let (scorer, memory_bits, name) = detector_stage.join().expect("detector stage panicked");
        let (ledger, savings, registry) = billing_stage.join().expect("billing stage panicked");
        PipelineOutcome {
            report: NetworkReport::from_ledger(name, memory_bits, &ledger, savings),
            scorer,
            registry,
        }
    })
}

/// A detector stand-in that replays verdicts already computed by the
/// detector stage (so the billing engine's bookkeeping is reused without
/// double-observing).
#[derive(Debug)]
struct PrejudgedGate {
    next_verdict: Verdict,
}

impl Default for PrejudgedGate {
    fn default() -> Self {
        Self {
            next_verdict: Verdict::Distinct,
        }
    }
}

impl DuplicateDetector for PrejudgedGate {
    fn observe(&mut self, _id: &[u8]) -> Verdict {
        self.next_verdict
    }
    fn window(&self) -> cfd_windows::WindowSpec {
        cfd_windows::WindowSpec::Sliding { n: 1 }
    }
    fn memory_bits(&self) -> usize {
        0
    }
    fn reset(&mut self) {}
    fn name(&self) -> &'static str {
        "prejudged"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::{Advertiser, AdvertiserId, Campaign};
    use cfd_core::{Tbf, TbfConfig};
    use cfd_stream::{AdId, BotnetConfig, BotnetStream};

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.add_advertiser(Advertiser::new(AdvertiserId(1), "acme", u64::MAX / 4));
        for ad in 0..64 {
            r.add_campaign(Campaign {
                ad: AdId(ad),
                advertiser: AdvertiserId(1),
                cpc_micros: 100,
            })
            .expect("advertiser registered");
        }
        r
    }

    fn clicks(n: usize) -> Vec<Click> {
        BotnetStream::new(BotnetConfig::default(), 8, 64)
            .take(n)
            .map(|c| c.click)
            .collect()
    }

    #[test]
    fn pipeline_matches_sequential_network() {
        let cs = clicks(30_000);
        let mk = || {
            Tbf::new(TbfConfig::builder(2_048).entries(1 << 15).seed(4).build().expect("cfg"))
                .expect("detector")
        };
        // Sequential reference.
        let mut net = crate::network::AdNetwork::new(mk());
        let mut reg = registry();
        std::mem::swap(net.registry_mut(), &mut reg);
        let sequential = net.run(cs.iter());

        // Pipelined.
        let outcome = run_pipeline(mk(), registry(), cs.iter().copied(), 256, None);
        assert_eq!(outcome.report.charged, sequential.charged);
        assert_eq!(outcome.report.duplicates_blocked, sequential.duplicates_blocked);
        assert_eq!(outcome.report.revenue_micros, sequential.revenue_micros);
        assert_eq!(outcome.report.savings_micros, sequential.savings_micros);
    }

    #[test]
    fn progress_counters_advance() {
        let progress = Arc::new(Mutex::new(PipelineProgress::default()));
        let cs = clicks(5_000);
        let d = Tbf::new(TbfConfig::builder(512).entries(1 << 13).build().expect("cfg"))
            .expect("detector");
        let outcome = run_pipeline(d, registry(), cs, 64, Some(progress.clone()));
        let p = *progress.lock();
        assert_eq!(p.detected, 5_000);
        assert_eq!(p.billed, 5_000);
        assert_eq!(outcome.report.clicks, 5_000);
    }

    #[test]
    fn scorer_travels_with_the_outcome() {
        let cs = clicks(20_000);
        let d = Tbf::new(TbfConfig::builder(4_096).entries(1 << 16).build().expect("cfg"))
            .expect("detector");
        let outcome = run_pipeline(d, registry(), cs, 128, None);
        assert!(outcome.scorer.total_clicks() == 20_000);
        assert!(!outcome.scorer.scores(100).is_empty());
    }
}
