//! A concurrent, sharded click-processing pipeline.
//!
//! Real ad networks separate ingestion, fraud filtering, and billing
//! into stages. This module wires the suite's components into a
//! pipeline with the detector stage fanned out over the keyspace shards
//! of a [`ShardedDetector`]:
//!
//! ```text
//!                    ┌► shard worker 0 ─┐
//! ingest ──(route)───┼► shard worker 1 ─┼──► resequencer ► billing
//! (caller)           └► shard worker S  ┘    (seq order)
//! ```
//!
//! Two interchangeable [`Transport`]s move batches between stages, with
//! verdict-for-verdict identical results:
//!
//! * [`Transport::Ring`] (the default): bounded SPSC [`crate::ring`]s
//!   carry *pooled* batch buffers that cycle ingest → worker → billing
//!   → back to a [`crate::ring::Pool`], so the steady-state hot loop
//!   performs **zero heap allocations** (asserted by the
//!   `zero_alloc_steady_state` integration test) and never takes a
//!   blocking lock. Click keys travel in one flat buffer per batch,
//!   feeding the multi-lane batch hasher (`cfd_hash::lanes`) at both
//!   the routing and probing stages.
//! * [`Transport::Channel`]: bounded `crossbeam` channels, one fresh
//!   batch allocation per send — the pre-ring data plane, kept as the
//!   baseline the `throughput --pipeline` bench gates against.
//!
//! * **Ingest** (the caller's thread) stamps every click with a global
//!   sequence number, routes it by [`ShardRouter`] — batch-hashing all
//!   keys of a staging block per [`ShardRouter::route_flat_into`] on
//!   the ring path — and forwards clicks to the owning worker in
//!   batches (amortizing transport traffic).
//! * **Shard workers** each own one inner detector exclusively — the
//!   one-pass algorithms are inherently sequential *per keyspace shard*,
//!   which is exactly why Theorems 1 & 2 obsess over per-element cost —
//!   and judge whole batches via
//!   [`DuplicateDetector::observe_batch`] (hash-then-apply locality),
//!   or its allocation-free cousin
//!   [`DuplicateDetector::observe_flat_into`] on the ring path.
//!   Each worker keeps a private [`FraudScorer`]; the partial scorers
//!   are [merged](FraudScorer::merge) at join time.
//! * **Resequencer + billing** restores global stream order from the
//!   sequence numbers (a min-heap keyed by sequence) before settling
//!   verdicts through [`BillingEngine::process_judged`], so budget
//!   accounting is byte-identical to a sequential run no matter how the
//!   workers interleave.
//!
//! The single-detector [`run_pipeline`] is the one-shard special case of
//! the same machinery. Progress is published through lock-free
//! [`PipelineProgress`] atomics rather than a mutex, so polling from a
//! gauge thread never stalls the hot path.
//!
//! Like its predecessor, the detector stage judges *every* click,
//! including clicks on unregistered ads (billing later files those under
//! `unknown_ads` without consulting the verdict); a sequential
//! [`crate::network::AdNetwork`] run skips unknown ads entirely, so the
//! two only agree when every clicked ad is registered.
//!
//! ## Timed mode
//!
//! [`run_timed_pipeline`] / [`run_timed_sharded_pipeline`] run the same
//! machinery over time-based detectors ([`TimedDuplicateDetector`]):
//! the worker stage extracts each click's [`Click::tick`] alongside its
//! key and judges batches through `observe_batch_at` /
//! `observe_flat_at_into` instead of the count-based paths. Routing is
//! tick-blind (by key only), so each shard receives its clicks in
//! global stream order and advances its unit clock exactly as a
//! sequential run of the same [`ShardedDetector`] would.

use crate::billing::{BillingEngine, ClickOutcome, Ledger};
use crate::entities::Registry;
use crate::fraud::FraudScorer;
use crate::report::NetworkReport;
use crate::ring::{self, Backoff, Pool, TryPopError};
use crate::telemetry::PipelineTelemetry;
use cfd_core::sharded::{ShardRouter, ShardedDetector};
use cfd_stream::Click;
use cfd_telemetry::{DetectorHealth, DetectorStats, TenantHealth};
use cfd_windows::{DuplicateDetector, TimedDuplicateDetector, Verdict};
use crossbeam::channel;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Default clicks per inter-stage batch.
const DEFAULT_BATCH: usize = 256;

/// Bytes per click key ([`Click::key`] is a 16-byte array).
const KEY_LEN: usize = 16;

/// A click annotated with its fraud verdict (detector → billing stage).
#[derive(Debug, Clone, Copy)]
struct JudgedClick {
    click: Click,
    verdict: Verdict,
}

/// A batch of sequence-stamped clicks bound for one shard worker over
/// the channel transport.
struct RawBatch {
    items: Vec<(u64, Click)>,
}

/// A pooled batch of sequence-stamped clicks for the ring transport.
///
/// The 16-byte click keys ride along in one flat buffer (`KEY_LEN`
/// bytes per item, same order as `items`) so ingest hashes each key
/// once for routing and the worker feeds the same bytes straight into
/// [`DuplicateDetector::observe_flat_into`] without rebuilding them.
#[derive(Default)]
struct ClickBatch {
    items: Vec<(u64, Click)>,
    keys: Vec<u8>,
}

impl ClickBatch {
    fn clear(&mut self) {
        self.items.clear();
        self.keys.clear();
    }
}

/// A judged batch headed for the resequencer. Pooled on the ring path.
#[derive(Default)]
struct JudgedBatch {
    items: Vec<(u64, JudgedClick)>,
}

/// Heap entry of the resequencer, ordered by sequence number only.
struct Pending {
    seq: u64,
    judged: JudgedClick,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.seq.cmp(&other.seq)
    }
}

/// Live progress counters readable while the pipeline runs.
///
/// Plain atomics: stage threads publish with relaxed stores, gauges poll
/// with [`PipelineProgress::detected`] / [`PipelineProgress::billed`]
/// without ever contending a lock.
#[derive(Debug, Default)]
pub struct PipelineProgress {
    detected: AtomicU64,
    billed: AtomicU64,
}

impl PipelineProgress {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Clicks that passed the detector stage so far.
    #[must_use]
    pub fn detected(&self) -> u64 {
        self.detected.load(Ordering::Relaxed)
    }

    /// Clicks fully billed so far.
    #[must_use]
    pub fn billed(&self) -> u64 {
        self.billed.load(Ordering::Relaxed)
    }
}

/// Inter-stage transport of the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Bounded `crossbeam` channels: mutex + condvar wakeups and one
    /// fresh batch allocation per send. The pre-ring data plane, kept
    /// as the benchmark baseline.
    Channel,
    /// Bounded SPSC rings with pooled, recycled batch buffers: no
    /// blocking locks and no steady-state heap allocation on the hot
    /// path.
    #[default]
    Ring,
}

/// Tuning knobs of the sharded pipeline.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Clicks per inter-stage batch (larger batches amortize transport
    /// overhead; smaller ones bound resequencer latency).
    pub batch: usize,
    /// Bounded queue capacity per worker, in batches (backpressure).
    /// On the ring transport this is the ring capacity, rounded up to
    /// a power of two.
    pub queue: usize,
    /// How batches move between stages (rings by default).
    pub transport: Transport,
    /// Best-effort pin of shard worker `i` to CPU `i` (modulo the
    /// available parallelism) via `taskset`; ignored where unsupported.
    pub pin_workers: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            batch: DEFAULT_BATCH,
            queue: 16,
            transport: Transport::default(),
            pin_workers: false,
        }
    }
}

/// Result of a pipeline run.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// The final network report.
    pub report: NetworkReport,
    /// Per-publisher fraud scores recorded by the detector stage.
    pub scorer: FraudScorer,
    /// The registry with final budget states.
    pub registry: Registry,
    /// Final per-shard detector health samples, taken by each worker at
    /// shutdown. Empty for the uninstrumented entry points (plain
    /// [`run_pipeline`] / [`run_sharded_pipeline`]), which place no
    /// [`DetectorStats`] bound on the detector.
    pub health: Vec<DetectorHealth>,
}

/// Billing state a fan-out run starts from. Fresh (default) for the
/// one-shot entry points; carried forward between checkpoint-delimited
/// segments by [`run_sharded_segment`].
#[derive(Default)]
struct FanoutSeed {
    registry: Registry,
    ledger: Ledger,
    savings: u64,
}

/// Everything a fan-out run hands back: the final report inputs *plus*
/// the detectors themselves, so a segmented caller can reassemble the
/// [`ShardedDetector`] and keep streaming where this run stopped.
struct FanoutResult<D> {
    workers: Vec<D>,
    scorer: FraudScorer,
    memory_bits: usize,
    health: Vec<DetectorHealth>,
    ledger: Ledger,
    savings: u64,
    registry: Registry,
}

/// Cross-segment pipeline state for [`run_sharded_segment`]: what must
/// persist between two segments (and inside a serve checkpoint) for the
/// concatenation of segments to equal one continuous run.
#[derive(Debug, Default)]
pub struct SegmentState {
    /// Advertiser budgets and campaigns, with spend carried forward.
    pub registry: Registry,
    /// The billing ledger so far.
    pub ledger: Ledger,
    /// Fraud savings (micro-units) so far.
    pub savings_micros: u64,
    /// Per-publisher fraud tallies so far.
    pub scorer: FraudScorer,
}

impl SegmentState {
    /// Fresh state for a stream's first segment.
    #[must_use]
    pub fn new(registry: Registry) -> Self {
        Self {
            registry,
            ..Self::default()
        }
    }
}

/// Result of one [`run_sharded_segment`] call.
#[derive(Debug)]
pub struct SegmentOutcome<D> {
    /// The detector, reassembled with its window state advanced by this
    /// segment's clicks — feed it to the next segment.
    pub detector: ShardedDetector<D>,
    /// Billing state including this segment — feed it to the next
    /// segment, or build the final [`NetworkReport`] from it.
    pub state: SegmentState,
    /// Final per-shard health samples (empty when `telemetry` is
    /// `None`).
    pub health: Vec<DetectorHealth>,
    /// Total detector memory, bits (for the report).
    pub memory_bits: usize,
    /// Detector name (for the report).
    pub name: &'static str,
}

impl<D> SegmentOutcome<D> {
    /// The report a run ending at this segment would print.
    #[must_use]
    pub fn report(&self) -> NetworkReport {
        NetworkReport::from_ledger(
            self.name,
            self.memory_bits,
            &self.state.ledger,
            self.state.savings_micros,
        )
    }
}

/// Runs one *segment* of a longer stream through the sharded fan-out
/// pipeline, carrying detector and billing state across calls.
///
/// This is the engine under `cfd serve`'s periodic checkpointing: the
/// serve loop pulls a bounded span of clicks from its sources, runs it
/// as one segment, persists the returned state, and repeats. Because
/// the detector shards, router seed, ledger, budgets, savings, and
/// fraud tallies all carry over — and each segment preserves per-shard
/// observation order and reseqenced billing order — the concatenation
/// of segments is verdict-for-verdict and micro-for-micro identical to
/// one [`run_sharded_pipeline`] call over the whole stream (asserted by
/// the `serve_equivalence` integration test).
///
/// `telemetry` (optional) attaches the same instrument bundle as
/// [`run_sharded_pipeline_instrumented`]; pass the *same* bundle every
/// segment so counters accumulate across the run.
///
/// # Panics
///
/// Panics if a pipeline stage panics, or if `telemetry` was built for a
/// different shard count.
pub fn run_sharded_segment<D, I>(
    detector: ShardedDetector<D>,
    state: SegmentState,
    clicks: I,
    config: PipelineConfig,
    progress: Option<Arc<PipelineProgress>>,
    telemetry: Option<Arc<PipelineTelemetry>>,
) -> SegmentOutcome<D>
where
    D: DuplicateDetector + DetectorStats + Send,
    I: IntoIterator<Item = Click>,
{
    let name = DuplicateDetector::name(&detector);
    let router_seed = detector.router_seed();
    let router = detector.router();
    let workers = detector.into_shards();
    if let Some(t) = &telemetry {
        assert_eq!(
            t.shard_count(),
            workers.len(),
            "telemetry bundle sized for a different shard count"
        );
    }
    let instr = match telemetry {
        Some(t) => Instrumentation {
            telemetry: Some(t),
            health_of: |d: &D| Some(d.health()),
            tenant_health_of: |d: &D| d.tenant_health(),
        },
        None => Instrumentation::off(),
    };
    let seed = FanoutSeed {
        registry: state.registry,
        ledger: state.ledger,
        savings: state.savings_micros,
    };
    let r = match config.transport {
        Transport::Channel => {
            run_fanout_channels(workers, Some(router), seed, clicks, config, progress, instr)
        }
        Transport::Ring => {
            run_fanout_rings(workers, Some(router), seed, clicks, config, progress, instr)
        }
    };
    let mut scorer = state.scorer;
    scorer.merge(r.scorer);
    let detector = ShardedDetector::new(router_seed, r.workers)
        .expect("shards returned by the fan-out reassemble");
    SegmentOutcome {
        detector,
        state: SegmentState {
            registry: r.registry,
            ledger: r.ledger,
            savings_micros: r.savings,
            scorer,
        },
        health: r.health,
        memory_bits: r.memory_bits,
        name,
    }
}

/// Instrumentation plumbing for [`run_fanout`]: the optional metric
/// bundle plus a monomorphized health probe. Uninstrumented entry
/// points pass `telemetry: None` and a `health_of` that returns `None`,
/// so the hot path stays free of `DetectorStats` bounds *and* timing
/// calls.
struct Instrumentation<D> {
    telemetry: Option<Arc<PipelineTelemetry>>,
    health_of: fn(&D) -> Option<DetectorHealth>,
    tenant_health_of: fn(&D) -> Option<TenantHealth>,
}

impl<D> Instrumentation<D> {
    fn off() -> Self {
        Self {
            telemetry: None,
            health_of: |_| None,
            tenant_health_of: |_| None,
        }
    }
}

/// Saturating nanosecond count for histogram recording.
fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// What a shard worker needs from its detector: batch judgment at the
/// two call sites (slice keys on the channel path, flat keys on the
/// ring path) plus the memory tally for the report. Count-based
/// detectors get it for free via the blanket impl; time-based detectors
/// ride in a [`TimedJudge`], which threads each click's tick through.
/// Keeping this private lets one fan-out engine serve both modes
/// without a public trait surface.
trait BatchJudge {
    /// Judges pre-built slice keys, one per item of `items` in order.
    fn judge_refs(&mut self, refs: &[&[u8]], items: &[(u64, Click)]) -> Vec<Verdict>;

    /// Judges `KEY_LEN`-stride flat keys built at ingest, writing
    /// verdicts into `out` (cleared first, capacity reused).
    fn judge_flat(&mut self, keys: &[u8], items: &[(u64, Click)], out: &mut Vec<Verdict>);

    /// Total detector payload memory, in bits.
    fn memory_bits(&self) -> usize;
}

impl<D: DuplicateDetector> BatchJudge for D {
    fn judge_refs(&mut self, refs: &[&[u8]], _items: &[(u64, Click)]) -> Vec<Verdict> {
        self.observe_batch(refs)
    }
    fn judge_flat(&mut self, keys: &[u8], _items: &[(u64, Click)], out: &mut Vec<Verdict>) {
        self.observe_flat_into(keys, KEY_LEN, out);
    }
    fn memory_bits(&self) -> usize {
        DuplicateDetector::memory_bits(self)
    }
}

/// Adapter running a [`TimedDuplicateDetector`] behind [`BatchJudge`]:
/// extracts each click's [`Click::tick`] into a recycled buffer and
/// forwards to the timed batch paths. Deliberately *not* a
/// `DuplicateDetector` (ticks are mandatory), which is also what keeps
/// the blanket impl above coherent.
struct TimedJudge<D> {
    inner: D,
    ticks: Vec<u64>,
}

impl<D> TimedJudge<D> {
    fn new(inner: D) -> Self {
        Self {
            inner,
            ticks: Vec::new(),
        }
    }
}

impl<D: TimedDuplicateDetector> BatchJudge for TimedJudge<D> {
    fn judge_refs(&mut self, refs: &[&[u8]], items: &[(u64, Click)]) -> Vec<Verdict> {
        self.ticks.clear();
        self.ticks.extend(items.iter().map(|(_, c)| c.tick));
        self.inner.observe_batch_at(refs, &self.ticks)
    }
    fn judge_flat(&mut self, keys: &[u8], items: &[(u64, Click)], out: &mut Vec<Verdict>) {
        self.ticks.clear();
        self.ticks.extend(items.iter().map(|(_, c)| c.tick));
        self.inner
            .observe_flat_at_into(keys, KEY_LEN, &self.ticks, out);
    }
    fn memory_bits(&self) -> usize {
        self.inner.memory_bits()
    }
}

/// Runs `clicks` through a single-detector stage and a billing stage on
/// separate threads, with bounded channels (roughly `queue` in-flight
/// clicks) between stages.
///
/// This is the one-shard special case of [`run_sharded_pipeline`];
/// clicks are judged in batches through
/// [`DuplicateDetector::observe_batch`], verdict-for-verdict identical
/// to per-click observation.
///
/// `progress` (optional) is updated continuously and can be polled from
/// other threads.
///
/// # Panics
///
/// Panics if a pipeline stage panics.
pub fn run_pipeline<D, I>(
    detector: D,
    registry: Registry,
    clicks: I,
    queue: usize,
    progress: Option<Arc<PipelineProgress>>,
) -> PipelineOutcome
where
    D: DuplicateDetector + Send,
    I: IntoIterator<Item = Click>,
{
    let queue = queue.max(1);
    let batch = queue.min(DEFAULT_BATCH);
    let name = detector.name();
    let cfg = PipelineConfig {
        batch,
        queue: queue.div_ceil(batch),
        ..PipelineConfig::default()
    };
    run_fanout(
        vec![detector],
        None,
        name,
        registry,
        clicks,
        cfg,
        progress,
        Instrumentation::off(),
    )
}

/// [`run_pipeline`] with live telemetry: per-stage latency histograms,
/// queue-depth gauges, and on-request detector health flow into
/// `telemetry`'s registry while the run is in flight, and
/// [`PipelineOutcome::health`] carries the final detector sample.
///
/// # Panics
///
/// Panics if `telemetry` was not built for exactly one shard, or if a
/// pipeline stage panics.
pub fn run_pipeline_instrumented<D, I>(
    detector: D,
    registry: Registry,
    clicks: I,
    queue: usize,
    progress: Option<Arc<PipelineProgress>>,
    telemetry: Arc<PipelineTelemetry>,
) -> PipelineOutcome
where
    D: DuplicateDetector + DetectorStats + Send,
    I: IntoIterator<Item = Click>,
{
    assert_eq!(
        telemetry.shard_count(),
        1,
        "single-detector pipeline needs a 1-shard telemetry bundle"
    );
    let queue = queue.max(1);
    let batch = queue.min(DEFAULT_BATCH);
    let name = detector.name();
    let cfg = PipelineConfig {
        batch,
        queue: queue.div_ceil(batch),
        ..PipelineConfig::default()
    };
    run_fanout(
        vec![detector],
        None,
        name,
        registry,
        clicks,
        cfg,
        progress,
        Instrumentation {
            telemetry: Some(telemetry),
            health_of: |d| Some(d.health()),
            tenant_health_of: |d| d.tenant_health(),
        },
    )
}

/// Runs `clicks` through one detector worker thread *per shard* of
/// `detector`, an order-restoring resequencer, and a billing stage.
///
/// The ingest thread routes every click to its keyspace shard, so each
/// worker sees exactly the subsequence its shard would see under
/// single-threaded [`ShardedDetector::observe`] — verdicts are
/// identical, and the resequencer makes billing order identical too.
///
/// # Panics
///
/// Panics if a pipeline stage panics.
pub fn run_sharded_pipeline<D, I>(
    detector: ShardedDetector<D>,
    registry: Registry,
    clicks: I,
    config: PipelineConfig,
    progress: Option<Arc<PipelineProgress>>,
) -> PipelineOutcome
where
    D: DuplicateDetector + Send,
    I: IntoIterator<Item = Click>,
{
    let name = detector.name();
    let router = detector.router();
    let workers = detector.into_shards();
    run_fanout(
        workers,
        Some(router),
        name,
        registry,
        clicks,
        config,
        progress,
        Instrumentation::off(),
    )
}

/// [`run_sharded_pipeline`] with live telemetry: one queue-depth gauge
/// and health-gauge set per shard worker, shared per-stage latency
/// histograms, and resequencer stall counters, all in `telemetry`'s
/// registry. [`PipelineOutcome::health`] carries one final
/// [`DetectorHealth`] per shard, in shard order.
///
/// # Panics
///
/// Panics if `telemetry.shard_count()` differs from the detector's
/// shard count, or if a pipeline stage panics.
pub fn run_sharded_pipeline_instrumented<D, I>(
    detector: ShardedDetector<D>,
    registry: Registry,
    clicks: I,
    config: PipelineConfig,
    progress: Option<Arc<PipelineProgress>>,
    telemetry: Arc<PipelineTelemetry>,
) -> PipelineOutcome
where
    D: DuplicateDetector + DetectorStats + Send,
    I: IntoIterator<Item = Click>,
{
    assert_eq!(
        telemetry.shard_count(),
        detector.shards().len(),
        "telemetry bundle sized for a different shard count"
    );
    let name = detector.name();
    let router = detector.router();
    let workers = detector.into_shards();
    run_fanout(
        workers,
        Some(router),
        name,
        registry,
        clicks,
        config,
        progress,
        Instrumentation {
            telemetry: Some(telemetry),
            health_of: |d| Some(d.health()),
            tenant_health_of: |d| d.tenant_health(),
        },
    )
}

/// [`run_pipeline`] over a time-based detector: clicks are judged at
/// their own [`Click::tick`] through
/// [`TimedDuplicateDetector::observe_batch_at`] (or the flat-key path
/// on the ring transport), verdict-for-verdict identical to sequential
/// `observe_at` calls in stream order.
///
/// # Panics
///
/// Panics if a pipeline stage panics.
pub fn run_timed_pipeline<D, I>(
    detector: D,
    registry: Registry,
    clicks: I,
    queue: usize,
    progress: Option<Arc<PipelineProgress>>,
) -> PipelineOutcome
where
    D: TimedDuplicateDetector + Send,
    I: IntoIterator<Item = Click>,
{
    let queue = queue.max(1);
    let batch = queue.min(DEFAULT_BATCH);
    let name = detector.name();
    let cfg = PipelineConfig {
        batch,
        queue: queue.div_ceil(batch),
        ..PipelineConfig::default()
    };
    run_fanout(
        vec![TimedJudge::new(detector)],
        None,
        name,
        registry,
        clicks,
        cfg,
        progress,
        Instrumentation::off(),
    )
}

/// [`run_timed_pipeline`] with live telemetry; see
/// [`run_pipeline_instrumented`] for what flows into `telemetry`.
///
/// # Panics
///
/// Panics if `telemetry` was not built for exactly one shard, or if a
/// pipeline stage panics.
pub fn run_timed_pipeline_instrumented<D, I>(
    detector: D,
    registry: Registry,
    clicks: I,
    queue: usize,
    progress: Option<Arc<PipelineProgress>>,
    telemetry: Arc<PipelineTelemetry>,
) -> PipelineOutcome
where
    D: TimedDuplicateDetector + DetectorStats + Send,
    I: IntoIterator<Item = Click>,
{
    assert_eq!(
        telemetry.shard_count(),
        1,
        "single-detector pipeline needs a 1-shard telemetry bundle"
    );
    let queue = queue.max(1);
    let batch = queue.min(DEFAULT_BATCH);
    let name = detector.name();
    let cfg = PipelineConfig {
        batch,
        queue: queue.div_ceil(batch),
        ..PipelineConfig::default()
    };
    run_fanout(
        vec![TimedJudge::new(detector)],
        None,
        name,
        registry,
        clicks,
        cfg,
        progress,
        Instrumentation {
            telemetry: Some(telemetry),
            health_of: |j| Some(j.inner.health()),
            tenant_health_of: |j| j.inner.tenant_health(),
        },
    )
}

/// [`run_sharded_pipeline`] over time-based shards: one worker thread
/// per shard of `detector`, each judging its keyspace subsequence at
/// the clicks' own ticks. Routing is tick-blind, so verdicts equal a
/// sequential [`TimedDuplicateDetector::observe_at`] run of the same
/// `ShardedDetector`, and the resequencer makes billing order identical
/// too.
///
/// # Panics
///
/// Panics if a pipeline stage panics.
pub fn run_timed_sharded_pipeline<D, I>(
    detector: ShardedDetector<D>,
    registry: Registry,
    clicks: I,
    config: PipelineConfig,
    progress: Option<Arc<PipelineProgress>>,
) -> PipelineOutcome
where
    D: TimedDuplicateDetector + Send,
    I: IntoIterator<Item = Click>,
{
    let name = TimedDuplicateDetector::name(&detector);
    let router = detector.router();
    let workers = detector.into_shards().into_iter().map(TimedJudge::new);
    run_fanout(
        workers.collect(),
        Some(router),
        name,
        registry,
        clicks,
        config,
        progress,
        Instrumentation::off(),
    )
}

/// [`run_timed_sharded_pipeline`] with live telemetry; see
/// [`run_sharded_pipeline_instrumented`] for what flows into
/// `telemetry`.
///
/// # Panics
///
/// Panics if `telemetry.shard_count()` differs from the detector's
/// shard count, or if a pipeline stage panics.
pub fn run_timed_sharded_pipeline_instrumented<D, I>(
    detector: ShardedDetector<D>,
    registry: Registry,
    clicks: I,
    config: PipelineConfig,
    progress: Option<Arc<PipelineProgress>>,
    telemetry: Arc<PipelineTelemetry>,
) -> PipelineOutcome
where
    D: TimedDuplicateDetector + DetectorStats + Send,
    I: IntoIterator<Item = Click>,
{
    assert_eq!(
        telemetry.shard_count(),
        detector.shards().len(),
        "telemetry bundle sized for a different shard count"
    );
    let name = TimedDuplicateDetector::name(&detector);
    let router = detector.router();
    let workers = detector.into_shards().into_iter().map(TimedJudge::new);
    run_fanout(
        workers.collect(),
        Some(router),
        name,
        registry,
        clicks,
        config,
        progress,
        Instrumentation {
            telemetry: Some(telemetry),
            health_of: |j| Some(j.inner.health()),
            tenant_health_of: |j| j.inner.tenant_health(),
        },
    )
}

/// Settles one judged click against the ledger, tallying fraud savings.
fn settle_one(
    engine: &mut BillingEngine<()>,
    registry: &mut Registry,
    savings: &mut u64,
    progress: Option<&PipelineProgress>,
    judged: &JudgedClick,
) {
    let outcome = engine.process_judged(&judged.click, judged.verdict, registry);
    if outcome == ClickOutcome::DuplicateBlocked {
        if let Some(c) = registry.campaign(judged.click.id.ad) {
            *savings += c.cpc_micros;
        }
    }
    if let Some(p) = progress {
        p.billed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Best-effort pin of the calling thread to `cpu` (modulo the number
/// of available CPUs), shelling out to `taskset` so the crate stays
/// free of `unsafe`. Returns `false` when the platform or tooling does
/// not support pinning; callers treat pinning as advisory.
#[cfg(target_os = "linux")]
fn pin_current_thread(cpu: usize) -> bool {
    let Ok(link) = std::fs::read_link("/proc/thread-self") else {
        return false;
    };
    let Some(tid) = link.file_name().and_then(|s| s.to_str()) else {
        return false;
    };
    let cpus = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    std::process::Command::new("taskset")
        .args(["-p", "-c", &(cpu % cpus).to_string(), tid])
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

#[cfg(not(target_os = "linux"))]
fn pin_current_thread(_cpu: usize) -> bool {
    false
}

/// The shared fan-out engine behind all public entry points: validates
/// the topology, then dispatches on [`PipelineConfig::transport`].
#[allow(clippy::too_many_arguments)]
fn run_fanout<D, I>(
    workers: Vec<D>,
    router: Option<ShardRouter>,
    name: &'static str,
    registry: Registry,
    clicks: I,
    config: PipelineConfig,
    progress: Option<Arc<PipelineProgress>>,
    instr: Instrumentation<D>,
) -> PipelineOutcome
where
    D: BatchJudge + Send,
    I: IntoIterator<Item = Click>,
{
    assert!(!workers.is_empty(), "pipeline needs at least one detector");
    if let Some(t) = &instr.telemetry {
        assert_eq!(
            t.shard_count(),
            workers.len(),
            "telemetry bundle sized for a different shard count"
        );
    }
    let seed = FanoutSeed {
        registry,
        ..FanoutSeed::default()
    };
    let r = match config.transport {
        Transport::Channel => {
            run_fanout_channels(workers, router, seed, clicks, config, progress, instr)
        }
        Transport::Ring => run_fanout_rings(workers, router, seed, clicks, config, progress, instr),
    };
    PipelineOutcome {
        report: NetworkReport::from_ledger(name, r.memory_bits, &r.ledger, r.savings),
        scorer: r.scorer,
        registry: r.registry,
        health: r.health,
    }
}

/// The channel-transport fan-out: bounded `crossbeam` channels between
/// stages, one fresh batch allocation per send.
///
/// `router: None` sends everything to the single worker (no routing
/// hash on the ingest path). When `instr` carries a telemetry bundle,
/// every stage times itself per batch; with `telemetry: None` the only
/// residue is a handful of `Option` branches per batch.
#[allow(clippy::too_many_arguments)]
fn run_fanout_channels<D, I>(
    workers: Vec<D>,
    router: Option<ShardRouter>,
    seed: FanoutSeed,
    clicks: I,
    config: PipelineConfig,
    progress: Option<Arc<PipelineProgress>>,
    instr: Instrumentation<D>,
) -> FanoutResult<D>
where
    D: BatchJudge + Send,
    I: IntoIterator<Item = Click>,
{
    let batch = config.batch.max(1);
    let queue = config.queue.max(1);
    let shard_count = workers.len();
    let FanoutSeed {
        registry,
        ledger: seed_ledger,
        savings: seed_savings,
    } = seed;

    thread::scope(|s| {
        // Workers fan in to one judged channel; capacity scales with the
        // worker count so a fast shard cannot starve the others.
        let (tx_judged, rx_judged) = channel::bounded::<JudgedBatch>(queue * shard_count);

        // Shard workers: exclusive detector ownership, private scorer.
        let mut raw_txs = Vec::with_capacity(shard_count);
        let mut handles = Vec::with_capacity(shard_count);
        for (idx, mut detector) in workers.into_iter().enumerate() {
            let (tx_raw, rx_raw) = channel::bounded::<RawBatch>(queue);
            raw_txs.push(tx_raw);
            let tx_judged = tx_judged.clone();
            let progress = progress.clone();
            let telemetry = instr.telemetry.clone();
            let health_of = instr.health_of;
            let tenant_health_of = instr.tenant_health_of;
            let pin = config.pin_workers;
            handles.push(s.spawn(move || {
                if pin {
                    pin_current_thread(idx);
                }
                let telem = telemetry.as_deref();
                let mut scorer = FraudScorer::new();
                let mut keys: Vec<[u8; 16]> = Vec::with_capacity(batch);
                for RawBatch { items } in rx_raw {
                    // Stage timing brackets: t0 → keys built (hash),
                    // then → verdicts out (probe). Skipped entirely when
                    // telemetry is off.
                    let t0 = telem.map(|t| {
                        t.shard_queue_depth(idx).sub(1);
                        Instant::now()
                    });
                    keys.clear();
                    keys.extend(items.iter().map(|(_, c)| c.key()));
                    let refs: Vec<&[u8]> = keys.iter().map(<[u8; 16]>::as_slice).collect();
                    let t1 = telem.zip(t0).map(|(t, t0)| {
                        let now = Instant::now();
                        t.stage_hash_ns().record(duration_ns(now - t0));
                        now
                    });
                    let verdicts = detector.judge_refs(&refs, &items);
                    if let Some((t, t1)) = telem.zip(t1) {
                        t.stage_probe_ns().record(duration_ns(t1.elapsed()));
                    }
                    let judged: Vec<(u64, JudgedClick)> = items
                        .into_iter()
                        .zip(verdicts)
                        .map(|((seq, click), verdict)| (seq, JudgedClick { click, verdict }))
                        .collect();
                    for (_, j) in &judged {
                        scorer.record(&j.click, j.verdict);
                    }
                    if let Some(p) = &progress {
                        p.detected.fetch_add(judged.len() as u64, Ordering::Relaxed);
                    }
                    if let Some(t) = telem {
                        t.shard_batches(idx).inc();
                        // Health scans are O(m): only pay when the
                        // reporter raised this shard's request flag.
                        if t.take_health_request(idx) {
                            if let Some(h) = health_of(&detector) {
                                t.publish_health(idx, &h);
                            }
                            if let Some(th) = tenant_health_of(&detector) {
                                t.publish_tenant_health(idx, &th);
                            }
                        }
                    }
                    if tx_judged.send(JudgedBatch { items: judged }).is_err() {
                        break; // billing stage gone; drain and stop
                    }
                }
                // Terminal health sample: unconditional, so short runs
                // that never tick a reporter still report final state.
                let health = health_of(&detector);
                if let Some((t, h)) = telem.zip(health.as_ref()) {
                    t.publish_health(idx, h);
                }
                if let Some((t, th)) = telem.zip(tenant_health_of(&detector)) {
                    t.publish_tenant_health(idx, &th);
                }
                let bits = detector.memory_bits();
                (detector, scorer, bits, health)
            }));
        }
        drop(tx_judged); // workers hold the remaining clones

        // Resequencer + billing: restore global order, settle verdicts.
        // The heap only ever holds out-of-order items already admitted
        // through the bounded channels, so it cannot grow unboundedly,
        // and draining `rx_judged` unconditionally keeps workers from
        // ever deadlocking against a full judged channel.
        let progress_bill = progress.clone();
        let telemetry_bill = instr.telemetry.clone();
        let billing = s.spawn(move || {
            let telem = telemetry_bill.as_deref();
            let mut registry = registry;
            let mut engine = BillingEngine::with_ledger((), seed_ledger);
            let mut savings = seed_savings;
            let mut next_seq = 0u64;
            // Pre-reserve the resequencer heap to its structural bound:
            // every pending item was admitted through a bounded judged
            // channel (queue * shard_count batches), plus one batch per
            // worker in flight and the batch being drained here. Lazily
            // grown (`BinaryHeap::new()`) the backlog high-water is
            // timing-dependent, so the heap would occasionally realloc
            // mid-run and break the zero-steady-state-allocation
            // invariant the soak test asserts.
            let mut pending: BinaryHeap<Reverse<Pending>> =
                BinaryHeap::with_capacity(shard_count * (queue + 2) * batch);
            // Clicks released in order this round; reused across
            // batches so the split into resequence/settle phases costs
            // no steady-state allocation. One round can release the
            // whole backlog, so it shares the heap's bound.
            let mut ready: Vec<JudgedClick> = Vec::with_capacity(shard_count * (queue + 2) * batch);
            for JudgedBatch { items } in rx_judged {
                let t0 = telem.map(|_| Instant::now());
                for (seq, judged) in items {
                    pending.push(Reverse(Pending { seq, judged }));
                }
                while pending.peek().is_some_and(|Reverse(p)| p.seq == next_seq) {
                    let Reverse(p) = pending.pop().expect("peeked");
                    ready.push(p.judged);
                    next_seq += 1;
                }
                let t1 = telem.zip(t0).map(|(t, t0)| {
                    let now = Instant::now();
                    t.stage_resequence_ns().record(duration_ns(now - t0));
                    if ready.is_empty() && !pending.is_empty() {
                        // Head-of-line gap: this batch released nothing.
                        t.reseq_stalls().inc();
                    }
                    t.pending_peak()
                        .set_max(i64::try_from(pending.len()).unwrap_or(i64::MAX));
                    now
                });
                for judged in ready.drain(..) {
                    settle_one(
                        &mut engine,
                        &mut registry,
                        &mut savings,
                        progress_bill.as_deref(),
                        &judged,
                    );
                }
                if let Some((t, t1)) = telem.zip(t1) {
                    t.stage_billing_ns().record(duration_ns(t1.elapsed()));
                }
            }
            // Workers are done: the remainder is a contiguous tail.
            while let Some(Reverse(p)) = pending.pop() {
                debug_assert_eq!(p.seq, next_seq, "resequencer hole at shutdown");
                settle_one(
                    &mut engine,
                    &mut registry,
                    &mut savings,
                    progress_bill.as_deref(),
                    &p.judged,
                );
                next_seq += 1;
            }
            (engine.into_ledger(), savings, registry)
        });

        // Ingest + route on the caller's thread.
        let mut buckets: Vec<Vec<(u64, Click)>> = (0..shard_count)
            .map(|_| Vec::with_capacity(batch))
            .collect();
        let telem = instr.telemetry.as_deref();
        'ingest: for (seq, click) in clicks.into_iter().enumerate() {
            let shard = router.as_ref().map_or(0, |r| r.route(&click.key()));
            buckets[shard].push((seq as u64, click));
            if buckets[shard].len() == batch {
                let full = std::mem::replace(&mut buckets[shard], Vec::with_capacity(batch));
                if let Some(t) = telem {
                    t.ingest_clicks().add(full.len() as u64);
                    t.shard_queue_depth(shard).add(1);
                }
                if raw_txs[shard].send(RawBatch { items: full }).is_err() {
                    break 'ingest; // a worker died; stop feeding
                }
            }
        }
        for (shard, (tx, bucket)) in raw_txs.iter().zip(buckets).enumerate() {
            if !bucket.is_empty() {
                if let Some(t) = telem {
                    t.ingest_clicks().add(bucket.len() as u64);
                    t.shard_queue_depth(shard).add(1);
                }
                let _ = tx.send(RawBatch { items: bucket });
            }
        }
        drop(raw_txs);

        let mut workers = Vec::with_capacity(shard_count);
        let mut scorer = FraudScorer::new();
        let mut memory_bits = 0usize;
        let mut health = Vec::new();
        for handle in handles {
            let (detector, partial, bits, shard_health) =
                handle.join().expect("detector worker panicked");
            workers.push(detector);
            scorer.merge(partial);
            memory_bits += bits;
            health.extend(shard_health);
        }
        let (ledger, savings, registry) = billing.join().expect("billing stage panicked");
        FanoutResult {
            workers,
            scorer,
            memory_bits,
            health,
            ledger,
            savings,
            registry,
        }
    })
}

/// The ring-transport fan-out: bounded SPSC rings between stages and
/// two shared [`Pool`]s recycling the batch buffers, so the steady
/// state allocates nothing.
///
/// Buffer life cycle: ingest `get`s a [`ClickBatch`] from the raw pool,
/// fills it, and pushes it down the owning shard's raw ring; the worker
/// judges it, moves the payload into a pooled [`JudgedBatch`], and
/// `put`s the emptied `ClickBatch` straight back; billing drains the
/// judged rings round-robin (with [`Backoff`] between empty sweeps) and
/// `put`s each drained `JudgedBatch` back. After warm-up every `get`
/// hits the pool — the pool-miss counters in telemetry stay flat.
///
/// Ingest hashes each staging block's keys once with the multi-lane
/// batch hasher ([`ShardRouter::route_flat_into`]) and ships the same
/// key bytes to the worker inside the batch, where
/// [`DuplicateDetector::observe_flat_into`] reuses them for probing.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn run_fanout_rings<D, I>(
    workers: Vec<D>,
    router: Option<ShardRouter>,
    seed: FanoutSeed,
    clicks: I,
    config: PipelineConfig,
    progress: Option<Arc<PipelineProgress>>,
    instr: Instrumentation<D>,
) -> FanoutResult<D>
where
    D: BatchJudge + Send,
    I: IntoIterator<Item = Click>,
{
    let batch = config.batch.max(1);
    let queue = config.queue.max(1);
    let shard_count = workers.len();
    let FanoutSeed {
        registry,
        ledger: seed_ledger,
        savings: seed_savings,
    } = seed;
    let raw_pool = Arc::new(Pool::<ClickBatch>::new());
    let judged_pool = Arc::new(Pool::<JudgedBatch>::new());
    // Pre-populate both pools to their structural in-flight bounds with
    // capacity-reserved buffers: per shard, `queue` batches can sit in a
    // ring plus one in the producer's hand and one in the consumer's.
    // An empty pool hands out `T::default()` (capacity-0 vectors) on a
    // miss, so lazily-grown pools reach their working population at a
    // timing-dependent point — occasionally *after* a steady-state
    // allocation watcher has started counting.
    for _ in 0..shard_count * (queue + 2) {
        raw_pool.put(ClickBatch {
            items: Vec::with_capacity(batch),
            keys: Vec::with_capacity(batch * KEY_LEN),
        });
        judged_pool.put(JudgedBatch {
            items: Vec::with_capacity(batch),
        });
    }

    thread::scope(|s| {
        // Shard workers: exclusive detector ownership, private scorer,
        // one raw ring in and one judged ring out per worker (SPSC at
        // both ends — no fan-in contention point).
        let mut raw_producers = Vec::with_capacity(shard_count);
        let mut judged_consumers = Vec::with_capacity(shard_count);
        let mut handles = Vec::with_capacity(shard_count);
        for (idx, mut detector) in workers.into_iter().enumerate() {
            let (raw_tx, mut raw_rx) = ring::spsc::<ClickBatch>(queue);
            let (mut judged_tx, judged_rx) = ring::spsc::<JudgedBatch>(queue);
            raw_producers.push(raw_tx);
            judged_consumers.push(judged_rx);
            let progress = progress.clone();
            let telemetry = instr.telemetry.clone();
            let health_of = instr.health_of;
            let tenant_health_of = instr.tenant_health_of;
            let raw_pool = Arc::clone(&raw_pool);
            let judged_pool = Arc::clone(&judged_pool);
            let pin = config.pin_workers;
            handles.push(s.spawn(move || {
                if pin {
                    pin_current_thread(idx);
                }
                let telem = telemetry.as_deref();
                let mut scorer = FraudScorer::new();
                let mut verdicts: Vec<Verdict> = Vec::with_capacity(batch);
                while let Some(mut b) = raw_rx.pop() {
                    let t0 = telem.map(|t| {
                        t.shard_queue_depth(idx).sub(1);
                        Instant::now()
                    });
                    // The key bytes were built (and lane-hashed for
                    // routing) at ingest; probe them directly.
                    detector.judge_flat(&b.keys, &b.items, &mut verdicts);
                    if let Some((t, t0)) = telem.zip(t0) {
                        t.stage_probe_ns().record(duration_ns(t0.elapsed()));
                    }
                    let mut judged = judged_pool.get();
                    judged.items.clear();
                    judged.items.extend(
                        b.items
                            .drain(..)
                            .zip(verdicts.iter().copied())
                            .map(|((seq, click), verdict)| (seq, JudgedClick { click, verdict })),
                    );
                    b.clear();
                    raw_pool.put(b);
                    for (_, j) in &judged.items {
                        scorer.record(&j.click, j.verdict);
                    }
                    if let Some(p) = &progress {
                        p.detected
                            .fetch_add(judged.items.len() as u64, Ordering::Relaxed);
                    }
                    if let Some(t) = telem {
                        t.shard_batches(idx).inc();
                        if t.take_health_request(idx) {
                            if let Some(h) = health_of(&detector) {
                                t.publish_health(idx, &h);
                            }
                            if let Some(th) = tenant_health_of(&detector) {
                                t.publish_tenant_health(idx, &th);
                            }
                        }
                    }
                    if judged_tx.push(judged).is_err() {
                        break; // billing stage gone; drain and stop
                    }
                }
                let health = health_of(&detector);
                if let Some((t, h)) = telem.zip(health.as_ref()) {
                    t.publish_health(idx, h);
                }
                if let Some((t, th)) = telem.zip(tenant_health_of(&detector)) {
                    t.publish_tenant_health(idx, &th);
                }
                if let Some(t) = telem {
                    // Backpressure totals for both of this shard's
                    // rings (the wait counters live on the shared ring
                    // state, so either end can read them).
                    t.shard_raw_full_waits(idx).add(raw_rx.stats().full_waits);
                    t.shard_judged_full_waits(idx)
                        .add(judged_tx.stats().full_waits);
                }
                let bits = detector.memory_bits();
                (detector, scorer, bits, health)
            }));
        }

        // Resequencer + billing: poll every judged ring round-robin,
        // restore global order, settle verdicts. Draining each ring
        // unconditionally keeps workers from deadlocking against a full
        // judged ring; the backoff bounds the cost of empty sweeps.
        let progress_bill = progress.clone();
        let telemetry_bill = instr.telemetry.clone();
        let judged_pool_bill = Arc::clone(&judged_pool);
        let billing = s.spawn(move || {
            let telem = telemetry_bill.as_deref();
            let mut registry = registry;
            let mut engine = BillingEngine::with_ledger((), seed_ledger);
            let mut savings = seed_savings;
            let mut next_seq = 0u64;
            // Same structural bound as the channel-transport resequencer:
            // per-shard judged rings hold at most `queue` batches each,
            // plus one in flight per worker and the one drained here.
            // Pre-reserving keeps the heap from reallocating when the
            // out-of-order backlog spikes mid-run (zero-steady-state-
            // allocation invariant).
            let mut pending: BinaryHeap<Reverse<Pending>> =
                BinaryHeap::with_capacity(shard_count * (queue + 2) * batch);
            let mut ready: Vec<JudgedClick> = Vec::with_capacity(shard_count * (queue + 2) * batch);
            let mut consumers = judged_consumers;
            let mut open = vec![true; consumers.len()];
            let mut live = consumers.len();
            let mut empty_polls = 0u64;
            let mut backoff = Backoff::new();
            while live > 0 {
                let mut progressed = false;
                for (ci, rx) in consumers.iter_mut().enumerate() {
                    if !open[ci] {
                        continue;
                    }
                    loop {
                        let mut jb = match rx.try_pop() {
                            Ok(jb) => jb,
                            Err(TryPopError::Empty) => break,
                            Err(TryPopError::Disconnected) => {
                                open[ci] = false;
                                live -= 1;
                                break;
                            }
                        };
                        progressed = true;
                        let t0 = telem.map(|_| Instant::now());
                        for (seq, judged) in jb.items.drain(..) {
                            pending.push(Reverse(Pending { seq, judged }));
                        }
                        judged_pool_bill.put(jb);
                        while pending.peek().is_some_and(|Reverse(p)| p.seq == next_seq) {
                            let Reverse(p) = pending.pop().expect("peeked");
                            ready.push(p.judged);
                            next_seq += 1;
                        }
                        let t1 = telem.zip(t0).map(|(t, t0)| {
                            let now = Instant::now();
                            t.stage_resequence_ns().record(duration_ns(now - t0));
                            if ready.is_empty() && !pending.is_empty() {
                                t.reseq_stalls().inc();
                            }
                            t.pending_peak()
                                .set_max(i64::try_from(pending.len()).unwrap_or(i64::MAX));
                            now
                        });
                        for judged in ready.drain(..) {
                            settle_one(
                                &mut engine,
                                &mut registry,
                                &mut savings,
                                progress_bill.as_deref(),
                                &judged,
                            );
                        }
                        if let Some((t, t1)) = telem.zip(t1) {
                            t.stage_billing_ns().record(duration_ns(t1.elapsed()));
                        }
                    }
                }
                if live == 0 {
                    break;
                }
                if progressed {
                    backoff.reset();
                } else {
                    empty_polls += 1;
                    backoff.snooze();
                }
            }
            // Workers are done: the remainder is a contiguous tail.
            while let Some(Reverse(p)) = pending.pop() {
                debug_assert_eq!(p.seq, next_seq, "resequencer hole at shutdown");
                settle_one(
                    &mut engine,
                    &mut registry,
                    &mut savings,
                    progress_bill.as_deref(),
                    &p.judged,
                );
                next_seq += 1;
            }
            if let Some(t) = telem {
                t.reseq_empty_polls().add(empty_polls);
            }
            (engine.into_ledger(), savings, registry)
        });

        // Ingest + route on the caller's thread: stage a block of
        // clicks, build all keys flat, lane-hash the block once for
        // routing, then scatter into per-shard pooled batches.
        let telem = instr.telemetry.as_deref();
        let mut iter = clicks.into_iter();
        let mut stage_clicks: Vec<Click> = Vec::with_capacity(batch);
        let mut stage_keys: Vec<u8> = Vec::with_capacity(batch * KEY_LEN);
        let mut routes: Vec<usize> = Vec::with_capacity(batch);
        let mut buckets: Vec<ClickBatch> = (0..shard_count).map(|_| raw_pool.get()).collect();
        let mut seq = 0u64;
        'ingest: loop {
            stage_clicks.clear();
            while stage_clicks.len() < batch {
                match iter.next() {
                    Some(c) => stage_clicks.push(c),
                    None => break,
                }
            }
            if stage_clicks.is_empty() {
                break;
            }
            let t0 = telem.map(|_| Instant::now());
            stage_keys.clear();
            for c in &stage_clicks {
                stage_keys.extend_from_slice(&c.key());
            }
            if let Some(r) = &router {
                r.route_flat_into(&stage_keys, KEY_LEN, &mut routes);
            } else {
                routes.clear();
                routes.resize(stage_clicks.len(), 0);
            }
            if let Some((t, t0)) = telem.zip(t0) {
                t.stage_hash_ns().record(duration_ns(t0.elapsed()));
            }
            for (i, click) in stage_clicks.drain(..).enumerate() {
                let shard = routes[i];
                let b = &mut buckets[shard];
                b.items.push((seq, click));
                b.keys
                    .extend_from_slice(&stage_keys[i * KEY_LEN..(i + 1) * KEY_LEN]);
                seq += 1;
                if b.items.len() == batch {
                    let full = std::mem::replace(b, raw_pool.get());
                    if let Some(t) = telem {
                        t.ingest_clicks().add(full.items.len() as u64);
                        t.shard_queue_depth(shard).add(1);
                    }
                    if raw_producers[shard].push(full).is_err() {
                        break 'ingest; // a worker died; stop feeding
                    }
                }
            }
        }
        for (shard, b) in buckets.into_iter().enumerate() {
            if b.items.is_empty() {
                raw_pool.put(b);
            } else {
                if let Some(t) = telem {
                    t.ingest_clicks().add(b.items.len() as u64);
                    t.shard_queue_depth(shard).add(1);
                }
                let _ = raw_producers[shard].push(b);
            }
        }
        drop(raw_producers);

        let mut workers = Vec::with_capacity(shard_count);
        let mut scorer = FraudScorer::new();
        let mut memory_bits = 0usize;
        let mut health = Vec::new();
        for handle in handles {
            let (detector, partial, bits, shard_health) =
                handle.join().expect("detector worker panicked");
            workers.push(detector);
            scorer.merge(partial);
            memory_bits += bits;
            health.extend(shard_health);
        }
        let (ledger, savings, registry) = billing.join().expect("billing stage panicked");
        if let Some(t) = telem {
            t.pool_raw_misses().add(raw_pool.misses());
            t.pool_judged_misses().add(judged_pool.misses());
        }
        FanoutResult {
            workers,
            scorer,
            memory_bits,
            health,
            ledger,
            savings,
            registry,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::{Advertiser, AdvertiserId, Campaign};
    use cfd_core::sharded::per_shard_window;
    use cfd_core::{Tbf, TbfConfig, TimeTbf, TimeTbfConfig};
    use cfd_stream::{AdId, BotnetConfig, BotnetStream};

    fn registry_with_budget(budget: u64) -> Registry {
        let mut r = Registry::new();
        r.add_advertiser(Advertiser::new(AdvertiserId(1), "acme", budget));
        for ad in 0..64 {
            r.add_campaign(Campaign {
                ad: AdId(ad),
                advertiser: AdvertiserId(1),
                cpc_micros: 100,
            })
            .expect("advertiser registered");
        }
        r
    }

    fn registry() -> Registry {
        registry_with_budget(u64::MAX / 4)
    }

    fn clicks(n: usize) -> Vec<Click> {
        BotnetStream::new(BotnetConfig::default(), 8, 64)
            .take(n)
            .map(|c| c.click)
            .collect()
    }

    fn sharded_tbf(n: usize, shards: usize) -> ShardedDetector<Tbf> {
        ShardedDetector::from_fn(7, shards, |_| {
            let n_s = per_shard_window(n, shards);
            Tbf::new(
                TbfConfig::builder(n_s)
                    .entries(n_s * 16)
                    .seed(4)
                    .build()
                    .expect("cfg"),
            )
        })
        .expect("sharded detector")
    }

    #[test]
    fn pipeline_matches_sequential_network() {
        let cs = clicks(30_000);
        let mk = || {
            Tbf::new(
                TbfConfig::builder(2_048)
                    .entries(1 << 15)
                    .seed(4)
                    .build()
                    .expect("cfg"),
            )
            .expect("detector")
        };
        // Sequential reference.
        let mut net = crate::network::AdNetwork::new(mk());
        let mut reg = registry();
        std::mem::swap(net.registry_mut(), &mut reg);
        let sequential = net.run(cs.iter());

        // Pipelined.
        let outcome = run_pipeline(mk(), registry(), cs.iter().copied(), 256, None);
        assert_eq!(outcome.report.charged, sequential.charged);
        assert_eq!(
            outcome.report.duplicates_blocked,
            sequential.duplicates_blocked
        );
        assert_eq!(outcome.report.revenue_micros, sequential.revenue_micros);
        assert_eq!(outcome.report.savings_micros, sequential.savings_micros);
    }

    /// The acceptance bar of the sharded layer: the parallel pipeline
    /// over `S` shard workers reproduces a sequential run of the *same*
    /// `ShardedDetector` bit for bit — the routing preserves per-shard
    /// observation order and the resequencer preserves billing order.
    /// A tight budget makes billing order-sensitive, so a resequencer
    /// bug cannot hide.
    #[test]
    fn sharded_pipeline_matches_sequential_sharded_network() {
        let cs = clicks(30_000);
        for (shards, budget) in [(1usize, u64::MAX / 4), (4, u64::MAX / 4), (4, 50_000)] {
            let mut net = crate::network::AdNetwork::new(sharded_tbf(2_048, shards));
            let mut reg = registry_with_budget(budget);
            std::mem::swap(net.registry_mut(), &mut reg);
            let sequential = net.run(cs.iter());

            let outcome = run_sharded_pipeline(
                sharded_tbf(2_048, shards),
                registry_with_budget(budget),
                cs.iter().copied(),
                PipelineConfig::default(),
                None,
            );
            assert_eq!(
                outcome.report.charged, sequential.charged,
                "shards={shards}"
            );
            assert_eq!(
                outcome.report.duplicates_blocked, sequential.duplicates_blocked,
                "shards={shards}"
            );
            assert_eq!(
                outcome.report.budget_rejections,
                sequential.budget_rejections
            );
            assert_eq!(outcome.report.revenue_micros, sequential.revenue_micros);
            assert_eq!(outcome.report.savings_micros, sequential.savings_micros);
            assert_eq!(
                outcome.report.detector_memory_bits,
                sequential.detector_memory_bits
            );
        }
    }

    /// Batch size is a throughput knob, never a semantics knob: the
    /// resequencer output is invariant under batch boundaries.
    #[test]
    fn batch_size_does_not_change_any_tally() {
        let cs = clicks(10_000);
        let run = |batch: usize| {
            run_sharded_pipeline(
                sharded_tbf(1_024, 3),
                registry_with_budget(400_000),
                cs.iter().copied(),
                PipelineConfig {
                    batch,
                    queue: 4,
                    ..PipelineConfig::default()
                },
                None,
            )
        };
        let a = run(1);
        let b = run(509);
        assert_eq!(a.report.charged, b.report.charged);
        assert_eq!(a.report.duplicates_blocked, b.report.duplicates_blocked);
        assert_eq!(a.report.budget_rejections, b.report.budget_rejections);
        assert_eq!(a.report.revenue_micros, b.report.revenue_micros);
        assert_eq!(a.scorer.total_clicks(), b.scorer.total_clicks());
    }

    #[test]
    fn progress_counters_advance() {
        let progress = Arc::new(PipelineProgress::new());
        let cs = clicks(5_000);
        let d = Tbf::new(
            TbfConfig::builder(512)
                .entries(1 << 13)
                .build()
                .expect("cfg"),
        )
        .expect("detector");
        let outcome = run_pipeline(d, registry(), cs, 64, Some(progress.clone()));
        assert_eq!(progress.detected(), 5_000);
        assert_eq!(progress.billed(), 5_000);
        assert_eq!(outcome.report.clicks, 5_000);
    }

    #[test]
    fn scorer_travels_with_the_outcome() {
        let cs = clicks(20_000);
        let d = Tbf::new(
            TbfConfig::builder(4_096)
                .entries(1 << 16)
                .build()
                .expect("cfg"),
        )
        .expect("detector");
        let outcome = run_pipeline(d, registry(), cs, 128, None);
        assert!(outcome.scorer.total_clicks() == 20_000);
        assert!(!outcome.scorer.scores(100).is_empty());
    }

    /// Telemetry is observation, not intervention: the instrumented run
    /// produces a report identical to the plain run's, while its
    /// registry fills with consistent stage metrics and the outcome
    /// carries one final health sample per shard.
    #[test]
    fn instrumented_run_matches_plain_run_and_reports() {
        let cs = clicks(20_000);
        let shards = 4;
        let plain = run_sharded_pipeline(
            sharded_tbf(2_048, shards),
            registry(),
            cs.iter().copied(),
            PipelineConfig::default(),
            None,
        );
        assert!(plain.health.is_empty(), "plain runs carry no health");

        let metrics = Arc::new(cfd_telemetry::Registry::new());
        let telemetry = Arc::new(PipelineTelemetry::new(&metrics, shards));
        telemetry.request_detector_health(); // exercise the request path
        let observed = run_sharded_pipeline_instrumented(
            sharded_tbf(2_048, shards),
            registry(),
            cs.iter().copied(),
            PipelineConfig::default(),
            None,
            Arc::clone(&telemetry),
        );
        assert_eq!(observed.report.charged, plain.report.charged);
        assert_eq!(
            observed.report.duplicates_blocked,
            plain.report.duplicates_blocked
        );
        assert_eq!(observed.report.revenue_micros, plain.report.revenue_micros);

        assert_eq!(observed.health.len(), shards, "one sample per shard");
        let total: u64 = observed.health.iter().map(|h| h.observed_elements).sum();
        assert_eq!(total, 20_000, "shard healths partition the stream");
        assert!(observed.health.iter().all(|h| h.fill_ratios[0] > 0.0));

        let snap = metrics.snapshot();
        assert_eq!(
            snap.get_counter("pipeline.ingest.clicks"),
            Some(20_000),
            "every click routed"
        );
        let batches: u64 = (0..shards)
            .map(|i| {
                snap.get_counter(&format!("pipeline.shard{i}.batches"))
                    .expect("registered")
            })
            .sum();
        assert!(batches > 0);
        for stage in ["hash", "probe", "resequence", "billing"] {
            let h = snap
                .get_histogram(&format!("pipeline.stage.{stage}_ns"))
                .expect("stage histogram registered");
            assert!(h.count > 0, "{stage} recorded no batches");
            assert!(h.max > 0, "{stage} latencies all zero");
        }
        // All queues drained at shutdown.
        for e in &snap.entries {
            if e.name.ends_with("queue_depth") {
                assert_eq!(e.value, cfd_telemetry::MetricValue::Gauge(0), "{}", e.name);
            }
        }
        // Ring-transport extras: the pools are pre-populated to their
        // structural in-flight bound, so no `get` ever finds them empty
        // — zero misses means zero mid-run buffer creation.
        let raw_misses = snap
            .get_counter("pipeline.pool.raw_misses")
            .expect("registered");
        assert_eq!(
            raw_misses, 0,
            "pre-populated pool ran dry: {raw_misses} raw-batch allocations"
        );
    }

    /// The single-detector instrumented entry point works with a boxed
    /// dynamic detector (the CLI's usage) and publishes terminal health.
    #[test]
    fn instrumented_single_shard_accepts_boxed_detector() {
        use cfd_windows::ObservableDetector;
        let cs = clicks(5_000);
        let d: Box<dyn ObservableDetector + Send> = Box::new(
            Tbf::new(
                TbfConfig::builder(512)
                    .entries(1 << 13)
                    .build()
                    .expect("cfg"),
            )
            .expect("detector"),
        );
        let metrics = Arc::new(cfd_telemetry::Registry::new());
        let telemetry = Arc::new(PipelineTelemetry::new(&metrics, 1));
        let outcome =
            run_pipeline_instrumented(d, registry(), cs, 64, None, Arc::clone(&telemetry));
        assert_eq!(outcome.report.clicks, 5_000);
        assert_eq!(outcome.health.len(), 1);
        assert_eq!(outcome.health[0].observed_elements, 5_000);
        let snap = metrics.snapshot();
        assert_eq!(snap.get_counter("pipeline.ingest.clicks"), Some(5_000));
    }

    /// The transport is a throughput knob, never a semantics knob: the
    /// ring data plane and the channel data plane produce identical
    /// reports and scorers, including under a tight order-sensitive
    /// budget where any reordering or dropped batch would show up.
    #[test]
    fn ring_and_channel_transports_agree() {
        let cs = clicks(30_000);
        let run = |transport: Transport| {
            run_sharded_pipeline(
                sharded_tbf(2_048, 4),
                registry_with_budget(50_000),
                cs.iter().copied(),
                PipelineConfig {
                    transport,
                    ..PipelineConfig::default()
                },
                None,
            )
        };
        let ring = run(Transport::Ring);
        let chan = run(Transport::Channel);
        assert_eq!(ring.report.charged, chan.report.charged);
        assert_eq!(
            ring.report.duplicates_blocked,
            chan.report.duplicates_blocked
        );
        assert_eq!(ring.report.budget_rejections, chan.report.budget_rejections);
        assert_eq!(ring.report.revenue_micros, chan.report.revenue_micros);
        assert_eq!(ring.report.savings_micros, chan.report.savings_micros);
        assert_eq!(
            ring.report.detector_memory_bits,
            chan.report.detector_memory_bits
        );
        assert_eq!(ring.scorer.total_clicks(), chan.scorer.total_clicks());
    }

    /// Worker pinning is advisory: the run completes and tallies
    /// normally whether or not `taskset` could honor the request.
    #[test]
    fn pinned_workers_complete_normally() {
        let cs = clicks(5_000);
        let outcome = run_sharded_pipeline(
            sharded_tbf(1_024, 2),
            registry(),
            cs.iter().copied(),
            PipelineConfig {
                pin_workers: true,
                ..PipelineConfig::default()
            },
            None,
        );
        assert_eq!(outcome.report.clicks, 5_000);
    }

    fn sharded_time_tbf(shards: usize) -> ShardedDetector<TimeTbf> {
        ShardedDetector::from_fn(7, shards, |_| {
            TimeTbf::new(TimeTbfConfig::new(64, 16, 1 << 14, 6, 4)?)
        })
        .expect("sharded timed detector")
    }

    /// The acceptance bar of the timed mode: the parallel timed pipeline
    /// blocks exactly the duplicates a sequential `observe_at` run of
    /// the same `ShardedDetector` finds, for 1 and 4 shards.
    #[test]
    fn timed_sharded_pipeline_matches_sequential_observe_at() {
        let cs = clicks(30_000);
        for shards in [1usize, 4] {
            let mut reference = sharded_time_tbf(shards);
            let dup_count = cs
                .iter()
                .filter(|c| reference.observe_at(&c.key(), c.tick) == Verdict::Duplicate)
                .count() as u64;

            let outcome = run_timed_sharded_pipeline(
                sharded_time_tbf(shards),
                registry(),
                cs.iter().copied(),
                PipelineConfig::default(),
                None,
            );
            assert_eq!(outcome.report.clicks, cs.len() as u64, "shards={shards}");
            assert_eq!(
                outcome.report.duplicates_blocked, dup_count,
                "shards={shards}"
            );
            assert_eq!(
                outcome.report.charged,
                cs.len() as u64 - dup_count,
                "shards={shards}"
            );
        }
    }

    /// Timed mode inherits transport neutrality: ring and channel data
    /// planes agree verdict for verdict under a tight budget.
    #[test]
    fn timed_ring_and_channel_transports_agree() {
        let cs = clicks(20_000);
        let run = |transport: Transport| {
            run_timed_sharded_pipeline(
                sharded_time_tbf(4),
                registry_with_budget(50_000),
                cs.iter().copied(),
                PipelineConfig {
                    transport,
                    ..PipelineConfig::default()
                },
                None,
            )
        };
        let ring = run(Transport::Ring);
        let chan = run(Transport::Channel);
        assert_eq!(ring.report.charged, chan.report.charged);
        assert_eq!(
            ring.report.duplicates_blocked,
            chan.report.duplicates_blocked
        );
        assert_eq!(ring.report.budget_rejections, chan.report.budget_rejections);
        assert_eq!(ring.report.revenue_micros, chan.report.revenue_micros);
        assert_eq!(ring.report.savings_micros, chan.report.savings_micros);
    }

    /// The timed instrumented entry points report per-shard health and
    /// keep the occupancy-scan budget: health sampling is the only scan.
    #[test]
    fn timed_instrumented_run_reports_health() {
        let cs = clicks(10_000);
        let shards = 4;
        let metrics = Arc::new(cfd_telemetry::Registry::new());
        let telemetry = Arc::new(PipelineTelemetry::new(&metrics, shards));
        let outcome = run_timed_sharded_pipeline_instrumented(
            sharded_time_tbf(shards),
            registry(),
            cs.iter().copied(),
            PipelineConfig::default(),
            None,
            Arc::clone(&telemetry),
        );
        assert_eq!(outcome.health.len(), shards, "one sample per shard");
        let total: u64 = outcome.health.iter().map(|h| h.observed_elements).sum();
        assert_eq!(total, 10_000, "shard healths partition the stream");

        // Single-shard boxed form (the CLI's usage).
        use cfd_windows::TimedObservableDetector;
        let d: Box<dyn TimedObservableDetector + Send> = Box::new(
            TimeTbf::new(TimeTbfConfig::new(64, 16, 1 << 14, 6, 4).expect("cfg"))
                .expect("detector"),
        );
        let metrics = Arc::new(cfd_telemetry::Registry::new());
        let telemetry = Arc::new(PipelineTelemetry::new(&metrics, 1));
        let outcome = run_timed_pipeline_instrumented(
            d,
            registry(),
            cs.iter().copied(),
            64,
            None,
            Arc::clone(&telemetry),
        );
        assert_eq!(outcome.report.clicks, 10_000);
        assert_eq!(outcome.health.len(), 1);
        assert_eq!(outcome.health[0].observed_elements, 10_000);
    }

    /// The merged scorer of a 4-worker run equals the single scorer of a
    /// 1-worker run over the same stream.
    #[test]
    fn sharded_scorer_merge_is_exact() {
        let cs = clicks(20_000);
        let wide = run_sharded_pipeline(
            sharded_tbf(2_048, 4),
            registry(),
            cs.iter().copied(),
            PipelineConfig::default(),
            None,
        );
        let mut scorer = FraudScorer::new();
        let mut detector = sharded_tbf(2_048, 4);
        for c in &cs {
            let v = detector.observe(&c.key());
            scorer.record(c, v);
        }
        assert_eq!(wide.scorer.total_clicks(), scorer.total_clicks());
        assert_eq!(wide.scorer.scores(50).len(), scorer.scores(50).len());
    }
}
