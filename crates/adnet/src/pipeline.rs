//! A concurrent, sharded click-processing pipeline.
//!
//! Real ad networks separate ingestion, fraud filtering, and billing
//! into stages. This module wires the suite's components into a
//! pipeline over bounded `crossbeam` channels (backpressure included),
//! with the detector stage fanned out over the keyspace shards of a
//! [`ShardedDetector`]:
//!
//! ```text
//!                    ┌► shard worker 0 ─┐
//! ingest ──(route)───┼► shard worker 1 ─┼──► resequencer ► billing
//! (caller)           └► shard worker S  ┘    (seq order)
//! ```
//!
//! * **Ingest** (the caller's thread) stamps every click with a global
//!   sequence number, routes it by [`ShardRouter`], and forwards clicks
//!   to the owning worker in batches (amortizing channel traffic).
//! * **Shard workers** each own one inner detector exclusively — the
//!   one-pass algorithms are inherently sequential *per keyspace shard*,
//!   which is exactly why Theorems 1 & 2 obsess over per-element cost —
//!   and judge whole batches via
//!   [`DuplicateDetector::observe_batch`] (hash-then-apply locality).
//!   Each worker keeps a private [`FraudScorer`]; the partial scorers
//!   are [merged](FraudScorer::merge) at join time.
//! * **Resequencer + billing** restores global stream order from the
//!   sequence numbers (a min-heap keyed by sequence) before settling
//!   verdicts through [`BillingEngine::process_judged`], so budget
//!   accounting is byte-identical to a sequential run no matter how the
//!   workers interleave.
//!
//! The single-detector [`run_pipeline`] is the one-shard special case of
//! the same machinery. Progress is published through lock-free
//! [`PipelineProgress`] atomics rather than a mutex, so polling from a
//! gauge thread never stalls the hot path.
//!
//! Like its predecessor, the detector stage judges *every* click,
//! including clicks on unregistered ads (billing later files those under
//! `unknown_ads` without consulting the verdict); a sequential
//! [`crate::network::AdNetwork`] run skips unknown ads entirely, so the
//! two only agree when every clicked ad is registered.

use crate::billing::{BillingEngine, ClickOutcome};
use crate::entities::Registry;
use crate::fraud::FraudScorer;
use crate::report::NetworkReport;
use crate::telemetry::PipelineTelemetry;
use cfd_core::sharded::{ShardRouter, ShardedDetector};
use cfd_stream::Click;
use cfd_telemetry::{DetectorHealth, DetectorStats};
use cfd_windows::{DuplicateDetector, Verdict};
use crossbeam::channel;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Default clicks per inter-stage batch.
const DEFAULT_BATCH: usize = 256;

/// A click annotated with its fraud verdict (detector → billing stage).
#[derive(Debug, Clone, Copy)]
struct JudgedClick {
    click: Click,
    verdict: Verdict,
}

/// A batch of sequence-stamped clicks bound for one shard worker.
struct RawBatch {
    items: Vec<(u64, Click)>,
}

/// A judged batch headed for the resequencer.
struct JudgedBatch {
    items: Vec<(u64, JudgedClick)>,
}

/// Heap entry of the resequencer, ordered by sequence number only.
struct Pending {
    seq: u64,
    judged: JudgedClick,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.seq.cmp(&other.seq)
    }
}

/// Live progress counters readable while the pipeline runs.
///
/// Plain atomics: stage threads publish with relaxed stores, gauges poll
/// with [`PipelineProgress::detected`] / [`PipelineProgress::billed`]
/// without ever contending a lock.
#[derive(Debug, Default)]
pub struct PipelineProgress {
    detected: AtomicU64,
    billed: AtomicU64,
}

impl PipelineProgress {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Clicks that passed the detector stage so far.
    #[must_use]
    pub fn detected(&self) -> u64 {
        self.detected.load(Ordering::Relaxed)
    }

    /// Clicks fully billed so far.
    #[must_use]
    pub fn billed(&self) -> u64 {
        self.billed.load(Ordering::Relaxed)
    }
}

/// Tuning knobs of the sharded pipeline.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Clicks per inter-stage batch (larger batches amortize channel
    /// overhead; smaller ones bound resequencer latency).
    pub batch: usize,
    /// Bounded-channel capacity per worker, in batches (backpressure).
    pub queue: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            batch: DEFAULT_BATCH,
            queue: 16,
        }
    }
}

/// Result of a pipeline run.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// The final network report.
    pub report: NetworkReport,
    /// Per-publisher fraud scores recorded by the detector stage.
    pub scorer: FraudScorer,
    /// The registry with final budget states.
    pub registry: Registry,
    /// Final per-shard detector health samples, taken by each worker at
    /// shutdown. Empty for the uninstrumented entry points (plain
    /// [`run_pipeline`] / [`run_sharded_pipeline`]), which place no
    /// [`DetectorStats`] bound on the detector.
    pub health: Vec<DetectorHealth>,
}

/// Instrumentation plumbing for [`run_fanout`]: the optional metric
/// bundle plus a monomorphized health probe. Uninstrumented entry
/// points pass `telemetry: None` and a `health_of` that returns `None`,
/// so the hot path stays free of `DetectorStats` bounds *and* timing
/// calls.
struct Instrumentation<D> {
    telemetry: Option<Arc<PipelineTelemetry>>,
    health_of: fn(&D) -> Option<DetectorHealth>,
}

impl<D> Instrumentation<D> {
    fn off() -> Self {
        Self {
            telemetry: None,
            health_of: |_| None,
        }
    }
}

/// Saturating nanosecond count for histogram recording.
fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Runs `clicks` through a single-detector stage and a billing stage on
/// separate threads, with bounded channels (roughly `queue` in-flight
/// clicks) between stages.
///
/// This is the one-shard special case of [`run_sharded_pipeline`];
/// clicks are judged in batches through
/// [`DuplicateDetector::observe_batch`], verdict-for-verdict identical
/// to per-click observation.
///
/// `progress` (optional) is updated continuously and can be polled from
/// other threads.
///
/// # Panics
///
/// Panics if a pipeline stage panics.
pub fn run_pipeline<D, I>(
    detector: D,
    registry: Registry,
    clicks: I,
    queue: usize,
    progress: Option<Arc<PipelineProgress>>,
) -> PipelineOutcome
where
    D: DuplicateDetector + Send,
    I: IntoIterator<Item = Click>,
{
    let queue = queue.max(1);
    let batch = queue.min(DEFAULT_BATCH);
    let name = detector.name();
    let cfg = PipelineConfig {
        batch,
        queue: queue.div_ceil(batch),
    };
    run_fanout(
        vec![detector],
        None,
        name,
        registry,
        clicks,
        cfg,
        progress,
        Instrumentation::off(),
    )
}

/// [`run_pipeline`] with live telemetry: per-stage latency histograms,
/// queue-depth gauges, and on-request detector health flow into
/// `telemetry`'s registry while the run is in flight, and
/// [`PipelineOutcome::health`] carries the final detector sample.
///
/// # Panics
///
/// Panics if `telemetry` was not built for exactly one shard, or if a
/// pipeline stage panics.
pub fn run_pipeline_instrumented<D, I>(
    detector: D,
    registry: Registry,
    clicks: I,
    queue: usize,
    progress: Option<Arc<PipelineProgress>>,
    telemetry: Arc<PipelineTelemetry>,
) -> PipelineOutcome
where
    D: DuplicateDetector + DetectorStats + Send,
    I: IntoIterator<Item = Click>,
{
    assert_eq!(
        telemetry.shard_count(),
        1,
        "single-detector pipeline needs a 1-shard telemetry bundle"
    );
    let queue = queue.max(1);
    let batch = queue.min(DEFAULT_BATCH);
    let name = detector.name();
    let cfg = PipelineConfig {
        batch,
        queue: queue.div_ceil(batch),
    };
    run_fanout(
        vec![detector],
        None,
        name,
        registry,
        clicks,
        cfg,
        progress,
        Instrumentation {
            telemetry: Some(telemetry),
            health_of: |d| Some(d.health()),
        },
    )
}

/// Runs `clicks` through one detector worker thread *per shard* of
/// `detector`, an order-restoring resequencer, and a billing stage.
///
/// The ingest thread routes every click to its keyspace shard, so each
/// worker sees exactly the subsequence its shard would see under
/// single-threaded [`ShardedDetector::observe`] — verdicts are
/// identical, and the resequencer makes billing order identical too.
///
/// # Panics
///
/// Panics if a pipeline stage panics.
pub fn run_sharded_pipeline<D, I>(
    detector: ShardedDetector<D>,
    registry: Registry,
    clicks: I,
    config: PipelineConfig,
    progress: Option<Arc<PipelineProgress>>,
) -> PipelineOutcome
where
    D: DuplicateDetector + Send,
    I: IntoIterator<Item = Click>,
{
    let name = detector.name();
    let router = detector.router();
    let workers = detector.into_shards();
    run_fanout(
        workers,
        Some(router),
        name,
        registry,
        clicks,
        config,
        progress,
        Instrumentation::off(),
    )
}

/// [`run_sharded_pipeline`] with live telemetry: one queue-depth gauge
/// and health-gauge set per shard worker, shared per-stage latency
/// histograms, and resequencer stall counters, all in `telemetry`'s
/// registry. [`PipelineOutcome::health`] carries one final
/// [`DetectorHealth`] per shard, in shard order.
///
/// # Panics
///
/// Panics if `telemetry.shard_count()` differs from the detector's
/// shard count, or if a pipeline stage panics.
pub fn run_sharded_pipeline_instrumented<D, I>(
    detector: ShardedDetector<D>,
    registry: Registry,
    clicks: I,
    config: PipelineConfig,
    progress: Option<Arc<PipelineProgress>>,
    telemetry: Arc<PipelineTelemetry>,
) -> PipelineOutcome
where
    D: DuplicateDetector + DetectorStats + Send,
    I: IntoIterator<Item = Click>,
{
    assert_eq!(
        telemetry.shard_count(),
        detector.shards().len(),
        "telemetry bundle sized for a different shard count"
    );
    let name = detector.name();
    let router = detector.router();
    let workers = detector.into_shards();
    run_fanout(
        workers,
        Some(router),
        name,
        registry,
        clicks,
        config,
        progress,
        Instrumentation {
            telemetry: Some(telemetry),
            health_of: |d| Some(d.health()),
        },
    )
}

/// Settles one judged click against the ledger, tallying fraud savings.
fn settle_one(
    engine: &mut BillingEngine<()>,
    registry: &mut Registry,
    savings: &mut u64,
    progress: Option<&PipelineProgress>,
    judged: &JudgedClick,
) {
    let outcome = engine.process_judged(&judged.click, judged.verdict, registry);
    if outcome == ClickOutcome::DuplicateBlocked {
        if let Some(c) = registry.campaign(judged.click.id.ad) {
            *savings += c.cpc_micros;
        }
    }
    if let Some(p) = progress {
        p.billed.fetch_add(1, Ordering::Relaxed);
    }
}

/// The shared fan-out engine behind both public entry points.
///
/// `router: None` sends everything to the single worker (no routing
/// hash on the ingest path). When `instr` carries a telemetry bundle,
/// every stage times itself per batch; with `telemetry: None` the only
/// residue is a handful of `Option` branches per batch.
#[allow(clippy::too_many_arguments)]
fn run_fanout<D, I>(
    workers: Vec<D>,
    router: Option<ShardRouter>,
    name: &'static str,
    registry: Registry,
    clicks: I,
    config: PipelineConfig,
    progress: Option<Arc<PipelineProgress>>,
    instr: Instrumentation<D>,
) -> PipelineOutcome
where
    D: DuplicateDetector + Send,
    I: IntoIterator<Item = Click>,
{
    let batch = config.batch.max(1);
    let queue = config.queue.max(1);
    let shard_count = workers.len();
    assert!(shard_count > 0, "pipeline needs at least one detector");
    if let Some(t) = &instr.telemetry {
        assert_eq!(
            t.shard_count(),
            shard_count,
            "telemetry bundle sized for a different shard count"
        );
    }

    thread::scope(|s| {
        // Workers fan in to one judged channel; capacity scales with the
        // worker count so a fast shard cannot starve the others.
        let (tx_judged, rx_judged) = channel::bounded::<JudgedBatch>(queue * shard_count);

        // Shard workers: exclusive detector ownership, private scorer.
        let mut raw_txs = Vec::with_capacity(shard_count);
        let mut handles = Vec::with_capacity(shard_count);
        for (idx, mut detector) in workers.into_iter().enumerate() {
            let (tx_raw, rx_raw) = channel::bounded::<RawBatch>(queue);
            raw_txs.push(tx_raw);
            let tx_judged = tx_judged.clone();
            let progress = progress.clone();
            let telemetry = instr.telemetry.clone();
            let health_of = instr.health_of;
            handles.push(s.spawn(move || {
                let telem = telemetry.as_deref();
                let mut scorer = FraudScorer::new();
                let mut keys: Vec<[u8; 16]> = Vec::with_capacity(batch);
                for RawBatch { items } in rx_raw {
                    // Stage timing brackets: t0 → keys built (hash),
                    // then → verdicts out (probe). Skipped entirely when
                    // telemetry is off.
                    let t0 = telem.map(|t| {
                        t.shard_queue_depth(idx).sub(1);
                        Instant::now()
                    });
                    keys.clear();
                    keys.extend(items.iter().map(|(_, c)| c.key()));
                    let refs: Vec<&[u8]> = keys.iter().map(<[u8; 16]>::as_slice).collect();
                    let t1 = telem.zip(t0).map(|(t, t0)| {
                        let now = Instant::now();
                        t.stage_hash_ns().record(duration_ns(now - t0));
                        now
                    });
                    let verdicts = detector.observe_batch(&refs);
                    if let Some((t, t1)) = telem.zip(t1) {
                        t.stage_probe_ns().record(duration_ns(t1.elapsed()));
                    }
                    let judged: Vec<(u64, JudgedClick)> = items
                        .into_iter()
                        .zip(verdicts)
                        .map(|((seq, click), verdict)| (seq, JudgedClick { click, verdict }))
                        .collect();
                    for (_, j) in &judged {
                        scorer.record(&j.click, j.verdict);
                    }
                    if let Some(p) = &progress {
                        p.detected.fetch_add(judged.len() as u64, Ordering::Relaxed);
                    }
                    if let Some(t) = telem {
                        t.shard_batches(idx).inc();
                        // Health scans are O(m): only pay when the
                        // reporter raised this shard's request flag.
                        if t.take_health_request(idx) {
                            if let Some(h) = health_of(&detector) {
                                t.publish_health(idx, &h);
                            }
                        }
                    }
                    if tx_judged.send(JudgedBatch { items: judged }).is_err() {
                        break; // billing stage gone; drain and stop
                    }
                }
                // Terminal health sample: unconditional, so short runs
                // that never tick a reporter still report final state.
                let health = health_of(&detector);
                if let Some((t, h)) = telem.zip(health.as_ref()) {
                    t.publish_health(idx, h);
                }
                (scorer, detector.memory_bits(), health)
            }));
        }
        drop(tx_judged); // workers hold the remaining clones

        // Resequencer + billing: restore global order, settle verdicts.
        // The heap only ever holds out-of-order items already admitted
        // through the bounded channels, so it cannot grow unboundedly,
        // and draining `rx_judged` unconditionally keeps workers from
        // ever deadlocking against a full judged channel.
        let progress_bill = progress.clone();
        let telemetry_bill = instr.telemetry.clone();
        let billing = s.spawn(move || {
            let telem = telemetry_bill.as_deref();
            let mut registry = registry;
            let mut engine = BillingEngine::new(());
            let mut savings = 0u64;
            let mut next_seq = 0u64;
            let mut pending: BinaryHeap<Reverse<Pending>> = BinaryHeap::new();
            // Clicks released in order this round; reused across
            // batches so the split into resequence/settle phases costs
            // no steady-state allocation.
            let mut ready: Vec<JudgedClick> = Vec::new();
            for JudgedBatch { items } in rx_judged {
                let t0 = telem.map(|_| Instant::now());
                for (seq, judged) in items {
                    pending.push(Reverse(Pending { seq, judged }));
                }
                while pending.peek().is_some_and(|Reverse(p)| p.seq == next_seq) {
                    let Reverse(p) = pending.pop().expect("peeked");
                    ready.push(p.judged);
                    next_seq += 1;
                }
                let t1 = telem.zip(t0).map(|(t, t0)| {
                    let now = Instant::now();
                    t.stage_resequence_ns().record(duration_ns(now - t0));
                    if ready.is_empty() && !pending.is_empty() {
                        // Head-of-line gap: this batch released nothing.
                        t.reseq_stalls().inc();
                    }
                    t.pending_peak()
                        .set_max(i64::try_from(pending.len()).unwrap_or(i64::MAX));
                    now
                });
                for judged in ready.drain(..) {
                    settle_one(
                        &mut engine,
                        &mut registry,
                        &mut savings,
                        progress_bill.as_deref(),
                        &judged,
                    );
                }
                if let Some((t, t1)) = telem.zip(t1) {
                    t.stage_billing_ns().record(duration_ns(t1.elapsed()));
                }
            }
            // Workers are done: the remainder is a contiguous tail.
            while let Some(Reverse(p)) = pending.pop() {
                debug_assert_eq!(p.seq, next_seq, "resequencer hole at shutdown");
                settle_one(
                    &mut engine,
                    &mut registry,
                    &mut savings,
                    progress_bill.as_deref(),
                    &p.judged,
                );
                next_seq += 1;
            }
            (engine.into_ledger(), savings, registry)
        });

        // Ingest + route on the caller's thread.
        let mut buckets: Vec<Vec<(u64, Click)>> = (0..shard_count)
            .map(|_| Vec::with_capacity(batch))
            .collect();
        let telem = instr.telemetry.as_deref();
        'ingest: for (seq, click) in clicks.into_iter().enumerate() {
            let shard = router.as_ref().map_or(0, |r| r.route(&click.key()));
            buckets[shard].push((seq as u64, click));
            if buckets[shard].len() == batch {
                let full = std::mem::replace(&mut buckets[shard], Vec::with_capacity(batch));
                if let Some(t) = telem {
                    t.ingest_clicks().add(full.len() as u64);
                    t.shard_queue_depth(shard).add(1);
                }
                if raw_txs[shard].send(RawBatch { items: full }).is_err() {
                    break 'ingest; // a worker died; stop feeding
                }
            }
        }
        for (shard, (tx, bucket)) in raw_txs.iter().zip(buckets).enumerate() {
            if !bucket.is_empty() {
                if let Some(t) = telem {
                    t.ingest_clicks().add(bucket.len() as u64);
                    t.shard_queue_depth(shard).add(1);
                }
                let _ = tx.send(RawBatch { items: bucket });
            }
        }
        drop(raw_txs);

        let mut scorer = FraudScorer::new();
        let mut memory_bits = 0usize;
        let mut health = Vec::new();
        for handle in handles {
            let (partial, bits, shard_health) = handle.join().expect("detector worker panicked");
            scorer.merge(partial);
            memory_bits += bits;
            health.extend(shard_health);
        }
        let (ledger, savings, registry) = billing.join().expect("billing stage panicked");
        PipelineOutcome {
            report: NetworkReport::from_ledger(name, memory_bits, &ledger, savings),
            scorer,
            registry,
            health,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::{Advertiser, AdvertiserId, Campaign};
    use cfd_core::sharded::per_shard_window;
    use cfd_core::{Tbf, TbfConfig};
    use cfd_stream::{AdId, BotnetConfig, BotnetStream};

    fn registry_with_budget(budget: u64) -> Registry {
        let mut r = Registry::new();
        r.add_advertiser(Advertiser::new(AdvertiserId(1), "acme", budget));
        for ad in 0..64 {
            r.add_campaign(Campaign {
                ad: AdId(ad),
                advertiser: AdvertiserId(1),
                cpc_micros: 100,
            })
            .expect("advertiser registered");
        }
        r
    }

    fn registry() -> Registry {
        registry_with_budget(u64::MAX / 4)
    }

    fn clicks(n: usize) -> Vec<Click> {
        BotnetStream::new(BotnetConfig::default(), 8, 64)
            .take(n)
            .map(|c| c.click)
            .collect()
    }

    fn sharded_tbf(n: usize, shards: usize) -> ShardedDetector<Tbf> {
        ShardedDetector::from_fn(7, shards, |_| {
            let n_s = per_shard_window(n, shards);
            Tbf::new(
                TbfConfig::builder(n_s)
                    .entries(n_s * 16)
                    .seed(4)
                    .build()
                    .expect("cfg"),
            )
        })
        .expect("sharded detector")
    }

    #[test]
    fn pipeline_matches_sequential_network() {
        let cs = clicks(30_000);
        let mk = || {
            Tbf::new(
                TbfConfig::builder(2_048)
                    .entries(1 << 15)
                    .seed(4)
                    .build()
                    .expect("cfg"),
            )
            .expect("detector")
        };
        // Sequential reference.
        let mut net = crate::network::AdNetwork::new(mk());
        let mut reg = registry();
        std::mem::swap(net.registry_mut(), &mut reg);
        let sequential = net.run(cs.iter());

        // Pipelined.
        let outcome = run_pipeline(mk(), registry(), cs.iter().copied(), 256, None);
        assert_eq!(outcome.report.charged, sequential.charged);
        assert_eq!(
            outcome.report.duplicates_blocked,
            sequential.duplicates_blocked
        );
        assert_eq!(outcome.report.revenue_micros, sequential.revenue_micros);
        assert_eq!(outcome.report.savings_micros, sequential.savings_micros);
    }

    /// The acceptance bar of the sharded layer: the parallel pipeline
    /// over `S` shard workers reproduces a sequential run of the *same*
    /// `ShardedDetector` bit for bit — the routing preserves per-shard
    /// observation order and the resequencer preserves billing order.
    /// A tight budget makes billing order-sensitive, so a resequencer
    /// bug cannot hide.
    #[test]
    fn sharded_pipeline_matches_sequential_sharded_network() {
        let cs = clicks(30_000);
        for (shards, budget) in [(1usize, u64::MAX / 4), (4, u64::MAX / 4), (4, 50_000)] {
            let mut net = crate::network::AdNetwork::new(sharded_tbf(2_048, shards));
            let mut reg = registry_with_budget(budget);
            std::mem::swap(net.registry_mut(), &mut reg);
            let sequential = net.run(cs.iter());

            let outcome = run_sharded_pipeline(
                sharded_tbf(2_048, shards),
                registry_with_budget(budget),
                cs.iter().copied(),
                PipelineConfig::default(),
                None,
            );
            assert_eq!(
                outcome.report.charged, sequential.charged,
                "shards={shards}"
            );
            assert_eq!(
                outcome.report.duplicates_blocked, sequential.duplicates_blocked,
                "shards={shards}"
            );
            assert_eq!(
                outcome.report.budget_rejections,
                sequential.budget_rejections
            );
            assert_eq!(outcome.report.revenue_micros, sequential.revenue_micros);
            assert_eq!(outcome.report.savings_micros, sequential.savings_micros);
            assert_eq!(
                outcome.report.detector_memory_bits,
                sequential.detector_memory_bits
            );
        }
    }

    /// Batch size is a throughput knob, never a semantics knob: the
    /// resequencer output is invariant under batch boundaries.
    #[test]
    fn batch_size_does_not_change_any_tally() {
        let cs = clicks(10_000);
        let run = |batch: usize| {
            run_sharded_pipeline(
                sharded_tbf(1_024, 3),
                registry_with_budget(400_000),
                cs.iter().copied(),
                PipelineConfig { batch, queue: 4 },
                None,
            )
        };
        let a = run(1);
        let b = run(509);
        assert_eq!(a.report.charged, b.report.charged);
        assert_eq!(a.report.duplicates_blocked, b.report.duplicates_blocked);
        assert_eq!(a.report.budget_rejections, b.report.budget_rejections);
        assert_eq!(a.report.revenue_micros, b.report.revenue_micros);
        assert_eq!(a.scorer.total_clicks(), b.scorer.total_clicks());
    }

    #[test]
    fn progress_counters_advance() {
        let progress = Arc::new(PipelineProgress::new());
        let cs = clicks(5_000);
        let d = Tbf::new(
            TbfConfig::builder(512)
                .entries(1 << 13)
                .build()
                .expect("cfg"),
        )
        .expect("detector");
        let outcome = run_pipeline(d, registry(), cs, 64, Some(progress.clone()));
        assert_eq!(progress.detected(), 5_000);
        assert_eq!(progress.billed(), 5_000);
        assert_eq!(outcome.report.clicks, 5_000);
    }

    #[test]
    fn scorer_travels_with_the_outcome() {
        let cs = clicks(20_000);
        let d = Tbf::new(
            TbfConfig::builder(4_096)
                .entries(1 << 16)
                .build()
                .expect("cfg"),
        )
        .expect("detector");
        let outcome = run_pipeline(d, registry(), cs, 128, None);
        assert!(outcome.scorer.total_clicks() == 20_000);
        assert!(!outcome.scorer.scores(100).is_empty());
    }

    /// Telemetry is observation, not intervention: the instrumented run
    /// produces a report identical to the plain run's, while its
    /// registry fills with consistent stage metrics and the outcome
    /// carries one final health sample per shard.
    #[test]
    fn instrumented_run_matches_plain_run_and_reports() {
        let cs = clicks(20_000);
        let shards = 4;
        let plain = run_sharded_pipeline(
            sharded_tbf(2_048, shards),
            registry(),
            cs.iter().copied(),
            PipelineConfig::default(),
            None,
        );
        assert!(plain.health.is_empty(), "plain runs carry no health");

        let metrics = Arc::new(cfd_telemetry::Registry::new());
        let telemetry = Arc::new(PipelineTelemetry::new(&metrics, shards));
        telemetry.request_detector_health(); // exercise the request path
        let observed = run_sharded_pipeline_instrumented(
            sharded_tbf(2_048, shards),
            registry(),
            cs.iter().copied(),
            PipelineConfig::default(),
            None,
            Arc::clone(&telemetry),
        );
        assert_eq!(observed.report.charged, plain.report.charged);
        assert_eq!(
            observed.report.duplicates_blocked,
            plain.report.duplicates_blocked
        );
        assert_eq!(observed.report.revenue_micros, plain.report.revenue_micros);

        assert_eq!(observed.health.len(), shards, "one sample per shard");
        let total: u64 = observed.health.iter().map(|h| h.observed_elements).sum();
        assert_eq!(total, 20_000, "shard healths partition the stream");
        assert!(observed.health.iter().all(|h| h.fill_ratios[0] > 0.0));

        let snap = metrics.snapshot();
        assert_eq!(
            snap.get_counter("pipeline.ingest.clicks"),
            Some(20_000),
            "every click routed"
        );
        let batches: u64 = (0..shards)
            .map(|i| {
                snap.get_counter(&format!("pipeline.shard{i}.batches"))
                    .expect("registered")
            })
            .sum();
        assert!(batches > 0);
        for stage in ["hash", "probe", "resequence", "billing"] {
            let h = snap
                .get_histogram(&format!("pipeline.stage.{stage}_ns"))
                .expect("stage histogram registered");
            assert!(h.count > 0, "{stage} recorded no batches");
            assert!(h.max > 0, "{stage} latencies all zero");
        }
        // All queues drained at shutdown.
        for e in &snap.entries {
            if e.name.ends_with("queue_depth") {
                assert_eq!(e.value, cfd_telemetry::MetricValue::Gauge(0), "{}", e.name);
            }
        }
    }

    /// The single-detector instrumented entry point works with a boxed
    /// dynamic detector (the CLI's usage) and publishes terminal health.
    #[test]
    fn instrumented_single_shard_accepts_boxed_detector() {
        use cfd_windows::ObservableDetector;
        let cs = clicks(5_000);
        let d: Box<dyn ObservableDetector + Send> = Box::new(
            Tbf::new(
                TbfConfig::builder(512)
                    .entries(1 << 13)
                    .build()
                    .expect("cfg"),
            )
            .expect("detector"),
        );
        let metrics = Arc::new(cfd_telemetry::Registry::new());
        let telemetry = Arc::new(PipelineTelemetry::new(&metrics, 1));
        let outcome =
            run_pipeline_instrumented(d, registry(), cs, 64, None, Arc::clone(&telemetry));
        assert_eq!(outcome.report.clicks, 5_000);
        assert_eq!(outcome.health.len(), 1);
        assert_eq!(outcome.health[0].observed_elements, 5_000);
        let snap = metrics.snapshot();
        assert_eq!(snap.get_counter("pipeline.ingest.clicks"), Some(5_000));
    }

    /// The merged scorer of a 4-worker run equals the single scorer of a
    /// 1-worker run over the same stream.
    #[test]
    fn sharded_scorer_merge_is_exact() {
        let cs = clicks(20_000);
        let wide = run_sharded_pipeline(
            sharded_tbf(2_048, 4),
            registry(),
            cs.iter().copied(),
            PipelineConfig::default(),
            None,
        );
        let mut scorer = FraudScorer::new();
        let mut detector = sharded_tbf(2_048, 4);
        for c in &cs {
            let v = detector.observe(&c.key());
            scorer.record(c, v);
        }
        assert_eq!(wide.scorer.total_clicks(), scorer.total_clicks());
        assert_eq!(wide.scorer.scores(50).len(), scorer.scores(50).len());
    }
}
