//! Dual-sided click auditing (paper §1.1).
//!
//! "A possible solution is that both the online advertisers and
//! publishers keep on auditing the click stream and reach an agreement on
//! the determination of valid clicks." Because the detectors are
//! deterministic one-pass algorithms, two parties running the *same*
//! configuration over the *same* stream must produce identical verdict
//! sequences — giving a cheap settlement protocol: compare digests, not
//! click logs.
//!
//! The two auditors run on separate threads fed by broadcast channels
//! (`crossbeam`), modeling independent advertiser-side and publisher-side
//! pipelines.

use cfd_stream::Click;
use cfd_windows::{DuplicateDetector, Verdict};
use crossbeam::channel;
use serde::{Deserialize, Serialize};
use std::thread;

/// The result of a dual audit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditOutcome {
    /// Clicks audited.
    pub clicks: u64,
    /// Valid clicks counted by the advertiser-side auditor.
    pub advertiser_valid: u64,
    /// Valid clicks counted by the publisher-side auditor.
    pub publisher_valid: u64,
    /// FNV-1a digest of the advertiser-side verdict sequence.
    pub advertiser_digest: u64,
    /// FNV-1a digest of the publisher-side verdict sequence.
    pub publisher_digest: u64,
}

impl AuditOutcome {
    /// `true` when both sides agree on every verdict.
    #[must_use]
    pub fn agreed(&self) -> bool {
        self.advertiser_digest == self.publisher_digest
            && self.advertiser_valid == self.publisher_valid
    }
}

/// One auditor: a detector plus a rolling digest of its verdicts.
fn audit_stream<D: DuplicateDetector>(
    mut detector: D,
    rx: channel::Receiver<Click>,
) -> (u64, u64, u64) {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut digest = FNV_OFFSET;
    let mut valid = 0u64;
    let mut clicks = 0u64;
    for click in rx {
        clicks += 1;
        let v = detector.observe(&click.key());
        let byte = match v {
            Verdict::Distinct => {
                valid += 1;
                1u8
            }
            Verdict::Duplicate => 0u8,
        };
        digest ^= u64::from(byte);
        digest = digest.wrapping_mul(FNV_PRIME);
    }
    (clicks, valid, digest)
}

/// Runs the advertiser-side and publisher-side auditors concurrently
/// over `clicks`, each with its own detector instance (built by
/// `make_detector`, so both sides use identical configurations).
///
/// # Panics
///
/// Panics if an auditor thread panics.
pub fn run_dual_audit<D, F>(clicks: &[Click], make_detector: F) -> AuditOutcome
where
    D: DuplicateDetector + Send,
    F: Fn() -> D,
{
    let (tx_a, rx_a) = channel::bounded::<Click>(1024);
    let (tx_p, rx_p) = channel::bounded::<Click>(1024);
    let det_a = make_detector();
    let det_p = make_detector();

    let ((clicks_a, valid_a, digest_a), (clicks_p, valid_p, digest_p)) = thread::scope(|s| {
        let ha = s.spawn(move || audit_stream(det_a, rx_a));
        let hp = s.spawn(move || audit_stream(det_p, rx_p));
        for c in clicks {
            tx_a.send(*c).expect("advertiser auditor alive");
            tx_p.send(*c).expect("publisher auditor alive");
        }
        drop((tx_a, tx_p));
        (
            ha.join().expect("advertiser auditor panicked"),
            hp.join().expect("publisher auditor panicked"),
        )
    });

    debug_assert_eq!(clicks_a, clicks_p);
    AuditOutcome {
        clicks: clicks_a,
        advertiser_valid: valid_a,
        publisher_valid: valid_p,
        advertiser_digest: digest_a,
        publisher_digest: digest_p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_core::{Tbf, TbfConfig};
    use cfd_stream::{BotnetConfig, BotnetStream};
    use cfd_windows::ExactSlidingDedup;

    fn clicks(n: usize) -> Vec<Click> {
        BotnetStream::new(BotnetConfig::default(), 4, 16)
            .take(n)
            .map(|c| c.click)
            .collect()
    }

    #[test]
    fn identical_configs_always_agree() {
        let cs = clicks(10_000);
        let outcome = run_dual_audit(&cs, || {
            let cfg = TbfConfig::builder(1_024)
                .entries(1 << 14)
                .seed(5)
                .build()
                .unwrap();
            Tbf::new(cfg).unwrap()
        });
        assert!(outcome.agreed(), "{outcome:?}");
        assert_eq!(outcome.clicks, 10_000);
        assert!(outcome.advertiser_valid < 10_000);
    }

    #[test]
    fn different_configs_disagree_on_fraudulent_streams() {
        let cs = clicks(10_000);
        let a = run_dual_audit(&cs, || ExactSlidingDedup::new(512));
        let b = run_dual_audit(&cs, || ExactSlidingDedup::new(4_096));
        // Window sizes differ -> different duplicate determinations.
        assert_ne!(a.advertiser_valid, b.advertiser_valid);
        // But each side internally agrees.
        assert!(a.agreed());
        assert!(b.agreed());
    }

    #[test]
    fn empty_stream_trivially_agrees() {
        let outcome = run_dual_audit(&[], || ExactSlidingDedup::new(16));
        assert!(outcome.agreed());
        assert_eq!(outcome.clicks, 0);
    }
}
