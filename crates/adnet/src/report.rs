//! Serializable end-of-run reports.

use crate::billing::Ledger;
use serde::{Deserialize, Serialize};

/// Summary of one ad-network run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkReport {
    /// Name of the duplicate detector that guarded billing.
    pub detector: String,
    /// Detector memory footprint, bits.
    pub detector_memory_bits: usize,
    /// Clicks processed.
    pub clicks: u64,
    /// Clicks charged to advertisers.
    pub charged: u64,
    /// Duplicates blocked (fraud savings).
    pub duplicates_blocked: u64,
    /// Clicks rejected because budgets ran dry.
    pub budget_rejections: u64,
    /// Clicks on unknown ads.
    pub unknown_ads: u64,
    /// Revenue credited to publishers, micro-units.
    pub revenue_micros: u64,
    /// Money **not** charged thanks to duplicate blocking, micro-units
    /// (each blocked duplicate valued at its campaign's cpc).
    pub savings_micros: u64,
}

impl NetworkReport {
    /// Builds a report from a ledger.
    #[must_use]
    pub fn from_ledger(
        detector: &str,
        detector_memory_bits: usize,
        ledger: &Ledger,
        savings_micros: u64,
    ) -> Self {
        Self {
            detector: detector.to_owned(),
            detector_memory_bits,
            clicks: ledger.clicks,
            charged: ledger.charged,
            duplicates_blocked: ledger.duplicates_blocked,
            budget_rejections: ledger.budget_rejections,
            unknown_ads: ledger.unknown_ads,
            revenue_micros: ledger.revenue_micros,
            savings_micros,
        }
    }

    /// Fraction of clicks blocked as duplicates.
    #[must_use]
    pub fn blocked_rate(&self) -> f64 {
        if self.clicks == 0 {
            0.0
        } else {
            self.duplicates_blocked as f64 / self.clicks as f64
        }
    }

    /// Serializes the report as one line of JSON with a fixed field
    /// order, so two identical reports are byte-identical — the CI
    /// serve smoke compares the socket-streamed and in-process reports
    /// with a plain binary diff.
    ///
    /// Hand-rolled (the workspace's serde is derive-only); the detector
    /// name is escaped as a JSON string, every other field is an
    /// unsigned integer.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut name = String::with_capacity(self.detector.len());
        for c in self.detector.chars() {
            match c {
                '"' => name.push_str("\\\""),
                '\\' => name.push_str("\\\\"),
                c if (c as u32) < 0x20 => name.push_str(&format!("\\u{:04x}", c as u32)),
                c => name.push(c),
            }
        }
        format!(
            "{{\"detector\":\"{name}\",\"detector_memory_bits\":{},\"clicks\":{},\
             \"charged\":{},\"duplicates_blocked\":{},\"budget_rejections\":{},\
             \"unknown_ads\":{},\"revenue_micros\":{},\"savings_micros\":{}}}",
            self.detector_memory_bits,
            self.clicks,
            self.charged,
            self.duplicates_blocked,
            self.budget_rejections,
            self.unknown_ads,
            self.revenue_micros,
            self.savings_micros
        )
    }

    /// A compact human-readable table row.
    #[must_use]
    pub fn row(&self) -> String {
        format!(
            "{:<16} {:>10} {:>10} {:>10} {:>12} {:>12}",
            self.detector,
            self.clicks,
            self.charged,
            self.duplicates_blocked,
            self.revenue_micros,
            self.savings_micros
        )
    }

    /// The header matching [`NetworkReport::row`].
    #[must_use]
    pub fn header() -> String {
        format!(
            "{:<16} {:>10} {:>10} {:>10} {:>12} {:>12}",
            "detector", "clicks", "charged", "blocked", "revenue(µ)", "savings(µ)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_rows() {
        let ledger = Ledger {
            clicks: 100,
            charged: 80,
            duplicates_blocked: 20,
            revenue_micros: 8_000,
            ..Ledger::default()
        };
        let r = NetworkReport::from_ledger("tbf", 1024, &ledger, 2_000);
        assert!((r.blocked_rate() - 0.2).abs() < 1e-12);
        assert!(r.row().contains("tbf"));
        assert_eq!(NetworkReport::header().split_whitespace().count(), 6);
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let ledger = Ledger {
            clicks: 3,
            charged: 2,
            duplicates_blocked: 1,
            revenue_micros: 200,
            ..Ledger::default()
        };
        let r = NetworkReport::from_ledger("t\"b\\f", 64, &ledger, 100);
        let json = r.to_json();
        assert_eq!(
            json,
            "{\"detector\":\"t\\\"b\\\\f\",\"detector_memory_bits\":64,\"clicks\":3,\
             \"charged\":2,\"duplicates_blocked\":1,\"budget_rejections\":0,\
             \"unknown_ads\":0,\"revenue_micros\":200,\"savings_micros\":100}"
        );
        // Identical reports serialize byte-identically.
        assert_eq!(json, r.clone().to_json());
    }

    #[test]
    fn empty_report_rate_is_zero() {
        let r = NetworkReport::from_ledger("x", 0, &Ledger::default(), 0);
        assert_eq!(r.blocked_rate(), 0.0);
    }
}
