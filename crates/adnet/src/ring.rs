//! Bounded single-producer/single-consumer ring buffer and buffer pool —
//! the zero-allocation transport of the pipeline data plane.
//!
//! The crossbeam channel shim used between pipeline stages is a
//! `Mutex<VecDeque>` + `Condvar` queue: every send/receive takes a lock,
//! may allocate inside the deque, and parks through the kernel under
//! contention. This ring replaces it on the hot path with two cache-padded
//! atomic counters and a fixed slot array:
//!
//! * **SPSC discipline.** Exactly one [`Producer`] and one [`Consumer`]
//!   exist per ring (enforced by ownership — the handles are not `Clone`).
//!   The producer is the only writer of `head`, the consumer the only
//!   writer of `tail`, so both advance with plain `store(Release)` —
//!   no CAS, no lock on the counter path.
//! * **Safe Rust.** The workspace forbids `unsafe`, so slots are
//!   `Mutex<Option<T>>` instead of `UnsafeCell<MaybeUninit<T>>`. The
//!   head/tail protocol guarantees a slot is never locked by both sides
//!   at once, so every lock acquisition is uncontended — a single atomic
//!   exchange, with none of the condvar parking of the channel shim.
//! * **Batch publication.** [`Producer::push_all`] writes every slot of a
//!   burst and publishes them with *one* `head` store;
//!   [`Consumer::pop_ready`] drains everything published with one `tail`
//!   store. Counter traffic is amortized over the burst.
//! * **Explicit backpressure.** Blocked pushes (ring full) and blocked
//!   pops (ring empty) are counted in [`RingStats`], which the pipeline
//!   publishes as telemetry so saturation is observable, not guessed.
//!
//! Counters are monotonic and wrap naturally; capacity is rounded up to a
//! power of two so `counter & mask` indexes slots correctly across wraps.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Pads a counter to its own cache line (64 B, doubled to 128 B to stay
/// clear of adjacent-line prefetching) so producer and consumer counters
/// never false-share.
#[repr(align(128))]
#[derive(Default)]
struct CachePadded<T>(T);

/// Snapshot of a ring's backpressure counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Push attempts that found the ring full and had to wait.
    pub full_waits: u64,
    /// Pop attempts that found the ring empty and had to wait.
    pub empty_waits: u64,
}

/// Exponential spin → yield → sleep backoff for the blocking entry
/// points. On a single hardware thread pure spinning would starve the
/// peer, so the ladder reaches `yield_now` after a few rounds and a
/// short sleep after that.
#[derive(Debug, Default)]
pub(crate) struct Backoff {
    step: u32,
}

impl Backoff {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn reset(&mut self) {
        self.step = 0;
    }

    pub(crate) fn snooze(&mut self) {
        if self.step < 4 {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
        } else if self.step < 10 {
            thread::yield_now();
        } else {
            thread::sleep(Duration::from_micros(50));
        }
        self.step = (self.step + 1).min(16);
    }
}

struct Shared<T> {
    slots: Box<[Mutex<Option<T>>]>,
    /// Items ever pushed (monotonic, wrapping). Producer-written.
    head: CachePadded<AtomicUsize>,
    /// Items ever popped (monotonic, wrapping). Consumer-written.
    tail: CachePadded<AtomicUsize>,
    producer_alive: AtomicBool,
    consumer_alive: AtomicBool,
    full_waits: AtomicU64,
    empty_waits: AtomicU64,
}

impl<T> Shared<T> {
    fn stats(&self) -> RingStats {
        RingStats {
            full_waits: self.full_waits.load(Ordering::Relaxed),
            empty_waits: self.empty_waits.load(Ordering::Relaxed),
        }
    }
}

/// Error of [`Producer::try_push`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The ring is full; the item is handed back.
    Full(T),
    /// The consumer is gone; the item is handed back and no push can
    /// ever succeed again.
    Disconnected(T),
}

/// Error of the blocking batch send ([`Producer::push_all`]): the
/// consumer is gone, so no push can ever succeed again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

impl std::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ring consumer disconnected")
    }
}

impl std::error::Error for Disconnected {}

/// Error of [`Consumer::try_pop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryPopError {
    /// Nothing published right now; the producer is still alive.
    Empty,
    /// The producer is gone and the ring is drained: end of stream.
    Disconnected,
}

/// The sending half of a ring; exactly one exists per ring.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    mask: usize,
    cap: usize,
    /// Consumer position as of the last refresh — lets the fast path
    /// push without touching the consumer's cache line at all.
    cached_tail: usize,
}

/// The receiving half of a ring; exactly one exists per ring.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    mask: usize,
    /// Producer position as of the last refresh — lets the fast path
    /// pop without touching the producer's cache line at all.
    cached_head: usize,
}

/// Creates a bounded SPSC ring holding at least `capacity` items
/// (rounded up to the next power of two, minimum 1).
pub fn spsc<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(1).next_power_of_two();
    let slots: Box<[Mutex<Option<T>>]> = (0..cap).map(|_| Mutex::new(None)).collect();
    let shared = Arc::new(Shared {
        slots,
        head: CachePadded::default(),
        tail: CachePadded::default(),
        producer_alive: AtomicBool::new(true),
        consumer_alive: AtomicBool::new(true),
        full_waits: AtomicU64::new(0),
        empty_waits: AtomicU64::new(0),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            mask: cap - 1,
            cap,
            cached_tail: 0,
        },
        Consumer {
            shared,
            mask: cap - 1,
            cached_head: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Slot count of the ring.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Items currently in flight (racy snapshot).
    #[must_use]
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.head
            .0
            .load(Ordering::Relaxed)
            .wrapping_sub(s.tail.0.load(Ordering::Relaxed))
    }

    /// Whether the ring is empty (racy snapshot).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Backpressure counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> RingStats {
        self.shared.stats()
    }

    /// Writes one slot at `head` without publishing it.
    #[inline]
    fn stage(&self, head: usize, item: T) {
        // Uncontended by protocol: the consumer never locks a slot in
        // [tail, head) boundary position `head` until it is published.
        *self.shared.slots[head & self.mask]
            .lock()
            .expect("ring slot lock poisoned") = Some(item);
    }

    /// Attempts to push without blocking.
    ///
    /// # Errors
    /// [`TryPushError::Full`] when no slot is free,
    /// [`TryPushError::Disconnected`] when the consumer is gone.
    pub fn try_push(&mut self, item: T) -> Result<(), TryPushError<T>> {
        let s = &*self.shared;
        let head = s.head.0.load(Ordering::Relaxed);
        if head.wrapping_sub(self.cached_tail) == self.cap {
            self.cached_tail = s.tail.0.load(Ordering::Acquire);
            if head.wrapping_sub(self.cached_tail) == self.cap {
                return if s.consumer_alive.load(Ordering::Relaxed) {
                    Err(TryPushError::Full(item))
                } else {
                    Err(TryPushError::Disconnected(item))
                };
            }
        }
        self.stage(head, item);
        s.head.0.store(head.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Pushes, blocking (spin → yield → sleep) while the ring is full.
    ///
    /// # Errors
    /// Returns the item when the consumer disconnected.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        let mut item = match self.try_push(item) {
            Ok(()) => return Ok(()),
            Err(TryPushError::Disconnected(item)) => return Err(item),
            Err(TryPushError::Full(item)) => item,
        };
        self.shared.full_waits.fetch_add(1, Ordering::Relaxed);
        let mut backoff = Backoff::new();
        loop {
            backoff.snooze();
            item = match self.try_push(item) {
                Ok(()) => return Ok(()),
                Err(TryPushError::Disconnected(item)) => return Err(item),
                Err(TryPushError::Full(item)) => item,
            };
        }
    }

    /// Drains `buf` into the ring in bursts, publishing each burst with
    /// a single `head` store; blocks while full. `buf` is left empty on
    /// success.
    ///
    /// # Errors
    /// Stops and returns `Err` when the consumer disconnected (items not
    /// yet staged are dropped with the drain, as on any disconnect).
    pub fn push_all(&mut self, buf: &mut Vec<T>) -> Result<(), Disconnected> {
        let s = &*self.shared;
        let mut backoff = Backoff::new();
        let mut iter = buf.drain(..);
        let mut remaining = iter.len();
        let mut head = s.head.0.load(Ordering::Relaxed);
        while remaining > 0 {
            let mut free = self.cap - head.wrapping_sub(self.cached_tail);
            if free == 0 {
                self.cached_tail = s.tail.0.load(Ordering::Acquire);
                free = self.cap - head.wrapping_sub(self.cached_tail);
                if free == 0 {
                    if !s.consumer_alive.load(Ordering::Relaxed) {
                        return Err(Disconnected);
                    }
                    s.full_waits.fetch_add(1, Ordering::Relaxed);
                    backoff.snooze();
                    continue;
                }
            }
            let burst = free.min(remaining);
            for _ in 0..burst {
                let item = iter.next().expect("length checked");
                self.stage(head, item);
                head = head.wrapping_add(1);
            }
            s.head.0.store(head, Ordering::Release);
            remaining -= burst;
            backoff.reset();
        }
        Ok(())
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.shared.producer_alive.store(false, Ordering::Release);
    }
}

impl<T> Consumer<T> {
    /// Items currently in flight (racy snapshot).
    #[must_use]
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.head
            .0
            .load(Ordering::Relaxed)
            .wrapping_sub(s.tail.0.load(Ordering::Relaxed))
    }

    /// Whether the ring is empty (racy snapshot).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Backpressure counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> RingStats {
        self.shared.stats()
    }

    /// Takes the published item at `tail`.
    #[inline]
    fn unstage(&self, tail: usize) -> T {
        self.shared.slots[tail & self.mask]
            .lock()
            .expect("ring slot lock poisoned")
            .take()
            .expect("published ring slot was empty")
    }

    /// Attempts to pop without blocking.
    ///
    /// # Errors
    /// [`TryPopError::Empty`] when nothing is published,
    /// [`TryPopError::Disconnected`] when the producer is gone and the
    /// ring is drained.
    pub fn try_pop(&mut self) -> Result<T, TryPopError> {
        let s = &*self.shared;
        let tail = s.tail.0.load(Ordering::Relaxed);
        if self.cached_head == tail {
            self.cached_head = s.head.0.load(Ordering::Acquire);
            if self.cached_head == tail {
                if s.producer_alive.load(Ordering::Acquire) {
                    return Err(TryPopError::Empty);
                }
                // The producer's final pushes happen-before the alive
                // flag clears: one more head read decides drained-vs-end.
                self.cached_head = s.head.0.load(Ordering::Acquire);
                if self.cached_head == tail {
                    return Err(TryPopError::Disconnected);
                }
            }
        }
        let item = self.unstage(tail);
        s.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(item)
    }

    /// Pops, blocking (spin → yield → sleep) while the ring is empty.
    /// Returns `None` when the producer is gone and everything was
    /// drained — the end-of-stream signal.
    pub fn pop(&mut self) -> Option<T> {
        match self.try_pop() {
            Ok(item) => return Some(item),
            Err(TryPopError::Disconnected) => return None,
            Err(TryPopError::Empty) => {}
        }
        self.shared.empty_waits.fetch_add(1, Ordering::Relaxed);
        let mut backoff = Backoff::new();
        loop {
            backoff.snooze();
            match self.try_pop() {
                Ok(item) => return Some(item),
                Err(TryPopError::Disconnected) => return None,
                Err(TryPopError::Empty) => {}
            }
        }
    }

    /// Drains everything currently published into `out` (appended),
    /// confirming the whole burst with a single `tail` store. Returns
    /// the number of items taken; `0` means nothing was published.
    pub fn pop_ready(&mut self, out: &mut Vec<T>) -> usize {
        let s = &*self.shared;
        let tail = s.tail.0.load(Ordering::Relaxed);
        self.cached_head = s.head.0.load(Ordering::Acquire);
        let avail = self.cached_head.wrapping_sub(tail);
        for i in 0..avail {
            out.push(self.unstage(tail.wrapping_add(i)));
        }
        if avail > 0 {
            s.tail.0.store(tail.wrapping_add(avail), Ordering::Release);
        }
        avail
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.shared.consumer_alive.store(false, Ordering::Release);
    }
}

/// A recycling pool of `Default`-constructible buffers.
///
/// Pipeline stages `get` a buffer, fill it, ship it through a ring, and
/// the receiving stage `put`s it back once drained. After warm-up every
/// `get` is a hit and the hot loop performs no heap allocation; misses
/// (pool empty → `T::default()` allocation at first use) are counted so
/// the zero-allocation claim is observable.
#[derive(Debug, Default)]
pub struct Pool<T> {
    stack: Mutex<Vec<T>>,
    misses: AtomicU64,
}

impl<T: Default> Pool<T> {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A recycled buffer, or `T::default()` (counted as a miss) when the
    /// pool is empty.
    pub fn get(&self) -> T {
        if let Some(item) = self.stack.lock().expect("pool lock poisoned").pop() {
            return item;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        T::default()
    }

    /// Returns a buffer to the pool. The caller clears it first — the
    /// pool stores it as-is.
    pub fn put(&self, item: T) {
        self.stack.lock().expect("pool lock poisoned").push(item);
    }

    /// `get` calls that found the pool empty.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        assert_eq!(tx.capacity(), 4);
        for i in 0..4 {
            tx.try_push(i).expect("fits");
        }
        assert!(matches!(tx.try_push(99), Err(TryPushError::Full(99))));
        for i in 0..4 {
            assert_eq!(rx.try_pop(), Ok(i));
        }
        assert_eq!(rx.try_pop(), Err(TryPopError::Empty));
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = spsc::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = spsc::<u8>(0);
        assert_eq!(tx.capacity(), 1);
    }

    #[test]
    fn wraparound_preserves_order() {
        let (mut tx, mut rx) = spsc::<usize>(2);
        for i in 0..1000 {
            tx.push(i).expect("consumer alive");
            if i % 2 == 1 {
                assert_eq!(rx.try_pop(), Ok(i - 1));
                assert_eq!(rx.try_pop(), Ok(i));
            }
        }
    }

    #[test]
    fn producer_drop_signals_end_of_stream_after_drain() {
        let (mut tx, mut rx) = spsc::<u8>(4);
        tx.try_push(1).expect("fits");
        tx.try_push(2).expect("fits");
        drop(tx);
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), None);
        assert_eq!(rx.try_pop(), Err(TryPopError::Disconnected));
    }

    #[test]
    fn consumer_drop_fails_pushes() {
        let (mut tx, rx) = spsc::<u8>(1);
        tx.try_push(1).expect("fits");
        drop(rx);
        // Ring is full and the consumer will never free a slot.
        assert!(matches!(tx.try_push(2), Err(TryPushError::Disconnected(2))));
        assert_eq!(tx.push(3), Err(3));
    }

    #[test]
    fn push_all_and_pop_ready_move_bursts() {
        let (mut tx, mut rx) = spsc::<u32>(8);
        let mut burst: Vec<u32> = (0..6).collect();
        tx.push_all(&mut burst).expect("consumer alive");
        assert!(burst.is_empty());
        let mut out = Vec::new();
        assert_eq!(rx.pop_ready(&mut out), 6);
        assert_eq!(out, (0..6).collect::<Vec<_>>());
        assert_eq!(rx.pop_ready(&mut out), 0);
    }

    #[test]
    fn push_all_larger_than_capacity_blocks_through() {
        let (mut tx, mut rx) = spsc::<u32>(2);
        let producer = std::thread::spawn(move || {
            let mut burst: Vec<u32> = (0..64).collect();
            tx.push_all(&mut burst).expect("consumer alive");
            tx.stats()
        });
        let mut got = Vec::new();
        while got.len() < 64 {
            if rx.pop_ready(&mut got) == 0 {
                std::thread::yield_now();
            }
        }
        assert_eq!(got, (0..64).collect::<Vec<_>>());
        let stats = producer.join().expect("producer");
        assert!(stats.full_waits > 0, "a 2-slot ring must have blocked");
    }

    #[test]
    fn blocked_pop_counts_empty_waits() {
        let (mut tx, mut rx) = spsc::<u8>(2);
        let consumer = std::thread::spawn(move || {
            let got = rx.pop();
            (got, rx.stats())
        });
        std::thread::sleep(Duration::from_millis(10));
        tx.push(7).expect("consumer alive");
        let (got, stats) = consumer.join().expect("consumer");
        assert_eq!(got, Some(7));
        assert!(stats.empty_waits > 0);
    }

    #[test]
    fn pool_recycles_and_counts_misses() {
        let pool: Pool<Vec<u8>> = Pool::new();
        let mut a = pool.get();
        assert_eq!(pool.misses(), 1);
        a.extend_from_slice(b"abc");
        a.clear();
        let cap = a.capacity();
        pool.put(a);
        let b = pool.get();
        assert_eq!(pool.misses(), 1, "recycled, not defaulted");
        assert_eq!(b.capacity(), cap, "same buffer came back");
    }
}
