//! A pay-per-click advertising-network simulator.
//!
//! The paper's motivation (§1.1) is economic: duplicate clicks drain
//! advertiser budgets, the publisher has little incentive to stop them,
//! and the resulting distrust ends in lawsuits. This crate builds the
//! laptop-scale substrate that turns the detectors of `cfd-core` into an
//! end-to-end system a downstream user could adopt:
//!
//! * [`entities`] — advertisers, campaigns, budgets.
//! * [`billing`] — the charging pipeline: every click runs through a
//!   pluggable [`cfd_windows::DuplicateDetector`]; only
//!   [`cfd_windows::Verdict::Distinct`] clicks are billed.
//! * [`network`] — the [`network::AdNetwork`] orchestrator and its
//!   [`report::NetworkReport`].
//! * [`audit`] — the paper's settlement mechanism: "both the online
//!   advertisers and publishers keep on auditing the click stream and
//!   reach an agreement on the determination of valid clicks". Two
//!   independent auditors replay the same stream concurrently and must
//!   produce identical valid-click digests.
//! * [`pipeline`] — the concurrent ingest → sharded detection → billing
//!   pipeline: one worker thread per keyspace shard, an order-restoring
//!   resequencer, and lock-free progress counters.
//! * [`ring`] — the bounded SPSC ring and buffer [`ring::Pool`] backing
//!   the pipeline's zero-steady-state-allocation ring transport.
//! * [`telemetry`] — the [`telemetry::PipelineTelemetry`] instrument
//!   bundle the `*_instrumented` pipeline entry points feed: queue
//!   depths, per-stage latency histograms, resequencer stalls, and
//!   on-request detector health (see `docs/OBSERVABILITY.md`).
//! * [`report`] — serde-serializable reports for the benches/examples.
//! * [`mod@serve`] — the long-running gateway: socket/file-tail ingest of
//!   [`cfd_stream::wire`] frames with reconnect + resume, hub
//!   backpressure propagated to the socket, checkpoint-delimited
//!   pipeline segments, and graceful drain (see `docs/OPERATIONS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod billing;
pub mod entities;
pub mod fraud;
pub mod network;
pub mod pipeline;
pub mod report;
pub mod ring;
pub mod serve;
pub mod telemetry;

pub use audit::{run_dual_audit, AuditOutcome};
pub use billing::{BillingEngine, ClickOutcome};
pub use entities::{Advertiser, AdvertiserId, Campaign, Registry};
pub use fraud::{FraudScorer, PublisherScore};
pub use network::AdNetwork;
pub use pipeline::{
    run_pipeline, run_pipeline_instrumented, run_sharded_pipeline,
    run_sharded_pipeline_instrumented, run_sharded_segment, run_timed_pipeline,
    run_timed_pipeline_instrumented, run_timed_sharded_pipeline,
    run_timed_sharded_pipeline_instrumented, PipelineConfig, PipelineOutcome, PipelineProgress,
    SegmentOutcome, SegmentState, Transport,
};
pub use report::NetworkReport;
pub use ring::{Pool, RingStats};
pub use serve::{
    replay_client, serve, ClientConfig, ClientStats, DrainControl, Endpoint, ServeConfig,
    ServeError, ServeInstruments, ServeOutcome, ServeTelemetry, ServerState,
};
pub use telemetry::PipelineTelemetry;
