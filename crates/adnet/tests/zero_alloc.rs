//! Zero-allocation regression test for the ring-transport pipeline.
//!
//! A counting [`GlobalAlloc`] wrapper tallies every allocation in the
//! process. The test streams a warm-up span through the pipeline, waits
//! until it is fully billed (every pooled buffer back in its pool,
//! every map and heap grown to its working size), snapshots the
//! counter, streams a measured span, waits again, and snapshots once
//! more. The steady state must allocate **nothing**: the delta between
//! the two snapshots is asserted to be exactly zero allocations.
//!
//! The library crates all `#![forbid(unsafe_code)]`; the one `unsafe
//! impl` lives here, in a test binary, where `GlobalAlloc` requires it.

use cfd_adnet::{run_sharded_pipeline, PipelineConfig, PipelineProgress, Transport};
use cfd_adnet::{Advertiser, AdvertiserId, Campaign, Registry};
use cfd_core::sharded::{per_shard_window, ShardedDetector};
use cfd_core::{Tbf, TbfConfig};
use cfd_stream::{AdId, BotnetConfig, BotnetStream, Click};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counts allocation events and bytes; delegates to the system
/// allocator. Deallocations are not tracked — the assertion is about
/// *acquiring* memory in the steady state, and frees never acquire.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn registry() -> Registry {
    let mut r = Registry::new();
    r.add_advertiser(Advertiser::new(AdvertiserId(1), "acme", u64::MAX / 4));
    for ad in 0..64 {
        r.add_campaign(Campaign {
            ad: AdId(ad),
            advertiser: AdvertiserId(1),
            cpc_micros: 100,
        })
        .expect("advertiser registered");
    }
    r
}

fn sharded_tbf(n: usize, shards: usize) -> ShardedDetector<Tbf> {
    ShardedDetector::from_fn(7, shards, |_| {
        let n_s = per_shard_window(n, shards);
        Tbf::new(
            TbfConfig::builder(n_s)
                .entries(n_s * 16)
                .seed(4)
                .build()
                .expect("cfg"),
        )
    })
    .expect("sharded detector")
}

/// Spin until `progress.billed()` reaches `target`, yielding so the
/// single-CPU CI container lets the pipeline threads run. Neither
/// `billed()` nor `yield_now` allocates.
fn wait_billed(progress: &PipelineProgress, target: u64) {
    while progress.billed() < target {
        std::thread::yield_now();
    }
}

#[test]
fn zero_alloc_steady_state() {
    const WARMUP: usize = 6_000;
    const MEASURED: usize = 6_000;
    const SHARDS: usize = 4;

    // Bounded key space: 8 publishers × 64 ads keeps the billing
    // ledger and fraud scorer maps at a fixed size once warm.
    let clicks: Vec<Click> = BotnetStream::new(BotnetConfig::default(), 8, 64)
        .take(WARMUP + MEASURED + 1)
        .map(|c| c.click)
        .collect();

    let progress = Arc::new(PipelineProgress::new());
    let start_calls = Arc::new(AtomicU64::new(u64::MAX));
    let end_calls = Arc::new(AtomicU64::new(u64::MAX));
    let start_bytes = Arc::new(AtomicU64::new(u64::MAX));
    let end_bytes = Arc::new(AtomicU64::new(u64::MAX));

    // `batch: 1` makes ingest pull exactly one click per ring push, so
    // when the stream closure below is asked for click `i`, clicks
    // `0..i` have all been pushed — waiting for `billed() == i` then
    // quiesces the whole pipeline (all pooled buffers returned, all
    // workers parked on empty rings) before the counter is sampled.
    let stream = {
        let progress = Arc::clone(&progress);
        let (sc, ec) = (Arc::clone(&start_calls), Arc::clone(&end_calls));
        let (sb, eb) = (Arc::clone(&start_bytes), Arc::clone(&end_bytes));
        clicks.into_iter().enumerate().map(move |(i, c)| {
            if i == WARMUP {
                wait_billed(&progress, WARMUP as u64);
                sc.store(ALLOC_CALLS.load(Ordering::Relaxed), Ordering::Relaxed);
                sb.store(ALLOC_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
            } else if i == WARMUP + MEASURED {
                wait_billed(&progress, (WARMUP + MEASURED) as u64);
                ec.store(ALLOC_CALLS.load(Ordering::Relaxed), Ordering::Relaxed);
                eb.store(ALLOC_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
            }
            c
        })
    };

    let outcome = run_sharded_pipeline(
        sharded_tbf(2_048, SHARDS),
        registry(),
        stream,
        PipelineConfig {
            batch: 1,
            queue: 8,
            transport: Transport::Ring,
            pin_workers: false,
        },
        Some(Arc::clone(&progress)),
    );
    assert_eq!(outcome.report.clicks, (WARMUP + MEASURED + 1) as u64);

    let calls = end_calls.load(Ordering::Relaxed) - start_calls.load(Ordering::Relaxed);
    let bytes = end_bytes.load(Ordering::Relaxed) - start_bytes.load(Ordering::Relaxed);
    assert!(
        end_calls.load(Ordering::Relaxed) != u64::MAX,
        "measurement span never ran"
    );
    assert_eq!(
        calls, 0,
        "steady state allocated {calls} times ({bytes} bytes) over {MEASURED} clicks"
    );
}
