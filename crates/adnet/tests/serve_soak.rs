//! Multi-client soak for `cfd serve`: zero steady-state allocations
//! and telemetry-visible backpressure instead of drops.
//!
//! Three clients stream framed clicks into one gateway over a Unix
//! socket. A counting [`GlobalAlloc`] wrapper tallies every allocation
//! in the process; after a warm-up span is fully billed the counter is
//! snapshotted, a measured span streams through all three connections,
//! and the delta is asserted to be **exactly zero** allocations — the
//! socket readers, frame decoder, hub, buffer pool, and ring pipeline
//! all reuse memory acquired during warm-up.
//!
//! The hub is deliberately sized at one batch so the producers outrun
//! the pipeline: the soak asserts `serve.hub.full_waits > 0` (readers
//! blocked, sockets pushed back) while **every** click still arrives —
//! backpressure, never loss.

use cfd_adnet::{
    serve, Advertiser, AdvertiserId, Campaign, DrainControl, Endpoint, PipelineConfig,
    PipelineProgress, Registry, ServeConfig, ServeInstruments, ServeTelemetry, ServerState,
    Transport,
};
use cfd_core::sharded::{per_shard_window, ShardedDetector};
use cfd_core::{Tbf, TbfConfig};
use cfd_stream::wire;
use cfd_stream::{AdId, BotnetConfig, BotnetStream, Click, ClickId, PublisherId};
use cfd_telemetry::Registry as MetricsRegistry;
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

/// Counts allocation events; delegates to the system allocator.
///
/// While `TRACE_SIZES` is set (the measured span), the first few
/// allocation sizes are also recorded so a nonzero delta names its
/// culprits in the failure message instead of just counting them.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static TRACE_SIZES: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
static TRACED: [AtomicU64; 8] = [const { AtomicU64::new(0) }; 8];
static TRACED_AT: AtomicU64 = AtomicU64::new(0);

fn count(size: usize) {
    ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    if TRACE_SIZES.load(Ordering::Relaxed) {
        let at = TRACED_AT.fetch_add(1, Ordering::Relaxed) as usize;
        if let Some(slot) = TRACED.get(at) {
            slot.store(size as u64, Ordering::Relaxed);
        }
    }
}

fn traced_sizes() -> Vec<u64> {
    let n = (TRACED_AT.load(Ordering::Relaxed) as usize).min(TRACED.len());
    TRACED[..n]
        .iter()
        .map(|s| s.load(Ordering::Relaxed))
        .collect()
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const CLIENTS: usize = 3;
const WARMUP_PER_CLIENT: usize = 2_000;
const MEASURED_PER_CLIENT: usize = 2_000;
const PER_CLIENT: usize = WARMUP_PER_CLIENT + MEASURED_PER_CLIENT;
const FRAME_CLICKS: usize = 64;
const SHARDS: usize = 4;
const PUBLISHERS: usize = 8;
const ADS: usize = 64;

/// One click for every (publisher, ad) pair, prepended to the warm-up
/// span so every publisher-keyed billing/scorer map reaches its final
/// bucket count before the allocation counters are snapshotted.
///
/// Relying on the random stream for coverage is a latent flake: a
/// publisher or ad whose first click lands in the *measured* span
/// would grow a ledger/scorer hash table mid-soak. (The intermittent
/// 224-byte allocation this soak used to catch turned out to be the
/// ring pipeline's lazily-populated batch pools, fixed at the source
/// by pre-populating them — but deterministic key coverage keeps the
/// map-growth hazard closed regardless of stream seed.)
fn coverage_sweep() -> Vec<Click> {
    (0..PUBLISHERS)
        .flat_map(|p| {
            (0..ADS).map(move |ad| {
                let id = ClickId::new(0xC0A8_0000 + (p * ADS + ad) as u32, 0, AdId(ad as u32));
                Click::new(id, 0, PublisherId(p as u32), 100)
            })
        })
        .collect()
}

fn registry() -> Registry {
    let mut r = Registry::new();
    r.add_advertiser(Advertiser::new(AdvertiserId(1), "acme", u64::MAX / 4));
    for ad in 0..64 {
        r.add_campaign(Campaign {
            ad: AdId(ad),
            advertiser: AdvertiserId(1),
            cpc_micros: 100,
        })
        .expect("advertiser registered");
    }
    r
}

fn sharded_tbf() -> ShardedDetector<Tbf> {
    ShardedDetector::from_fn(7, SHARDS, |_| {
        let n_s = per_shard_window(2_048, SHARDS);
        Tbf::new(
            TbfConfig::builder(n_s)
                .entries(n_s * 16)
                .seed(4)
                .build()
                .expect("cfg"),
        )
    })
    .expect("sharded detector")
}

/// All frames for `clicks` concatenated into one writable buffer.
fn encode_span(clicks: &[Click]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(clicks.len() * wire::CLICK_RECORD_BYTES + 1024);
    for chunk in clicks.chunks(FRAME_CLICKS) {
        wire::encode_clicks(&mut buf, chunk);
    }
    buf
}

/// Spin until `progress.billed()` reaches `target`; neither `billed()`
/// nor `yield_now` allocates.
fn wait_billed(progress: &PipelineProgress, target: u64) {
    while progress.billed() < target {
        thread::yield_now();
    }
}

#[test]
fn multi_client_soak_is_zero_alloc_with_backpressure() {
    let sweep = coverage_sweep();
    let total = (CLIENTS * PER_CLIENT + sweep.len()) as u64;
    let warm_total = (CLIENTS * WARMUP_PER_CLIENT + sweep.len()) as u64;

    // Bounded key space (8 publishers × 64 ads), and client 0's warm-up
    // opens with the deterministic sweep over all of it, so every ledger
    // and scorer map reaches its working size during warm-up.
    let clicks: Vec<Click> = BotnetStream::new(BotnetConfig::default(), 8, 64)
        .take(CLIENTS * PER_CLIENT)
        .map(|c| c.click)
        .collect();

    // Pre-encode every frame each client will write, so the measured
    // phase on the client side is nothing but `write_all` of a slice.
    let warm_bufs: Vec<Vec<u8>> = (0..CLIENTS)
        .map(|i| {
            let span = &clicks[i * PER_CLIENT..i * PER_CLIENT + WARMUP_PER_CLIENT];
            if i == 0 {
                let mut with_sweep = sweep.clone();
                with_sweep.extend_from_slice(span);
                encode_span(&with_sweep)
            } else {
                encode_span(span)
            }
        })
        .collect();
    let meas_bufs: Vec<Vec<u8>> = (0..CLIENTS)
        .map(|i| encode_span(&clicks[i * PER_CLIENT + WARMUP_PER_CLIENT..(i + 1) * PER_CLIENT]))
        .collect();
    let mut drain_buf = Vec::new();
    wire::encode_drain(&mut drain_buf);
    let hello_len = {
        let mut v = Vec::new();
        wire::encode_hello(&mut v, 0);
        v.len()
    };

    let sock = std::env::temp_dir().join(format!("cfd-serve-soak-{}.sock", std::process::id()));
    let endpoint = Endpoint::Unix(sock.clone());
    let control = DrainControl::new();
    let metrics = Arc::new(MetricsRegistry::new());
    let progress = Arc::new(PipelineProgress::new());
    let instruments = ServeInstruments {
        serve: Some(Arc::new(ServeTelemetry::new(&metrics))),
        pipeline: None,
        progress: Some(Arc::clone(&progress)),
    };
    let config = ServeConfig {
        pipeline: PipelineConfig {
            batch: 1,
            queue: 8,
            transport: Transport::Ring,
            pin_workers: false,
        },
        checkpoint_path: None,
        checkpoint_every: 0,
        // One-batch hub: three eager producers against a per-click
        // consumer guarantees blocked sends — visible backpressure.
        hub_batches: 1,
        // Pin the buffer population at startup: hub depth + one batch
        // in flight per connection + one being drained, with room for
        // the largest frame — the steady state never creates a buffer.
        pool_buffers: CLIENTS + 4,
        pool_clicks: FRAME_CLICKS,
    };

    let barrier = Barrier::new(CLIENTS + 1);
    let (start_calls, end_calls) = (AtomicU64::new(0), AtomicU64::new(0));
    let (start_bytes, end_bytes) = (AtomicU64::new(0), AtomicU64::new(0));

    let outcome = thread::scope(|s| {
        let server = s.spawn(|| {
            serve(
                ServerState::new(sharded_tbf(), registry()),
                &endpoint,
                &config,
                &control,
                &instruments,
            )
            .expect("serve")
        });

        for i in 0..CLIENTS {
            let (warm, meas) = (&warm_bufs[i], &meas_bufs[i]);
            let (sock, barrier, drain) = (&sock, &barrier, &drain_buf);
            s.spawn(move || {
                let mut stream = loop {
                    match UnixStream::connect(sock) {
                        Ok(s) => break s,
                        Err(_) => thread::sleep(Duration::from_millis(5)),
                    }
                };
                let mut hello = vec![0u8; hello_len];
                stream.read_exact(&mut hello).expect("hello");
                stream.write_all(warm).expect("warm-up span");
                barrier.wait(); // warm-up written
                barrier.wait(); // counters snapshotted; go
                stream.write_all(meas).expect("measured span");
                barrier.wait(); // measured billed + snapshotted
                if i == 0 {
                    stream.write_all(drain).expect("drain frame");
                }
            });
        }

        barrier.wait(); // all warm-up frames written
        wait_billed(&progress, warm_total);
        start_calls.store(ALLOC_CALLS.load(Ordering::Relaxed), Ordering::Relaxed);
        start_bytes.store(ALLOC_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
        TRACE_SIZES.store(true, Ordering::Relaxed);
        barrier.wait(); // release the measured span
        wait_billed(&progress, total);
        TRACE_SIZES.store(false, Ordering::Relaxed);
        end_calls.store(ALLOC_CALLS.load(Ordering::Relaxed), Ordering::Relaxed);
        end_bytes.store(ALLOC_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
        barrier.wait(); // release the drain
        server.join().expect("server thread")
    });

    // No drops anywhere: every click of every client was accepted,
    // detected, and billed.
    assert_eq!(outcome.report.clicks, total);
    assert_eq!(outcome.state.position, total);
    let snap = metrics.snapshot();
    assert_eq!(snap.get_counter("serve.clicks_received"), Some(total));
    assert_eq!(snap.get_counter("serve.connections"), Some(CLIENTS as u64));

    // Backpressure was real and visible: readers blocked on the
    // one-batch hub instead of dropping.
    let full_waits = snap.get_counter("serve.hub.full_waits").expect("counter");
    assert!(
        full_waits > 0,
        "three eager producers against a one-batch hub must block at least once"
    );

    let calls = end_calls.load(Ordering::Relaxed) - start_calls.load(Ordering::Relaxed);
    let bytes = end_bytes.load(Ordering::Relaxed) - start_bytes.load(Ordering::Relaxed);
    assert_eq!(
        calls,
        0,
        "steady state allocated {calls} times ({bytes} bytes, sizes {:?}) over {} clicks",
        traced_sizes(),
        total - warm_total
    );
}
