//! Recorded-replay equivalence for `cfd serve`.
//!
//! The headline acceptance test of the serving layer: a trace streamed
//! over a Unix socket through the gateway — including a mid-stream
//! graceful shutdown, a checkpoint restore, and a resumed client — must
//! produce a billing report **identical, verdict for verdict**, to
//! feeding the same trace to the in-process pipeline.

use cfd_adnet::{
    replay_client, run_sharded_pipeline, serve, Advertiser, AdvertiserId, Campaign, ClientConfig,
    DrainControl, Endpoint, PipelineConfig, Registry, ServeConfig, ServeInstruments, ServerState,
};
use cfd_core::sharded::{per_shard_window, ShardedDetector};
use cfd_core::{Tbf, TbfConfig};
use cfd_stream::{AdId, BotnetConfig, BotnetStream, Click};
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

const SHARDS: usize = 4;
const WINDOW: usize = 2_048;

fn registry() -> Registry {
    let mut r = Registry::new();
    r.add_advertiser(Advertiser::new(AdvertiserId(1), "acme", u64::MAX / 4));
    for ad in 0..64 {
        r.add_campaign(Campaign {
            ad: AdId(ad),
            advertiser: AdvertiserId(1),
            cpc_micros: 100,
        })
        .expect("advertiser registered");
    }
    r
}

fn sharded_tbf() -> ShardedDetector<Tbf> {
    ShardedDetector::from_fn(7, SHARDS, |_| {
        let n_s = per_shard_window(WINDOW, SHARDS);
        Tbf::new(
            TbfConfig::builder(n_s)
                .entries(n_s * 16)
                .seed(4)
                .build()
                .expect("cfg"),
        )
    })
    .expect("sharded detector")
}

fn trace(n: usize) -> Vec<Click> {
    BotnetStream::new(BotnetConfig::default(), 8, 64)
        .take(n)
        .map(|c| c.click)
        .collect()
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cfd-{name}-{}", std::process::id()))
}

/// The reference: one continuous in-process pipeline run.
fn in_process_report(clicks: &[Click]) -> cfd_adnet::NetworkReport {
    run_sharded_pipeline(
        sharded_tbf(),
        registry(),
        clicks.iter().copied(),
        PipelineConfig::default(),
        None,
    )
    .report
}

#[test]
fn socket_stream_equals_in_process_run() {
    let clicks = trace(10_000);
    let expected = in_process_report(&clicks);

    let sock = temp_path("serve-eq.sock");
    let endpoint = Endpoint::Unix(sock.clone());
    let control = DrainControl::new();
    let config = ServeConfig::default();

    let outcome = thread::scope(|s| {
        let server = s.spawn(|| {
            serve(
                ServerState::new(sharded_tbf(), registry()),
                &endpoint,
                &config,
                &control,
                &ServeInstruments::default(),
            )
            .expect("serve")
        });
        let stats = replay_client(
            &endpoint,
            &clicks,
            &ClientConfig {
                drain: true,
                ..ClientConfig::default()
            },
        )
        .expect("replay");
        assert_eq!(stats.sent_clicks, clicks.len() as u64);
        assert_eq!(stats.skipped_clicks, 0);
        assert_eq!(stats.server_position, 0, "fresh server starts at zero");
        server.join().expect("server thread")
    });

    assert_eq!(
        outcome.report, expected,
        "socket-streamed report must be identical to the in-process run"
    );
    assert_eq!(outcome.state.position, clicks.len() as u64);
}

#[test]
fn checkpoint_restart_resumes_without_false_negatives() {
    let clicks = trace(9_000);
    let cut = 5_000u64;
    let expected = in_process_report(&clicks);

    let sock = temp_path("serve-restart.sock");
    let ckpt = temp_path("serve-restart.cfdg");
    let _ = std::fs::remove_file(&ckpt);
    let endpoint = Endpoint::Unix(sock.clone());
    let config = ServeConfig {
        checkpoint_path: Some(ckpt.clone()),
        checkpoint_every: 2_000,
        ..ServeConfig::default()
    };

    // Phase 1: stream a prefix, then drain gracefully mid-stream via the
    // in-band DRAIN frame. The server checkpoints every 2 000 clicks and
    // once more at drain, so the file on disk covers exactly `cut`.
    let control1 = DrainControl::new();
    let position1 = thread::scope(|s| {
        let server = s.spawn(|| {
            serve(
                ServerState::new(sharded_tbf(), registry()),
                &endpoint,
                &config,
                &control1,
                &ServeInstruments::default(),
            )
            .expect("serve phase 1")
        });
        let stats = replay_client(
            &endpoint,
            &clicks,
            &ClientConfig {
                limit: Some(cut),
                drain: true,
                ..ClientConfig::default()
            },
        )
        .expect("replay phase 1");
        assert_eq!(stats.sent_clicks, cut);
        let outcome = server.join().expect("server thread");
        assert_eq!(outcome.state.position, cut);
        outcome.state.position
    });

    // Phase 2: "kill -9" simulation boundary — all in-memory state is
    // discarded; the restarted server has only the checkpoint file.
    let restored = ServerState::<Tbf>::read_checkpoint(&ckpt).expect("restore checkpoint");
    assert_eq!(restored.position, position1);

    let control2 = DrainControl::new();
    let outcome = thread::scope(|s| {
        let server = s.spawn(|| {
            serve(
                restored,
                &endpoint,
                &config,
                &control2,
                &ServeInstruments::default(),
            )
            .expect("serve phase 2")
        });
        // The client replays the FULL trace; the HELLO position makes
        // it skip the prefix the checkpoint already covers.
        let stats = replay_client(
            &endpoint,
            &clicks,
            &ClientConfig {
                drain: true,
                ..ClientConfig::default()
            },
        )
        .expect("replay phase 2");
        assert_eq!(
            stats.server_position, cut,
            "HELLO announces the restored position"
        );
        assert_eq!(stats.skipped_clicks, cut);
        assert_eq!(stats.sent_clicks, clicks.len() as u64 - cut);
        server.join().expect("server thread")
    });

    assert_eq!(
        outcome.report, expected,
        "a checkpoint/restart cycle must not change a single verdict or micro"
    );
    assert_eq!(outcome.state.position, clicks.len() as u64);

    // The final checkpoint equals the final state: a second restart
    // would resume at the end of the stream.
    let last = ServerState::<Tbf>::read_checkpoint(&ckpt).expect("final checkpoint");
    assert_eq!(last.position, clicks.len() as u64);
    assert_eq!(last.ledger.revenue_micros, outcome.report.revenue_micros);
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn client_backs_off_until_server_arrives() {
    let clicks = trace(500);
    let sock = temp_path("serve-backoff.sock");
    let endpoint = Endpoint::Unix(sock.clone());
    let control = DrainControl::new();
    let config = ServeConfig::default();

    let (stats, outcome) = thread::scope(|s| {
        // Client first: every dial fails until the server binds.
        let client = s.spawn(|| {
            replay_client(
                &endpoint,
                &clicks,
                &ClientConfig {
                    drain: true,
                    connect_attempts: 200,
                    ..ClientConfig::default()
                },
            )
            .expect("client retries until the server is up")
        });
        thread::sleep(Duration::from_millis(150));
        let server = s.spawn(|| {
            serve(
                ServerState::new(sharded_tbf(), registry()),
                &endpoint,
                &config,
                &control,
                &ServeInstruments::default(),
            )
            .expect("serve")
        });
        (
            client.join().expect("client"),
            server.join().expect("server"),
        )
    });

    assert!(
        stats.connect_retries > 0,
        "the client must have retried at least once before the server bound"
    );
    assert_eq!(stats.sent_clicks, clicks.len() as u64);
    assert_eq!(outcome.report.clicks, clicks.len() as u64);
}

#[test]
fn file_tail_mode_streams_and_drains() {
    let clicks = trace(3_000);
    let expected = in_process_report(&clicks);
    let frames = temp_path("serve-tail.cfdw");
    let _ = std::fs::remove_file(&frames);
    let endpoint = Endpoint::FileTail(frames.clone());
    let control = DrainControl::new();
    let config = ServeConfig::default();

    let outcome = thread::scope(|s| {
        let server = s.spawn(|| {
            serve(
                ServerState::new(sharded_tbf(), registry()),
                &endpoint,
                &config,
                &control,
                &ServeInstruments::default(),
            )
            .expect("serve")
        });
        let stats = replay_client(
            &endpoint,
            &clicks,
            &ClientConfig {
                drain: true,
                ..ClientConfig::default()
            },
        )
        .expect("append frames");
        assert_eq!(stats.sent_clicks, clicks.len() as u64);
        server.join().expect("server thread")
    });

    assert_eq!(
        outcome.report, expected,
        "tailed file run must match in-process"
    );
    let _ = std::fs::remove_file(&frames);
}
