//! Property and stress tests of the SPSC ring: whatever mix of single
//! pushes, burst pushes, single pops, and burst pops the two ends use,
//! every item comes out exactly once, in FIFO order, with nothing lost
//! at disconnect.

use cfd_adnet::ring::{spsc, TryPopError, TryPushError};
use proptest::prelude::*;

proptest! {
    /// Single-threaded FIFO: an arbitrary interleaving of bounded
    /// pushes and pops never loses, duplicates, or reorders an item.
    #[test]
    fn interleaved_ops_preserve_fifo(
        capacity in 1usize..12,
        ops in prop::collection::vec((any::<bool>(), 1usize..7), 0..64),
    ) {
        let (mut tx, mut rx) = spsc::<u64>(capacity);
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        for (is_push, amount) in ops {
            if is_push {
                for _ in 0..amount {
                    match tx.try_push(next_in) {
                        Ok(()) => next_in += 1,
                        Err(TryPushError::Full(_)) => break,
                        Err(TryPushError::Disconnected(_)) => unreachable!("consumer alive"),
                    }
                }
            } else {
                for _ in 0..amount {
                    match rx.try_pop() {
                        Ok(v) => {
                            prop_assert_eq!(v, next_out, "FIFO order violated");
                            next_out += 1;
                        }
                        Err(TryPopError::Empty) => break,
                        Err(TryPopError::Disconnected) => unreachable!("producer alive"),
                    }
                }
            }
            prop_assert_eq!(tx.len() as u64, next_in - next_out);
        }
        // Drain: everything pushed must still be there, in order.
        while let Ok(v) = rx.try_pop() {
            prop_assert_eq!(v, next_out);
            next_out += 1;
        }
        prop_assert_eq!(next_out, next_in, "items lost in the ring");
    }

    /// Burst API FIFO: `push_all` / `pop_ready` move whole batches with
    /// one publication each, and the stream they carry is still exact.
    #[test]
    fn burst_ops_preserve_fifo(
        capacity in 1usize..12,
        bursts in prop::collection::vec(1usize..9, 0..32),
    ) {
        let (mut tx, mut rx) = spsc::<u64>(capacity);
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        let mut inbox: Vec<u64> = Vec::new();
        let mut outbox: Vec<u64> = Vec::new();
        for burst in bursts {
            inbox.clear();
            for _ in 0..burst.min(tx.capacity()) {
                inbox.push(next_in);
                next_in += 1;
            }
            prop_assert!(tx.push_all(&mut inbox).is_ok(), "consumer alive");
            prop_assert!(inbox.is_empty(), "push_all drains its buffer");
            outbox.clear();
            rx.pop_ready(&mut outbox);
            for v in &outbox {
                prop_assert_eq!(*v, next_out);
                next_out += 1;
            }
        }
        outbox.clear();
        rx.pop_ready(&mut outbox);
        for v in &outbox {
            prop_assert_eq!(*v, next_out);
            next_out += 1;
        }
        prop_assert_eq!(next_out, next_in, "items lost in the ring");
    }

    /// Two real threads, randomized batch sizes on both ends, a ring
    /// deliberately smaller than the stream: the consumer receives
    /// exactly 0..n in order — no loss, no duplication, no reordering
    /// across the wrap boundary — and sees a clean end-of-stream.
    #[test]
    fn two_thread_stream_is_exact(
        capacity in 1usize..9,
        n in 0usize..3_000,
        push_chunk in 1usize..65,
        pop_burst in any::<bool>(),
    ) {
        let (mut tx, mut rx) = spsc::<u64>(capacity);
        let producer = std::thread::spawn(move || {
            let mut sent = 0u64;
            while (sent as usize) < n {
                let end = (sent as usize + push_chunk).min(n) as u64;
                let mut chunk: Vec<u64> = (sent..end).collect();
                if tx.push_all(&mut chunk).is_err() {
                    return sent;
                }
                sent = end;
            }
            sent
        });
        let mut received = 0u64;
        let mut scratch: Vec<u64> = Vec::new();
        if pop_burst {
            loop {
                scratch.clear();
                if rx.pop_ready(&mut scratch) == 0 {
                    match rx.try_pop() {
                        Ok(v) => scratch.push(v),
                        Err(TryPopError::Empty) => {
                            std::thread::yield_now();
                            continue;
                        }
                        Err(TryPopError::Disconnected) => break,
                    }
                }
                for v in &scratch {
                    prop_assert_eq!(*v, received, "order violated");
                    received += 1;
                }
            }
        } else {
            while let Some(v) = rx.pop() {
                prop_assert_eq!(v, received, "order violated");
                received += 1;
            }
        }
        let sent = producer.join().expect("producer panicked");
        prop_assert_eq!(sent, n as u64, "producer saw a false disconnect");
        prop_assert_eq!(received, n as u64, "items lost or duplicated");
    }
}

/// A longer fixed-seed stress run than the proptest cases: a tiny ring
/// forces constant wraparound and full/empty collisions between two
/// free-running threads, and the stream must still be exact.
#[test]
fn two_thread_wraparound_stress() {
    const N: u64 = 200_000;
    let (mut tx, mut rx) = spsc::<u64>(4);
    let producer = std::thread::spawn(move || {
        for v in 0..N {
            tx.push(v).expect("consumer outlives the stream");
        }
        tx.stats().full_waits
    });
    let mut expected = 0u64;
    while let Some(v) = rx.pop() {
        assert_eq!(v, expected, "order violated at item {expected}");
        expected += 1;
    }
    let full_waits = producer.join().expect("producer panicked");
    assert_eq!(expected, N, "items lost or duplicated");
    // A 4-slot ring carrying 200k items cannot avoid backpressure.
    assert!(full_waits > 0, "stress run never exercised a full ring");
}
