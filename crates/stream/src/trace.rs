//! Binary click-trace I/O.
//!
//! Experiments must be replayable byte-for-byte (EXPERIMENTS.md pins its
//! numbers to trace hashes), so clicks can be serialized to a compact
//! fixed-width binary format:
//!
//! ```text
//! magic "CFDT" | version u16 | record count u64 |
//! repeated { tick u64 | ip u32 | cookie u64 | ad u32 | publisher u32 | cost u64 }
//! ```
//!
//! All integers little-endian. [`Click`] also derives serde for users who
//! prefer their own formats.

use crate::click::{AdId, Click, ClickId, PublisherId};
use bytes::{Buf, BufMut};
use std::fmt;

const MAGIC: &[u8; 4] = b"CFDT";
const VERSION: u16 = 1;
const RECORD_BYTES: usize = 8 + 4 + 8 + 4 + 4 + 8;

/// Error produced when decoding a click trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The buffer does not start with the `CFDT` magic.
    BadMagic,
    /// The format version is unsupported.
    BadVersion(u16),
    /// The buffer ended before the declared record count was read.
    Truncated {
        /// Records expected from the header.
        expected: u64,
        /// Records actually decoded.
        got: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "buffer is not a CFDT click trace"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Truncated { expected, got } => {
                write!(f, "trace truncated: expected {expected} records, got {got}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Serializes `clicks` into a fresh byte buffer.
///
/// ```rust
/// use cfd_stream::{read_trace, write_trace, UniqueClickStream};
/// let clicks: Vec<_> = UniqueClickStream::new(1, 2, 3).take(10).collect();
/// let buf = write_trace(&clicks);
/// assert_eq!(read_trace(&buf).expect("roundtrip"), clicks);
/// ```
#[must_use]
pub fn write_trace(clicks: &[Click]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + 2 + 8 + clicks.len() * RECORD_BYTES);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u64_le(clicks.len() as u64);
    for c in clicks {
        buf.put_u64_le(c.tick);
        buf.put_u32_le(c.id.ip);
        buf.put_u64_le(c.id.cookie);
        buf.put_u32_le(c.id.ad.0);
        buf.put_u32_le(c.publisher.0);
        buf.put_u64_le(c.cost_micros);
    }
    buf
}

/// Decodes a trace produced by [`write_trace`].
///
/// # Errors
///
/// Returns [`TraceError`] on bad magic, unsupported version, or a
/// truncated buffer.
pub fn read_trace(mut buf: &[u8]) -> Result<Vec<Click>, TraceError> {
    if buf.remaining() < 14 || &buf[..4] != MAGIC {
        return Err(TraceError::BadMagic);
    }
    buf.advance(4);
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(TraceError::BadVersion(version));
    }
    let count = buf.get_u64_le();
    let mut out = Vec::with_capacity(count.min(1 << 24) as usize);
    for got in 0..count {
        if buf.remaining() < RECORD_BYTES {
            return Err(TraceError::Truncated {
                expected: count,
                got,
            });
        }
        let tick = buf.get_u64_le();
        let ip = buf.get_u32_le();
        let cookie = buf.get_u64_le();
        let ad = buf.get_u32_le();
        let publisher = buf.get_u32_le();
        let cost = buf.get_u64_le();
        out.push(Click::new(
            ClickId::new(ip, cookie, AdId(ad)),
            tick,
            PublisherId(publisher),
            cost,
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::unique::UniqueClickStream;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_preserves_everything() {
        let clicks: Vec<Click> = UniqueClickStream::new(9, 5, 11).take(1_000).collect();
        let buf = write_trace(&clicks);
        assert_eq!(read_trace(&buf).expect("valid"), clicks);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let buf = write_trace(&[]);
        assert_eq!(read_trace(&buf).expect("valid"), vec![]);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(read_trace(b"NOPE"), Err(TraceError::BadMagic));
        assert_eq!(read_trace(b""), Err(TraceError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = write_trace(&[]);
        buf[4] = 0xFF;
        assert!(matches!(read_trace(&buf), Err(TraceError::BadVersion(_))));
    }

    #[test]
    fn truncation_detected_with_counts() {
        let clicks: Vec<Click> = UniqueClickStream::new(1, 2, 3).take(5).collect();
        let buf = write_trace(&clicks);
        let cut = &buf[..buf.len() - 10];
        assert_eq!(
            read_trace(cut),
            Err(TraceError::Truncated {
                expected: 5,
                got: 4
            })
        );
    }

    #[test]
    fn errors_have_displays() {
        assert!(TraceError::BadMagic.to_string().contains("CFDT"));
        assert!(TraceError::BadVersion(3).to_string().contains('3'));
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_clicks(
            raw in prop::collection::vec(any::<(u64, u32, u64, u32, u32, u64)>(), 0..50)
        ) {
            let clicks: Vec<Click> = raw
                .into_iter()
                .map(|(t, ip, ck, ad, pb, cost)| {
                    Click::new(ClickId::new(ip, ck, AdId(ad)), t, PublisherId(pb), cost)
                })
                .collect();
            let buf = write_trace(&clicks);
            prop_assert_eq!(read_trace(&buf).expect("valid"), clicks);
        }
    }
}
