//! Web-crawler traffic (click-fraud source #4 in paper §1.1).
//!
//! Crawlers are not malicious, but they re-visit ad links on a schedule,
//! producing periodic identical clicks that must not be billed. Unlike a
//! botnet, a crawler's repeats have a *fixed* period, which exercises
//! the detectors at one specific lag — right at, inside, or outside the
//! window boundary.

use crate::click::{AdId, Click, ClickId, PublisherId};
use crate::gen::ids::{tag_cookie, NS_CRAWLER};
use crate::gen::unique::UniqueClickStream;

/// A crawler fleet interleaved with organic traffic.
///
/// Each of the `crawlers` agents revisits every ad in `0..ads` in a
/// round-robin with a fixed `period` (in stream positions): the same
/// (crawler, ad) click reappears every `period × ads / crawlers`-ish
/// positions, deterministically.
///
/// ```rust
/// use cfd_stream::gen::crawler::CrawlerStream;
/// let s = CrawlerStream::new(4, 16, 10, 1);
/// let clicks: Vec<_> = s.take(100).collect();
/// assert_eq!(clicks.len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct CrawlerStream {
    crawlers: u32,
    ads: u32,
    /// Every `period`-th stream position is a crawler click.
    period: u64,
    organic: UniqueClickStream,
    position: u64,
    crawl_step: u64,
    ns: u8,
}

impl CrawlerStream {
    /// Creates the stream: one crawler click every `period` positions,
    /// cycling over `crawlers × ads` (agent, ad) pairs.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero, or if `crawlers` exceeds the
    /// `2^24 - 1` agents the address block can hold (ORing a wider id
    /// into the `0x2E` prefix would alias two crawlers onto one IP).
    #[must_use]
    pub fn new(crawlers: u32, ads: u32, period: u64, seed: u64) -> Self {
        assert!(
            crawlers > 0 && ads > 0 && period > 0,
            "parameters must be positive"
        );
        assert!(
            crawlers <= 0x00FF_FFFF,
            "at most 2^24 - 1 crawlers fit the address block"
        );
        Self {
            crawlers,
            ads,
            period,
            organic: UniqueClickStream::new(seed ^ 0xC4A3_11E4, 8, ads),
            position: 0,
            crawl_step: 0,
            ns: NS_CRAWLER,
        }
    }

    /// Moves the crawler and organic sides onto explicit cookie
    /// namespaces (see [`crate::gen::ids`]).
    #[must_use]
    pub fn with_namespaces(mut self, crawler: u8, organic: u8) -> Self {
        self.ns = crawler;
        self.organic = self.organic.with_namespace(organic);
        self
    }

    /// The identity of crawler `c` visiting ad `a`.
    #[must_use]
    pub fn crawler_identity(&self, c: u32, a: u32) -> ClickId {
        // Crawlers come from a well-known address block and send no
        // cookie payload — the cookie is just the namespace stamp, which
        // keeps the fleet disjoint from every other sub-stream.
        ClickId::new(
            0x2E00_0000 | (c & 0x00FF_FFFF),
            tag_cookie(self.ns, u64::from(c)),
            AdId(a % self.ads),
        )
    }

    /// Whether a click was produced by the crawler fleet (vs organic).
    #[must_use]
    pub fn is_crawler_click(&self, click: &Click) -> bool {
        crate::gen::ids::namespace_of(click.id.cookie) == self.ns
    }

    /// Number of stream positions between two visits of the *same*
    /// (crawler, ad) pair.
    #[must_use]
    pub fn revisit_lag(&self) -> u64 {
        self.period * u64::from(self.crawlers) * u64::from(self.ads)
    }
}

impl Iterator for CrawlerStream {
    type Item = Click;

    fn next(&mut self) -> Option<Click> {
        let click = if self.position.is_multiple_of(self.period) {
            let pair = self.crawl_step;
            self.crawl_step += 1;
            let c = (pair % u64::from(self.crawlers)) as u32;
            let a = ((pair / u64::from(self.crawlers)) % u64::from(self.ads)) as u32;
            Click::new(
                self.crawler_identity(c, a),
                self.position,
                PublisherId(0),
                100_000,
            )
        } else {
            let mut c = self.organic.next().expect("infinite stream");
            c.tick = self.position;
            c
        };
        self.position += 1;
        Some(click)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn crawler_clicks_repeat_at_exactly_the_revisit_lag() {
        let s = CrawlerStream::new(3, 4, 5, 1);
        let lag = s.revisit_lag();
        let probe = CrawlerStream::new(3, 4, 5, 1);
        let clicks: Vec<Click> = s.take(3 * lag as usize).collect();
        let mut last_pos: HashMap<[u8; 16], u64> = HashMap::new();
        let mut repeats = 0u64;
        for c in &clicks {
            if probe.is_crawler_click(c) {
                // crawler click
                if let Some(&prev) = last_pos.get(&c.key()) {
                    assert_eq!(c.tick - prev, lag, "wrong revisit period");
                    repeats += 1;
                }
                last_pos.insert(c.key(), c.tick);
            }
        }
        assert!(repeats > 0, "no revisits observed");
    }

    #[test]
    fn organic_share_matches_period() {
        let probe = CrawlerStream::new(2, 8, 10, 2);
        let clicks: Vec<Click> = CrawlerStream::new(2, 8, 10, 2).take(10_000).collect();
        let crawler = clicks.iter().filter(|c| probe.is_crawler_click(c)).count();
        assert_eq!(crawler, 1_000);
    }

    #[test]
    #[should_panic(expected = "address block")]
    fn too_many_crawlers_panic_instead_of_aliasing() {
        // Pre-fix, crawler ids above 2^24 - 1 OR'd into the 0x2E prefix
        // and aliased onto lower agents' IPs.
        let _ = CrawlerStream::new(0x0100_0000, 1, 1, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<Click> = CrawlerStream::new(2, 4, 3, 9).take(200).collect();
        let b: Vec<Click> = CrawlerStream::new(2, 4, 3, 9).take(200).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_panics() {
        let _ = CrawlerStream::new(1, 1, 0, 0);
    }
}
