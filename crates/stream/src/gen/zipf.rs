//! Zipf-distributed id sampling.
//!
//! Real click traffic is heavily skewed — a few popular pages/ads draw
//! most clicks. The Zipf sampler drives the "organic traffic with
//! repeats" workloads in the examples and benches. Implemented with a
//! precomputed CDF + binary search: exact, `O(log n)` per sample, and
//! `O(n)` memory (fine at the ≤ 2^22 universes used here; documented
//! trade-off vs. rejection-inversion).

use crate::click::{AdId, Click, ClickId, PublisherId};
use crate::gen::ids::{tag_cookie, NS_ZIPF};
use cfd_hash::mix::splitmix64;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Samples ranks `0..n` with `P(rank = r) ∝ 1 / (r + 1)^s`.
///
/// ```rust
/// use cfd_stream::ZipfSampler;
/// let mut z = ZipfSampler::new(1000, 1.0, 42);
/// let r = z.sample();
/// assert!(r < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    rng: SmallRng,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with exponent `s >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/non-finite.
    #[must_use]
    pub fn new(n: usize, s: f64, seed: u64) -> Self {
        assert!(n > 0, "universe must be non-empty");
        assert!(
            s.is_finite() && s >= 0.0,
            "exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self {
            cdf,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Number of ranks.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one rank.
    pub fn sample(&mut self) -> usize {
        let u: f64 = self.rng.gen();
        // partition_point: first index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The exact probability of `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    #[must_use]
    pub fn probability(&self, rank: usize) -> f64 {
        assert!(rank < self.cdf.len(), "rank out of range");
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

impl Iterator for ZipfSampler {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        Some(self.sample())
    }
}

/// Organic traffic with *natural* repeats: each click's identity is a
/// Zipf-sampled rank, so popular users re-click within the window at the
/// skew-controlled rate. This is the "organic with repeats" side of a
/// composed scenario, as opposed to the guaranteed-distinct
/// [`crate::UniqueClickStream`].
///
/// Rank `r` always maps to the same identity (a seeded bijection of the
/// rank, namespaced per [`crate::gen::ids`]), publisher, and ad — so a
/// repeat of the rank is a repeat of the full key.
#[derive(Debug, Clone)]
pub struct ZipfClickStream {
    sampler: ZipfSampler,
    mult: u64,
    publishers: u32,
    ads: u32,
    tick: u64,
    ns: u8,
}

impl ZipfClickStream {
    /// Creates the stream over `universe` identities with exponent
    /// `skew`.
    ///
    /// # Panics
    ///
    /// Panics when [`ZipfSampler::new`] would (empty universe, bad
    /// exponent) or when `publishers`/`ads` is zero.
    #[must_use]
    pub fn new(universe: usize, skew: f64, seed: u64, publishers: u32, ads: u32) -> Self {
        assert!(publishers > 0, "need at least one publisher");
        assert!(ads > 0, "need at least one ad");
        Self {
            sampler: ZipfSampler::new(universe, skew, seed),
            mult: splitmix64(seed ^ 0x51BF_0000) | 1,
            publishers,
            ads,
            tick: 0,
            ns: NS_ZIPF,
        }
    }

    /// Re-stamps the cookie namespace (see [`crate::gen::ids`]).
    #[must_use]
    pub fn with_namespace(mut self, ns: u8) -> Self {
        self.ns = ns;
        self
    }

    /// The stable identity of rank `r`.
    #[must_use]
    pub fn identity(&self, rank: usize) -> ClickId {
        // A bijection of the rank, so distinct ranks can never collide;
        // ip keeps bits 32..64 and the tagged cookie bits 0..56.
        let raw = splitmix64((rank as u64).wrapping_mul(self.mult));
        ClickId::new(
            (raw >> 32) as u32,
            tag_cookie(self.ns, raw),
            AdId(rank as u32 % self.ads),
        )
    }
}

impl Iterator for ZipfClickStream {
    type Item = Click;

    fn next(&mut self) -> Option<Click> {
        let rank = self.sampler.sample();
        let click = Click::new(
            self.identity(rank),
            self.tick,
            PublisherId(rank as u32 % self.publishers),
            100_000,
        );
        self.tick += 1;
        Some(click)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_range() {
        let mut z = ZipfSampler::new(100, 1.2, 1);
        for _ in 0..10_000 {
            assert!(z.sample() < 100);
        }
    }

    #[test]
    fn rank_one_dominates_with_high_exponent() {
        let mut z = ZipfSampler::new(1000, 2.0, 2);
        let hits0 = (0..20_000).filter(|_| z.sample() == 0).count();
        // P(0) = 1/zeta-ish ~ 0.61 for s=2, n=1000.
        let frac = hits0 as f64 / 20_000.0;
        assert!((0.55..0.68).contains(&frac), "frac={frac}");
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let mut z = ZipfSampler::new(10, 0.0, 3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample()] += 1;
        }
        for &c in &counts {
            let f = f64::from(c) / 100_000.0;
            assert!((f - 0.1).abs() < 0.01, "f={f}");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn empirical_frequencies_match_probabilities() {
        let mut z = ZipfSampler::new(50, 1.0, 4);
        let trials = 200_000;
        let mut counts = [0u32; 50];
        for _ in 0..trials {
            counts[z.sample()] += 1;
        }
        for r in 0..10 {
            let expected = z.probability(r);
            let got = f64::from(counts[r]) / f64::from(trials);
            assert!(
                (got - expected).abs() < 0.01,
                "rank {r}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let z = ZipfSampler::new(200, 0.8, 5);
        let sum: f64 = (0..200).map(|r| z.probability(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "universe")]
    fn empty_universe_panics() {
        let _ = ZipfSampler::new(0, 1.0, 0);
    }

    #[test]
    fn click_stream_rank_identities_are_stable_and_distinct() {
        let s = ZipfClickStream::new(1 << 12, 1.0, 7, 4, 16);
        let mut seen = std::collections::HashSet::new();
        for rank in 0..(1usize << 12) {
            assert_eq!(s.identity(rank), s.identity(rank), "identity not stable");
            assert!(seen.insert(s.identity(rank)), "rank collision at {rank}");
        }
    }

    #[test]
    fn click_stream_repeats_popular_identities() {
        let clicks: Vec<Click> = ZipfClickStream::new(1 << 10, 1.2, 3, 4, 16)
            .take(20_000)
            .collect();
        let distinct: std::collections::HashSet<[u8; 16]> = clicks.iter().map(Click::key).collect();
        assert!(
            distinct.len() < clicks.len() / 2,
            "skewed stream should repeat heavily: {} distinct",
            distinct.len()
        );
    }

    #[test]
    fn click_stream_deterministic_per_seed() {
        let a: Vec<Click> = ZipfClickStream::new(100, 1.0, 9, 2, 8).take(500).collect();
        let b: Vec<Click> = ZipfClickStream::new(100, 1.0, 9, 2, 8).take(500).collect();
        assert_eq!(a, b);
    }
}
