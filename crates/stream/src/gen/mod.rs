//! Synthetic click-stream generators.
//!
//! Every generator is an `Iterator` over [`crate::Click`] (or raw ids),
//! deterministic for a fixed seed, and documented with the scenario it
//! models. See DESIGN.md §4 for the substitution rationale.

pub mod botnet;
pub mod coalition;
pub mod crawler;
pub mod duplicate;
pub mod flashcrowd;
pub mod ids;
pub mod tenants;
pub mod timing;
pub mod unique;
pub mod zipf;
