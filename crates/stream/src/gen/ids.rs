//! Per-sub-stream ID-space partitioning.
//!
//! Composed workloads (botnet + flash crowd + crawler + organic in one
//! scenario) need *exact* duplicate ground truth: a click is a true
//! duplicate iff the same sub-generator deliberately re-emitted it. That
//! only holds if no two sub-generators can ever mint the same
//! `(ip, cookie, ad)` triple by accident. Historically they could — the
//! flash-crowd generator built both its crowd and background identities
//! from the same permutation output with `raw | 1`, folding adjacent
//! raws onto one cookie and sharing the background's `(ip, cookie)`
//! plane with the hot ad.
//!
//! This module fixes that structurally: every generator stamps an 8-bit
//! **namespace** into the top byte of the cookie via [`tag_cookie`].
//! Distinct namespaces give disjoint key spaces, no matter which seeds
//! or permutations the sub-streams run. Pairing the remaining 56 cookie
//! bits with `ip = (raw >> 32) as u32` keeps the map from a 64-bit
//! permutation output to `(ip, cookie)` injective: the cookie carries
//! raw bits `0..56`, the ip carries bits `32..64`, so all 64 bits are
//! recoverable and two distinct raws can never collide.

/// Number of cookie bits carrying the generator payload; the byte above
/// them is the namespace.
pub const NS_SHIFT: u32 = 56;

/// Mask selecting the payload (non-namespace) cookie bits.
pub const NS_PAYLOAD_MASK: u64 = (1 << NS_SHIFT) - 1;

/// Organic / unique-id traffic ([`crate::UniqueClickStream`]).
pub const NS_ORGANIC: u8 = 0x01;
/// Zipf-popular repeat traffic ([`crate::ZipfClickStream`]).
pub const NS_ZIPF: u8 = 0x02;
/// Botnet bot identities ([`crate::BotnetStream`]).
pub const NS_BOT: u8 = 0x0B;
/// Coalition shared fraud identities ([`crate::CoalitionStream`]).
pub const NS_COALITION: u8 = 0x0C;
/// Crawler agents ([`crate::CrawlerStream`]).
pub const NS_CRAWLER: u8 = 0x0E;
/// Flash-crowd members ([`crate::FlashCrowdStream`]).
pub const NS_CROWD: u8 = 0x0F;
/// Flash-crowd background traffic.
pub const NS_FLASH_BG: u8 = 0x10;
/// First namespace handed out dynamically to scenario mix entries
/// (each entry gets a primary + organic pair above this base, so a
/// composed scenario never reuses the static defaults either).
pub const NS_SCENARIO_BASE: u8 = 0x20;

/// Stamps namespace `ns` into the top byte of a cookie, keeping the low
/// 56 bits of `raw` as payload.
#[must_use]
#[inline]
pub fn tag_cookie(ns: u8, raw: u64) -> u64 {
    (u64::from(ns) << NS_SHIFT) | (raw & NS_PAYLOAD_MASK)
}

/// The namespace byte a cookie was stamped with.
#[must_use]
#[inline]
pub fn namespace_of(cookie: u64) -> u8 {
    (cookie >> NS_SHIFT) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_preserves_low_bits_and_sets_namespace() {
        let cookie = tag_cookie(NS_BOT, 0xFFFF_FFFF_FFFF_FFFF);
        assert_eq!(namespace_of(cookie), NS_BOT);
        assert_eq!(cookie & NS_PAYLOAD_MASK, NS_PAYLOAD_MASK);
    }

    #[test]
    fn distinct_namespaces_never_collide() {
        // Same raw, different namespaces: cookies must differ.
        for raw in [0u64, 1, u64::MAX, 0x1234_5678_9ABC_DEF0] {
            assert_ne!(tag_cookie(NS_ORGANIC, raw), tag_cookie(NS_BOT, raw));
        }
    }

    #[test]
    fn adjacent_raws_stay_distinct() {
        // The pre-fix flash-crowd construction (`raw | 1`) folded raw and
        // raw|1 onto one cookie; tagging keeps bit 0 intact.
        for raw in [0u64, 2, 0xABCD_EF00] {
            assert_ne!(tag_cookie(NS_CROWD, raw), tag_cookie(NS_CROWD, raw | 1));
        }
    }

    #[test]
    fn namespaces_are_pairwise_distinct() {
        let all = [
            NS_ORGANIC,
            NS_ZIPF,
            NS_BOT,
            NS_COALITION,
            NS_CRAWLER,
            NS_CROWD,
            NS_FLASH_BG,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
            assert!(*a < NS_SCENARIO_BASE, "static namespaces sit below base");
        }
    }
}
