//! Streams of guaranteed-distinct click identifiers.
//!
//! The paper's false-positive experiments (§5) generate `20·N` *distinct*
//! click identifiers: with no true duplicates, every `Duplicate` verdict
//! is a false positive. Distinctness is guaranteed structurally — the
//! stream applies the bijective [`cfd_hash::mix::splitmix64`] permutation
//! to a counter, so the ids look hash-random but can never repeat.

use crate::click::{AdId, Click, ClickId, PublisherId};
use crate::gen::ids::{tag_cookie, NS_ORGANIC};
use cfd_hash::mix::splitmix64;

/// An infinite stream of distinct pseudo-random 64-bit identifiers.
///
/// ```rust
/// use cfd_stream::UniqueIdStream;
/// use std::collections::HashSet;
/// let ids: HashSet<u64> = UniqueIdStream::new(7).take(10_000).collect();
/// assert_eq!(ids.len(), 10_000); // never a repeat
/// ```
#[derive(Debug, Clone)]
pub struct UniqueIdStream {
    counter: u64,
    seed: u64,
}

impl UniqueIdStream {
    /// Creates the stream; different seeds give disjoint-looking id
    /// sequences (same permutation, different offset stride).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            counter: 0,
            seed: splitmix64(seed) | 1,
        }
    }

    /// How many ids have been produced.
    #[must_use]
    pub fn produced(&self) -> u64 {
        self.counter
    }
}

impl Iterator for UniqueIdStream {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        // counter * odd-seed is a bijection on u64; splitmix64 is a
        // bijection; the composition never repeats.
        let id = splitmix64(self.counter.wrapping_mul(self.seed));
        self.counter += 1;
        Some(id)
    }
}

/// An infinite stream of distinct [`Click`]s (ticks advance by one
/// per click; publishers/ads cycle over small pools).
///
/// This is the exact workload of Figs. 2(a)/2(b): every click identifier
/// is new, so the detector should answer `Distinct` every time.
#[derive(Debug, Clone)]
pub struct UniqueClickStream {
    ids: UniqueIdStream,
    publishers: u32,
    ads: u32,
    tick: u64,
    ns: u8,
}

impl UniqueClickStream {
    /// Creates the stream with `publishers` publisher ids and `ads`
    /// distinct ad links to cycle through.
    ///
    /// # Panics
    ///
    /// Panics if `publishers` or `ads` is zero.
    #[must_use]
    pub fn new(seed: u64, publishers: u32, ads: u32) -> Self {
        assert!(publishers > 0, "need at least one publisher");
        assert!(ads > 0, "need at least one ad");
        Self {
            ids: UniqueIdStream::new(seed),
            publishers,
            ads,
            tick: 0,
            ns: NS_ORGANIC,
        }
    }

    /// Re-stamps the stream's cookie namespace (see [`crate::gen::ids`]),
    /// so composed scenarios can give each sub-stream a disjoint id
    /// space even when two of them are organic.
    #[must_use]
    pub fn with_namespace(mut self, ns: u8) -> Self {
        self.ns = ns;
        self
    }
}

impl Iterator for UniqueClickStream {
    type Item = Click;

    fn next(&mut self) -> Option<Click> {
        let raw = self.ids.next().expect("infinite stream");
        let n = self.ids.produced();
        // Distinctness lives in (ip, cookie): the cookie keeps raw bits
        // 0..56 under the namespace tag and the ip keeps bits 32..64, so
        // the pair is injective in `raw` (the triple is then unique too).
        let id = ClickId::new(
            (raw >> 32) as u32,
            tag_cookie(self.ns, raw),
            AdId(n as u32 % self.ads),
        );
        let click = Click::new(
            id,
            self.tick,
            PublisherId(n as u32 % self.publishers),
            100_000,
        );
        self.tick += 1;
        Some(click)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_never_repeat_within_a_large_prefix() {
        let mut seen = HashSet::with_capacity(1 << 18);
        for id in UniqueIdStream::new(99).take(1 << 18) {
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<u64> = UniqueIdStream::new(1).take(16).collect();
        let b: Vec<u64> = UniqueIdStream::new(2).take(16).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = UniqueIdStream::new(5).take(100).collect();
        let b: Vec<u64> = UniqueIdStream::new(5).take(100).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn click_stream_has_distinct_keys_and_monotone_ticks() {
        let mut seen = HashSet::new();
        let mut last_tick = None;
        for c in UniqueClickStream::new(3, 10, 100).take(50_000) {
            assert!(seen.insert(c.key()), "duplicate key");
            if let Some(t) = last_tick {
                assert!(c.tick > t);
            }
            last_tick = Some(c.tick);
            assert!(c.publisher.0 < 10);
            assert!(c.id.ad.0 < 100);
        }
    }

    #[test]
    fn ids_look_uniform() {
        // Top-byte histogram over 64k ids: chi-square against uniform.
        let mut counts = [0u32; 256];
        for id in UniqueIdStream::new(12).take(1 << 16) {
            counts[(id >> 56) as usize] += 1;
        }
        let expected = (1u32 << 16) as f64 / 256.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = f64::from(c) - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 340.0, "chi2={chi2}");
    }
}
