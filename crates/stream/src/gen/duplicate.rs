//! Controlled duplicate injection.
//!
//! Wraps any click stream and re-emits previously seen clicks with a
//! configurable probability and lag distribution. This produces streams
//! with *known* ground truth for the false-negative experiments (table
//! T2 in DESIGN.md): every injected repeat within the window must be
//! flagged by a zero-false-negative detector.

use crate::click::Click;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// A click stream with injected duplicates.
///
/// With probability `dup_prob`, the next emitted click is a *repeat* of
/// one of the last `max_lag` emitted clicks (uniformly chosen); otherwise
/// the next click of the base stream is emitted. Repeats keep the
/// original identity but get a fresh arrival tick.
///
/// ```rust
/// use cfd_stream::{DuplicateInjector, UniqueClickStream};
/// let base = UniqueClickStream::new(1, 4, 16);
/// let stream = DuplicateInjector::new(base, 0.3, 100, 7);
/// let clicks: Vec<_> = stream.take(1000).collect();
/// assert_eq!(clicks.len(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct DuplicateInjector<S> {
    base: S,
    dup_prob: f64,
    max_lag: usize,
    history: VecDeque<Click>,
    rng: SmallRng,
    tick: u64,
    emitted_dups: u64,
}

impl<S: Iterator<Item = Click>> DuplicateInjector<S> {
    /// Creates the injector.
    ///
    /// # Panics
    ///
    /// Panics if `dup_prob` is not in `[0, 1)` or `max_lag == 0`.
    #[must_use]
    pub fn new(base: S, dup_prob: f64, max_lag: usize, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&dup_prob), "dup_prob must be in [0, 1)");
        assert!(max_lag > 0, "max_lag must be positive");
        Self {
            base,
            dup_prob,
            max_lag,
            history: VecDeque::with_capacity(max_lag),
            rng: SmallRng::seed_from_u64(seed),
            tick: 0,
            emitted_dups: 0,
        }
    }

    /// Number of injected duplicates so far.
    #[must_use]
    pub fn emitted_duplicates(&self) -> u64 {
        self.emitted_dups
    }
}

impl<S: Iterator<Item = Click>> Iterator for DuplicateInjector<S> {
    type Item = Click;

    fn next(&mut self) -> Option<Click> {
        let emit_dup = !self.history.is_empty() && self.rng.gen_bool(self.dup_prob);
        let mut click = if emit_dup {
            let idx = self.rng.gen_range(0..self.history.len());
            self.emitted_dups += 1;
            self.history[idx]
        } else {
            self.base.next()?
        };
        click.tick = self.tick;
        self.tick += 1;
        if self.history.len() == self.max_lag {
            self.history.pop_front();
        }
        self.history.push_back(click);
        Some(click)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::unique::UniqueClickStream;
    use std::collections::HashMap;

    fn base() -> UniqueClickStream {
        UniqueClickStream::new(11, 3, 7)
    }

    #[test]
    fn zero_probability_injects_nothing() {
        let s = DuplicateInjector::new(base(), 0.0, 10, 1);
        let clicks: Vec<_> = s.take(5_000).collect();
        let mut seen = HashMap::new();
        for c in &clicks {
            *seen.entry(c.key()).or_insert(0u32) += 1;
        }
        assert!(seen.values().all(|&n| n == 1));
    }

    #[test]
    fn duplicate_fraction_tracks_probability() {
        let mut s = DuplicateInjector::new(base(), 0.25, 50, 2);
        let total = 40_000;
        for _ in 0..total {
            s.next().expect("infinite");
        }
        let frac = s.emitted_duplicates() as f64 / f64::from(total);
        assert!((frac - 0.25).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn repeats_come_from_recent_history_only() {
        let lag = 20usize;
        let s = DuplicateInjector::new(base(), 0.4, lag, 3);
        let clicks: Vec<_> = s.take(10_000).collect();
        let mut last_pos: HashMap<[u8; 16], usize> = HashMap::new();
        for (i, c) in clicks.iter().enumerate() {
            if let Some(&prev) = last_pos.get(&c.key()) {
                assert!(i - prev <= lag, "repeat at lag {} > {lag}", i - prev);
            }
            last_pos.insert(c.key(), i);
        }
    }

    #[test]
    fn ticks_stay_monotone() {
        let s = DuplicateInjector::new(base(), 0.5, 10, 4);
        let clicks: Vec<_> = s.take(1_000).collect();
        for w in clicks.windows(2) {
            assert!(w[1].tick > w[0].tick);
        }
    }

    #[test]
    #[should_panic(expected = "dup_prob")]
    fn invalid_probability_panics() {
        let _ = DuplicateInjector::new(base(), 1.5, 10, 0);
    }
}
