//! Poisson arrival-time generation for time-based windows.
//!
//! The time-based detectors ([`cfd_core`-side `TimeTbf` / `TimeGbf`])
//! consume `(id, tick)` pairs; this module supplies realistic arrival
//! ticks with exponential inter-arrival gaps (a Poisson process), the
//! standard model for aggregate click arrivals.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An infinite, non-decreasing stream of arrival ticks with
/// exponentially distributed gaps (mean `1/rate` ticks).
///
/// ```rust
/// use cfd_stream::PoissonArrivals;
/// let ticks: Vec<u64> = PoissonArrivals::new(0.01, 5).take(100).collect();
/// assert!(ticks.windows(2).all(|w| w[0] <= w[1]));
/// // Mean gap ~ 100 ticks.
/// assert!(*ticks.last().expect("non-empty") > 2_000);
/// ```
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rate: f64,
    now: f64,
    rng: SmallRng,
}

impl PoissonArrivals {
    /// Creates a process with `rate` arrivals per tick.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    #[must_use]
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        Self {
            rate,
            now: 0.0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The configured arrival rate (events per tick).
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Draws the next exponential inter-arrival gap in fractional ticks.
    fn gap(&mut self) -> f64 {
        // Inverse-CDF sampling; 1 - u avoids ln(0).
        let u: f64 = self.rng.gen();
        -(1.0 - u).ln() / self.rate
    }
}

impl Iterator for PoissonArrivals {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        self.now += self.gap();
        Some(self.now as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_monotone_non_decreasing() {
        let ticks: Vec<u64> = PoissonArrivals::new(0.5, 1).take(10_000).collect();
        assert!(ticks.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn mean_gap_matches_rate() {
        let n = 100_000usize;
        let last = PoissonArrivals::new(0.1, 2)
            .take(n)
            .last()
            .expect("non-empty");
        let mean_gap = last as f64 / n as f64;
        assert!((mean_gap - 10.0).abs() < 0.3, "mean gap {mean_gap}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = PoissonArrivals::new(1.0, 7).take(50).collect();
        let b: Vec<u64> = PoissonArrivals::new(1.0, 7).take(50).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn gap_distribution_is_memoryless_ish() {
        // P(gap > t) should be ~ e^{-rate t}: check at one point.
        let mut p = PoissonArrivals::new(0.2, 3);
        let mut over = 0u32;
        let trials = 50_000;
        let mut last = 0u64;
        for _ in 0..trials {
            let t = p.next().expect("infinite");
            if t - last > 10 {
                over += 1;
            }
            last = t;
        }
        let frac = f64::from(over) / f64::from(trials);
        let expect = (-0.2f64 * 10.0).exp(); // ~0.135
        assert!((frac - expect).abs() < 0.03, "frac={frac} expect={expect}");
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn non_positive_rate_panics() {
        let _ = PoissonArrivals::new(0.0, 0);
    }
}
