//! The Scenario-2 attack stream (paper §1.1).
//!
//! "The competitors or even the publishers control a botnet with
//! thousands of computers, each of which initiate many clicks to the ad
//! links everyday." This generator interleaves such a botnet with
//! legitimate background traffic and labels each click, giving the
//! end-to-end fraud experiments (table T3) exact ground truth.

use crate::click::{AdId, Click, ClickId, PublisherId};
use crate::gen::ids::{tag_cookie, NS_BOT};
use crate::gen::unique::UniqueClickStream;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of a [`BotnetStream`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BotnetConfig {
    /// Number of bots (distinct compromised machines).
    pub bots: u32,
    /// The ad link the attack targets.
    pub target_ad: AdId,
    /// The colluding publisher whose links the bots click.
    pub publisher: PublisherId,
    /// Fraction of total traffic that is bot clicks, in `[0, 1)`.
    pub attack_fraction: f64,
    /// Cost-per-click of the target ad (micro-units).
    pub target_cpc_micros: u64,
    /// Seed for bot identities and scheduling.
    pub seed: u64,
}

impl Default for BotnetConfig {
    fn default() -> Self {
        Self {
            bots: 1_000,
            target_ad: AdId(1),
            publisher: PublisherId(1),
            attack_fraction: 0.2,
            target_cpc_micros: 500_000,
            seed: 0,
        }
    }
}

/// A labeled click from a [`BotnetStream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabeledClick {
    /// The click event.
    pub click: Click,
    /// `true` if produced by the botnet (ground truth for evaluation).
    pub is_bot: bool,
}

/// Interleaved botnet + organic click stream.
///
/// Each bot has a fixed (IP, cookie) identity and always clicks the
/// target ad, so every bot click after its first within a detection
/// window is a true duplicate. Organic traffic is the §5 distinct-id
/// stream.
///
/// ```rust
/// use cfd_stream::{BotnetConfig, BotnetStream};
/// let stream = BotnetStream::new(BotnetConfig::default(), 8, 64);
/// let bots = stream.take(1000).filter(|c| c.is_bot).count();
/// assert!(bots > 100 && bots < 300); // ~20% of traffic
/// ```
#[derive(Debug, Clone)]
pub struct BotnetStream {
    cfg: BotnetConfig,
    organic: UniqueClickStream,
    rng: SmallRng,
    tick: u64,
    ns_bot: u8,
}

impl BotnetStream {
    /// Creates the stream with `publishers`/`ads` pools for the organic
    /// side.
    ///
    /// # Panics
    ///
    /// Panics if `bots == 0` or `attack_fraction` is outside `[0, 1)`.
    #[must_use]
    pub fn new(cfg: BotnetConfig, publishers: u32, ads: u32) -> Self {
        assert!(cfg.bots > 0, "need at least one bot");
        assert!(
            (0.0..1.0).contains(&cfg.attack_fraction),
            "attack_fraction must be in [0, 1)"
        );
        Self {
            organic: UniqueClickStream::new(cfg.seed ^ 0x0B07_0B07, publishers, ads),
            rng: SmallRng::seed_from_u64(cfg.seed),
            cfg,
            tick: 0,
            ns_bot: NS_BOT,
        }
    }

    /// Moves the bot and organic sides onto explicit cookie namespaces
    /// (see [`crate::gen::ids`]) so a composed scenario can keep this
    /// instance's id space disjoint from every other sub-stream's.
    #[must_use]
    pub fn with_namespaces(mut self, bot: u8, organic: u8) -> Self {
        self.ns_bot = bot;
        self.organic = self.organic.with_namespace(organic);
        self
    }

    /// The identity of bot `b` (stable across the stream).
    #[must_use]
    pub fn bot_identity(&self, b: u32) -> ClickId {
        // 10.x.y.z-style botnet address space + per-bot cookie.
        let ip = 0x0A00_0000 | (b & 0x00FF_FFFF);
        let cookie = tag_cookie(self.ns_bot, u64::from(b).wrapping_mul(0x9E37_79B9) | 1);
        ClickId::new(ip, cookie, self.cfg.target_ad)
    }
}

impl Iterator for BotnetStream {
    type Item = LabeledClick;

    fn next(&mut self) -> Option<LabeledClick> {
        let is_bot = self.rng.gen_bool(self.cfg.attack_fraction);
        let click = if is_bot {
            let b = self.rng.gen_range(0..self.cfg.bots);
            Click::new(
                self.bot_identity(b),
                self.tick,
                self.cfg.publisher,
                self.cfg.target_cpc_micros,
            )
        } else {
            let mut c = self.organic.next().expect("infinite stream");
            c.tick = self.tick;
            c
        };
        self.tick += 1;
        Some(LabeledClick { click, is_bot })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn stream() -> BotnetStream {
        BotnetStream::new(BotnetConfig::default(), 8, 64)
    }

    #[test]
    fn attack_fraction_is_respected() {
        let bots = stream().take(50_000).filter(|c| c.is_bot).count();
        let frac = bots as f64 / 50_000.0;
        assert!((frac - 0.2).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn bot_clicks_target_the_configured_ad_and_publisher() {
        for c in stream().take(10_000).filter(|c| c.is_bot) {
            assert_eq!(c.click.id.ad, AdId(1));
            assert_eq!(c.click.publisher, PublisherId(1));
            assert_eq!(c.click.cost_micros, 500_000);
        }
    }

    #[test]
    fn bot_identities_repeat_but_are_bounded() {
        let ids: HashSet<[u8; 16]> = stream()
            .take(50_000)
            .filter(|c| c.is_bot)
            .map(|c| c.click.key())
            .collect();
        assert!(ids.len() as u32 <= BotnetConfig::default().bots);
        assert!(ids.len() > 900, "almost all bots should appear");
    }

    #[test]
    fn organic_clicks_never_collide_with_bots_or_each_other() {
        let mut organic = HashSet::new();
        let mut bot_keys = HashSet::new();
        for c in stream().take(20_000) {
            if c.is_bot {
                bot_keys.insert(c.click.key());
            } else {
                assert!(organic.insert(c.click.key()), "organic repeat");
            }
        }
        assert!(organic.is_disjoint(&bot_keys));
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> = stream().take(100).collect();
        let b: Vec<_> = stream().take(100).collect();
        assert_eq!(a, b);
    }
}
