//! Flash-crowd traffic: a legitimate burst of *distinct* users clicking
//! one ad (paper §1.1 Scenario 1 at scale).
//!
//! The dual of the botnet: many different people click the same ad link
//! in a short period (a viral product, a TV spot). Every click has a
//! distinct (IP, cookie) identity, so a correct duplicate detector must
//! charge **all** of them — this stream measures false-positive damage
//! under the worst legitimate load, where all traffic hashes against the
//! same ad id.

use crate::click::{AdId, Click, ClickId, PublisherId};
use crate::gen::ids::{tag_cookie, NS_CROWD, NS_FLASH_BG};
use crate::gen::unique::UniqueIdStream;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`FlashCrowdStream`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowdConfig {
    /// The ad everyone is clicking.
    pub hot_ad: AdId,
    /// Fraction of traffic belonging to the crowd, in `[0, 1]`.
    pub crowd_fraction: f64,
    /// Probability a crowd member clicks a *second* time (a legitimate
    /// in-window duplicate, Scenario-1 style), in `[0, 1)`.
    pub second_click_prob: f64,
    /// Background ads for the rest of the traffic.
    pub background_ads: u32,
    /// Seed.
    pub seed: u64,
}

impl Default for FlashCrowdConfig {
    fn default() -> Self {
        Self {
            hot_ad: AdId(0),
            crowd_fraction: 0.7,
            second_click_prob: 0.1,
            background_ads: 32,
            seed: 0,
        }
    }
}

/// A labeled flash-crowd click.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashClick {
    /// The click.
    pub click: Click,
    /// `true` when this is a crowd member's deliberate second click (a
    /// *true* duplicate the detector should flag).
    pub is_second_click: bool,
}

/// The flash-crowd generator.
#[derive(Debug, Clone)]
pub struct FlashCrowdStream {
    cfg: FlashCrowdConfig,
    fresh: UniqueIdStream,
    rng: SmallRng,
    tick: u64,
    /// A recent crowd identity eligible for a second click.
    pending_second: Option<ClickId>,
    ns_crowd: u8,
    ns_background: u8,
}

impl FlashCrowdStream {
    /// Creates the stream.
    ///
    /// # Panics
    ///
    /// Panics if the fractions are out of range or there are no
    /// background ads.
    #[must_use]
    pub fn new(cfg: FlashCrowdConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.crowd_fraction),
            "bad crowd fraction"
        );
        assert!(
            (0.0..1.0).contains(&cfg.second_click_prob),
            "bad second-click probability"
        );
        assert!(cfg.background_ads > 0, "need background ads");
        Self {
            fresh: UniqueIdStream::new(cfg.seed ^ 0xF1A5_4C40),
            rng: SmallRng::seed_from_u64(cfg.seed),
            cfg,
            tick: 0,
            pending_second: None,
            ns_crowd: NS_CROWD,
            ns_background: NS_FLASH_BG,
        }
    }

    /// Moves the crowd and background sides onto explicit cookie
    /// namespaces (see [`crate::gen::ids`]).
    #[must_use]
    pub fn with_namespaces(mut self, crowd: u8, background: u8) -> Self {
        self.ns_crowd = crowd;
        self.ns_background = background;
        self
    }

    /// The crowd-member identity minted from permutation output `raw`.
    ///
    /// Each draw of the underlying [`UniqueIdStream`] yields one crowd
    /// member; distinct raws must map to distinct identities or a pair
    /// of *first* clicks would read as a duplicate, corrupting ground
    /// truth. (The pre-fix construction folded `raw` and `raw | 1` onto
    /// one cookie.)
    #[must_use]
    pub fn crowd_identity(&self, raw: u64) -> ClickId {
        ClickId::new(
            (raw >> 32) as u32,
            tag_cookie(self.ns_crowd, raw),
            self.cfg.hot_ad,
        )
    }

    /// The background identity minted from permutation output `raw`.
    ///
    /// Lives in its own cookie namespace, so a background click can
    /// never collide with a crowd click even when `hot_ad` falls inside
    /// the background ad range.
    #[must_use]
    pub fn background_identity(&self, raw: u64) -> ClickId {
        let ad = AdId(1 + (raw as u32 % self.cfg.background_ads));
        ClickId::new((raw >> 32) as u32, tag_cookie(self.ns_background, raw), ad)
    }
}

impl Iterator for FlashCrowdStream {
    type Item = FlashClick;

    fn next(&mut self) -> Option<FlashClick> {
        let tick = self.tick;
        self.tick += 1;

        // A pending second click fires with the configured probability.
        if let Some(id) = self.pending_second.take() {
            if self.rng.gen_bool(self.cfg.second_click_prob) {
                return Some(FlashClick {
                    click: Click::new(id, tick, PublisherId(1), 400_000),
                    is_second_click: true,
                });
            }
        }

        let raw = self.fresh.next().expect("infinite stream");
        let click = if self.rng.gen_bool(self.cfg.crowd_fraction) {
            let id = self.crowd_identity(raw);
            self.pending_second = Some(id);
            Click::new(id, tick, PublisherId(1), 400_000)
        } else {
            Click::new(self.background_identity(raw), tick, PublisherId(2), 100_000)
        };
        Some(FlashClick {
            click,
            is_second_click: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn first_clicks_are_all_distinct() {
        let s = FlashCrowdStream::new(FlashCrowdConfig::default());
        let mut seen: HashMap<[u8; 16], u32> = HashMap::new();
        for fc in s.take(50_000) {
            *seen.entry(fc.click.key()).or_insert(0) += 1;
        }
        // Any key appearing twice must be a second click; never thrice.
        assert!(seen.values().all(|&n| n <= 2));
    }

    #[test]
    fn second_clicks_are_true_duplicates_at_lag_one() {
        let s = FlashCrowdStream::new(FlashCrowdConfig {
            second_click_prob: 0.5,
            ..FlashCrowdConfig::default()
        });
        let clicks: Vec<FlashClick> = s.take(10_000).collect();
        let mut seconds = 0;
        for w in clicks.windows(2) {
            if w[1].is_second_click {
                assert_eq!(
                    w[0].click.id, w[1].click.id,
                    "second click of a different id"
                );
                seconds += 1;
            }
        }
        assert!(seconds > 1_000, "too few second clicks: {seconds}");
    }

    #[test]
    fn crowd_hits_the_hot_ad() {
        let cfg = FlashCrowdConfig {
            hot_ad: AdId(7),
            crowd_fraction: 0.9,
            ..FlashCrowdConfig::default()
        };
        let s = FlashCrowdStream::new(cfg);
        let hot = s.take(20_000).filter(|c| c.click.id.ad == AdId(7)).count();
        assert!(hot > 17_000, "hot-ad share too low: {hot}");
    }

    #[test]
    fn adjacent_raws_mint_distinct_crowd_identities() {
        // Regression: the pre-fix construction used `raw | 1` as the
        // cookie, so the distinct permutation outputs `x` and `x | 1`
        // folded onto one identity and a pair of *first* clicks could
        // read as a duplicate.
        let s = FlashCrowdStream::new(FlashCrowdConfig::default());
        for raw in [0u64, 2, 0x1234_5678_9ABC_DEF0 & !1] {
            assert_ne!(s.crowd_identity(raw), s.crowd_identity(raw | 1));
            assert_ne!(s.background_identity(raw), s.background_identity(raw | 1));
        }
    }

    #[test]
    fn crowd_and_background_id_spaces_are_disjoint() {
        // Regression: pre-fix, both sides shared the same (ip, cookie)
        // construction, so when `hot_ad` fell inside the background ad
        // range a background click could equal a crowd click exactly —
        // a phantom cross-sub-stream duplicate.
        let s = FlashCrowdStream::new(FlashCrowdConfig {
            hot_ad: AdId(5),
            ..FlashCrowdConfig::default()
        });
        for raw in 0..1_000u64 {
            assert_ne!(
                s.crowd_identity(raw),
                s.background_identity(raw),
                "raw={raw}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "crowd fraction")]
    fn bad_fraction_panics() {
        let _ = FlashCrowdStream::new(FlashCrowdConfig {
            crowd_fraction: 1.5,
            ..FlashCrowdConfig::default()
        });
    }
}
