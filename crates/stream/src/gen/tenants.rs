//! Zipf-skewed multi-tenant click traffic.
//!
//! A PPC commissioner serves thousands-to-millions of (advertiser,
//! campaign) pairs whose traffic is heavily skewed — a few big campaigns
//! draw most clicks. This generator emits flat 16-byte detector keys
//! `[tenant_id (8 bytes LE) ‖ click_id (8 bytes LE)]`, the exact shape
//! `cfd-core`'s `TenantArena` routes hash-once: the first eight bytes
//! are the routing prefix, the whole key is the probe identity.
//!
//! Properties the tenant bench leans on:
//!
//! * **Seed-deterministic** — same config, same byte stream.
//! * **Globally unique distinct ids** — a click id never repeats within
//!   a tenant (monotone counter) and tenants are disjoint by prefix, so
//!   *every* duplicate verdict beyond the injected ones is a false
//!   positive or cross-tenant contamination.
//! * **Adjacent injected duplicates** — a duplicate re-emits the
//!   tenant's immediately preceding click, so its tenant-relative lag is
//!   exactly 1 and any sliding window `n_t >= 2` must flag it: the
//!   injected count is a zero-false-negative floor for the detector's
//!   duplicate count.
//! * **Bursty tenants** — clicks arrive in same-tenant runs of
//!   `run_len`, modelling ad-pod bursts and exercising the arena's
//!   run-grouped prefetch replay.

use crate::gen::zipf::ZipfSampler;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Bytes per emitted key: 8 tenant-prefix bytes + 8 click-id bytes.
pub const TENANT_KEY_LEN: usize = 16;

const NO_LAST: u64 = u64::MAX;

/// Shape of a [`TenantTraffic`] stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantTrafficConfig {
    /// Number of tenants (Zipf universe).
    pub tenants: usize,
    /// Zipf exponent over tenant popularity (`0` = uniform).
    pub skew: f64,
    /// Probability that a click repeats the tenant's previous click id.
    pub duplicate_rate: f64,
    /// Consecutive clicks emitted for one tenant before re-sampling.
    pub run_len: usize,
    /// RNG seed; the stream is a pure function of the config.
    pub seed: u64,
}

impl TenantTrafficConfig {
    /// A skew-1.0 config over `tenants` tenants: 5% adjacent duplicates,
    /// runs of 4, seeded for reproducibility.
    #[must_use]
    pub fn new(tenants: usize, seed: u64) -> Self {
        Self {
            tenants,
            skew: 1.0,
            duplicate_rate: 0.05,
            run_len: 4,
            seed,
        }
    }
}

/// The multi-tenant key stream (see module docs for the guarantees).
///
/// ```rust
/// use cfd_stream::gen::tenants::{TenantTraffic, TenantTrafficConfig, TENANT_KEY_LEN};
/// let mut traffic = TenantTraffic::new(TenantTrafficConfig::new(100, 42));
/// let mut flat = Vec::new();
/// traffic.fill_flat(1_000, &mut flat);
/// assert_eq!(flat.len(), 1_000 * TENANT_KEY_LEN);
/// ```
#[derive(Debug, Clone)]
pub struct TenantTraffic {
    cfg: TenantTrafficConfig,
    zipf: ZipfSampler,
    rng: SmallRng,
    /// Next fresh click id per tenant (monotone, never reused).
    next_click: Vec<u64>,
    /// Previous click id per tenant, [`NO_LAST`] right after a duplicate
    /// (so injected duplicates are never chained and always have
    /// tenant-relative lag exactly 1).
    last_click: Vec<u64>,
    current: usize,
    run_left: usize,
    emitted: u64,
    duplicates_emitted: u64,
}

impl TenantTraffic {
    /// Builds the stream.
    ///
    /// # Panics
    ///
    /// Panics if `tenants == 0`, `run_len == 0`, the skew is
    /// negative/non-finite, or `duplicate_rate` is outside `[0, 1)`.
    #[must_use]
    pub fn new(cfg: TenantTrafficConfig) -> Self {
        assert!(cfg.tenants > 0, "tenant universe must be non-empty");
        assert!(cfg.run_len > 0, "run length must be positive");
        assert!(
            (0.0..1.0).contains(&cfg.duplicate_rate),
            "duplicate rate outside [0, 1)"
        );
        Self {
            cfg,
            zipf: ZipfSampler::new(cfg.tenants, cfg.skew, cfg.seed),
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0x07E4_A4E7_5EED),
            next_click: vec![0; cfg.tenants],
            last_click: vec![NO_LAST; cfg.tenants],
            current: 0,
            run_left: 0,
            emitted: 0,
            duplicates_emitted: 0,
        }
    }

    /// The stream's configuration.
    #[must_use]
    pub fn config(&self) -> &TenantTrafficConfig {
        &self.cfg
    }

    /// Keys emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Injected (guaranteed-in-window) duplicates emitted so far — the
    /// floor for any zero-false-negative detector's duplicate count over
    /// this stream, and the baseline the bench's isolation assert
    /// subtracts before bounding false positives.
    #[must_use]
    pub fn duplicates_emitted(&self) -> u64 {
        self.duplicates_emitted
    }

    /// Emits the next key.
    pub fn next_key(&mut self) -> [u8; TENANT_KEY_LEN] {
        if self.run_left == 0 {
            self.current = self.zipf.sample();
            self.run_left = self.cfg.run_len;
        }
        self.run_left -= 1;
        let t = self.current;
        let click =
            if self.last_click[t] != NO_LAST && self.rng.gen::<f64>() < self.cfg.duplicate_rate {
                self.duplicates_emitted += 1;
                let c = self.last_click[t];
                self.last_click[t] = NO_LAST;
                c
            } else {
                let c = self.next_click[t];
                self.next_click[t] = c + 1;
                self.last_click[t] = c;
                c
            };
        self.emitted += 1;
        let mut key = [0u8; TENANT_KEY_LEN];
        key[..8].copy_from_slice(&(t as u64).to_le_bytes());
        key[8..].copy_from_slice(&click.to_le_bytes());
        key
    }

    /// Appends `count` keys to a flat buffer (`TENANT_KEY_LEN` bytes
    /// each, end-to-end) — the shape `observe_flat_into` consumes.
    pub fn fill_flat(&mut self, count: usize, out: &mut Vec<u8>) {
        out.reserve(count * TENANT_KEY_LEN);
        for _ in 0..count {
            out.extend_from_slice(&self.next_key());
        }
    }
}

impl Iterator for TenantTraffic {
    type Item = [u8; TENANT_KEY_LEN];

    fn next(&mut self) -> Option<Self::Item> {
        Some(self.next_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn streams_are_seed_deterministic() {
        let cfg = TenantTrafficConfig::new(500, 9);
        let a: Vec<_> = TenantTraffic::new(cfg).take(5_000).collect();
        let b: Vec<_> = TenantTraffic::new(cfg).take(5_000).collect();
        assert_eq!(a, b);
        let c: Vec<_> = TenantTraffic::new(TenantTrafficConfig::new(500, 10))
            .take(5_000)
            .collect();
        assert_ne!(a, c, "different seed, different stream");
    }

    #[test]
    fn skew_histogram_is_pinned() {
        // The whole point of the generator: seed 7 over 10 tenants must
        // reproduce this exact per-tenant histogram forever. If this
        // test breaks, bench results across versions stop being
        // comparable — bump the manifest schema, don't relax the test.
        let mut traffic = TenantTraffic::new(TenantTrafficConfig {
            tenants: 10,
            skew: 1.0,
            duplicate_rate: 0.0,
            run_len: 1,
            seed: 7,
        });
        let mut hist = [0u32; 10];
        for _ in 0..10_000 {
            let key = traffic.next_key();
            let t = u64::from_le_bytes(key[..8].try_into().unwrap());
            hist[usize::try_from(t).unwrap()] += 1;
        }
        assert_eq!(
            hist,
            [3444, 1699, 1158, 871, 644, 573, 463, 442, 359, 347],
            "pinned skew histogram changed"
        );
        // And the shape is Zipf-1: rank 0 draws ~1/H_10 ≈ 34%.
        assert!((f64::from(hist[0]) / 10_000.0 - 0.3414).abs() < 0.02);
    }

    #[test]
    fn distinct_ids_never_repeat_and_duplicates_are_adjacent_per_tenant() {
        let mut traffic = TenantTraffic::new(TenantTrafficConfig {
            tenants: 50,
            skew: 1.0,
            duplicate_rate: 0.2,
            run_len: 3,
            seed: 11,
        });
        let mut seen: HashMap<[u8; 16], usize> = HashMap::new();
        let mut last_by_tenant: HashMap<u64, [u8; 16]> = HashMap::new();
        let mut dups = 0u64;
        for _ in 0..20_000 {
            let key = traffic.next_key();
            let t = u64::from_le_bytes(key[..8].try_into().unwrap());
            let count = seen.entry(key).or_insert(0);
            *count += 1;
            if *count > 1 {
                dups += 1;
                assert_eq!(*count, 2, "a key repeats at most once");
                assert_eq!(
                    last_by_tenant[&t], key,
                    "duplicate must repeat the tenant's immediately previous click"
                );
            }
            last_by_tenant.insert(t, key);
        }
        assert_eq!(dups, traffic.duplicates_emitted());
        assert!(dups > 2_000, "20% duplicate rate actually injects");
        assert_eq!(traffic.emitted(), 20_000);
    }

    #[test]
    fn runs_group_same_tenant_keys() {
        let mut traffic = TenantTraffic::new(TenantTrafficConfig {
            tenants: 1_000,
            skew: 0.0, // uniform: distinct tenants per run w.h.p.
            duplicate_rate: 0.0,
            run_len: 4,
            seed: 3,
        });
        let tenants: Vec<u64> = (0..400)
            .map(|_| u64::from_le_bytes(traffic.next_key()[..8].try_into().unwrap()))
            .collect();
        for run in tenants.chunks(4) {
            assert!(run.iter().all(|&t| t == run[0]), "run not grouped: {run:?}");
        }
    }

    #[test]
    fn fill_flat_matches_next_key() {
        let cfg = TenantTrafficConfig::new(64, 5);
        let mut a = TenantTraffic::new(cfg);
        let mut b = TenantTraffic::new(cfg);
        let mut flat = Vec::new();
        a.fill_flat(100, &mut flat);
        let by_key: Vec<u8> = (0..100).flat_map(|_| b.next_key()).collect();
        assert_eq!(flat, by_key);
    }

    #[test]
    #[should_panic(expected = "duplicate rate")]
    fn bad_duplicate_rate_panics() {
        let mut cfg = TenantTrafficConfig::new(10, 0);
        cfg.duplicate_rate = 1.0;
        let _ = TenantTraffic::new(cfg);
    }
}
