//! The `cfd serve` wire protocol: CRC-framed click streaming.
//!
//! A connection carries a sequence of self-delimiting frames; the
//! normative spec lives in `DESIGN.md` §"Serving architecture". Each
//! frame is
//!
//! ```text
//! len u32 | kind u8 | payload (len - 1 bytes) | crc u32
//! ```
//!
//! with all integers little-endian, `len` counting the kind byte plus
//! the payload, and `crc` the IEEE CRC-32 of the kind byte plus the
//! payload. Three frame kinds exist:
//!
//! * [`FRAME_HELLO`] (server → client on accept): payload
//!   `magic "CFDW" | version u16 | position u64`. `position` is the
//!   number of clicks of the logical stream the server has already
//!   accepted, so a reconnecting client resumes from there instead of
//!   replaying clicks the server would double-count.
//! * [`FRAME_CLICKS`] (client → server): payload `count u32` followed
//!   by `count` click records in the same 36-byte little-endian layout
//!   as the `CFDT` trace format of [`crate::trace`]
//!   (`tick u64 | ip u32 | cookie u64 | ad u32 | publisher u32 |
//!   cost u64`).
//! * [`FRAME_DRAIN`] (client → server): empty payload. Asks the server
//!   to drain gracefully — stop accepting input, flush the pipeline,
//!   checkpoint, and emit the final billing report.
//!
//! [`FrameReader`] is the incremental decoder: feed it raw socket bytes
//! with [`FrameReader::extend`] and pull complete frames with
//! [`FrameReader::next_frame`]. Its internal buffer is recycled, so a
//! warm reader decodes an arbitrarily long stream with zero further
//! heap allocations — the property the serve soak test asserts
//! end-to-end.

use crate::click::{AdId, Click, ClickId, PublisherId};
use bytes::{Buf, BufMut};
use std::fmt;

/// Protocol magic carried in every HELLO payload.
pub const WIRE_MAGIC: &[u8; 4] = b"CFDW";
/// Protocol version carried in every HELLO payload.
pub const WIRE_VERSION: u16 = 1;

/// Server greeting: protocol magic/version + resume position.
pub const FRAME_HELLO: u8 = 1;
/// A batch of click records.
pub const FRAME_CLICKS: u8 = 2;
/// Graceful-shutdown request (empty payload).
pub const FRAME_DRAIN: u8 = 3;

/// Upper bound on `len` (kind + payload bytes) of a single frame.
///
/// Large enough for 400k clicks per frame, small enough that a
/// desynchronized or hostile peer cannot make the reader buffer
/// gigabytes before the CRC check rejects the garbage.
pub const MAX_FRAME_BYTES: usize = 1 << 24;

/// Bytes per click record inside a `CLICKS` payload (the `CFDT` record
/// layout of [`crate::trace`]).
pub const CLICK_RECORD_BYTES: usize = 8 + 4 + 8 + 4 + 4 + 8;

/// Error produced while decoding wire frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A HELLO payload did not start with the `CFDW` magic.
    BadMagic,
    /// The peer speaks an unsupported protocol version.
    BadVersion(u16),
    /// A frame's CRC-32 did not match its contents.
    BadCrc {
        /// CRC carried by the frame trailer.
        expected: u32,
        /// CRC computed over the received kind + payload.
        got: u32,
    },
    /// A frame declared a length outside `1..=MAX_FRAME_BYTES`.
    BadLength(usize),
    /// A payload was malformed for its frame kind.
    BadPayload(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "HELLO payload is not CFDW"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadCrc { expected, got } => {
                write!(
                    f,
                    "frame CRC mismatch: expected {expected:#010x}, got {got:#010x}"
                )
            }
            WireError::BadLength(n) => write!(f, "frame length {n} out of range"),
            WireError::BadPayload(what) => write!(f, "malformed frame payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// IEEE CRC-32 lookup table (reflected, polynomial `0xEDB88320`),
/// built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
};

/// IEEE CRC-32 (the zlib/PNG polynomial) of `data`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Appends one framed message (`kind` + `payload`) to `out`.
fn encode_frame(out: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    debug_assert!(payload.len() < MAX_FRAME_BYTES, "frame too large");
    out.put_u32_le((1 + payload.len()) as u32);
    let body_start = out.len();
    out.push(kind);
    out.put_slice(payload);
    let crc = crc32(&out[body_start..]);
    out.put_u32_le(crc);
}

/// Appends a HELLO frame announcing `position` to `out`.
pub fn encode_hello(out: &mut Vec<u8>, position: u64) {
    let mut payload = [0u8; 14];
    payload[..4].copy_from_slice(WIRE_MAGIC);
    payload[4..6].copy_from_slice(&WIRE_VERSION.to_le_bytes());
    payload[6..14].copy_from_slice(&position.to_le_bytes());
    encode_frame(out, FRAME_HELLO, &payload);
}

/// Appends a CLICKS frame carrying `clicks` to `out`.
///
/// # Panics
///
/// Panics if `clicks` would overflow [`MAX_FRAME_BYTES`]; split large
/// batches across frames instead.
pub fn encode_clicks(out: &mut Vec<u8>, clicks: &[Click]) {
    assert!(
        1 + 4 + clicks.len() * CLICK_RECORD_BYTES <= MAX_FRAME_BYTES,
        "CLICKS frame over MAX_FRAME_BYTES; split the batch"
    );
    out.put_u32_le((1 + 4 + clicks.len() * CLICK_RECORD_BYTES) as u32);
    let body_start = out.len();
    out.push(FRAME_CLICKS);
    out.put_u32_le(clicks.len() as u32);
    for c in clicks {
        out.put_u64_le(c.tick);
        out.put_u32_le(c.id.ip);
        out.put_u64_le(c.id.cookie);
        out.put_u32_le(c.id.ad.0);
        out.put_u32_le(c.publisher.0);
        out.put_u64_le(c.cost_micros);
    }
    let crc = crc32(&out[body_start..]);
    out.put_u32_le(crc);
}

/// Appends a DRAIN frame (empty payload) to `out`.
pub fn encode_drain(out: &mut Vec<u8>) {
    encode_frame(out, FRAME_DRAIN, &[]);
}

/// Decodes a HELLO payload, returning the announced resume position.
///
/// # Errors
///
/// Returns [`WireError`] on a short payload, wrong magic, or an
/// unsupported version.
pub fn decode_hello(payload: &[u8]) -> Result<u64, WireError> {
    if payload.len() != 14 {
        return Err(WireError::BadPayload("HELLO payload must be 14 bytes"));
    }
    if &payload[..4] != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_le_bytes([payload[4], payload[5]]);
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let mut pos = [0u8; 8];
    pos.copy_from_slice(&payload[6..14]);
    Ok(u64::from_le_bytes(pos))
}

/// Decodes a CLICKS payload into `out` (appended, not cleared),
/// returning the record count.
///
/// Reuses `out`'s capacity — the serve path feeds pooled buffers here
/// so a warm decode allocates nothing.
///
/// # Errors
///
/// Returns [`WireError::BadPayload`] when the declared count disagrees
/// with the payload length.
pub fn decode_clicks_into(mut payload: &[u8], out: &mut Vec<Click>) -> Result<usize, WireError> {
    if payload.len() < 4 {
        return Err(WireError::BadPayload("CLICKS payload shorter than count"));
    }
    let count = payload.get_u32_le() as usize;
    if payload.len() != count * CLICK_RECORD_BYTES {
        return Err(WireError::BadPayload("CLICKS count disagrees with length"));
    }
    out.reserve(count);
    for _ in 0..count {
        let tick = payload.get_u64_le();
        let ip = payload.get_u32_le();
        let cookie = payload.get_u64_le();
        let ad = payload.get_u32_le();
        let publisher = payload.get_u32_le();
        let cost = payload.get_u64_le();
        out.push(Click::new(
            ClickId::new(ip, cookie, AdId(ad)),
            tick,
            PublisherId(publisher),
            cost,
        ));
    }
    Ok(count)
}

/// One complete, CRC-verified frame borrowed from a [`FrameReader`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameRef<'a> {
    /// Frame kind ([`FRAME_HELLO`], [`FRAME_CLICKS`], [`FRAME_DRAIN`],
    /// or an unknown value the caller may skip or reject).
    pub kind: u8,
    /// The payload bytes (everything after the kind byte).
    pub payload: &'a [u8],
}

/// Incremental frame decoder over a byte stream.
///
/// Feed raw bytes with [`extend`](Self::extend) as they arrive, then
/// drain complete frames with [`next_frame`](Self::next_frame) until it
/// returns `Ok(None)` (more bytes needed). Consumed bytes are compacted
/// out of the internal buffer lazily, so the buffer stops growing once
/// it has seen the largest in-flight frame.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Offset of the first unconsumed byte in `buf`.
    start: usize,
}

impl FrameReader {
    /// Creates an empty reader.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty reader with `capacity` bytes pre-reserved.
    ///
    /// A stream whose backlog (one partial frame plus one receive
    /// chunk) stays under `capacity` never reallocates the decode
    /// buffer — the foundation of the gateway's zero-allocation
    /// steady state.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
            start: 0,
        }
    }

    /// Appends freshly received bytes to the decode buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: move the unconsumed tail to the
        // front so capacity is reused instead of extended.
        if self.start > 0 {
            self.buf.copy_within(self.start.., 0);
            self.buf.truncate(self.buf.len() - self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Decodes the next complete frame, if one is fully buffered.
    ///
    /// Returns `Ok(None)` when more bytes are needed. The returned
    /// [`FrameRef`] borrows the internal buffer and is valid until the
    /// next call to any `&mut self` method.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadLength`] or [`WireError::BadCrc`] on a
    /// corrupt stream; the reader is then desynchronized and the
    /// connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<FrameRef<'_>>, WireError> {
        let avail = self.buf.len() - self.start;
        if avail < 4 {
            return Ok(None);
        }
        let head = &self.buf[self.start..];
        let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]) as usize;
        if len == 0 || len > MAX_FRAME_BYTES {
            return Err(WireError::BadLength(len));
        }
        if avail < 4 + len + 4 {
            return Ok(None);
        }
        let body = &self.buf[self.start + 4..self.start + 4 + len];
        let trailer = &self.buf[self.start + 4 + len..self.start + 4 + len + 4];
        let expected = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        let got = crc32(body);
        if expected != got {
            return Err(WireError::BadCrc { expected, got });
        }
        let frame_start = self.start + 4;
        self.start += 4 + len + 4;
        Ok(Some(FrameRef {
            kind: self.buf[frame_start],
            payload: &self.buf[frame_start + 1..frame_start + len],
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::unique::UniqueClickStream;
    use proptest::prelude::*;

    fn sample_clicks(n: usize) -> Vec<Click> {
        UniqueClickStream::new(3, 8, 64).take(n).collect()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn hello_roundtrip() {
        let mut buf = Vec::new();
        encode_hello(&mut buf, 123_456_789);
        let mut r = FrameReader::new();
        r.extend(&buf);
        let f = r.next_frame().expect("valid").expect("complete");
        assert_eq!(f.kind, FRAME_HELLO);
        assert_eq!(decode_hello(f.payload), Ok(123_456_789));
        assert!(r.next_frame().expect("valid").is_none());
    }

    #[test]
    fn clicks_roundtrip() {
        let clicks = sample_clicks(100);
        let mut buf = Vec::new();
        encode_clicks(&mut buf, &clicks);
        let mut r = FrameReader::new();
        r.extend(&buf);
        let f = r.next_frame().expect("valid").expect("complete");
        assert_eq!(f.kind, FRAME_CLICKS);
        let mut out = Vec::new();
        assert_eq!(decode_clicks_into(f.payload, &mut out), Ok(100));
        assert_eq!(out, clicks);
    }

    #[test]
    fn drain_roundtrip() {
        let mut buf = Vec::new();
        encode_drain(&mut buf);
        let mut r = FrameReader::new();
        r.extend(&buf);
        let f = r.next_frame().expect("valid").expect("complete");
        assert_eq!(f.kind, FRAME_DRAIN);
        assert!(f.payload.is_empty());
    }

    #[test]
    fn dribbled_bytes_reassemble() {
        let clicks = sample_clicks(17);
        let mut buf = Vec::new();
        encode_hello(&mut buf, 7);
        encode_clicks(&mut buf, &clicks);
        encode_drain(&mut buf);
        let mut r = FrameReader::new();
        let mut kinds = Vec::new();
        let mut decoded = Vec::new();
        // One byte at a time: every split point is exercised.
        for &b in &buf {
            r.extend(&[b]);
            while let Some(f) = r.next_frame().expect("valid") {
                kinds.push(f.kind);
                if f.kind == FRAME_CLICKS {
                    decode_clicks_into(f.payload, &mut decoded).expect("clicks");
                }
            }
        }
        assert_eq!(kinds, vec![FRAME_HELLO, FRAME_CLICKS, FRAME_DRAIN]);
        assert_eq!(decoded, clicks);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn corrupt_byte_is_caught_by_crc() {
        let clicks = sample_clicks(10);
        let mut buf = Vec::new();
        encode_clicks(&mut buf, &clicks);
        // Flip one payload bit (past the length header).
        buf[20] ^= 0x40;
        let mut r = FrameReader::new();
        r.extend(&buf);
        assert!(matches!(r.next_frame(), Err(WireError::BadCrc { .. })));
    }

    #[test]
    fn zero_and_oversized_lengths_rejected() {
        let mut r = FrameReader::new();
        r.extend(&0u32.to_le_bytes());
        assert_eq!(r.next_frame(), Err(WireError::BadLength(0)));
        let mut r = FrameReader::new();
        r.extend(&(MAX_FRAME_BYTES as u32 + 1).to_le_bytes());
        assert_eq!(
            r.next_frame(),
            Err(WireError::BadLength(MAX_FRAME_BYTES + 1))
        );
    }

    #[test]
    fn hello_rejects_wrong_magic_and_version() {
        let mut buf = Vec::new();
        encode_hello(&mut buf, 1);
        // Payload starts after len(4) + kind(1).
        let mut bad_magic = buf[5..19].to_vec();
        bad_magic[0] = b'X';
        assert_eq!(decode_hello(&bad_magic), Err(WireError::BadMagic));
        let mut bad_version = buf[5..19].to_vec();
        bad_version[4] = 0xFF;
        assert!(matches!(
            decode_hello(&bad_version),
            Err(WireError::BadVersion(_))
        ));
        assert!(decode_hello(&[1, 2, 3]).is_err());
    }

    #[test]
    fn clicks_count_mismatch_rejected() {
        let clicks = sample_clicks(3);
        let mut buf = Vec::new();
        encode_clicks(&mut buf, &clicks);
        let mut payload = buf[5..buf.len() - 4].to_vec();
        payload[0] = 9; // claim 9 records, carry 3
        let mut out = Vec::new();
        assert!(decode_clicks_into(&payload, &mut out).is_err());
    }

    #[test]
    fn errors_have_displays() {
        assert!(WireError::BadMagic.to_string().contains("CFDW"));
        assert!(WireError::BadVersion(9).to_string().contains('9'));
        assert!(WireError::BadLength(0).to_string().contains('0'));
        assert!(WireError::BadCrc {
            expected: 1,
            got: 2
        }
        .to_string()
        .contains("CRC"));
        assert!(WireError::BadPayload("x").to_string().contains('x'));
    }

    proptest! {
        /// Any click sequence, any frame sizing, any byte chunking:
        /// the reader reproduces the stream exactly.
        #[test]
        fn any_chunking_roundtrips(
            raw in prop::collection::vec(any::<(u64, u32, u64, u32, u32, u64)>(), 0..200),
            frame_clicks in 1usize..40,
            chunk in 1usize..64,
        ) {
            let clicks: Vec<Click> = raw
                .into_iter()
                .map(|(t, ip, ck, ad, pb, cost)| {
                    Click::new(ClickId::new(ip, ck, AdId(ad)), t, PublisherId(pb), cost)
                })
                .collect();
            let mut buf = Vec::new();
            for group in clicks.chunks(frame_clicks) {
                encode_clicks(&mut buf, group);
            }
            let mut r = FrameReader::new();
            let mut decoded = Vec::new();
            for part in buf.chunks(chunk) {
                r.extend(part);
                while let Some(f) = r.next_frame().expect("valid") {
                    prop_assert_eq!(f.kind, FRAME_CLICKS);
                    decode_clicks_into(f.payload, &mut decoded).expect("clicks");
                }
            }
            prop_assert_eq!(decoded, clicks);
            prop_assert_eq!(r.pending(), 0);
        }
    }
}
