//! Declarative workload scenarios: a TOML spec parsed into a typed
//! [`ScenarioSpec`] and compiled into a composing [`ScenarioStream`].
//!
//! Nine PRs of backends, layouts, shards, and tenant arenas were still
//! exercised by hand-coded generators and bench configs. A scenario file
//! replaces that with a committed, reproducible description of
//!
//! * the **traffic mix** — weighted sub-streams of organic uniques, Zipf
//!   repeats, botnet bursts, flash crowds, and crawler sweeps, each on a
//!   disjoint id namespace (see [`crate::gen::ids`]) so composition
//!   keeps exact duplicate semantics;
//! * **duplicate injection** — a controlled re-emission rate with a
//!   bounded lag, the guaranteed-duplicate ground truth;
//! * the **window model** — count-based or time-based, with a diurnal
//!   tick-gap ramp for the latter;
//! * an optional **tenant remap** — ads redrawn from a Zipf tenant
//!   universe, the multi-tenant arena workload;
//! * a **sweep grid** — the (algo, m, k, Q, layout, shards, batch)
//!   cartesian product the sweep driver brute-forces, with `algo =
//!   "auto"` resolved from the `cfd-analysis` closed forms.
//!
//! The dependency shims vendored for the offline build do not include a
//! TOML crate, so this module carries its own parser for the subset the
//! spec needs (tables, arrays of tables, strings/ints/floats/bools,
//! homogeneous inline arrays, comments). Errors name the offending
//! field path (`traffic.mix[1].skew: ...`), unknown keys are rejected,
//! and [`ScenarioSpec::to_toml`] emits a canonical form that parses
//! back to an equal spec.

use crate::click::{AdId, Click, ClickId, PublisherId};
use crate::gen::ids::NS_SCENARIO_BASE;
use crate::gen::{
    botnet::{BotnetConfig, BotnetStream},
    crawler::CrawlerStream,
    flashcrowd::{FlashCrowdConfig, FlashCrowdStream},
    unique::UniqueClickStream,
    zipf::{ZipfClickStream, ZipfSampler},
};
use cfd_hash::mix::splitmix64;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;

/// A spec rejection, naming the field (or line) that failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// Dotted field path (`traffic.mix[1].skew`) or `line N` for syntax
    /// errors.
    pub path: String,
    /// What was wrong with it.
    pub message: String,
}

impl ScenarioError {
    fn new(path: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

impl std::error::Error for ScenarioError {}

// ---------------------------------------------------------------------
// Minimal TOML subset
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    /// Wide enough for the full `u64` range (seeds) plus negatives,
    /// so `to_toml` output always re-parses.
    Int(i128),
    Float(f64),
    Bool(bool),
    Array(Vec<Value>),
}

#[derive(Debug, Clone, Default)]
struct Table {
    entries: Vec<(String, Node)>,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf(Value),
    Table(Table),
    /// An array of tables (`[[a.b]]` headers).
    Many(Vec<Table>),
}

impl Table {
    fn get(&self, key: &str) -> Option<&Node> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, n)| n)
    }
}

/// Truncates the comment off a line, respecting `#` inside strings.
fn strip_comment(line: &str) -> &str {
    let (mut in_str, mut escaped) = (false, false);
    for (i, ch) in line.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                in_str = false;
            }
        } else if ch == '"' {
            in_str = true;
        } else if ch == '#' {
            return &line[..i];
        }
    }
    line
}

fn parse_string(s: &str, at: &str) -> Result<String, ScenarioError> {
    let mut out = String::new();
    let mut chars = s.char_indices().skip(1); // past the opening quote
    loop {
        let Some((i, ch)) = chars.next() else {
            return Err(ScenarioError::new(at, "unterminated string"));
        };
        match ch {
            '"' => {
                if s[i + 1..].trim().is_empty() {
                    return Ok(out);
                }
                return Err(ScenarioError::new(at, "trailing characters after string"));
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                _ => return Err(ScenarioError::new(at, "bad escape in string")),
            },
            _ => out.push(ch),
        }
    }
}

/// Splits a `[a, b, c]` body at top-level commas (commas inside strings
/// don't count). Nested arrays are not part of the subset.
fn split_array_items(body: &str, at: &str) -> Result<Vec<String>, ScenarioError> {
    let mut items = Vec::new();
    let mut cur = String::new();
    let (mut in_str, mut escaped) = (false, false);
    for ch in body.chars() {
        if in_str {
            cur.push(ch);
            if escaped {
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                in_str = false;
            }
        } else {
            match ch {
                '"' => {
                    in_str = true;
                    cur.push(ch);
                }
                '[' => return Err(ScenarioError::new(at, "nested arrays are not supported")),
                ',' => {
                    items.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => cur.push(ch),
            }
        }
    }
    if in_str {
        return Err(ScenarioError::new(at, "unterminated string in array"));
    }
    if !cur.trim().is_empty() {
        items.push(cur);
    } else if !items.is_empty() {
        // a trailing comma left an empty tail; that's fine
    }
    Ok(items)
}

fn parse_value(s: &str, at: &str) -> Result<Value, ScenarioError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(ScenarioError::new(at, "missing value"));
    }
    if s.starts_with('"') {
        return Ok(Value::Str(parse_string(s, at)?));
    }
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = s.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return Err(ScenarioError::new(at, "unterminated array"));
        };
        let mut vals = Vec::new();
        for item in split_array_items(body, at)? {
            vals.push(parse_value(&item, at)?);
        }
        return Ok(Value::Array(vals));
    }
    let digits: String = s.chars().filter(|&c| c != '_').collect();
    if digits.contains(['.', 'e', 'E']) {
        if let Ok(f) = digits.parse::<f64>() {
            return Ok(Value::Float(f));
        }
    } else if let Ok(i) = digits.parse::<i128>() {
        return Ok(Value::Int(i));
    }
    Err(ScenarioError::new(at, format!("cannot parse value `{s}`")))
}

/// Walks (creating as needed) to the table at `path`, descending into
/// the *last* element of any array-of-tables on the way.
fn table_at<'t>(
    mut table: &'t mut Table,
    path: &[String],
    at: &str,
) -> Result<&'t mut Table, ScenarioError> {
    for seg in path {
        let idx = table.entries.iter().position(|(k, _)| k == seg);
        let idx = match idx {
            Some(i) => i,
            None => {
                table
                    .entries
                    .push((seg.clone(), Node::Table(Table::default())));
                table.entries.len() - 1
            }
        };
        table = match &mut table.entries[idx].1 {
            Node::Table(t) => t,
            Node::Many(v) => v.last_mut().expect("array-of-tables is never empty"),
            Node::Leaf(_) => {
                return Err(ScenarioError::new(
                    at,
                    format!("`{seg}` is a value, not a table"),
                ));
            }
        };
    }
    Ok(table)
}

fn parse_document(text: &str) -> Result<Table, ScenarioError> {
    let mut root = Table::default();
    let mut current: Vec<String> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let at = format!("line {}", lineno + 1);
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(body) = line.strip_prefix("[[") {
            let Some(body) = body.strip_suffix("]]") else {
                return Err(ScenarioError::new(at, "malformed [[table]] header"));
            };
            let path: Vec<String> = body.split('.').map(|s| s.trim().to_owned()).collect();
            if path.iter().any(String::is_empty) {
                return Err(ScenarioError::new(at, "empty segment in table header"));
            }
            let (last, parents) = path.split_last().expect("split never yields empty");
            let parent = table_at(&mut root, parents, &at)?;
            match parent.entries.iter_mut().find(|(k, _)| k == last) {
                None => parent
                    .entries
                    .push((last.clone(), Node::Many(vec![Table::default()]))),
                Some((_, Node::Many(v))) => v.push(Table::default()),
                Some(_) => {
                    return Err(ScenarioError::new(
                        at,
                        format!("`{last}` is not an array of tables"),
                    ));
                }
            }
            current = path;
        } else if let Some(body) = line.strip_prefix('[') {
            let Some(body) = body.strip_suffix(']') else {
                return Err(ScenarioError::new(at, "malformed [table] header"));
            };
            let path: Vec<String> = body.split('.').map(|s| s.trim().to_owned()).collect();
            if path.iter().any(String::is_empty) {
                return Err(ScenarioError::new(at, "empty segment in table header"));
            }
            table_at(&mut root, &path, &at)?;
            current = path;
        } else if let Some((key, value)) = line.split_once('=') {
            let key = key.trim();
            if key.is_empty() {
                return Err(ScenarioError::new(at, "missing key before `=`"));
            }
            let table = table_at(&mut root, &current, &at)?;
            if table.get(key).is_some() {
                return Err(ScenarioError::new(at, format!("duplicate key `{key}`")));
            }
            let value = parse_value(value, &at)?;
            table.entries.push((key.to_owned(), Node::Leaf(value)));
        } else {
            return Err(ScenarioError::new(at, "expected `key = value` or a header"));
        }
    }
    Ok(root)
}

// ---------------------------------------------------------------------
// Typed extraction
// ---------------------------------------------------------------------

/// A cursor over one table, carrying the dotted path for error messages.
struct Sect<'a> {
    path: String,
    table: &'a Table,
}

impl<'a> Sect<'a> {
    fn err(&self, key: &str, msg: impl Into<String>) -> ScenarioError {
        let path = if self.path.is_empty() {
            key.to_owned()
        } else if key.is_empty() {
            self.path.clone()
        } else {
            format!("{}.{key}", self.path)
        };
        ScenarioError::new(path, msg)
    }

    fn reject_unknown(&self, allowed: &[&str]) -> Result<(), ScenarioError> {
        for (k, _) in &self.table.entries {
            if !allowed.contains(&k.as_str()) {
                return Err(self.err(k, "unknown key"));
            }
        }
        Ok(())
    }

    fn value(&self, key: &str) -> Result<Option<&'a Value>, ScenarioError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(Node::Leaf(v)) => Ok(Some(v)),
            Some(_) => Err(self.err(key, "expected a value, found a table")),
        }
    }

    fn str(&self, key: &str, default: &str) -> Result<String, ScenarioError> {
        match self.value(key)? {
            None => Ok(default.to_owned()),
            Some(Value::Str(s)) => Ok(s.clone()),
            Some(_) => Err(self.err(key, "expected a string")),
        }
    }

    fn required_str(&self, key: &str) -> Result<String, ScenarioError> {
        match self.value(key)? {
            None => Err(self.err(key, "required key is missing")),
            Some(Value::Str(s)) => Ok(s.clone()),
            Some(_) => Err(self.err(key, "expected a string")),
        }
    }

    fn u64(&self, key: &str, default: u64) -> Result<u64, ScenarioError> {
        match self.value(key)? {
            None => Ok(default),
            Some(Value::Int(i)) if *i < 0 => Err(self.err(key, "must not be negative")),
            Some(Value::Int(i)) => {
                u64::try_from(*i).map_err(|_| self.err(key, "does not fit in 64 bits"))
            }
            Some(_) => Err(self.err(key, "expected an integer")),
        }
    }

    fn positive_u64(&self, key: &str, default: u64) -> Result<u64, ScenarioError> {
        let v = self.u64(key, default)?;
        if v == 0 {
            return Err(self.err(key, "must be at least 1"));
        }
        Ok(v)
    }

    fn positive_usize(&self, key: &str, default: usize) -> Result<usize, ScenarioError> {
        Ok(self.positive_u64(key, default as u64)? as usize)
    }

    fn positive_u32(&self, key: &str, default: u32) -> Result<u32, ScenarioError> {
        let v = self.positive_u64(key, u64::from(default))?;
        u32::try_from(v).map_err(|_| self.err(key, "does not fit in 32 bits"))
    }

    fn u32(&self, key: &str, default: u32) -> Result<u32, ScenarioError> {
        let v = self.u64(key, u64::from(default))?;
        u32::try_from(v).map_err(|_| self.err(key, "does not fit in 32 bits"))
    }

    fn f64(&self, key: &str, default: f64) -> Result<f64, ScenarioError> {
        let v = match self.value(key)? {
            None => default,
            Some(Value::Float(f)) => *f,
            Some(Value::Int(i)) => *i as f64,
            Some(_) => return Err(self.err(key, "expected a number")),
        };
        if !v.is_finite() {
            return Err(self.err(key, "must be finite"));
        }
        Ok(v)
    }

    fn fraction(&self, key: &str, default: f64) -> Result<f64, ScenarioError> {
        let v = self.f64(key, default)?;
        if !(0.0..1.0).contains(&v) {
            return Err(self.err(key, "must be in [0, 1)"));
        }
        Ok(v)
    }

    fn sub(&self, key: &str) -> Result<Option<Sect<'a>>, ScenarioError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(Node::Table(t)) => Ok(Some(Sect {
                path: if self.path.is_empty() {
                    key.to_owned()
                } else {
                    format!("{}.{key}", self.path)
                },
                table: t,
            })),
            Some(_) => Err(self.err(key, "expected a [table]")),
        }
    }

    fn many(&self, key: &str) -> Result<Vec<Sect<'a>>, ScenarioError> {
        match self.table.get(key) {
            None => Ok(Vec::new()),
            Some(Node::Many(v)) => Ok(v
                .iter()
                .enumerate()
                .map(|(i, t)| Sect {
                    path: format!("{}.{key}[{i}]", self.path),
                    table: t,
                })
                .collect()),
            Some(_) => Err(self.err(key, "expected [[array-of-tables]] entries")),
        }
    }

    fn str_array(&self, key: &str, default: &[&str]) -> Result<Vec<String>, ScenarioError> {
        match self.value(key)? {
            None => Ok(default.iter().map(|s| (*s).to_owned()).collect()),
            Some(Value::Array(vals)) => {
                let mut out = Vec::with_capacity(vals.len());
                for v in vals {
                    match v {
                        Value::Str(s) => out.push(s.clone()),
                        _ => return Err(self.err(key, "expected an array of strings")),
                    }
                }
                if out.is_empty() {
                    return Err(self.err(key, "must not be empty"));
                }
                Ok(out)
            }
            Some(_) => Err(self.err(key, "expected an array of strings")),
        }
    }

    fn usize_array(&self, key: &str, default: &[usize]) -> Result<Vec<usize>, ScenarioError> {
        match self.value(key)? {
            None => Ok(default.to_vec()),
            Some(Value::Array(vals)) => {
                let mut out = Vec::with_capacity(vals.len());
                for v in vals {
                    match v {
                        Value::Int(i) if *i >= 1 => out.push(
                            usize::try_from(*i)
                                .map_err(|_| self.err(key, "entry does not fit in usize"))?,
                        ),
                        Value::Int(_) => return Err(self.err(key, "entries must be at least 1")),
                        _ => return Err(self.err(key, "expected an array of integers")),
                    }
                }
                if out.is_empty() {
                    return Err(self.err(key, "must not be empty"));
                }
                Ok(out)
            }
            Some(_) => Err(self.err(key, "expected an array of integers")),
        }
    }
}

// ---------------------------------------------------------------------
// The spec
// ---------------------------------------------------------------------

/// One weighted sub-stream of a scenario's traffic mix.
#[derive(Debug, Clone, PartialEq)]
pub struct MixEntry {
    /// Relative share of total traffic (normalized over the mix).
    pub weight: f64,
    /// What kind of traffic this sub-stream produces.
    pub kind: MixKind,
}

/// The generator behind a [`MixEntry`].
#[derive(Debug, Clone, PartialEq)]
pub enum MixKind {
    /// Guaranteed-distinct organic clicks ([`UniqueClickStream`]).
    Unique,
    /// Zipf-popular identities with natural repeats
    /// ([`ZipfClickStream`]).
    Zipf {
        /// Number of distinct identities.
        universe: usize,
        /// Zipf exponent (`0` = uniform).
        skew: f64,
    },
    /// A botnet burst plus its own organic side ([`BotnetStream`]).
    Botnet {
        /// Number of bots.
        bots: u32,
        /// Fraction of this sub-stream that is bot clicks, in `[0, 1)`.
        attack_fraction: f64,
        /// The targeted ad.
        target_ad: u32,
    },
    /// A flash crowd on one hot ad ([`FlashCrowdStream`]).
    FlashCrowd {
        /// Fraction of this sub-stream in the crowd, in `[0, 1]`.
        crowd_fraction: f64,
        /// Probability of a legitimate second click, in `[0, 1)`.
        second_click_prob: f64,
        /// The ad everyone is clicking.
        hot_ad: u32,
    },
    /// A crawler fleet revisiting ads on a fixed period
    /// ([`CrawlerStream`]).
    Crawler {
        /// Number of crawler agents.
        crawlers: u32,
        /// One crawler click every `period` positions.
        period: u64,
    },
}

impl MixKind {
    /// The spec string for this kind (`kind = "..."`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Unique => "unique",
            Self::Zipf { .. } => "zipf",
            Self::Botnet { .. } => "botnet",
            Self::FlashCrowd { .. } => "flashcrowd",
            Self::Crawler { .. } => "crawler",
        }
    }
}

/// The window model a scenario evaluates under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioWindow {
    /// Count-based window over the last `n` clicks.
    Count {
        /// Window size in clicks.
        n: usize,
    },
    /// Time-based window; `n` is the *expected clicks per window* used
    /// to size detector tables.
    Time {
        /// Expected clicks per window (table capacity).
        n: usize,
        /// Sliding window span in units (`time-tbf`).
        window_units: u64,
        /// Units per sub-window (`time-gbf`).
        sub_units: u64,
        /// Ticks per unit.
        unit_ticks: u64,
    },
}

impl ScenarioWindow {
    /// The sized capacity (clicks per window) under either model.
    #[must_use]
    pub fn n(&self) -> usize {
        match self {
            Self::Count { n } | Self::Time { n, .. } => *n,
        }
    }

    /// `true` for the time-based model.
    #[must_use]
    pub fn is_timed(&self) -> bool {
        matches!(self, Self::Time { .. })
    }
}

/// The `[traffic]` section.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSpec {
    /// Publisher pool size.
    pub publishers: u32,
    /// Ad pool size.
    pub ads: u32,
    /// Weighted sub-streams.
    pub mix: Vec<MixEntry>,
}

/// The `[inject]` section: controlled duplicate re-emission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectSpec {
    /// Probability a click is a re-emission of a recent one, in
    /// `[0, 1)`.
    pub rate: f64,
    /// Re-emissions are drawn from the last `max_lag` clicks.
    pub max_lag: usize,
}

/// The `[ramp]` section: diurnal tick-gap modulation. The gap between
/// consecutive clicks swings sinusoidally between `low` and `high`
/// ticks over `period` clicks — under a time window, detector load
/// breathes the way real traffic does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RampSpec {
    /// Clicks per full diurnal cycle.
    pub period: u64,
    /// Tick-gap multiplier at the peak (most traffic).
    pub low: f64,
    /// Tick-gap multiplier at the trough (least traffic).
    pub high: f64,
}

/// The `[tenants]` section: ads redrawn from a Zipf tenant universe,
/// modeling millions of campaigns multiplexed over one detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSpec {
    /// Tenant (campaign) universe size.
    pub count: u32,
    /// Zipf exponent of tenant popularity.
    pub skew: f64,
}

/// The `[sweep]` section: the grid the sweep driver brute-forces.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// Backend names (`cfd algos`, `time-tbf`/`time-gbf` under a time
    /// window, or `auto` to resolve from the closed forms).
    pub algos: Vec<String>,
    /// Memory budgets, as cells per window element (the paper's `m/n`).
    pub cells_per_element: Vec<usize>,
    /// Hash counts (`k`).
    pub hash_counts: Vec<usize>,
    /// Sub-window counts (`Q`, jumping-window backends).
    pub sub_windows: Vec<usize>,
    /// Probe layouts (`scattered` / `blocked`).
    pub layouts: Vec<String>,
    /// Shard counts.
    pub shards: Vec<usize>,
    /// Observe batch sizes.
    pub batches: Vec<usize>,
    /// Target false-positive rate for `algo = "auto"` resolution.
    pub target_fp: f64,
    /// Sweep axis the compare-groups report groups by.
    pub group_by: String,
}

/// Axes [`SweepGrid::group_by`] accepts.
pub const GROUP_BY_AXES: &[&str] = &[
    "algo",
    "cells_per_element",
    "k",
    "sub_windows",
    "layout",
    "shards",
    "batch",
];

/// One point of the sweep grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPoint {
    /// Backend name as requested (possibly `auto`).
    pub algo: String,
    /// Cells per window element.
    pub cells_per_element: usize,
    /// Hash count.
    pub k: usize,
    /// Sub-window count.
    pub q: usize,
    /// Probe layout.
    pub layout: String,
    /// Shard count.
    pub shards: usize,
    /// Observe batch size.
    pub batch: usize,
}

impl SweepPoint {
    /// A compact one-line label for tables and logs.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{} c={} k={} q={} {} s={} b={}",
            self.algo, self.cells_per_element, self.k, self.q, self.layout, self.shards, self.batch
        )
    }

    /// The value of the named sweep axis, as a string.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is not one of [`GROUP_BY_AXES`] (the spec
    /// validator rejects those up front).
    #[must_use]
    pub fn axis(&self, axis: &str) -> String {
        match axis {
            "algo" => self.algo.clone(),
            "cells_per_element" => self.cells_per_element.to_string(),
            "k" => self.k.to_string(),
            "sub_windows" => self.q.to_string(),
            "layout" => self.layout.clone(),
            "shards" => self.shards.to_string(),
            "batch" => self.batch.to_string(),
            other => panic!("unknown sweep axis `{other}`"),
        }
    }
}

/// A parsed, validated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (used in reports and file names).
    pub name: String,
    /// Free-form description.
    pub description: String,
    /// Master seed; everything downstream derives from it.
    pub seed: u64,
    /// Number of clicks a compiled stream should emit.
    pub clicks: u64,
    /// Window model.
    pub window: ScenarioWindow,
    /// Traffic mix.
    pub traffic: TrafficSpec,
    /// Duplicate injection.
    pub inject: InjectSpec,
    /// Optional diurnal ramp.
    pub ramp: Option<RampSpec>,
    /// Optional tenant remap.
    pub tenants: Option<TenantSpec>,
    /// Sweep grid.
    pub sweep: SweepGrid,
}

/// Most namespaces a mix can consume (each entry takes a primary +
/// organic pair above [`NS_SCENARIO_BASE`]).
const MAX_MIX_ENTRIES: usize = 32;

impl ScenarioSpec {
    /// Parses and validates a scenario document.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] naming the offending line or field
    /// for syntax errors, unknown keys, missing required keys, and
    /// out-of-range values.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let doc = parse_document(text)?;
        let root = Sect {
            path: String::new(),
            table: &doc,
        };
        root.reject_unknown(&[
            "scenario", "window", "traffic", "inject", "ramp", "tenants", "sweep",
        ])?;

        let meta = root
            .sub("scenario")?
            .ok_or_else(|| root.err("scenario", "required [scenario] section is missing"))?;
        meta.reject_unknown(&["name", "description", "seed", "clicks"])?;
        let name = meta.required_str("name")?;
        if name.is_empty() {
            return Err(meta.err("name", "must not be empty"));
        }
        let description = meta.str("description", "")?;
        let seed = meta.u64("seed", 0)?;
        let clicks = meta.positive_u64("clicks", 0)?;

        let window = {
            let w = root
                .sub("window")?
                .ok_or_else(|| root.err("window", "required [window] section is missing"))?;
            let model = w.str("model", "count")?;
            let n = w.positive_usize("n", 1 << 16)?;
            match model.as_str() {
                "count" => {
                    w.reject_unknown(&["model", "n"])?;
                    ScenarioWindow::Count { n }
                }
                "time" => {
                    w.reject_unknown(&["model", "n", "window_units", "sub_units", "unit_ticks"])?;
                    ScenarioWindow::Time {
                        n,
                        window_units: w.positive_u64("window_units", 64)?,
                        sub_units: w.positive_u64("sub_units", 8)?,
                        unit_ticks: w.positive_u64("unit_ticks", 1024)?,
                    }
                }
                _ => return Err(w.err("model", "must be \"count\" or \"time\"")),
            }
        };

        let traffic = {
            let t = root
                .sub("traffic")?
                .ok_or_else(|| root.err("traffic", "required [traffic] section is missing"))?;
            t.reject_unknown(&["publishers", "ads", "mix"])?;
            let publishers = t.positive_u32("publishers", 16)?;
            let ads = t.positive_u32("ads", 64)?;
            let entries = t.many("mix")?;
            if entries.is_empty() {
                return Err(t.err("mix", "need at least one [[traffic.mix]] entry"));
            }
            if entries.len() > MAX_MIX_ENTRIES {
                return Err(t.err(
                    "mix",
                    format!("at most {MAX_MIX_ENTRIES} entries fit the id-namespace budget"),
                ));
            }
            let mut mix = Vec::with_capacity(entries.len());
            for e in &entries {
                let weight = e.f64("weight", 1.0)?;
                if weight <= 0.0 {
                    return Err(e.err("weight", "must be positive"));
                }
                let kind = match e.required_str("kind")?.as_str() {
                    "unique" => {
                        e.reject_unknown(&["kind", "weight"])?;
                        MixKind::Unique
                    }
                    "zipf" => {
                        e.reject_unknown(&["kind", "weight", "universe", "skew"])?;
                        let skew = e.f64("skew", 1.0)?;
                        if skew < 0.0 {
                            return Err(e.err("skew", "must be >= 0"));
                        }
                        MixKind::Zipf {
                            universe: e.positive_usize("universe", 1 << 16)?,
                            skew,
                        }
                    }
                    "botnet" => {
                        e.reject_unknown(&[
                            "kind",
                            "weight",
                            "bots",
                            "attack_fraction",
                            "target_ad",
                        ])?;
                        let target_ad = e.u32("target_ad", 1)?;
                        if target_ad >= ads {
                            return Err(e.err("target_ad", "must be below traffic.ads"));
                        }
                        MixKind::Botnet {
                            bots: e.positive_u32("bots", 1000)?,
                            attack_fraction: e.fraction("attack_fraction", 0.2)?,
                            target_ad,
                        }
                    }
                    "flashcrowd" => {
                        e.reject_unknown(&[
                            "kind",
                            "weight",
                            "crowd_fraction",
                            "second_click_prob",
                            "hot_ad",
                        ])?;
                        let hot_ad = e.u32("hot_ad", 0)?;
                        if hot_ad >= ads {
                            return Err(e.err("hot_ad", "must be below traffic.ads"));
                        }
                        let crowd_fraction = e.f64("crowd_fraction", 0.7)?;
                        if !(0.0..=1.0).contains(&crowd_fraction) {
                            return Err(e.err("crowd_fraction", "must be in [0, 1]"));
                        }
                        MixKind::FlashCrowd {
                            crowd_fraction,
                            second_click_prob: e.fraction("second_click_prob", 0.1)?,
                            hot_ad,
                        }
                    }
                    "crawler" => {
                        e.reject_unknown(&["kind", "weight", "crawlers", "period"])?;
                        let crawlers = e.positive_u32("crawlers", 64)?;
                        if crawlers > 0x00FF_FFFF {
                            return Err(e.err("crawlers", "at most 2^24 - 1 fit the address block"));
                        }
                        MixKind::Crawler {
                            crawlers,
                            period: e.positive_u64("period", 10)?,
                        }
                    }
                    other => {
                        return Err(e.err(
                            "kind",
                            format!(
                                "unknown kind `{other}` (accepted: unique, zipf, botnet, \
                                 flashcrowd, crawler)"
                            ),
                        ));
                    }
                };
                mix.push(MixEntry { weight, kind });
            }
            TrafficSpec {
                publishers,
                ads,
                mix,
            }
        };

        let inject = match root.sub("inject")? {
            None => InjectSpec {
                rate: 0.0,
                max_lag: 1,
            },
            Some(i) => {
                i.reject_unknown(&["rate", "max_lag"])?;
                InjectSpec {
                    rate: i.fraction("rate", 0.0)?,
                    max_lag: i.positive_usize("max_lag", 1024)?,
                }
            }
        };

        let ramp = match root.sub("ramp")? {
            None => None,
            Some(r) => {
                r.reject_unknown(&["period", "low", "high"])?;
                let low = r.f64("low", 1.0)?;
                let high = r.f64("high", 1.0)?;
                if low < 0.0 {
                    return Err(r.err("low", "must be >= 0"));
                }
                if high < low {
                    return Err(r.err("high", "must be >= low"));
                }
                Some(RampSpec {
                    period: r.positive_u64("period", 1 << 16)?,
                    low,
                    high,
                })
            }
        };

        let tenants = match root.sub("tenants")? {
            None => None,
            Some(t) => {
                t.reject_unknown(&["count", "skew"])?;
                let skew = t.f64("skew", 1.0)?;
                if skew < 0.0 {
                    return Err(t.err("skew", "must be >= 0"));
                }
                Some(TenantSpec {
                    count: t.positive_u32("count", 1 << 12)?,
                    skew,
                })
            }
        };

        let sweep = {
            let default_algo: &[&str] = if window.is_timed() {
                &["time-tbf"]
            } else {
                &["tbf"]
            };
            let (algos, cells, ks, qs, layouts, shards, batches, target_fp, group_by);
            match root.sub("sweep")? {
                None => {
                    algos = default_algo.iter().map(|s| (*s).to_owned()).collect();
                    cells = vec![14];
                    ks = vec![10];
                    qs = vec![8];
                    layouts = vec!["scattered".to_owned()];
                    shards = vec![1];
                    batches = vec![512];
                    target_fp = 0.01;
                    group_by = "algo".to_owned();
                }
                Some(s) => {
                    s.reject_unknown(&[
                        "algo",
                        "cells_per_element",
                        "k",
                        "sub_windows",
                        "layout",
                        "shards",
                        "batch",
                        "target_fp",
                        "group_by",
                    ])?;
                    algos = s.str_array("algo", default_algo)?;
                    cells = s.usize_array("cells_per_element", &[14])?;
                    ks = s.usize_array("k", &[10])?;
                    qs = s.usize_array("sub_windows", &[8])?;
                    layouts = s.str_array("layout", &["scattered"])?;
                    for l in &layouts {
                        if l != "scattered" && l != "blocked" {
                            return Err(s.err("layout", format!("unknown layout `{l}`")));
                        }
                    }
                    shards = s.usize_array("shards", &[1])?;
                    batches = s.usize_array("batch", &[512])?;
                    target_fp = s.f64("target_fp", 0.01)?;
                    if !(0.0..1.0).contains(&target_fp) || target_fp <= 0.0 {
                        return Err(s.err("target_fp", "must be in (0, 1)"));
                    }
                    group_by = s.str("group_by", "algo")?;
                    if !GROUP_BY_AXES.contains(&group_by.as_str()) {
                        return Err(s.err(
                            "group_by",
                            format!("must be one of: {}", GROUP_BY_AXES.join(", ")),
                        ));
                    }
                }
            }
            SweepGrid {
                algos,
                cells_per_element: cells,
                hash_counts: ks,
                sub_windows: qs,
                layouts,
                shards,
                batches,
                target_fp,
                group_by,
            }
        };

        Ok(Self {
            name,
            description,
            seed,
            clicks,
            window,
            traffic,
            inject,
            ramp,
            tenants,
            sweep,
        })
    }

    /// Reads and parses a scenario file.
    ///
    /// # Errors
    ///
    /// I/O failures surface as a `file`-path [`ScenarioError`]; parse
    /// failures as in [`ScenarioSpec::parse`].
    pub fn from_path(path: &std::path::Path) -> Result<Self, ScenarioError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::new("file", format!("{}: {e}", path.display())))?;
        Self::parse(&text)
    }

    /// Serializes the spec to canonical TOML;
    /// `parse(to_toml(s)) == s` for every valid spec.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "[scenario]");
        let _ = writeln!(out, "name = {}", toml_str(&self.name));
        let _ = writeln!(out, "description = {}", toml_str(&self.description));
        let _ = writeln!(out, "seed = {}", self.seed);
        let _ = writeln!(out, "clicks = {}", self.clicks);
        let _ = writeln!(out, "\n[window]");
        match self.window {
            ScenarioWindow::Count { n } => {
                let _ = writeln!(out, "model = \"count\"\nn = {n}");
            }
            ScenarioWindow::Time {
                n,
                window_units,
                sub_units,
                unit_ticks,
            } => {
                let _ = writeln!(out, "model = \"time\"\nn = {n}");
                let _ = writeln!(out, "window_units = {window_units}");
                let _ = writeln!(out, "sub_units = {sub_units}");
                let _ = writeln!(out, "unit_ticks = {unit_ticks}");
            }
        }
        let _ = writeln!(out, "\n[traffic]");
        let _ = writeln!(out, "publishers = {}", self.traffic.publishers);
        let _ = writeln!(out, "ads = {}", self.traffic.ads);
        for e in &self.traffic.mix {
            let _ = writeln!(out, "\n[[traffic.mix]]");
            let _ = writeln!(out, "kind = \"{}\"", e.kind.name());
            let _ = writeln!(out, "weight = {:?}", e.weight);
            match &e.kind {
                MixKind::Unique => {}
                MixKind::Zipf { universe, skew } => {
                    let _ = writeln!(out, "universe = {universe}\nskew = {skew:?}");
                }
                MixKind::Botnet {
                    bots,
                    attack_fraction,
                    target_ad,
                } => {
                    let _ = writeln!(out, "bots = {bots}");
                    let _ = writeln!(out, "attack_fraction = {attack_fraction:?}");
                    let _ = writeln!(out, "target_ad = {target_ad}");
                }
                MixKind::FlashCrowd {
                    crowd_fraction,
                    second_click_prob,
                    hot_ad,
                } => {
                    let _ = writeln!(out, "crowd_fraction = {crowd_fraction:?}");
                    let _ = writeln!(out, "second_click_prob = {second_click_prob:?}");
                    let _ = writeln!(out, "hot_ad = {hot_ad}");
                }
                MixKind::Crawler { crawlers, period } => {
                    let _ = writeln!(out, "crawlers = {crawlers}\nperiod = {period}");
                }
            }
        }
        let _ = writeln!(out, "\n[inject]");
        let _ = writeln!(out, "rate = {:?}", self.inject.rate);
        let _ = writeln!(out, "max_lag = {}", self.inject.max_lag);
        if let Some(r) = self.ramp {
            let _ = writeln!(out, "\n[ramp]");
            let _ = writeln!(out, "period = {}", r.period);
            let _ = writeln!(out, "low = {:?}\nhigh = {:?}", r.low, r.high);
        }
        if let Some(t) = self.tenants {
            let _ = writeln!(out, "\n[tenants]");
            let _ = writeln!(out, "count = {}\nskew = {:?}", t.count, t.skew);
        }
        let _ = writeln!(out, "\n[sweep]");
        let _ = writeln!(out, "algo = {}", toml_str_array(&self.sweep.algos));
        let _ = writeln!(
            out,
            "cells_per_element = {}",
            toml_int_array(&self.sweep.cells_per_element)
        );
        let _ = writeln!(out, "k = {}", toml_int_array(&self.sweep.hash_counts));
        let _ = writeln!(
            out,
            "sub_windows = {}",
            toml_int_array(&self.sweep.sub_windows)
        );
        let _ = writeln!(out, "layout = {}", toml_str_array(&self.sweep.layouts));
        let _ = writeln!(out, "shards = {}", toml_int_array(&self.sweep.shards));
        let _ = writeln!(out, "batch = {}", toml_int_array(&self.sweep.batches));
        let _ = writeln!(out, "target_fp = {:?}", self.sweep.target_fp);
        let _ = writeln!(out, "group_by = {}", toml_str(&self.sweep.group_by));
        out
    }

    /// The full cartesian sweep grid, in deterministic order.
    #[must_use]
    pub fn grid(&self) -> Vec<SweepPoint> {
        let s = &self.sweep;
        let mut points = Vec::new();
        for algo in &s.algos {
            for &cells in &s.cells_per_element {
                for &k in &s.hash_counts {
                    for &q in &s.sub_windows {
                        for layout in &s.layouts {
                            for &shards in &s.shards {
                                for &batch in &s.batches {
                                    points.push(SweepPoint {
                                        algo: algo.clone(),
                                        cells_per_element: cells,
                                        k,
                                        q,
                                        layout: layout.clone(),
                                        shards,
                                        batch,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        points
    }

    /// Compiles the spec into its composed click stream.
    #[must_use]
    pub fn compile(&self) -> ScenarioStream {
        let publishers = self.traffic.publishers;
        let ads = self.traffic.ads;
        let mut sources = Vec::with_capacity(self.traffic.mix.len());
        let mut cdf = Vec::with_capacity(self.traffic.mix.len());
        let total: f64 = self.traffic.mix.iter().map(|e| e.weight).sum();
        let mut acc = 0.0;
        for (i, entry) in self.traffic.mix.iter().enumerate() {
            // Each mix entry gets a disjoint namespace pair, so even two
            // entries of the same kind can never mint colliding ids.
            let primary = NS_SCENARIO_BASE + 2 * i as u8;
            let organic = primary + 1;
            let seed = splitmix64(self.seed ^ ((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            let source = match entry.kind {
                MixKind::Unique => Source::Unique(
                    UniqueClickStream::new(seed, publishers, ads).with_namespace(primary),
                ),
                MixKind::Zipf { universe, skew } => Source::Zipf(
                    ZipfClickStream::new(universe, skew, seed, publishers, ads)
                        .with_namespace(primary),
                ),
                MixKind::Botnet {
                    bots,
                    attack_fraction,
                    target_ad,
                } => Source::Botnet(
                    BotnetStream::new(
                        BotnetConfig {
                            bots,
                            target_ad: AdId(target_ad),
                            publisher: PublisherId(publishers - 1),
                            attack_fraction,
                            target_cpc_micros: 500_000,
                            seed,
                        },
                        publishers,
                        ads,
                    )
                    .with_namespaces(primary, organic),
                ),
                MixKind::FlashCrowd {
                    crowd_fraction,
                    second_click_prob,
                    hot_ad,
                } => Source::Flash(
                    FlashCrowdStream::new(FlashCrowdConfig {
                        hot_ad: AdId(hot_ad),
                        crowd_fraction,
                        second_click_prob,
                        background_ads: ads,
                        seed,
                    })
                    .with_namespaces(primary, organic),
                ),
                MixKind::Crawler { crawlers, period } => Source::Crawler(
                    CrawlerStream::new(crawlers, ads, period, seed)
                        .with_namespaces(primary, organic),
                ),
            };
            sources.push(source);
            acc += entry.weight / total;
            cdf.push(acc);
        }
        ScenarioStream {
            sources,
            cdf,
            rng: SmallRng::seed_from_u64(splitmix64(self.seed ^ 0x5CE7_A210)),
            inject_rate: self.inject.rate,
            max_lag: self.inject.max_lag,
            history: VecDeque::with_capacity(self.inject.max_lag.min(1 << 20)),
            tenants: self.tenants.map(|t| {
                ZipfSampler::new(t.count as usize, t.skew, splitmix64(self.seed ^ 0x7E7A))
            }),
            ramp: self.ramp,
            tick: 0,
            emitted: 0,
            injected: 0,
        }
    }
}

fn toml_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(ch),
        }
    }
    out.push('"');
    out
}

fn toml_str_array(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| toml_str(s)).collect();
    format!("[{}]", quoted.join(", "))
}

fn toml_int_array(items: &[usize]) -> String {
    let nums: Vec<String> = items.iter().map(ToString::to_string).collect();
    format!("[{}]", nums.join(", "))
}

// ---------------------------------------------------------------------
// The compiled stream
// ---------------------------------------------------------------------

/// One click of a compiled scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioClick {
    /// The click.
    pub click: Click,
    /// `true` when this is an injected re-emission (a guaranteed
    /// duplicate of a click at most `max_lag` positions back).
    pub injected: bool,
    /// Index of the originating `[[traffic.mix]]` entry.
    pub source: usize,
}

#[derive(Debug, Clone)]
enum Source {
    Unique(UniqueClickStream),
    Zipf(ZipfClickStream),
    Botnet(BotnetStream),
    Flash(FlashCrowdStream),
    Crawler(CrawlerStream),
}

impl Source {
    fn next_click(&mut self) -> Click {
        match self {
            Self::Unique(s) => s.next(),
            Self::Zipf(s) => s.next(),
            Self::Botnet(s) => s.next().map(|c| c.click),
            Self::Flash(s) => s.next().map(|c| c.click),
            Self::Crawler(s) => s.next(),
        }
        .expect("scenario sources are infinite")
    }
}

/// The composed, deterministic click stream of a [`ScenarioSpec`].
///
/// Each emission draws a sub-stream by weight (or re-emits a recent
/// click at the injection rate), restamps the global tick (advancing by
/// the ramp-modulated gap), and applies the tenant remap. Duplicate
/// ground truth for accuracy measurement comes from running an exact
/// oracle over the final keys; [`ScenarioClick::injected`] additionally
/// marks the guaranteed re-emissions.
#[derive(Debug, Clone)]
pub struct ScenarioStream {
    sources: Vec<Source>,
    cdf: Vec<f64>,
    rng: SmallRng,
    inject_rate: f64,
    max_lag: usize,
    history: VecDeque<(ClickId, PublisherId, u64, usize)>,
    tenants: Option<ZipfSampler>,
    ramp: Option<RampSpec>,
    tick: u64,
    emitted: u64,
    injected: u64,
}

impl ScenarioStream {
    /// Clicks emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Injected (guaranteed-duplicate) clicks emitted so far.
    #[must_use]
    pub fn injected_duplicates(&self) -> u64 {
        self.injected
    }

    /// Every emission — injected or fresh — enters the history, so an
    /// injected duplicate's original is always within the last
    /// `max_lag` *stream positions*.
    fn push_history(&mut self, id: ClickId, publisher: PublisherId, cost: u64, source: usize) {
        if self.history.len() == self.max_lag {
            self.history.pop_front();
        }
        self.history.push_back((id, publisher, cost, source));
    }

    /// The tick gap to the next click: 1, or the ramp's sinusoidal
    /// swing between `low` and `high` over `period` clicks.
    fn gap(&self) -> u64 {
        match self.ramp {
            None => 1,
            Some(r) => {
                let phase = (self.emitted % r.period) as f64 / r.period as f64;
                let mul = r.low
                    + (r.high - r.low) * 0.5 * (1.0 - (phase * 2.0 * std::f64::consts::PI).cos());
                #[allow(clippy::cast_sign_loss)] // low >= 0 is validated
                let gap = mul.round() as u64;
                gap.max(1)
            }
        }
    }
}

impl Iterator for ScenarioStream {
    type Item = ScenarioClick;

    fn next(&mut self) -> Option<ScenarioClick> {
        let tick = self.tick;
        self.tick += self.gap();
        self.emitted += 1;

        if self.inject_rate > 0.0 && !self.history.is_empty() && self.rng.gen_bool(self.inject_rate)
        {
            let back = self.rng.gen_range(0..self.history.len());
            let (id, publisher, cost, source) = self.history[back];
            self.injected += 1;
            self.push_history(id, publisher, cost, source);
            return Some(ScenarioClick {
                click: Click::new(id, tick, publisher, cost),
                injected: true,
                source,
            });
        }

        let u: f64 = self.rng.gen();
        let si = self
            .cdf
            .partition_point(|&c| c < u)
            .min(self.sources.len() - 1);
        let mut click = self.sources[si].next_click();
        click.tick = tick;
        if let Some(t) = &mut self.tenants {
            click.id.ad = AdId(t.sample() as u32);
        }
        self.push_history(click.id, click.publisher, click.cost_micros, si);
        Some(ScenarioClick {
            click,
            injected: false,
            source: si,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ids::namespace_of;
    use std::collections::{HashMap, HashSet};

    const FULL: &str = r#"
# A kitchen-sink scenario exercising every section.
[scenario]
name = "kitchen-sink"
description = "all sections at once"
seed = 42
clicks = 30000

[window]
model = "count"
n = 4096

[traffic]
publishers = 16
ads = 64

[[traffic.mix]]
kind = "unique"
weight = 0.35

[[traffic.mix]]
kind = "zipf"
weight = 0.2
universe = 10000
skew = 1.1

[[traffic.mix]]
kind = "botnet"
weight = 0.2
bots = 500
attack_fraction = 0.5
target_ad = 1

[[traffic.mix]]
kind = "flashcrowd"
weight = 0.15
crowd_fraction = 0.7
second_click_prob = 0.1
hot_ad = 3

[[traffic.mix]]
kind = "crawler"
weight = 0.1
crawlers = 32
period = 10

[inject]
rate = 0.02
max_lag = 512

[sweep]
algo = ["tbf", "gbf"]
cells_per_element = [14]
k = [10]
sub_windows = [8]
layout = ["scattered", "blocked"]
shards = [1, 4]
batch = [256]
target_fp = 0.01
group_by = "algo"
"#;

    #[test]
    fn full_spec_parses_and_round_trips() {
        let spec = ScenarioSpec::parse(FULL).unwrap();
        assert_eq!(spec.name, "kitchen-sink");
        assert_eq!(spec.traffic.mix.len(), 5);
        assert_eq!(spec.grid().len(), 2 * 2 * 2);
        let again = ScenarioSpec::parse(&spec.to_toml()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn unknown_keys_are_rejected_with_field_paths() {
        let bad = FULL.replace("max_lag = 512", "max_lag = 512\nbogus = 1");
        let err = ScenarioSpec::parse(&bad).unwrap_err();
        assert_eq!(err.path, "inject.bogus");
        assert!(err.message.contains("unknown key"), "{err}");
    }

    #[test]
    fn out_of_range_values_name_the_field() {
        let bad = FULL.replace("skew = 1.1", "skew = -2.0");
        let err = ScenarioSpec::parse(&bad).unwrap_err();
        assert_eq!(err.path, "traffic.mix[1].skew");

        let bad = FULL.replace("rate = 0.02", "rate = 1.5");
        let err = ScenarioSpec::parse(&bad).unwrap_err();
        assert_eq!(err.path, "inject.rate");

        let bad = FULL.replace("clicks = 30000", "clicks = 0");
        let err = ScenarioSpec::parse(&bad).unwrap_err();
        assert_eq!(err.path, "scenario.clicks");
    }

    #[test]
    fn syntax_errors_name_the_line() {
        let err = ScenarioSpec::parse("[scenario\nname = \"x\"").unwrap_err();
        assert_eq!(err.path, "line 1");
        let err = ScenarioSpec::parse("[scenario]\nname = ").unwrap_err();
        assert_eq!(err.path, "line 2");
    }

    #[test]
    fn compiled_stream_is_deterministic() {
        let spec = ScenarioSpec::parse(FULL).unwrap();
        let a: Vec<ScenarioClick> = spec.compile().take(5_000).collect();
        let b: Vec<ScenarioClick> = spec.compile().take(5_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sub_streams_live_in_disjoint_namespaces() {
        let spec = ScenarioSpec::parse(FULL).unwrap();
        // Namespace -> set of sources that produced it. Every namespace
        // must belong to exactly one mix entry.
        let mut owners: HashMap<u8, HashSet<usize>> = HashMap::new();
        for sc in spec.compile().take(30_000).filter(|c| !c.injected) {
            owners
                .entry(namespace_of(sc.click.id.cookie))
                .or_default()
                .insert(sc.source);
        }
        assert!(owners.len() >= 5, "expected many namespaces: {owners:?}");
        for (ns, sources) in &owners {
            assert_eq!(sources.len(), 1, "namespace {ns:#x} shared: {sources:?}");
            assert!(*ns >= NS_SCENARIO_BASE);
        }
    }

    #[test]
    fn injected_clicks_are_exact_duplicates_within_the_lag() {
        let spec = ScenarioSpec::parse(FULL).unwrap();
        let mut stream = spec.compile();
        let clicks: Vec<ScenarioClick> = stream.by_ref().take(30_000).collect();
        let injected = stream.injected_duplicates();
        assert!(injected > 300, "too few injections: {injected}");
        for (i, sc) in clicks.iter().enumerate() {
            if sc.injected {
                let lo = i.saturating_sub(spec.inject.max_lag + 1);
                assert!(
                    clicks[lo..i]
                        .iter()
                        .any(|p| p.click.key() == sc.click.key()),
                    "injected click at {i} has no recent original"
                );
            }
        }
    }

    #[test]
    fn ramp_stretches_ticks() {
        let mut spec = ScenarioSpec::parse(FULL).unwrap();
        spec.ramp = Some(RampSpec {
            period: 1000,
            low: 1.0,
            high: 9.0,
        });
        let clicks: Vec<ScenarioClick> = spec.compile().take(2_000).collect();
        let span = clicks.last().unwrap().click.tick;
        // Mean gap of a 1..9 sinusoid is ~5.
        assert!(span > 6_000, "ramp had no effect: span={span}");
        let flat: Vec<ScenarioClick> = ScenarioSpec::parse(FULL)
            .unwrap()
            .compile()
            .take(2_000)
            .collect();
        assert_eq!(flat.last().unwrap().click.tick, 1_999);
    }

    #[test]
    fn tenant_remap_redraws_ads() {
        let mut spec = ScenarioSpec::parse(FULL).unwrap();
        spec.tenants = Some(TenantSpec {
            count: 100_000,
            skew: 0.0,
        });
        let ads: HashSet<u32> = spec
            .compile()
            .take(10_000)
            .map(|c| c.click.id.ad.0)
            .collect();
        assert!(ads.len() > 5_000, "remap should spread ads: {}", ads.len());
    }

    #[test]
    fn time_window_spec_parses() {
        let text = FULL.replace(
            "model = \"count\"\nn = 4096",
            "model = \"time\"\nn = 4096\nwindow_units = 32\nsub_units = 4\nunit_ticks = 256",
        );
        let spec = ScenarioSpec::parse(&text).unwrap();
        assert!(spec.window.is_timed());
        assert_eq!(spec.window.n(), 4096);
        let again = ScenarioSpec::parse(&spec.to_toml()).unwrap();
        assert_eq!(spec, again);
        // window_units is a time-model key; under count it is unknown.
        let bad = FULL.replace("n = 4096", "n = 4096\nwindow_units = 32");
        assert_eq!(
            ScenarioSpec::parse(&bad).unwrap_err().path,
            "window.window_units"
        );
    }
}
