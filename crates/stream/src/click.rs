//! The click record and its detector key.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An advertisement (ad-link) identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AdId(pub u32);

/// An advertising publisher (the site hosting ad links).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PublisherId(pub u32);

/// The identity of a click for duplicate-detection purposes.
///
/// The paper leaves the identifier definition to the deployment ("such
/// as the source IP address, or the cookie, etc.", §3.1). We use the
/// triple (source IP, browser cookie, ad link): two clicks are
/// *identical* iff all three match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClickId {
    /// Source IPv4 address of the click.
    pub ip: u32,
    /// Browser cookie (0 = no cookie).
    pub cookie: u64,
    /// The ad link that was clicked.
    pub ad: AdId,
}

impl ClickId {
    /// Creates an identifier.
    #[must_use]
    pub fn new(ip: u32, cookie: u64, ad: AdId) -> Self {
        Self { ip, cookie, ad }
    }

    /// The 16-byte key hashed by the detectors.
    ///
    /// Little-endian `ip | cookie | ad`; fixed-width so distinct triples
    /// can never collide as byte strings.
    #[must_use]
    pub fn key(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[0..4].copy_from_slice(&self.ip.to_le_bytes());
        out[4..12].copy_from_slice(&self.cookie.to_le_bytes());
        out[12..16].copy_from_slice(&self.ad.0.to_le_bytes());
        out
    }

    /// Parses a key produced by [`ClickId::key`].
    #[must_use]
    pub fn from_key(key: [u8; 16]) -> Self {
        Self {
            ip: u32::from_le_bytes(key[0..4].try_into().expect("4 bytes")),
            cookie: u64::from_le_bytes(key[4..12].try_into().expect("8 bytes")),
            ad: AdId(u32::from_le_bytes(key[12..16].try_into().expect("4 bytes"))),
        }
    }
}

impl fmt::Display for ClickId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.ip.to_be_bytes();
        write!(f, "{a}.{b}.{c}.{d}/{:x}/ad{}", self.cookie, self.ad.0)
    }
}

/// One pay-per-click event in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Click {
    /// The click identity (what duplicate detection keys on).
    pub id: ClickId,
    /// Arrival time in ticks (milliseconds in the examples).
    pub tick: u64,
    /// The publisher whose page hosted the ad link.
    pub publisher: PublisherId,
    /// Cost-per-click the advertiser bid, in micro-currency units.
    pub cost_micros: u64,
}

impl Click {
    /// Creates a click event.
    #[must_use]
    pub fn new(id: ClickId, tick: u64, publisher: PublisherId, cost_micros: u64) -> Self {
        Self {
            id,
            tick,
            publisher,
            cost_micros,
        }
    }

    /// The detector key (see [`ClickId::key`]).
    #[must_use]
    pub fn key(&self) -> [u8; 16] {
        self.id.key()
    }
}

impl fmt::Display for Click {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t={} {} via pub{} (${} µ)",
            self.tick, self.id, self.publisher.0, self.cost_micros
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn key_roundtrips() {
        let id = ClickId::new(0xC0A8_0101, 0xDEAD_BEEF_CAFE, AdId(42));
        assert_eq!(ClickId::from_key(id.key()), id);
    }

    #[test]
    fn distinct_fields_give_distinct_keys() {
        let base = ClickId::new(1, 2, AdId(3));
        assert_ne!(base.key(), ClickId::new(9, 2, AdId(3)).key());
        assert_ne!(base.key(), ClickId::new(1, 9, AdId(3)).key());
        assert_ne!(base.key(), ClickId::new(1, 2, AdId(9)).key());
    }

    #[test]
    fn display_formats_ip_dotted_quad() {
        let id = ClickId::new(u32::from_be_bytes([203, 0, 113, 9]), 0xAB, AdId(7));
        let s = id.to_string();
        assert!(s.contains("203.0.113.9"), "{s}");
        assert!(s.contains("ad7"), "{s}");
    }

    #[test]
    fn click_carries_billing_fields() {
        let c = Click::new(ClickId::new(1, 2, AdId(3)), 99, PublisherId(4), 250_000);
        assert_eq!(c.key(), c.id.key());
        assert!(c.to_string().contains("pub4"));
    }

    proptest! {
        #[test]
        fn key_is_injective(a in any::<(u32, u64, u32)>(), b in any::<(u32, u64, u32)>()) {
            let ida = ClickId::new(a.0, a.1, AdId(a.2));
            let idb = ClickId::new(b.0, b.1, AdId(b.2));
            prop_assert_eq!(ida.key() == idb.key(), ida == idb);
        }
    }
}
