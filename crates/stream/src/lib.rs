//! Click-stream substrate: the click model, synthetic workload
//! generators, and trace I/O.
//!
//! The paper's evaluation (§5) runs the detectors over synthetic streams
//! of distinct click identifiers; its motivation (§1.1) describes the
//! attack streams a deployed system would face (botnets, competitors,
//! crawlers). This crate provides both:
//!
//! * [`click`] — the [`click::Click`] record and its 16-byte
//!   detector key ("each click has a predefined identifier, such as the
//!   source IP address, or the cookie", §3.1).
//! * [`gen`] — workload generators: the paper's distinct-id stream
//!   ([`gen::unique::UniqueClickStream`]), duplicate injection at controlled
//!   lags, Zipf-popular ids, the Scenario-2 botnet attack, and Poisson
//!   arrival timing for time-based windows.
//! * [`trace`] — a compact binary trace format (plus serde-derived
//!   structures) so experiments are replayable byte-for-byte.
//! * [`wire`] — the CRC-framed streaming protocol `cfd serve` speaks
//!   over TCP/Unix sockets and tailed files: HELLO/CLICKS/DRAIN frames
//!   with an allocation-recycling incremental [`wire::FrameReader`].
//!
//! Real PPC feeds are proprietary; these generators are the DESIGN.md §4
//! substitution and exercise exactly the same detector code paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod click;
pub mod gen;
pub mod scenario;
pub mod trace;
pub mod wire;

pub use click::{AdId, Click, ClickId, PublisherId};
pub use gen::botnet::{BotnetConfig, BotnetStream};
pub use gen::coalition::{CoalitionConfig, CoalitionStream};
pub use gen::crawler::CrawlerStream;
pub use gen::duplicate::DuplicateInjector;
pub use gen::flashcrowd::{FlashCrowdConfig, FlashCrowdStream};
pub use gen::tenants::{TenantTraffic, TenantTrafficConfig, TENANT_KEY_LEN};
pub use gen::timing::PoissonArrivals;
pub use gen::unique::{UniqueClickStream, UniqueIdStream};
pub use gen::zipf::{ZipfClickStream, ZipfSampler};
pub use scenario::{
    MixEntry, MixKind, ScenarioClick, ScenarioError, ScenarioSpec, ScenarioStream, ScenarioWindow,
    SweepGrid, SweepPoint,
};
pub use trace::{read_trace, write_trace, TraceError};
pub use wire::{FrameReader, WireError};
