//! Property tests for the declarative scenario schema
//! (`cfd_stream::scenario`): serialization round-trips, compiled-stream
//! determinism, and field-named rejection of malformed specs.
//!
//! The vendored proptest shim provides primitive strategies only, so
//! spec diversity comes from [`random_spec`]: a deterministic
//! SplitMix64-driven builder that explores every section (both window
//! models, all five mix kinds, optional ramp/tenants, varied grids)
//! from one drawn seed.

use cfd_stream::scenario::{
    InjectSpec, MixEntry, MixKind, RampSpec, ScenarioClick, ScenarioSpec, ScenarioWindow,
    SweepGrid, TenantSpec, TrafficSpec, GROUP_BY_AXES,
};
use proptest::prelude::*;

/// Ads pool size every generated spec uses, so ad indices can be drawn
/// below it.
const ADS: u32 = 64;

/// Local SplitMix64 so spec generation is deterministic per drawn seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    /// Uniform float in `[lo, hi)`.
    fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) * (hi - lo)
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range(0, items.len() as u64) as usize]
    }

    /// Non-empty subsequence of `items`.
    fn subset<T: Clone>(&mut self, items: &[T]) -> Vec<T> {
        let mut out: Vec<T> = items
            .iter()
            .filter(|_| self.next() & 1 == 1)
            .cloned()
            .collect();
        if out.is_empty() {
            out.push(self.pick(items).clone());
        }
        out
    }
}

fn random_mix_kind(r: &mut Mix) -> MixKind {
    match r.range(0, 5) {
        0 => MixKind::Unique,
        1 => MixKind::Zipf {
            universe: r.range(10, 5_000) as usize,
            skew: r.f64(0.0, 2.0),
        },
        2 => MixKind::Botnet {
            bots: r.range(1, 1_000) as u32,
            attack_fraction: r.f64(0.0, 0.99),
            target_ad: r.range(0, u64::from(ADS)) as u32,
        },
        3 => MixKind::FlashCrowd {
            crowd_fraction: r.f64(0.0, 1.0),
            second_click_prob: r.f64(0.0, 0.99),
            hot_ad: r.range(0, u64::from(ADS)) as u32,
        },
        _ => MixKind::Crawler {
            crawlers: r.range(1, 10_000) as u32,
            period: r.range(1, 100),
        },
    }
}

/// Builds a valid spec exploring the whole schema from one seed.
fn random_spec(seed: u64) -> ScenarioSpec {
    let mut r = Mix(seed);
    let timed = r.next() & 1 == 1;
    let window = if timed {
        ScenarioWindow::Time {
            n: r.range(64, 8_192) as usize,
            window_units: r.range(2, 64),
            sub_units: r.range(1, 8),
            unit_ticks: r.range(1, 2_048),
        }
    } else {
        ScenarioWindow::Count {
            n: r.range(64, 8_192) as usize,
        }
    };
    let mix = (0..r.range(1, 5))
        .map(|_| MixEntry {
            weight: r.f64(0.01, 10.0),
            kind: random_mix_kind(&mut r),
        })
        .collect();
    let algos: Vec<&str> = if timed {
        r.subset(&["time-tbf", "time-gbf", "auto"])
    } else {
        r.subset(&["tbf", "gbf", "apbf", "swbf", "jumping-tbf", "auto"])
    };
    let name_pool = ["alpha", "beta-2", "gamma", "sweep-x", "d7"];
    ScenarioSpec {
        name: (*r.pick(&name_pool)).to_owned(),
        description: if r.next() & 1 == 1 {
            "generated case, all sections".to_owned()
        } else {
            String::new()
        },
        seed: r.next(),
        clicks: r.range(1, 50_000),
        window,
        traffic: TrafficSpec {
            publishers: r.range(1, 64) as u32,
            ads: ADS,
            mix,
        },
        inject: InjectSpec {
            rate: r.f64(0.0, 0.5),
            max_lag: r.range(1, 4_096) as usize,
        },
        ramp: (r.next() & 1 == 1).then(|| {
            let low = r.f64(0.5, 2.0);
            RampSpec {
                period: r.range(100, 10_000),
                low,
                high: low + r.f64(0.0, 10.0),
            }
        }),
        tenants: (r.next() & 1 == 1).then(|| TenantSpec {
            count: r.range(1, 10_000) as u32,
            skew: r.f64(0.0, 2.0),
        }),
        sweep: SweepGrid {
            algos: algos.into_iter().map(str::to_owned).collect(),
            cells_per_element: r.subset(&[4usize, 8, 14, 20]),
            hash_counts: r.subset(&[4usize, 8, 10]),
            sub_windows: r.subset(&[4usize, 8, 16]),
            layouts: r
                .subset(&["scattered", "blocked"])
                .into_iter()
                .map(str::to_owned)
                .collect(),
            shards: r.subset(&[1usize, 2, 4]),
            batches: r.subset(&[64usize, 256, 512]),
            target_fp: r.f64(0.001, 0.5),
            group_by: (*r.pick(GROUP_BY_AXES)).to_owned(),
        },
    }
}

proptest! {
    /// Serialized specs round-trip: `parse(to_toml(spec)) == spec` for
    /// any valid spec, floats included.
    #[test]
    fn spec_to_toml_round_trips(seed in any::<u64>()) {
        let spec = random_spec(seed);
        let text = spec.to_toml();
        let again = ScenarioSpec::parse(&text)
            .unwrap_or_else(|e| panic!("round-trip parse failed: {e}\n---\n{text}"));
        prop_assert_eq!(spec, again);
    }

    /// spec → parse → compile → stream is deterministic for a fixed
    /// seed: two independent compilations emit identical clicks, and so
    /// does a compilation of the re-parsed serialization.
    #[test]
    fn compiled_streams_are_deterministic(seed in any::<u64>()) {
        let spec = random_spec(seed);
        let take = spec.clicks.min(500) as usize;
        let a: Vec<ScenarioClick> = spec.compile().take(take).collect();
        let b: Vec<ScenarioClick> = spec.compile().take(take).collect();
        prop_assert_eq!(&a, &b);
        let reparsed = ScenarioSpec::parse(&spec.to_toml()).expect("round-trip");
        let c: Vec<ScenarioClick> = reparsed.compile().take(take).collect();
        prop_assert_eq!(&a, &c);
    }

    /// Unknown keys anywhere in a section are rejected with the full
    /// field path, not silently ignored.
    #[test]
    fn unknown_keys_are_rejected_by_path(seed in any::<u64>(), pick in 0usize..6) {
        let keys = ["bogus", "rate_x", "lagg", "zz", "extra_knob", "q"];
        let key = keys[pick];
        let spec = random_spec(seed);
        let text = spec
            .to_toml()
            .replace("[inject]", &format!("[inject]\n{key} = 1"));
        let err = ScenarioSpec::parse(&text).expect_err("must reject the unknown key");
        prop_assert_eq!(err.path, format!("inject.{key}"));
        prop_assert!(err.message.contains("unknown key"), "{}", err.message);
    }

    /// Out-of-range values name the exact field that failed.
    #[test]
    fn out_of_range_inject_rate_names_the_field(seed in any::<u64>(), rate in 1.0f64..10.0) {
        let mut bad = random_spec(seed);
        bad.inject = InjectSpec { rate, max_lag: 16 };
        let err = ScenarioSpec::parse(&bad.to_toml()).expect_err("rate >= 1 must be rejected");
        prop_assert_eq!(err.path, "inject.rate");
    }
}
