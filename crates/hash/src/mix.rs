//! 64-bit avalanche mixers.
//!
//! All three mixers are *bijections* on `u64`: distinct inputs always map
//! to distinct outputs. The workload generators in `cfd-stream` rely on
//! this to turn a counter into a stream of *distinct* pseudo-random click
//! identifiers, exactly matching the evaluation protocol of the paper
//! ("we generated `20·N` distinct click identifiers", §5).

/// SplitMix64 finalizer (Steele, Lea & Flood / Vigna).
///
/// A fast, high-quality bijective mixer; the de-facto standard for seeding
/// and counter-based id generation.
///
/// ```rust
/// use cfd_hash::mix::splitmix64;
/// assert_ne!(splitmix64(1), splitmix64(2));
/// ```
#[inline]
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// MurmurHash3 `fmix64` finalizer (Appleby).
///
/// Used internally by [`crate::murmur::murmur3_x64_128`] and exposed for
/// direct use as a mixer over `u64` keys.
#[inline]
#[must_use]
pub fn fmix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^= x >> 33;
    x
}

/// xxHash64-style avalanche finalizer.
#[inline]
#[must_use]
pub fn xxh64_avalanche(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    x ^= x >> 29;
    x = x.wrapping_mul(0x1656_67B1_9E37_79F9);
    x ^= x >> 32;
    x
}

const INV_C2: u64 = inv_mod_2_64(0x94D0_49BB_1331_11EB);
const INV_C1: u64 = inv_mod_2_64(0xBF58_476D_1CE4_E5B9);

/// Modular inverse of an odd `u64` modulo `2^64` (Newton iteration).
#[must_use]
pub const fn inv_mod_2_64(a: u64) -> u64 {
    // x_{n+1} = x_n * (2 - a * x_n); five iterations reach 64 bits.
    let mut x: u64 = a; // correct to 3 bits for odd a
    let mut i = 0;
    while i < 5 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
        i += 1;
    }
    x
}

/// Inverse of [`splitmix64`]; witnesses that the mixer is a bijection and
/// allows recovering the sequence number of a generated click identifier.
#[inline]
#[must_use]
pub fn unsplitmix64(mut x: u64) -> u64 {
    // Invert x ^ (x >> 31).
    x = invert_xorshift_right(x, 31);
    x = x.wrapping_mul(INV_C2);
    x = invert_xorshift_right(x, 27);
    x = x.wrapping_mul(INV_C1);
    x = invert_xorshift_right(x, 30);
    x.wrapping_sub(0x9E37_79B9_7F4A_7C15)
}

/// Inverts `y = x ^ (x >> s)` for `1 <= s <= 63`.
#[inline]
#[must_use]
pub fn invert_xorshift_right(y: u64, s: u32) -> u64 {
    let mut x = y;
    let mut shift = s;
    while shift < 64 {
        x = y ^ (x >> s);
        shift += s;
    }
    x
}

/// Combines two 64-bit values into one (Boost-style `hash_combine`,
/// strengthened with a final avalanche).
#[inline]
#[must_use]
pub fn combine(a: u64, b: u64) -> u64 {
    fmix64(
        a ^ b
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(a << 6)
            .wrapping_add(a >> 2),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_values_are_stable() {
        // Regression anchors: these must never change (trace format and
        // generated workloads depend on them).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
        assert_eq!(splitmix64(0xFFFF_FFFF_FFFF_FFFF), 0xE4D9_7177_1B65_2C20);
    }

    #[test]
    fn unsplitmix_inverts_splitmix() {
        for i in 0..10_000u64 {
            let x = i.wrapping_mul(0x2545_F491_4F6C_DD1D);
            assert_eq!(unsplitmix64(splitmix64(x)), x);
        }
    }

    #[test]
    fn invert_xorshift_right_roundtrips() {
        for s in 1..64 {
            for i in 0..64u64 {
                let x = (1u64 << i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                assert_eq!(invert_xorshift_right(x ^ (x >> s), s), x, "s={s}");
            }
        }
    }

    #[test]
    fn inv_mod_2_64_is_inverse() {
        for a in [
            1u64,
            3,
            5,
            0xBF58_476D_1CE4_E5B9,
            0x94D0_49BB_1331_11EB,
            u64::MAX,
        ] {
            assert_eq!(a.wrapping_mul(inv_mod_2_64(a)), 1, "a={a:#x}");
        }
    }

    #[test]
    fn mixers_are_injective_on_sample() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(fmix64(i)), "fmix64 collision at {i}");
        }
        seen.clear();
        for i in 0..100_000u64 {
            assert!(seen.insert(xxh64_avalanche(i)), "xxh collision at {i}");
        }
    }

    #[test]
    fn avalanche_flips_about_half_the_bits() {
        // Flip each input bit and measure the mean Hamming distance of the
        // outputs; a good mixer sits near 32 out of 64.
        for mixer in [splitmix64 as fn(u64) -> u64, fmix64, xxh64_avalanche] {
            let mut total = 0u64;
            let mut samples = 0u64;
            for i in 0..512u64 {
                let x = splitmix64(i ^ 0xABCD);
                let hx = mixer(x);
                for b in 0..64 {
                    total += (hx ^ mixer(x ^ (1 << b))).count_ones() as u64;
                    samples += 1;
                }
            }
            let mean = total as f64 / samples as f64;
            assert!((mean - 32.0).abs() < 1.0, "poor avalanche: mean={mean}");
        }
    }

    #[test]
    fn combine_depends_on_both_inputs_and_order() {
        assert_ne!(combine(1, 2), combine(2, 1));
        assert_ne!(combine(1, 2), combine(1, 3));
        assert_ne!(combine(1, 2), combine(9, 2));
    }
}
