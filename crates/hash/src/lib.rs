//! Hashing substrate for the click-fraud detection suite.
//!
//! The ICDCS 2008 paper assumes `k` independent uniform hash functions with
//! range `{1, 2, ..., m}`. This crate provides that family, built from
//! scratch (no external hash crates):
//!
//! * [`mix`] — 64-bit avalanche finalizers (SplitMix64, Murmur3 fmix64,
//!   an xxHash-style avalanche) used as building blocks and as cheap
//!   bijective permutations over `u64`.
//! * [`fnv`] — FNV-1a for short keys and seeding.
//! * [`murmur`] — a from-scratch MurmurHash3 `x64_128` implementation that
//!   yields the `(h1, h2)` pair used for double hashing.
//! * [`pair`] — the [`pair::PairHasher`] trait producing a
//!   [`pair::HashPair`] per key.
//! * [`indices`] — Kirsch–Mitzenmacher double hashing: derive `k` indices
//!   in `[0, m)` from a single [`pair::HashPair`].
//! * [`family`] — the [`family::HashFamily`] abstraction with
//!   a double-hashing implementation (default) and a `k`-independent-seeds
//!   implementation (for the ablation study in DESIGN.md §6).
//! * [`plan`] — the [`plan::Planner`]/[`plan::ProbePlan`] split: hash an
//!   id once into a pure, `Copy` plan, replay it against any filter
//!   geometry (batch and multi-thread frontends build on this).
//! * [`block`] — cache-line-blocked index derivation: one hash picks a
//!   64-byte block, the rest of the pair picks the `k` offsets inside
//!   it, so a probe touches one cache line instead of `k`.
//! * [`lanes`] — multi-lane batch hashing: 4 or 8 interleaved Murmur3
//!   states hashed in lockstep (safe SWAR, auto-vectorizable), bit-identical
//!   to the scalar path and selected by a runtime CPU-feature check.
//! * [`sip`] — SipHash-2-4, the *keyed* family for deployments where
//!   click identifiers are attacker-controlled.
//!
//! # Example
//!
//! ```rust
//! use cfd_hash::family::{DoubleHashFamily, HashFamily};
//!
//! let family = DoubleHashFamily::new(0xC11C_F00D);
//! let m = 1 << 20;
//! let k = 10;
//! let idx: Vec<usize> = family.indices(b"203.0.113.7|cookie42|ad9", k, m).collect();
//! assert_eq!(idx.len(), k);
//! assert!(idx.iter().all(|&i| i < m));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod family;
pub mod fnv;
pub mod indices;
pub mod lanes;
pub mod mix;
pub mod murmur;
pub mod pair;
pub mod plan;
pub mod sip;

pub use block::{fill_blocked_indices, BlockGeometry, BlockPlan};
pub use family::{DoubleHashFamily, HashFamily, IndependentHashFamily};
pub use indices::IndexSequence;
pub use pair::{HashPair, PairHasher};
pub use plan::{tenant_prefix, Planner, ProbePlan};
pub use sip::{siphash24, SipHashFamily};
