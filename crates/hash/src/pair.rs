//! The `(h1, h2)` hash pair and the trait producing it.

use crate::mix::{fmix64, splitmix64};
use crate::murmur::murmur3_x64_128;

/// A pair of 64-bit hash values for one key.
///
/// One pair is enough to derive any number of Bloom-filter indices via
/// double hashing ([`crate::indices::IndexSequence`]), so each click
/// identifier is hashed exactly once regardless of `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HashPair {
    /// First hash value (`h1`), the base offset.
    pub h1: u64,
    /// Second hash value (`h2`), the stride.
    pub h2: u64,
}

impl HashPair {
    /// Creates a pair from raw halves.
    #[inline]
    #[must_use]
    pub fn new(h1: u64, h2: u64) -> Self {
        Self { h1, h2 }
    }

    /// The stride with its lowest bit forced to 1.
    ///
    /// An odd stride is coprime with any power-of-two table size, which
    /// guarantees the first `m` probes of the double-hash sequence are
    /// distinct when `m` is a power of two.
    #[inline]
    #[must_use]
    pub fn odd_stride(&self) -> u64 {
        self.h2 | 1
    }
}

/// A hasher that maps byte keys to a [`HashPair`].
///
/// Implementations must be deterministic for a fixed seed. The default
/// implementation used across the suite is [`Murmur3Pair`].
pub trait PairHasher {
    /// Hashes an arbitrary byte key.
    fn hash_pair(&self, data: &[u8]) -> HashPair;

    /// Hashes a `u64` key.
    ///
    /// Implementations may override this with a cheaper mixer-based path;
    /// the default routes through [`PairHasher::hash_pair`] on the
    /// little-endian bytes.
    #[inline]
    fn hash_pair_u64(&self, key: u64) -> HashPair {
        self.hash_pair(&key.to_le_bytes())
    }
}

/// [`PairHasher`] backed by MurmurHash3 `x64_128`.
///
/// ```rust
/// use cfd_hash::pair::{Murmur3Pair, PairHasher};
/// let h = Murmur3Pair::new(42);
/// assert_eq!(h.hash_pair(b"x"), h.hash_pair(b"x"));
/// assert_ne!(h.hash_pair(b"x"), h.hash_pair(b"y"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Murmur3Pair {
    seed: u64,
}

impl Murmur3Pair {
    /// Creates a hasher with the given seed.
    #[inline]
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The seed this hasher was created with.
    #[inline]
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Default for Murmur3Pair {
    fn default() -> Self {
        Self::new(0)
    }
}

impl PairHasher for Murmur3Pair {
    #[inline]
    fn hash_pair(&self, data: &[u8]) -> HashPair {
        let (h1, h2) = murmur3_x64_128(data, self.seed);
        HashPair::new(h1, h2)
    }

    #[inline]
    fn hash_pair_u64(&self, key: u64) -> HashPair {
        // Mixer-based fast path for integer keys: two independent
        // bijective finalizers over seed-perturbed inputs.
        let a = fmix64(key ^ self.seed);
        let b = splitmix64(key.wrapping_add(self.seed.rotate_left(32)).wrapping_add(1));
        HashPair::new(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_is_deterministic_per_seed() {
        let a = Murmur3Pair::new(7);
        let b = Murmur3Pair::new(7);
        let c = Murmur3Pair::new(8);
        assert_eq!(a.hash_pair(b"k"), b.hash_pair(b"k"));
        assert_ne!(a.hash_pair(b"k"), c.hash_pair(b"k"));
        assert_eq!(a.hash_pair_u64(9), b.hash_pair_u64(9));
        assert_ne!(a.hash_pair_u64(9), c.hash_pair_u64(9));
    }

    #[test]
    fn odd_stride_is_odd() {
        let h = Murmur3Pair::new(3);
        for i in 0..1000u64 {
            assert_eq!(h.hash_pair_u64(i).odd_stride() & 1, 1);
        }
    }

    #[test]
    fn u64_fast_path_halves_are_independent_looking() {
        // h1 and h2 must not be trivially correlated; compare low bits.
        let h = Murmur3Pair::new(0);
        let mut agree = 0u32;
        const TRIALS: u32 = 4096;
        for i in 0..u64::from(TRIALS) {
            let p = h.hash_pair_u64(i);
            if (p.h1 ^ p.h2) & 1 == 0 {
                agree += 1;
            }
        }
        let frac = f64::from(agree) / f64::from(TRIALS);
        assert!((0.45..0.55).contains(&frac), "bias: {frac}");
    }
}
