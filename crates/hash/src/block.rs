//! Cache-line-blocked probe derivation: block index + intra-block offsets.
//!
//! The scattered double-hash scheme of [`crate::indices`] spreads an
//! element's `k` probes over the whole table, so a membership test
//! touches up to `k` cache lines. Blocked Bloom filters (Putze, Sanders
//! & Singler 2007) instead confine all of an element's probes to one
//! 64-byte line: a first hash picks the *block*, and the remaining
//! entropy of the pair picks `k` *offsets inside the block*. Probing
//! then costs one memory access (plus at most one straddle when the
//! block is not line-aligned) at the price of a slightly higher false
//! positive rate driven by per-block load variance — modelled in
//! `cfd-analysis`.
//!
//! Derivation from one 128-bit [`HashPair`]:
//!
//! * **block** — multiply-shift on `splitmix64(h1 ^ rotl(h2, 32))`.
//!   The remix matters: the sharded detector routes on the high bits of
//!   raw `h1`, so reusing them here would let every shard see only a
//!   fraction of its filter's blocks.
//! * **offsets** — *plain* double hashing over the power-of-two block:
//!   `off_i = (h1 + i · odd(h2)) mod slots`. An odd stride is coprime
//!   with the power-of-two slot count, so the first `min(k, slots)`
//!   offsets are distinct. (The enhanced variant used by the scattered
//!   path grows its stride each probe and loses that guarantee.)

use crate::mix::splitmix64;
use crate::pair::HashPair;

/// Bits in one cache line, the blocking granule.
pub const LINE_BITS: usize = 512;

/// The shape of a blocked table: `blocks × slots` cells of `slot_bits`
/// each, with `slots` a power of two and `slots · slot_bits ≤ 512`.
///
/// A "slot" is whatever unit the filter probes: one group of `Q+1`
/// interleaved lanes for the GBF, one packed timestamp cell for the TBF.
///
/// ```rust
/// use cfd_hash::block::BlockGeometry;
/// // 1 Mi 14-bit timestamp cells → 32 cells per 512-bit line.
/// let geo = BlockGeometry::for_line(1 << 20, 14).unwrap();
/// assert_eq!(geo.slots(), 32);
/// assert_eq!(geo.blocks(), (1 << 20) / 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockGeometry {
    blocks: usize,
    slots: usize,
    slot_bits: usize,
}

impl BlockGeometry {
    /// Geometry for `m` slots of `slot_bits` bits blocked into 64-byte
    /// lines. The per-block slot count is the largest power of two that
    /// fits in one line.
    ///
    /// Returns `None` when blocking degenerates: fewer than two slots
    /// fit in a line (`slot_bits > 256`) or the table has fewer slots
    /// than one block (`m < slots`).
    #[must_use]
    pub fn for_line(m: usize, slot_bits: usize) -> Option<Self> {
        if slot_bits == 0 {
            return None;
        }
        let per_line = LINE_BITS / slot_bits;
        if per_line < 2 {
            return None;
        }
        // Previous power of two: offsets come from `h mod slots`, which
        // is a mask only when slots is a power of two.
        let slots = if per_line.is_power_of_two() {
            per_line
        } else {
            1 << (usize::BITS - 1 - per_line.leading_zeros())
        };
        let blocks = m / slots;
        if blocks == 0 {
            return None;
        }
        Some(Self {
            blocks,
            slots,
            slot_bits,
        })
    }

    /// Number of blocks. Slots `≥ blocks · slots` (the unaligned tail
    /// of a table whose size is not a multiple of `slots`) are never
    /// probed in blocked mode.
    #[inline]
    #[must_use]
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Slots per block (a power of two, at least 2).
    #[inline]
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Width of one slot in bits.
    #[inline]
    #[must_use]
    pub fn slot_bits(&self) -> usize {
        self.slot_bits
    }

    /// Total slots reachable by blocked probing (`blocks · slots`).
    #[inline]
    #[must_use]
    pub fn covered_slots(&self) -> usize {
        self.blocks * self.slots
    }
}

/// One element's resolved blocked probe schedule: the block base plus
/// the double-hash walk inside it. `Copy`, detector-independent.
///
/// ```rust
/// use cfd_hash::block::{BlockGeometry, BlockPlan};
/// use cfd_hash::HashPair;
/// let geo = BlockGeometry::for_line(1 << 16, 16).unwrap();
/// let plan = BlockPlan::new(HashPair::new(0xFACE, 0xBEEF), &geo);
/// let mut idx = [0usize; 6];
/// plan.fill(&mut idx);
/// let base = plan.block() * geo.slots();
/// assert!(idx.iter().all(|&i| (base..base + geo.slots()).contains(&i)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockPlan {
    base: usize,
    first: u64,
    stride: u64,
    mask: u64,
    slots: usize,
}

impl BlockPlan {
    /// Splits the pair into a block index and an intra-block walk.
    #[inline]
    #[must_use]
    pub fn new(pair: HashPair, geo: &BlockGeometry) -> Self {
        // Remixed multiply-shift block pick; see module docs for why
        // raw h1 bits must not be reused here.
        let b = splitmix64(pair.h1 ^ pair.h2.rotate_left(32));
        let block = ((u128::from(b) * geo.blocks as u128) >> 64) as usize;
        let mask = geo.slots as u64 - 1;
        Self {
            base: block * geo.slots,
            first: pair.h1 & mask,
            stride: pair.odd_stride() & mask,
            mask,
            slots: geo.slots,
        }
    }

    /// The chosen block index.
    #[inline]
    #[must_use]
    pub fn block(&self) -> usize {
        self.base / self.slots
    }

    /// Writes `out.len()` table-wide slot indices, all inside one block.
    ///
    /// The first `min(out.len(), slots)` indices are distinct (odd
    /// stride over a power-of-two ring).
    #[inline]
    pub fn fill(&self, out: &mut [usize]) {
        let mut cur = self.first;
        for slot in out.iter_mut() {
            *slot = self.base + cur as usize;
            cur = (cur + self.stride) & self.mask;
        }
    }
}

/// One-shot form: derive the blocked indices for `pair` straight into
/// `out`. Equivalent to `BlockPlan::new(pair, geo).fill(out)`.
#[inline]
pub fn fill_blocked_indices(pair: HashPair, geo: &BlockGeometry, out: &mut [usize]) {
    BlockPlan::new(pair, geo).fill(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::{Murmur3Pair, PairHasher};

    #[test]
    fn geometry_rejects_degenerate_shapes() {
        assert!(BlockGeometry::for_line(1 << 20, 0).is_none());
        assert!(BlockGeometry::for_line(1 << 20, 257).is_none(), "1 slot");
        assert!(BlockGeometry::for_line(3, 128).is_none(), "m < slots");
        let geo = BlockGeometry::for_line(1 << 20, 256).unwrap();
        assert_eq!(geo.slots(), 2);
    }

    #[test]
    fn geometry_rounds_slots_down_to_power_of_two() {
        // 512 / 9 = 56 per line → 32 slots (previous power of two).
        let geo = BlockGeometry::for_line(100_000, 9).unwrap();
        assert_eq!(geo.slots(), 32);
        assert_eq!(geo.blocks(), 100_000 / 32);
        assert!(geo.covered_slots() <= 100_000);
        // Power-of-two per-line counts are kept exactly.
        assert_eq!(BlockGeometry::for_line(1 << 16, 16).unwrap().slots(), 32);
        assert_eq!(BlockGeometry::for_line(1 << 16, 64).unwrap().slots(), 8);
    }

    #[test]
    fn block_span_fits_one_line() {
        for slot_bits in [1usize, 9, 14, 16, 64, 128] {
            let geo = BlockGeometry::for_line(1 << 18, slot_bits).unwrap();
            assert!(geo.slots() * geo.slot_bits() <= LINE_BITS, "{slot_bits}");
            assert!(geo.slots() >= 2);
        }
    }

    #[test]
    fn offsets_are_distinct_and_in_block() {
        let geo = BlockGeometry::for_line(1 << 16, 14).unwrap(); // 32 slots
        let hasher = Murmur3Pair::new(99);
        for key in 0..5_000u64 {
            let plan = BlockPlan::new(hasher.hash_pair_u64(key), &geo);
            let mut idx = [0usize; 10];
            plan.fill(&mut idx);
            let base = plan.block() * geo.slots();
            assert!(idx.iter().all(|&i| i >= base && i < base + geo.slots()));
            let mut sorted = idx;
            sorted.sort_unstable();
            sorted.windows(2).for_each(|w| {
                assert_ne!(w[0], w[1], "first min(k, slots) probes must differ");
            });
        }
    }

    #[test]
    fn block_index_is_uncorrelated_with_h1_high_bits() {
        // The sharded router consumes h1's high bits via multiply-shift.
        // Constrain h1 to one router shard (fixed high byte) and check
        // the blocks still cover the space.
        let geo = BlockGeometry::for_line(1 << 15, 16).unwrap();
        let mut seen = vec![false; geo.blocks()];
        for low in 0..200_000u64 {
            let pair = HashPair::new(0xAB00_0000_0000_0000 | low, splitmix64(low));
            seen[BlockPlan::new(pair, &geo).block()] = true;
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert!(
            covered * 10 >= geo.blocks() * 9,
            "only {covered}/{} blocks reachable from one shard's keys",
            geo.blocks()
        );
    }

    #[test]
    fn fill_blocked_matches_plan() {
        let geo = BlockGeometry::for_line(1 << 12, 32).unwrap();
        let pair = Murmur3Pair::new(5).hash_pair(b"click");
        let mut a = [0usize; 8];
        let mut b = [0usize; 8];
        fill_blocked_indices(pair, &geo, &mut a);
        BlockPlan::new(pair, &geo).fill(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn blocks_are_load_balanced() {
        // Chi-squared over 256 blocks, 64k keys.
        let geo = BlockGeometry::for_line(256 * 8, 64).unwrap();
        assert_eq!(geo.blocks(), 256);
        let hasher = Murmur3Pair::new(21);
        let mut counts = [0u32; 256];
        const KEYS: u64 = 1 << 16;
        for key in 0..KEYS {
            counts[BlockPlan::new(hasher.hash_pair_u64(key), &geo).block()] += 1;
        }
        let expected = KEYS as f64 / 256.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = f64::from(c) - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 340.0, "chi2={chi2}");
    }
}
