//! SipHash-2-4, implemented from scratch — the *keyed* hash option.
//!
//! The paper's threat model stops at duplicate clicks, but a deployed
//! detector faces a second adversary: an attacker who can *choose* click
//! identifiers can craft ids whose Bloom probes collide with a
//! competitor's legitimate traffic, manufacturing false positives so the
//! competitor's valid clicks go unbilled. MurmurHash3 is unkeyed and
//! seed-recoverable, so its probe positions are predictable; SipHash-2-4
//! (Aumasson & Bernstein, 2012) is a PRF under a 128-bit secret key,
//! making probe positions unpredictable to anyone without the key.
//!
//! [`SipHashFamily`] is a drop-in [`crate::family::HashFamily`]
//! at roughly half Murmur's throughput (see the `hashing` ablation
//! bench); use it when click identifiers are attacker-controlled.

use crate::family::HashFamily;
use crate::indices::{fill_indices, IndexSequence};
use crate::pair::HashPair;

#[inline]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// SipHash-2-4 of `data` under the 128-bit key `(k0, k1)`.
///
/// ```rust
/// use cfd_hash::sip::siphash24;
/// // Reference test vector: key = 0x0706..00 / 0x0f0e..08, empty input.
/// let k0 = 0x0706_0504_0302_0100;
/// let k1 = 0x0f0e_0d0c_0b0a_0908;
/// assert_eq!(siphash24(k0, k1, b""), 0x726f_db47_dd0e_0e31);
/// ```
#[must_use]
pub fn siphash24(k0: u64, k1: u64, data: &[u8]) -> u64 {
    let mut v = [
        k0 ^ 0x736f_6d65_7073_6575,
        k1 ^ 0x646f_7261_6e64_6f6d,
        k0 ^ 0x6c79_6765_6e65_7261,
        k1 ^ 0x7465_6462_7974_6573,
    ];
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        v[3] ^= m;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= m;
    }
    // Tail: remaining bytes plus the length in the top byte.
    let tail = chunks.remainder();
    let mut m = (data.len() as u64 & 0xFF) << 56;
    for (i, &b) in tail.iter().enumerate() {
        m |= u64::from(b) << (8 * i);
    }
    v[3] ^= m;
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^= m;
    // Finalization.
    v[2] ^= 0xFF;
    for _ in 0..4 {
        sipround(&mut v);
    }
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

/// A keyed [`HashFamily`]: two independent SipHash-2-4 evaluations yield
/// the `(h1, h2)` double-hashing pair.
///
/// ```rust
/// use cfd_hash::family::HashFamily;
/// use cfd_hash::sip::SipHashFamily;
/// let f = SipHashFamily::new(0xDEAD_BEEF, 0xC0FF_EE00);
/// let mut buf = [0usize; 5];
/// f.fill(b"attacker-chosen-id", 1 << 20, &mut buf);
/// assert!(buf.iter().all(|&i| i < 1 << 20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SipHashFamily {
    k0: u64,
    k1: u64,
}

impl SipHashFamily {
    /// Creates a family under the secret 128-bit key `(k0, k1)`.
    ///
    /// Key material must come from a CSPRNG in adversarial deployments;
    /// predictability of the key voids the defense.
    #[must_use]
    pub fn new(k0: u64, k1: u64) -> Self {
        Self { k0, k1 }
    }

    #[inline]
    fn pair_of(&self, key: &[u8]) -> HashPair {
        // Two PRF evaluations under domain-separated keys.
        let h1 = siphash24(self.k0, self.k1, key);
        let h2 = siphash24(
            self.k0 ^ 0x5bd1_e995_9e37_79b9,
            self.k1 ^ 0x9e37_79b9_5bd1_e995,
            key,
        );
        HashPair::new(h1, h2)
    }
}

impl HashFamily for SipHashFamily {
    fn indices(&self, key: &[u8], k: usize, m: usize) -> IndexSequence {
        IndexSequence::new(self.pair_of(key), k, m)
    }

    fn fill(&self, key: &[u8], m: usize, out: &mut [usize]) {
        fill_indices(self.pair_of(key), m, out);
    }

    fn pair(&self, key: &[u8]) -> HashPair {
        self.pair_of(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The first eight vectors of the SipHash-2-4 reference test suite
    /// (key = 00 01 02 ... 0f, inputs 0x00, 0x0001, 0x000102, ...).
    #[test]
    fn reference_vectors() {
        let k0 = 0x0706_0504_0302_0100u64;
        let k1 = 0x0f0e_0d0c_0b0a_0908u64;
        let expected: [u64; 8] = [
            0x726f_db47_dd0e_0e31,
            0x74f8_39c5_93dc_67fd,
            0x0d6c_8009_d9a9_4f5a,
            0x8567_6696_d7fb_7e2d,
            0xcf27_94e0_2771_87b7,
            0x1876_5564_cd99_a68d,
            0xcbc9_466e_58fe_e3ce,
            0xab02_00f5_8b01_d137,
        ];
        let input: Vec<u8> = (0u8..8).collect();
        for (len, &want) in expected.iter().enumerate() {
            assert_eq!(
                siphash24(k0, k1, &input[..len]),
                want,
                "vector at length {len}"
            );
        }
    }

    #[test]
    fn all_tail_lengths_deterministic_and_distinct() {
        use std::collections::HashSet;
        let data: Vec<u8> = (0u8..=40).collect();
        let mut seen = HashSet::new();
        for len in 0..=data.len() {
            let h = siphash24(1, 2, &data[..len]);
            assert_eq!(h, siphash24(1, 2, &data[..len]));
            assert!(seen.insert(h), "collision at len {len}");
        }
    }

    #[test]
    fn different_keys_decorrelate() {
        let a = siphash24(1, 2, b"click-id");
        let b = siphash24(1, 3, b"click-id");
        let c = siphash24(9, 2, b"click-id");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn family_is_usable_and_key_sensitive() {
        let f1 = SipHashFamily::new(1, 2);
        let f2 = SipHashFamily::new(1, 3);
        let mut a = [0usize; 6];
        let mut b = [0usize; 6];
        f1.fill(b"id", 1 << 16, &mut a);
        f2.fill(b"id", 1 << 16, &mut b);
        assert_ne!(a, b, "different keys must give different probes");
        let via_iter: Vec<usize> = f1.indices(b"id", 6, 1 << 16).collect();
        assert_eq!(via_iter, a);
    }

    #[test]
    fn uniformity_chi_square() {
        let mut counts = [0u32; 256];
        for i in 0..(1u64 << 16) {
            counts[(siphash24(7, 8, &i.to_le_bytes()) % 256) as usize] += 1;
        }
        let expected = f64::from(1u32 << 16) / 256.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = f64::from(c) - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 340.0, "chi2={chi2}");
    }
}
