//! Kirsch–Mitzenmacher double hashing: `k` Bloom indices from one pair.
//!
//! Kirsch & Mitzenmacher (2006) showed that the Bloom-filter false-positive
//! analysis is preserved when the `k` "independent" hash functions are
//! simulated as `g_i(x) = h1(x) + i * h2(x) mod m`. This is the default
//! index-derivation scheme of the suite; DESIGN.md §6 benchmarks it against
//! truly independent hashes.

use crate::pair::HashPair;

/// Iterator over the `k` probe indices of one key in a table of `m` slots.
///
/// Uses *enhanced* double hashing (`g_{i+1} = g_i + h2 + i`) which avoids
/// the worst-case correlation of plain double hashing when `m` is not
/// prime, while costing one extra add per index.
///
/// ```rust
/// use cfd_hash::{HashPair, IndexSequence};
/// let pair = HashPair::new(0xDEAD_BEEF, 0x1234_5678);
/// let idx: Vec<usize> = IndexSequence::new(pair, 5, 1024).collect();
/// assert_eq!(idx.len(), 5);
/// assert!(idx.iter().all(|&i| i < 1024));
/// ```
#[derive(Debug, Clone)]
pub struct IndexSequence {
    cur: u64,
    stride: u64,
    remaining: usize,
    m: u64,
}

impl IndexSequence {
    /// Creates a sequence of `k` indices in `[0, m)`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[inline]
    #[must_use]
    pub fn new(pair: HashPair, k: usize, m: usize) -> Self {
        assert!(m > 0, "table size m must be positive");
        let m = m as u64;
        Self {
            cur: pair.h1 % m,
            stride: pair.odd_stride() % m,
            remaining: k,
            m,
        }
    }
}

impl Iterator for IndexSequence {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let out = self.cur as usize;
        // Enhanced double hashing: stride grows by one each probe.
        self.cur += self.stride;
        if self.cur >= self.m {
            self.cur -= self.m;
        }
        self.stride += 1;
        if self.stride >= self.m {
            self.stride -= self.m;
        }
        Some(out)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for IndexSequence {}

/// Fills `out` with the first `out.len()` probe indices for `pair`.
///
/// Equivalent to collecting [`IndexSequence`] but without iterator
/// overhead in hot loops.
#[inline]
pub fn fill_indices(pair: HashPair, m: usize, out: &mut [usize]) {
    debug_assert!(m > 0);
    let m64 = m as u64;
    let mut cur = pair.h1 % m64;
    let mut stride = pair.odd_stride() % m64;
    for slot in out.iter_mut() {
        *slot = cur as usize;
        cur += stride;
        if cur >= m64 {
            cur -= m64;
        }
        stride += 1;
        if stride >= m64 {
            stride -= m64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::{Murmur3Pair, PairHasher};

    #[test]
    fn yields_exactly_k_indices_in_range() {
        let pair = HashPair::new(u64::MAX, u64::MAX);
        for m in [1usize, 2, 3, 64, 1000, 1 << 20] {
            for k in [0usize, 1, 7, 16] {
                let v: Vec<usize> = IndexSequence::new(pair, k, m).collect();
                assert_eq!(v.len(), k);
                assert!(v.iter().all(|&i| i < m), "m={m} k={k}");
            }
        }
    }

    #[test]
    fn fill_indices_matches_iterator() {
        let hasher = Murmur3Pair::new(11);
        for key in 0..500u64 {
            let pair = hasher.hash_pair_u64(key);
            let it: Vec<usize> = IndexSequence::new(pair, 10, 12_345).collect();
            let mut buf = [0usize; 10];
            fill_indices(pair, 12_345, &mut buf);
            assert_eq!(it, buf);
        }
    }

    #[test]
    fn size_hint_is_exact() {
        let mut seq = IndexSequence::new(HashPair::new(1, 2), 4, 100);
        assert_eq!(seq.size_hint(), (4, Some(4)));
        seq.next();
        assert_eq!(seq.size_hint(), (3, Some(3)));
    }

    #[test]
    fn m_one_always_yields_zero() {
        let v: Vec<usize> = IndexSequence::new(HashPair::new(123, 456), 8, 1).collect();
        assert_eq!(v, vec![0; 8]);
    }

    #[test]
    #[should_panic(expected = "table size m must be positive")]
    fn zero_m_panics() {
        let _ = IndexSequence::new(HashPair::new(0, 0), 1, 0);
    }

    #[test]
    fn indices_cover_table_uniformly() {
        // Distribute 64k keys x 4 probes over 256 slots; expect near-uniform.
        const M: usize = 256;
        let hasher = Murmur3Pair::new(5);
        let mut counts = [0u32; M];
        const KEYS: u64 = 1 << 16;
        for key in 0..KEYS {
            for i in IndexSequence::new(hasher.hash_pair_u64(key), 4, M) {
                counts[i] += 1;
            }
        }
        let expected = (KEYS as f64) * 4.0 / M as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = f64::from(c) - expected;
                d * d / expected
            })
            .sum();
        // 99.9th percentile of chi^2(255) ~ 330.5; allow slack.
        assert!(chi2 < 340.0, "chi2={chi2}");
    }

    #[test]
    fn repeat_probes_are_no_more_common_than_chance() {
        // Enhanced double hashing does not guarantee distinct probes, but
        // repeats must stay near the birthday-bound expectation:
        // ~ C(k,2)/m per key = 28/65536 here.
        let hasher = Murmur3Pair::new(19);
        let mut keys_with_repeat = 0u32;
        const KEYS: u64 = 20_000;
        for key in 0..KEYS {
            let mut v: Vec<usize> =
                IndexSequence::new(hasher.hash_pair_u64(key), 8, 1 << 16).collect();
            v.sort_unstable();
            let len = v.len();
            v.dedup();
            if v.len() != len {
                keys_with_repeat += 1;
            }
        }
        let rate = f64::from(keys_with_repeat) / KEYS as f64;
        assert!(rate < 0.002, "repeat rate {rate} far above birthday bound");
    }
}
