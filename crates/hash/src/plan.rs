//! Probe planning: the pure hashing half of an `observe` step.
//!
//! The detectors in `cfd-core` historically fused three things inside
//! `observe`: hash the id, probe the filter, and mutate state. Splitting
//! the hash out into a [`ProbePlan`] makes the expensive, *pure* part of
//! the step reusable:
//!
//! * a batch of ids can be hashed up front and the plans replayed against
//!   the stateful filter back-to-back (better locality, no interleaved
//!   hashing),
//! * hashing can happen on a different thread than the filter update —
//!   the plan is `Copy` and carries no borrow of the detector,
//! * one plan can drive several filters keyed off the same id (e.g. every
//!   shard candidate of a sharded detector, or a dual-audit pair).
//!
//! A plan is only meaningful for detectors built from the same
//! [`Planner`] (same seed): replaying a plan from a different family
//! yields well-defined but meaningless indices.

use crate::block::{BlockGeometry, BlockPlan};
use crate::family::DoubleHashFamily;
use crate::indices::fill_indices;
use crate::pair::HashPair;

/// The precomputed, detector-independent hash of one click id.
///
/// Wraps the Kirsch–Mitzenmacher [`HashPair`]; expansion to `k` probe
/// indices in `[0, m)` happens at [`ProbePlan::fill`] time, so one plan
/// serves any table geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbePlan {
    pair: HashPair,
}

impl ProbePlan {
    /// Wraps an already-computed hash pair.
    #[inline]
    #[must_use]
    pub fn from_pair(pair: HashPair) -> Self {
        Self { pair }
    }

    /// The underlying double-hashing pair.
    #[inline]
    #[must_use]
    pub fn pair(&self) -> HashPair {
        self.pair
    }

    /// Expands the plan into `out.len()` probe indices in `[0, m)`.
    #[inline]
    pub fn fill(&self, m: usize, out: &mut [usize]) {
        fill_indices(self.pair, m, out);
    }

    /// Resolves the plan against a blocked geometry: block index plus
    /// intra-block double-hash walk (see [`crate::block`]).
    #[inline]
    #[must_use]
    pub fn block_plan(&self, geo: &BlockGeometry) -> BlockPlan {
        BlockPlan::new(self.pair, geo)
    }

    /// Expands the plan into `out.len()` indices confined to one
    /// cache-line block of the geometry.
    #[inline]
    pub fn fill_blocked(&self, geo: &BlockGeometry, out: &mut [usize]) {
        self.block_plan(geo).fill(out);
    }
}

/// A `Copy` hasher producing [`ProbePlan`]s — the pure, shareable half of
/// a detector.
///
/// Detectors expose their planner so callers (batch frontends, pipeline
/// hashing stages) can hash ids without holding `&mut` access to filter
/// state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Planner {
    family: DoubleHashFamily,
}

impl Planner {
    /// Planner for the family with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            family: DoubleHashFamily::new(seed),
        }
    }

    /// Planner sharing an existing family.
    #[must_use]
    pub fn from_family(family: DoubleHashFamily) -> Self {
        Self { family }
    }

    /// The construction seed (plans are only portable between detectors
    /// sharing it).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.family.seed()
    }

    /// Hashes one id into its plan. Pure: no state is touched.
    #[inline]
    #[must_use]
    pub fn plan(&self, id: &[u8]) -> ProbePlan {
        use crate::family::HashFamily;
        ProbePlan::from_pair(self.family.pair(id))
    }

    /// Hashes a flat buffer of fixed-stride ids (`key_len` bytes each,
    /// packed end-to-end) into `out`, one plan per id in order.
    ///
    /// Uses the multi-lane lockstep path ([`crate::lanes`]) and is
    /// bit-identical to calling [`Planner::plan`] per id. `out` is cleared
    /// first; its capacity is reused, so a caller recycling the buffer
    /// performs no allocation once it has grown to the batch size.
    ///
    /// # Panics
    /// If `key_len == 0` or the buffer length is not a multiple of it.
    pub fn plan_flat_into(&self, keys: &[u8], key_len: usize, out: &mut Vec<ProbePlan>) {
        // resize (not clear+resize): a reused buffer of the right length
        // is a no-op here, and the fill overwrites every slot.
        out.resize(
            keys.len() / key_len.max(1),
            ProbePlan::from_pair(HashPair::new(0, 0)),
        );
        crate::lanes::fill_flat_pairs(keys, key_len, self.seed(), out, ProbePlan::from_pair);
    }

    /// Hashes a batch of independent ids into `out`, one plan per id in
    /// order, grouping equal-length runs onto the multi-lane path.
    /// Bit-identical to calling [`Planner::plan`] per id; `out` is cleared
    /// first and its capacity reused.
    pub fn plan_refs_into(&self, ids: &[&[u8]], out: &mut Vec<ProbePlan>) {
        out.clear();
        crate::lanes::hash_refs_with(ids, self.seed(), |pair| {
            out.push(ProbePlan::from_pair(pair));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::HashFamily;

    #[test]
    fn plan_matches_direct_family_fill() {
        let family = DoubleHashFamily::new(0xFEED);
        let planner = Planner::from_family(family);
        for key in [b"a".as_slice(), b"203.0.113.9|c0ffee|ad-17", b""] {
            let plan = planner.plan(key);
            let mut via_plan = [0usize; 7];
            let mut via_family = [0usize; 7];
            plan.fill(12_289, &mut via_plan);
            family.fill(key, 12_289, &mut via_family);
            assert_eq!(via_plan, via_family);
        }
    }

    #[test]
    fn one_plan_serves_multiple_geometries() {
        let planner = Planner::new(7);
        let plan = planner.plan(b"shared-id");
        let mut small = [0usize; 4];
        let mut large = [0usize; 9];
        plan.fill(64, &mut small);
        plan.fill(1 << 20, &mut large);
        assert!(small.iter().all(|&i| i < 64));
        assert!(large.iter().all(|&i| i < 1 << 20));
    }

    #[test]
    fn planner_seed_round_trips() {
        assert_eq!(Planner::new(42).seed(), 42);
    }
}
