//! Probe planning: the pure hashing half of an `observe` step.
//!
//! The detectors in `cfd-core` historically fused three things inside
//! `observe`: hash the id, probe the filter, and mutate state. Splitting
//! the hash out into a [`ProbePlan`] makes the expensive, *pure* part of
//! the step reusable:
//!
//! * a batch of ids can be hashed up front and the plans replayed against
//!   the stateful filter back-to-back (better locality, no interleaved
//!   hashing),
//! * hashing can happen on a different thread than the filter update —
//!   the plan is `Copy` and carries no borrow of the detector,
//! * one plan can drive several filters keyed off the same id (e.g. every
//!   shard candidate of a sharded detector, or a dual-audit pair).
//!
//! A plan is only meaningful for detectors built from the same
//! [`Planner`] (same seed): replaying a plan from a different family
//! yields well-defined but meaningless indices.

use crate::block::{BlockGeometry, BlockPlan};
use crate::family::DoubleHashFamily;
use crate::indices::fill_indices;
use crate::pair::HashPair;

/// The precomputed, detector-independent hash of one click id.
///
/// Wraps the Kirsch–Mitzenmacher [`HashPair`]; expansion to `k` probe
/// indices in `[0, m)` happens at [`ProbePlan::fill`] time, so one plan
/// serves any table geometry.
///
/// Plans produced by a [`Planner`] also carry the id's *routing prefix*
/// ([`tenant_prefix`]): the first eight key bytes, little-endian. Tenant
/// frontends (`cfd-core`'s arena) encode the (advertiser, campaign) id
/// there, so routing a click to its tenant costs zero extra hash work —
/// the one 128-bit hash of the plan covers probing *and* routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbePlan {
    pair: HashPair,
    prefix: u64,
}

/// The routing prefix of an id: its first `min(8, len)` bytes read
/// little-endian, zero-padded. Ids sharing an 8-byte prefix share the
/// value, which is what makes `[tenant_id ‖ click_id]` keys route
/// exactly by tenant.
#[inline]
#[must_use]
pub fn tenant_prefix(id: &[u8]) -> u64 {
    let take = id.len().min(8);
    let mut bytes = [0u8; 8];
    bytes[..take].copy_from_slice(&id[..take]);
    u64::from_le_bytes(bytes)
}

impl ProbePlan {
    /// Wraps an already-computed hash pair. The routing prefix is zero;
    /// use [`ProbePlan::with_prefix`] (or a [`Planner`] frontend, which
    /// fills it from the id) when tenant routing matters.
    #[inline]
    #[must_use]
    pub fn from_pair(pair: HashPair) -> Self {
        Self { pair, prefix: 0 }
    }

    /// The same plan with its routing prefix replaced.
    #[inline]
    #[must_use]
    pub fn with_prefix(self, prefix: u64) -> Self {
        Self { prefix, ..self }
    }

    /// The underlying double-hashing pair.
    #[inline]
    #[must_use]
    pub fn pair(&self) -> HashPair {
        self.pair
    }

    /// The id's routing prefix (see [`tenant_prefix`]); 0 for plans
    /// built directly from a pair.
    #[inline]
    #[must_use]
    pub fn prefix(&self) -> u64 {
        self.prefix
    }

    /// Expands the plan into `out.len()` probe indices in `[0, m)`.
    #[inline]
    pub fn fill(&self, m: usize, out: &mut [usize]) {
        fill_indices(self.pair, m, out);
    }

    /// Resolves the plan against a blocked geometry: block index plus
    /// intra-block double-hash walk (see [`crate::block`]).
    #[inline]
    #[must_use]
    pub fn block_plan(&self, geo: &BlockGeometry) -> BlockPlan {
        BlockPlan::new(self.pair, geo)
    }

    /// Expands the plan into `out.len()` indices confined to one
    /// cache-line block of the geometry.
    #[inline]
    pub fn fill_blocked(&self, geo: &BlockGeometry, out: &mut [usize]) {
        self.block_plan(geo).fill(out);
    }
}

/// A `Copy` hasher producing [`ProbePlan`]s — the pure, shareable half of
/// a detector.
///
/// Detectors expose their planner so callers (batch frontends, pipeline
/// hashing stages) can hash ids without holding `&mut` access to filter
/// state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Planner {
    family: DoubleHashFamily,
}

impl Planner {
    /// Planner for the family with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            family: DoubleHashFamily::new(seed),
        }
    }

    /// Planner sharing an existing family.
    #[must_use]
    pub fn from_family(family: DoubleHashFamily) -> Self {
        Self { family }
    }

    /// The construction seed (plans are only portable between detectors
    /// sharing it).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.family.seed()
    }

    /// Hashes one id into its plan. Pure: no state is touched.
    #[inline]
    #[must_use]
    pub fn plan(&self, id: &[u8]) -> ProbePlan {
        use crate::family::HashFamily;
        ProbePlan::from_pair(self.family.pair(id)).with_prefix(tenant_prefix(id))
    }

    /// Hashes a flat buffer of fixed-stride ids (`key_len` bytes each,
    /// packed end-to-end) into `out`, one plan per id in order.
    ///
    /// Uses the multi-lane lockstep path ([`crate::lanes`]) and is
    /// bit-identical to calling [`Planner::plan`] per id. `out` is cleared
    /// first; its capacity is reused, so a caller recycling the buffer
    /// performs no allocation once it has grown to the batch size.
    ///
    /// # Panics
    /// If `key_len == 0` or the buffer length is not a multiple of it.
    pub fn plan_flat_into(&self, keys: &[u8], key_len: usize, out: &mut Vec<ProbePlan>) {
        // resize (not clear+resize): a reused buffer of the right length
        // is a no-op here, and the fill overwrites every slot.
        out.resize(
            keys.len() / key_len.max(1),
            ProbePlan::from_pair(HashPair::new(0, 0)),
        );
        crate::lanes::fill_flat_pairs(keys, key_len, self.seed(), out, ProbePlan::from_pair);
        // Second pass for the routing prefixes: a plain byte copy per id,
        // kept out of the lockstep lanes (which only know hash state).
        for (plan, key) in out.iter_mut().zip(keys.chunks_exact(key_len)) {
            *plan = plan.with_prefix(tenant_prefix(key));
        }
    }

    /// Hashes a batch of independent ids into `out`, one plan per id in
    /// order, grouping equal-length runs onto the multi-lane path.
    /// Bit-identical to calling [`Planner::plan`] per id; `out` is cleared
    /// first and its capacity reused.
    pub fn plan_refs_into(&self, ids: &[&[u8]], out: &mut Vec<ProbePlan>) {
        out.clear();
        crate::lanes::hash_refs_with(ids, self.seed(), |pair| {
            out.push(ProbePlan::from_pair(pair));
        });
        for (plan, id) in out.iter_mut().zip(ids) {
            *plan = plan.with_prefix(tenant_prefix(id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::HashFamily;

    #[test]
    fn plan_matches_direct_family_fill() {
        let family = DoubleHashFamily::new(0xFEED);
        let planner = Planner::from_family(family);
        for key in [b"a".as_slice(), b"203.0.113.9|c0ffee|ad-17", b""] {
            let plan = planner.plan(key);
            let mut via_plan = [0usize; 7];
            let mut via_family = [0usize; 7];
            plan.fill(12_289, &mut via_plan);
            family.fill(key, 12_289, &mut via_family);
            assert_eq!(via_plan, via_family);
        }
    }

    #[test]
    fn one_plan_serves_multiple_geometries() {
        let planner = Planner::new(7);
        let plan = planner.plan(b"shared-id");
        let mut small = [0usize; 4];
        let mut large = [0usize; 9];
        plan.fill(64, &mut small);
        plan.fill(1 << 20, &mut large);
        assert!(small.iter().all(|&i| i < 64));
        assert!(large.iter().all(|&i| i < 1 << 20));
    }

    #[test]
    fn planner_seed_round_trips() {
        assert_eq!(Planner::new(42).seed(), 42);
    }

    #[test]
    fn tenant_prefix_reads_first_eight_bytes_le() {
        assert_eq!(tenant_prefix(b""), 0);
        assert_eq!(tenant_prefix(&[1]), 1);
        assert_eq!(tenant_prefix(&7u64.to_le_bytes()), 7);
        let mut long = 0xDEAD_BEEFu64.to_le_bytes().to_vec();
        long.extend_from_slice(b"trailing-click-id");
        assert_eq!(tenant_prefix(&long), 0xDEAD_BEEF);
    }

    #[test]
    fn batch_paths_fill_the_same_prefix_as_plan() {
        let planner = Planner::new(9);
        let keys: Vec<Vec<u8>> = (0..64u64)
            .map(|t| {
                let mut k = t.to_le_bytes().to_vec();
                k.extend_from_slice(&(t * 31).to_le_bytes());
                k
            })
            .collect();
        let flat: Vec<u8> = keys.iter().flatten().copied().collect();
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let scalar: Vec<ProbePlan> = keys.iter().map(|k| planner.plan(k)).collect();
        let mut by_flat = Vec::new();
        planner.plan_flat_into(&flat, 16, &mut by_flat);
        let mut by_refs = Vec::new();
        planner.plan_refs_into(&refs, &mut by_refs);
        assert_eq!(scalar, by_flat);
        assert_eq!(scalar, by_refs);
        assert_eq!(scalar[3].prefix(), 3);
    }
}
