//! MurmurHash3 `x64_128`, implemented from scratch.
//!
//! This is the workhorse hash of the suite: one evaluation yields 128 bits,
//! i.e. the `(h1, h2)` pair consumed by Kirsch–Mitzenmacher double hashing
//! ([`crate::indices`]). The implementation follows Austin Appleby's
//! reference algorithm (public domain) operating on little-endian 64-bit
//! lanes.

use crate::mix::fmix64;

const C1: u64 = 0x87C3_7B91_1142_53D5;
const C2: u64 = 0x4CF5_AD43_2745_937F;

/// Mixes the first 64-bit lane of a block (`k1` in Appleby's reference).
#[inline]
pub(crate) fn mix_k1(k1: u64) -> u64 {
    k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2)
}

/// Mixes the second 64-bit lane of a block (`k2` in Appleby's reference).
#[inline]
pub(crate) fn mix_k2(k2: u64) -> u64 {
    k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1)
}

/// Folds one full 16-byte block `(k1, k2)` into the running state.
///
/// This is the single body-loop round of MurmurHash3 `x64_128`; both the
/// scalar path below and the interleaved [`crate::lanes`] path call it, so
/// the two are bit-identical by construction.
#[inline]
pub(crate) fn block_round(h1: &mut u64, h2: &mut u64, k1: u64, k2: u64) {
    *h1 ^= mix_k1(k1);
    *h1 = h1.rotate_left(27);
    *h1 = h1.wrapping_add(*h2);
    *h1 = h1.wrapping_mul(5).wrapping_add(0x52DC_E729);

    *h2 ^= mix_k2(k2);
    *h2 = h2.rotate_left(31);
    *h2 = h2.wrapping_add(*h1);
    *h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5AB5);
}

/// Loads a residual tail (`len < 16`) as the two little-endian lanes the
/// reference algorithm assembles byte by byte. Missing high bytes are zero.
#[inline]
pub(crate) fn load_tail(tail: &[u8]) -> (u64, u64) {
    debug_assert!(tail.len() < 16);
    let mut buf = [0u8; 16];
    buf[..tail.len()].copy_from_slice(tail);
    (
        u64::from_le_bytes(buf[0..8].try_into().expect("8-byte lane")),
        u64::from_le_bytes(buf[8..16].try_into().expect("8-byte lane")),
    )
}

/// Folds a residual tail of `tail_len` bytes (already loaded via
/// [`load_tail`]) into the running state. A no-op when `tail_len == 0`.
#[inline]
pub(crate) fn tail_round(h1: &mut u64, h2: &mut u64, k1: u64, k2: u64, tail_len: usize) {
    if tail_len > 8 {
        *h2 ^= mix_k2(k2);
    }
    if tail_len > 0 {
        *h1 ^= mix_k1(k1);
    }
}

/// Final length injection + avalanche producing the `(h1, h2)` pair.
#[inline]
pub(crate) fn finalize(mut h1: u64, mut h2: u64, len: usize) -> (u64, u64) {
    h1 ^= len as u64;
    h2 ^= len as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    (h1, h2)
}

/// Hashes `data` with MurmurHash3 `x64_128` and the given `seed`,
/// returning the two 64-bit halves `(h1, h2)`.
///
/// ```rust
/// use cfd_hash::murmur::murmur3_x64_128;
/// // The reference implementation maps the empty string with seed 0 to zero.
/// assert_eq!(murmur3_x64_128(b"", 0), (0, 0));
/// ```
#[must_use]
pub fn murmur3_x64_128(data: &[u8], seed: u64) -> (u64, u64) {
    let len = data.len();
    let mut h1 = seed;
    let mut h2 = seed;

    let mut chunks = data.chunks_exact(16);
    for block in &mut chunks {
        let k1 = u64::from_le_bytes(block[0..8].try_into().expect("8-byte lane"));
        let k2 = u64::from_le_bytes(block[8..16].try_into().expect("8-byte lane"));
        block_round(&mut h1, &mut h2, k1, k2);
    }

    let tail = chunks.remainder();
    if !tail.is_empty() {
        let (k1, k2) = load_tail(tail);
        tail_round(&mut h1, &mut h2, k1, k2, tail.len());
    }

    finalize(h1, h2, len)
}

/// Convenience: the 64-bit half `h1` of [`murmur3_x64_128`].
#[inline]
#[must_use]
pub fn murmur3_64(data: &[u8], seed: u64) -> u64 {
    murmur3_x64_128(data, seed).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn empty_input_seed_zero_is_zero() {
        assert_eq!(murmur3_x64_128(b"", 0), (0, 0));
    }

    #[test]
    fn seed_changes_output() {
        let a = murmur3_x64_128(b"click", 0);
        let b = murmur3_x64_128(b"click", 1);
        assert_ne!(a, b);
    }

    #[test]
    fn all_tail_lengths_are_distinct_and_deterministic() {
        // Exercises every tail-length branch (0..=15 residual bytes) across
        // the 16-byte block boundary, twice for determinism.
        let data: Vec<u8> = (0u8..=63).collect();
        let mut seen = HashSet::new();
        for len in 0..=data.len() {
            let h = murmur3_x64_128(&data[..len], 0x1234);
            assert_eq!(h, murmur3_x64_128(&data[..len], 0x1234));
            assert!(seen.insert(h), "collision at len={len}");
        }
    }

    #[test]
    fn single_byte_difference_avalanches() {
        let base = b"advertiser=42&publisher=7&ip=203.0.113.9".to_vec();
        let (b1, b2) = murmur3_x64_128(&base, 0);
        for i in 0..base.len() {
            let mut alt = base.clone();
            alt[i] ^= 1;
            let (a1, a2) = murmur3_x64_128(&alt, 0);
            let dist = (a1 ^ b1).count_ones() + (a2 ^ b2).count_ones();
            assert!(
                (32..=96).contains(&dist),
                "weak diffusion at byte {i}: {dist}"
            );
        }
    }

    #[test]
    fn uniformity_chi_square_on_low_bits() {
        // Bucket h1 mod 256 over 65 536 counter keys; chi-square with 255
        // degrees of freedom should stay below a generous 99.9% bound.
        const BUCKETS: usize = 256;
        const SAMPLES: usize = 1 << 16;
        let mut counts = [0u32; BUCKETS];
        for i in 0..SAMPLES as u64 {
            let (h1, _) = murmur3_x64_128(&i.to_le_bytes(), 0);
            counts[(h1 as usize) % BUCKETS] += 1;
        }
        let expected = SAMPLES as f64 / BUCKETS as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = f64::from(c) - expected;
                d * d / expected
            })
            .sum();
        // 99.9th percentile of chi^2(255) is ~330.5.
        assert!(chi2 < 340.0, "chi2={chi2}");
    }

    #[test]
    fn no_collisions_over_half_million_counter_keys() {
        let mut seen = HashSet::with_capacity(500_000);
        for i in 0..500_000u64 {
            assert!(seen.insert(murmur3_x64_128(&i.to_le_bytes(), 7)));
        }
    }

    #[test]
    fn regression_anchors() {
        // Pinned outputs: the trace format and the reproducibility of every
        // experiment in EXPERIMENTS.md depend on these never changing.
        let cases: [(&[u8], u64); 4] = [
            (b"a", 0),
            (b"pay-per-click", 0),
            (b"0123456789abcdef", 99),           // exactly one block
            (b"0123456789abcdef0123456789", 99), // block + 10-byte tail
        ];
        let got: Vec<(u64, u64)> = cases.iter().map(|&(d, s)| murmur3_x64_128(d, s)).collect();
        let expected = expected_anchor_values();
        assert_eq!(got, expected);
    }

    /// Anchor values captured from the first verified run of this
    /// implementation (see EXPERIMENTS.md, "hash stability").
    fn expected_anchor_values() -> Vec<(u64, u64)> {
        vec![
            // (b"a", 0) agrees with the public MurmurHash3 x64_128 vector,
            // witnessing conformance of the whole implementation.
            (0x85555565F6597889, 0xE6B53A48510E895A),
            (0x6E445DEBF1B2FD89, 0x6A43F46C8391E45C),
            (0x8BB2A2A2E6AD400E, 0x6EBC04A1571E4F4A),
            (0xA46F43DDA5FFA634, 0xCD123C986F8EC943),
        ]
    }
}
