//! Multi-lane batch hashing: interleaved MurmurHash3 `x64_128` states.
//!
//! The scalar [`crate::murmur`] body is a serial dependency chain — every
//! multiply/rotate on `h1`/`h2` waits for the previous one — so a single
//! stream leaves most multiplier ports idle. This module hashes groups of
//! `L` equal-length keys in lockstep: the per-round state lives in `[u64; L]`
//! arrays and every round applies the same operation to all lanes, which is
//! plain SWAR-style safe Rust that LLVM unrolls and auto-vectorizes (and,
//! even un-vectorized, overlaps the independent dependency chains for
//! instruction-level parallelism).
//!
//! Every round calls the *same* `block_round`/`tail_round`/`finalize`
//! helpers as the scalar path, so the output is bit-identical to
//! [`crate::murmur::murmur3_x64_128`] by construction; a differential
//! proptest (`tests/lanes_props.rs`) verifies this over arbitrary keys and
//! seeds.
//!
//! The lane width is chosen at runtime: on `x86_64` with AVX2 available the
//! wide (8-lane) monomorphization is used, otherwise the narrow (4-lane)
//! one. Both are ordinary safe Rust — the feature check only selects how
//! much independent state is kept in flight, it does not gate intrinsics.

use crate::murmur::{block_round, finalize, load_tail, murmur3_x64_128, tail_round};
use crate::pair::HashPair;

/// Validates a flat fixed-stride key buffer.
#[inline]
fn check_flat(data: &[u8], key_len: usize) {
    assert!(key_len > 0, "key_len must be non-zero");
    assert_eq!(
        data.len() % key_len,
        0,
        "flat key buffer length {} is not a multiple of key_len {}",
        data.len(),
        key_len
    );
}

/// Lane count of the narrow (portable default) path.
pub const LANES_NARROW: usize = 4;
/// Lane count of the wide path used when AVX2 is detected at runtime.
pub const LANES_WIDE: usize = 8;

/// Returns the lane width the batch entry points will use on this machine.
///
/// `CFD_FORCE_SCALAR` (any non-empty value other than `0`, read once
/// per process) pins the narrow width even when AVX2 is available —
/// the same fallback override honored by `cfd_bits::simd`, so one
/// environment knob exercises every portable path at once.
#[must_use]
pub fn preferred_lanes() -> usize {
    use std::sync::OnceLock;
    static FORCE_NARROW: OnceLock<bool> = OnceLock::new();
    let forced = *FORCE_NARROW
        .get_or_init(|| std::env::var("CFD_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0"));
    #[cfg(target_arch = "x86_64")]
    {
        if !forced && std::arch::is_x86_feature_detected!("avx2") {
            return LANES_WIDE;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = forced;
    LANES_NARROW
}

/// Hashes `L` equal-length keys in lockstep, returning one pair per lane.
#[inline]
fn hash_group<const L: usize>(keys: [&[u8]; L], seed: u64) -> [(u64, u64); L] {
    let len = keys[0].len();
    debug_assert!(keys.iter().all(|k| k.len() == len));

    let mut h1 = [seed; L];
    let mut h2 = [seed; L];

    let blocks = len / 16;
    for b in 0..blocks {
        let off = b * 16;
        for l in 0..L {
            let k1 = u64::from_le_bytes(keys[l][off..off + 8].try_into().expect("8-byte lane"));
            let k2 =
                u64::from_le_bytes(keys[l][off + 8..off + 16].try_into().expect("8-byte lane"));
            block_round(&mut h1[l], &mut h2[l], k1, k2);
        }
    }

    let tail_len = len - blocks * 16;
    if tail_len > 0 {
        for l in 0..L {
            let (k1, k2) = load_tail(&keys[l][blocks * 16..]);
            tail_round(&mut h1[l], &mut h2[l], k1, k2, tail_len);
        }
    }

    let mut out = [(0u64, 0u64); L];
    for l in 0..L {
        out[l] = finalize(h1[l], h2[l], len);
    }
    out
}

#[inline]
fn flat_with<const L: usize>(data: &[u8], key_len: usize, seed: u64, f: &mut impl FnMut(HashPair)) {
    let n = data.len() / key_len;
    let full = n - n % L;
    let mut i = 0;
    while i < full {
        let keys: [&[u8]; L] =
            core::array::from_fn(|l| &data[(i + l) * key_len..(i + l + 1) * key_len]);
        for (h1, h2) in hash_group::<L>(keys, seed) {
            f(HashPair::new(h1, h2));
        }
        i += L;
    }
    for j in full..n {
        let (h1, h2) = murmur3_x64_128(&data[j * key_len..(j + 1) * key_len], seed);
        f(HashPair::new(h1, h2));
    }
}

/// Group-granular slice filler: `out[i] = conv(pair_of_key_i)`.
///
/// Writing whole `L`-sized groups straight into a pre-sized slice keeps
/// the lockstep kernel free of the per-element capacity check + branch a
/// `Vec::push` callback would reintroduce — that branch alone costs the
/// batch path most of its lead over the scalar loop.
#[inline]
fn flat_fill<T, const L: usize>(
    data: &[u8],
    key_len: usize,
    seed: u64,
    out: &mut [T],
    conv: &impl Fn(HashPair) -> T,
) {
    debug_assert_eq!(out.len(), data.len() / key_len);
    let blocks = key_len / 16;
    let tail_len = key_len - blocks * 16;
    let mut groups = data.chunks_exact(key_len * L);
    let mut slots = out.chunks_exact_mut(L);
    for (group, slot) in (&mut groups).zip(&mut slots) {
        let mut h1 = [seed; L];
        let mut h2 = [seed; L];
        for b in 0..blocks {
            let off = b * 16;
            for (l, key) in group.chunks_exact(key_len).enumerate() {
                let k1 = u64::from_le_bytes(key[off..off + 8].try_into().expect("8-byte lane"));
                let k2 =
                    u64::from_le_bytes(key[off + 8..off + 16].try_into().expect("8-byte lane"));
                block_round(&mut h1[l], &mut h2[l], k1, k2);
            }
        }
        if tail_len > 0 {
            for (l, key) in group.chunks_exact(key_len).enumerate() {
                let (k1, k2) = load_tail(&key[blocks * 16..]);
                tail_round(&mut h1[l], &mut h2[l], k1, k2, tail_len);
            }
        }
        for (l, s) in slot.iter_mut().enumerate() {
            let (a, b) = finalize(h1[l], h2[l], key_len);
            *s = conv(HashPair::new(a, b));
        }
    }
    for (key, slot) in groups
        .remainder()
        .chunks_exact(key_len)
        .zip(slots.into_remainder())
    {
        let (h1, h2) = murmur3_x64_128(key, seed);
        *slot = conv(HashPair::new(h1, h2));
    }
}

/// [`flat_fill`] specialized to 16-byte keys — the stride the pipeline's
/// flat click-key buffers use. With the single block and empty tail known
/// at compile time, `chunks_exact(16)` loads compile to unchecked 8-byte
/// reads and the whole group kernel stays branch-free.
#[inline]
fn flat_fill16<T, const L: usize>(
    data: &[u8],
    seed: u64,
    out: &mut [T],
    conv: &impl Fn(HashPair) -> T,
) {
    debug_assert_eq!(out.len(), data.len() / 16);
    let mut groups = data.chunks_exact(16 * L);
    let mut slots = out.chunks_exact_mut(L);
    for (group, slot) in (&mut groups).zip(&mut slots) {
        let mut h1 = [seed; L];
        let mut h2 = [seed; L];
        for (l, key) in group.chunks_exact(16).enumerate() {
            let k1 = u64::from_le_bytes(key[..8].try_into().expect("8-byte lane"));
            let k2 = u64::from_le_bytes(key[8..16].try_into().expect("8-byte lane"));
            block_round(&mut h1[l], &mut h2[l], k1, k2);
        }
        for (l, s) in slot.iter_mut().enumerate() {
            let (a, b) = finalize(h1[l], h2[l], 16);
            *s = conv(HashPair::new(a, b));
        }
    }
    for (key, slot) in groups
        .remainder()
        .chunks_exact(16)
        .zip(slots.into_remainder())
    {
        let (h1, h2) = murmur3_x64_128(key, seed);
        *slot = conv(HashPair::new(h1, h2));
    }
}

/// Hashes a flat buffer of fixed-stride keys, writing `conv(pair)` for
/// key `i` into `out[i]`. `out` must hold exactly one slot per key; the
/// caller sizes it (e.g. `Vec::resize`) so the hot loop carries no
/// per-element capacity check — the main reason this beats pushing from
/// a [`hash_flat_with`] callback.
///
/// This is the engine behind [`hash_flat_into`] and the batch planners
/// ([`crate::Planner::plan_flat_into`], shard routing in `cfd-core`).
///
/// # Panics
/// If `key_len == 0`, `data.len()` is not a multiple of `key_len`, or
/// `out.len() != data.len() / key_len`.
pub fn fill_flat_pairs<T>(
    data: &[u8],
    key_len: usize,
    seed: u64,
    out: &mut [T],
    conv: impl Fn(HashPair) -> T,
) {
    check_flat(data, key_len);
    assert_eq!(
        out.len(),
        data.len() / key_len,
        "output slice must hold exactly one slot per key"
    );
    let wide = preferred_lanes() == LANES_WIDE;
    match (key_len, wide) {
        (16, true) => flat_fill16::<T, LANES_WIDE>(data, seed, out, &conv),
        (16, false) => flat_fill16::<T, LANES_NARROW>(data, seed, out, &conv),
        (_, true) => flat_fill::<T, LANES_WIDE>(data, key_len, seed, out, &conv),
        (_, false) => flat_fill::<T, LANES_NARROW>(data, key_len, seed, out, &conv),
    }
}

#[inline]
fn refs_with<const L: usize>(ids: &[&[u8]], seed: u64, f: &mut impl FnMut(HashPair)) {
    let n = ids.len();
    let mut i = 0;
    while i < n {
        // Group a run of L consecutive equal-length keys; fall back to the
        // scalar path one key at a time when lengths differ.
        if i + L <= n {
            let len0 = ids[i].len();
            if ids[i + 1..i + L].iter().all(|k| k.len() == len0) {
                let keys: [&[u8]; L] = core::array::from_fn(|l| ids[i + l]);
                for (h1, h2) in hash_group::<L>(keys, seed) {
                    f(HashPair::new(h1, h2));
                }
                i += L;
                continue;
            }
        }
        let (h1, h2) = murmur3_x64_128(ids[i], seed);
        f(HashPair::new(h1, h2));
        i += 1;
    }
}

/// Hashes a flat buffer of `data.len() / key_len` keys packed end-to-end at
/// a fixed stride of `key_len` bytes, invoking `f` with one [`HashPair`]
/// per key in order.
///
/// This is the allocation-free primitive the batch planners build on.
///
/// # Panics
/// If `key_len == 0` or `data.len()` is not a multiple of `key_len`.
pub fn hash_flat_with(data: &[u8], key_len: usize, seed: u64, mut f: impl FnMut(HashPair)) {
    check_flat(data, key_len);
    if preferred_lanes() == LANES_WIDE {
        flat_with::<LANES_WIDE>(data, key_len, seed, &mut f);
    } else {
        flat_with::<LANES_NARROW>(data, key_len, seed, &mut f);
    }
}

/// Hashes a batch of independent keys, invoking `f` with one [`HashPair`]
/// per key in order. Runs of consecutive equal-length keys are hashed in
/// multi-lane lockstep; stragglers take the scalar path.
pub fn hash_refs_with(ids: &[&[u8]], seed: u64, mut f: impl FnMut(HashPair)) {
    if preferred_lanes() == LANES_WIDE {
        refs_with::<LANES_WIDE>(ids, seed, &mut f);
    } else {
        refs_with::<LANES_NARROW>(ids, seed, &mut f);
    }
}

/// [`hash_flat_with`] collecting into `out` (cleared first; capacity reused).
///
/// Faster than pushing from a callback: `out` is sized once and filled a
/// whole lane-group at a time, so the hot loop carries no capacity check.
pub fn hash_flat_into(data: &[u8], key_len: usize, seed: u64, out: &mut Vec<HashPair>) {
    check_flat(data, key_len);
    // resize (not clear+resize): a reused buffer of the right length is a
    // no-op here, and fill overwrites every slot regardless.
    out.resize(data.len() / key_len, HashPair::new(0, 0));
    fill_flat_pairs(data, key_len, seed, out, |p| p);
}

/// [`hash_refs_with`] collecting into `out` (cleared first; capacity reused).
pub fn hash_refs_into(ids: &[&[u8]], seed: u64, out: &mut Vec<HashPair>) {
    out.clear();
    hash_refs_with(ids, seed, |p| out.push(p));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::{Murmur3Pair, PairHasher};

    fn scalar(data: &[u8], seed: u64) -> HashPair {
        Murmur3Pair::new(seed).hash_pair(data)
    }

    #[test]
    fn flat_matches_scalar_for_all_group_remainders() {
        // 0..=17 keys covers full groups plus every remainder for both lane
        // widths (4 and 8).
        for n in 0..=17usize {
            let key_len = 16;
            let mut data = Vec::new();
            for i in 0..n {
                let mut key = [0u8; 16];
                key[..8].copy_from_slice(&(i as u64).to_le_bytes());
                key[8..].copy_from_slice(&(!(i as u64)).to_le_bytes());
                data.extend_from_slice(&key);
            }
            let mut got = Vec::new();
            hash_flat_into(&data, key_len, 0xABCD, &mut got);
            let want: Vec<HashPair> = (0..n)
                .map(|i| scalar(&data[i * key_len..(i + 1) * key_len], 0xABCD))
                .collect();
            assert_eq!(got, want, "mismatch at n={n}");
        }
    }

    #[test]
    fn refs_mixed_lengths_match_scalar() {
        let ids: Vec<Vec<u8>> = (0..37usize).map(|i| vec![i as u8; i % 23]).collect();
        let refs: Vec<&[u8]> = ids.iter().map(Vec::as_slice).collect();
        let mut got = Vec::new();
        hash_refs_into(&refs, 7, &mut got);
        let want: Vec<HashPair> = refs.iter().map(|id| scalar(id, 7)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn both_lane_widths_agree_with_scalar() {
        let data: Vec<u8> = (0..16 * 11).map(|i| i as u8).collect();
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            let mut narrow = Vec::new();
            let mut wide = Vec::new();
            flat_with::<LANES_NARROW>(&data, 16, seed, &mut |p| narrow.push(p));
            flat_with::<LANES_WIDE>(&data, 16, seed, &mut |p| wide.push(p));
            let want: Vec<HashPair> = data.chunks_exact(16).map(|k| scalar(k, seed)).collect();
            assert_eq!(narrow, want);
            assert_eq!(wide, want);
        }
    }

    #[test]
    #[should_panic(expected = "multiple of key_len")]
    fn flat_rejects_ragged_buffer() {
        hash_flat_with(&[0u8; 17], 16, 0, |_| {});
    }
}
