//! FNV-1a hashing (64-bit).
//!
//! Fowler–Noll–Vo is used here for cheap seeding and for hashing short
//! keys where MurmurHash3's setup cost is not warranted. It is *not* used
//! for Bloom-filter index derivation (its avalanche quality is too weak);
//! see [`crate::murmur`] for that.

/// The FNV-1a 64-bit offset basis.
pub const FNV64_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// The FNV-1a 64-bit prime.
pub const FNV64_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Hashes `data` with FNV-1a (64-bit).
///
/// ```rust
/// use cfd_hash::fnv::fnv1a_64;
/// assert_eq!(fnv1a_64(b""), 0xCBF2_9CE4_8422_2325);
/// ```
#[inline]
#[must_use]
pub fn fnv1a_64(data: &[u8]) -> u64 {
    fnv1a_64_with(FNV64_OFFSET, data)
}

/// Hashes `data` with FNV-1a, continuing from `state`.
///
/// Allows incremental hashing of multi-part keys without concatenation:
///
/// ```rust
/// use cfd_hash::fnv::{fnv1a_64, fnv1a_64_with};
/// let whole = fnv1a_64(b"ab");
/// let parts = fnv1a_64_with(fnv1a_64(b"a"), b"b");
/// assert_eq!(whole, parts);
/// ```
#[inline]
#[must_use]
pub fn fnv1a_64_with(state: u64, data: &[u8]) -> u64 {
    let mut h = state;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_F739_67E8);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"pay-per-click stream";
        for split in 0..data.len() {
            let (l, r) = data.split_at(split);
            assert_eq!(fnv1a_64_with(fnv1a_64(l), r), fnv1a_64(data));
        }
    }

    #[test]
    fn distinct_short_keys_do_not_collide() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..50_000u32 {
            assert!(seen.insert(fnv1a_64(&i.to_le_bytes())));
        }
    }
}
