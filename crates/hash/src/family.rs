//! Hash-function families: `k` indices in `[0, m)` per key.

use crate::indices::{fill_indices, IndexSequence};
use crate::pair::{HashPair, Murmur3Pair, PairHasher};

/// A family of hash functions mapping a key to `k` table indices.
///
/// This is the exact abstraction the paper's algorithms consume: "each
/// element is inserted ... by hashing it using `k` independent uniform
/// hash functions with range `{1, ..., m}`" (§2.1). Implementations must
/// be deterministic for a fixed construction seed.
pub trait HashFamily {
    /// Returns an iterator over the `k` indices of `key` in `[0, m)`.
    fn indices(&self, key: &[u8], k: usize, m: usize) -> IndexSequence;

    /// Writes the `out.len()` indices of `key` into `out` (hot-path form).
    fn fill(&self, key: &[u8], m: usize, out: &mut [usize]);

    /// Hashes the key once to its reusable [`HashPair`].
    fn pair(&self, key: &[u8]) -> HashPair;
}

/// The default family: one MurmurHash3 `x64_128` evaluation per key,
/// expanded to `k` indices by enhanced double hashing.
///
/// Per Kirsch & Mitzenmacher (2006) this preserves the Bloom-filter
/// false-positive analysis while hashing each key exactly once —
/// important because the paper counts per-element *operations*, and
/// hashing dominates when `k` is large.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoubleHashFamily {
    hasher: Murmur3Pair,
}

impl DoubleHashFamily {
    /// Creates a family from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            hasher: Murmur3Pair::new(seed),
        }
    }

    /// The seed used to construct this family.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.hasher.seed()
    }
}

impl Default for DoubleHashFamily {
    fn default() -> Self {
        Self::new(0)
    }
}

impl HashFamily for DoubleHashFamily {
    #[inline]
    fn indices(&self, key: &[u8], k: usize, m: usize) -> IndexSequence {
        IndexSequence::new(self.hasher.hash_pair(key), k, m)
    }

    #[inline]
    fn fill(&self, key: &[u8], m: usize, out: &mut [usize]) {
        fill_indices(self.hasher.hash_pair(key), m, out);
    }

    #[inline]
    fn pair(&self, key: &[u8]) -> HashPair {
        self.hasher.hash_pair(key)
    }
}

/// A family of `k` *independently seeded* MurmurHash3 evaluations.
///
/// Slower than [`DoubleHashFamily`] (one full hash per index). Exists for
/// the DESIGN.md §6 ablation: the false-positive rate of the detectors
/// must be statistically indistinguishable between the two families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndependentHashFamily {
    seed: u64,
}

impl IndependentHashFamily {
    /// Creates a family from a base seed; index `i` uses a derived seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    fn seed_for(&self, i: usize) -> u64 {
        crate::mix::splitmix64(self.seed ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// The `i`-th index of `key` in `[0, m)`.
    #[must_use]
    pub fn index(&self, key: &[u8], i: usize, m: usize) -> usize {
        assert!(m > 0, "table size m must be positive");
        let (h1, _) = crate::murmur::murmur3_x64_128(key, self.seed_for(i));
        (h1 % m as u64) as usize
    }
}

impl HashFamily for IndependentHashFamily {
    fn indices(&self, key: &[u8], k: usize, m: usize) -> IndexSequence {
        // IndexSequence is double-hash shaped; for the independent family
        // we fall back to materializing via `fill` semantics. To keep the
        // trait object-safe and allocation-free we derive a pair from two
        // independent evaluations — callers needing the fully independent
        // behaviour use `fill`.
        let _ = (k, m);
        IndexSequence::new(self.pair(key), k, m)
    }

    fn fill(&self, key: &[u8], m: usize, out: &mut [usize]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.index(key, i, m);
        }
    }

    fn pair(&self, key: &[u8]) -> HashPair {
        let (a, _) = crate::murmur::murmur3_x64_128(key, self.seed_for(0));
        let (b, _) = crate::murmur::murmur3_x64_128(key, self.seed_for(1));
        HashPair::new(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_family_is_deterministic() {
        let f = DoubleHashFamily::new(1);
        let a: Vec<usize> = f.indices(b"x", 6, 999).collect();
        let b: Vec<usize> = f.indices(b"x", 6, 999).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn fill_matches_indices_for_double_family() {
        let f = DoubleHashFamily::new(9);
        let via_iter: Vec<usize> = f.indices(b"key", 5, 4096).collect();
        let mut buf = [0usize; 5];
        f.fill(b"key", 4096, &mut buf);
        assert_eq!(via_iter, buf);
    }

    #[test]
    fn independent_family_indices_differ_per_slot_seed() {
        let f = IndependentHashFamily::new(2);
        let i0 = f.index(b"abc", 0, 1 << 20);
        let i1 = f.index(b"abc", 1, 1 << 20);
        let i2 = f.index(b"abc", 2, 1 << 20);
        assert!(i0 != i1 || i1 != i2, "independent seeds collapsed");
    }

    #[test]
    fn families_differ_but_both_cover_range() {
        let d = DoubleHashFamily::new(3);
        let ind = IndependentHashFamily::new(3);
        let mut bd = [0usize; 8];
        let mut bi = [0usize; 8];
        d.fill(b"id", 100, &mut bd);
        ind.fill(b"id", 100, &mut bi);
        assert!(bd.iter().all(|&x| x < 100));
        assert!(bi.iter().all(|&x| x < 100));
    }

    #[test]
    fn trait_objects_are_usable() {
        let fams: Vec<Box<dyn HashFamily>> = vec![
            Box::new(DoubleHashFamily::new(4)),
            Box::new(IndependentHashFamily::new(4)),
        ];
        for f in &fams {
            let mut buf = [0usize; 3];
            f.fill(b"obj", 77, &mut buf);
            assert!(buf.iter().all(|&x| x < 77));
        }
    }
}
