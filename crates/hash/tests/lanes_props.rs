//! Differential property tests: the multi-lane batch hashing path must
//! produce bit-identical [`HashPair`]s to the scalar MurmurHash3 path for
//! arbitrary ids and seeds — the detectors' correctness (zero false
//! negatives, reproducible probe sequences) depends on the two paths being
//! interchangeable.

use cfd_hash::lanes::{hash_flat_into, hash_refs_into, preferred_lanes};
use cfd_hash::pair::{HashPair, Murmur3Pair, PairHasher};
use cfd_hash::Planner;
use proptest::prelude::*;

proptest! {
    /// Flat fixed-stride batches: every key's pair equals the scalar hash
    /// of the same bytes, for arbitrary key contents, counts (covering
    /// full lane groups and remainders), strides, and seeds.
    #[test]
    fn flat_batches_match_scalar(
        seed in any::<u64>(),
        key_len in 1usize..40,
        n in 0usize..40,
        fill in any::<u64>(),
    ) {
        let data: Vec<u8> = (0..n * key_len)
            .map(|i| (fill.wrapping_mul(i as u64 + 1) >> 13) as u8)
            .collect();
        let hasher = Murmur3Pair::new(seed);
        let mut got = Vec::new();
        hash_flat_into(&data, key_len, seed, &mut got);
        let want: Vec<HashPair> = data
            .chunks_exact(key_len)
            .map(|key| hasher.hash_pair(key))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Ragged batches of independent ids (arbitrary lengths, so the
    /// grouping logic mixes lockstep runs with scalar stragglers).
    #[test]
    fn ragged_batches_match_scalar(
        seed in any::<u64>(),
        ids in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 0..40),
    ) {
        let refs: Vec<&[u8]> = ids.iter().map(Vec::as_slice).collect();
        let hasher = Murmur3Pair::new(seed);
        let mut got = Vec::new();
        hash_refs_into(&refs, seed, &mut got);
        let want: Vec<HashPair> = refs.iter().map(|id| hasher.hash_pair(id)).collect();
        prop_assert_eq!(got, want);
    }

    /// The planner's batch entry points agree with per-id `plan` — this is
    /// the contract the detectors' batch observe paths rely on.
    #[test]
    fn planner_flat_matches_per_id_plan(
        seed in any::<u64>(),
        keys in prop::collection::vec((any::<u64>(), any::<u64>()), 0..40),
    ) {
        let planner = Planner::new(seed);
        let keys: Vec<[u8; 16]> = keys
            .into_iter()
            .map(|(a, b)| {
                let mut key = [0u8; 16];
                key[..8].copy_from_slice(&a.to_le_bytes());
                key[8..].copy_from_slice(&b.to_le_bytes());
                key
            })
            .collect();
        let flat: Vec<u8> = keys.iter().flatten().copied().collect();
        let mut got = Vec::new();
        planner.plan_flat_into(&flat, 16, &mut got);
        let want: Vec<_> = keys.iter().map(|k| planner.plan(k)).collect();
        prop_assert_eq!(got, want);
    }
}

#[test]
fn preferred_lanes_is_a_supported_width() {
    let lanes = preferred_lanes();
    assert!(lanes == 4 || lanes == 8, "unexpected lane width {lanes}");
}
