//! Property tests for the blocked probe derivation: every offset of a
//! [`BlockPlan`] must land inside one 64-byte line, and the first
//! `min(k, slots)` probes must be distinct.

use cfd_hash::block::LINE_BITS;
use cfd_hash::pair::{Murmur3Pair, PairHasher};
use cfd_hash::{BlockGeometry, BlockPlan};
use proptest::prelude::*;

proptest! {
    /// The span of an element's probed bits never exceeds one 512-bit
    /// cache line, for any slot width and table size the geometry
    /// accepts.
    #[test]
    fn offsets_stay_within_one_line(
        seed in any::<u64>(),
        key in any::<u64>(),
        slot_bits in 1usize..200,
        m_shift in 8usize..22,
        k in 1usize..16,
    ) {
        let m = 1usize << m_shift;
        if let Some(geo) = BlockGeometry::for_line(m, slot_bits) {
            let pair = Murmur3Pair::new(seed).hash_pair_u64(key);
            let mut idx = vec![0usize; k];
            BlockPlan::new(pair, &geo).fill(&mut idx);
            let first_bit = idx.iter().map(|&i| i * slot_bits).min().unwrap();
            let last_bit = idx.iter().map(|&i| (i + 1) * slot_bits).max().unwrap();
            prop_assert!(
                last_bit - first_bit <= LINE_BITS,
                "probe span {} bits exceeds a cache line", last_bit - first_bit
            );
            prop_assert!(idx.iter().all(|&i| i < geo.covered_slots()));
        }
    }

    /// Plain double hashing with an odd stride over the power-of-two
    /// block makes the first `min(k, slots)` probes distinct.
    #[test]
    fn first_probes_are_distinct(
        seed in any::<u64>(),
        key in any::<u64>(),
        slot_bits in 1usize..200,
        k in 1usize..16,
    ) {
        if let Some(geo) = BlockGeometry::for_line(1 << 20, slot_bits) {
            let pair = Murmur3Pair::new(seed).hash_pair_u64(key);
            let take = k.min(geo.slots());
            let mut idx = vec![0usize; take];
            BlockPlan::new(pair, &geo).fill(&mut idx);
            idx.sort_unstable();
            let len = idx.len();
            idx.dedup();
            prop_assert_eq!(idx.len(), len, "repeated probe inside a block");
        }
    }
}
