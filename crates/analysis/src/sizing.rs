//! Inverse solvers: memory required for a target false-positive rate.

use crate::{counting_scheme, gbf, tbf};
use cfd_bloom::params::optimal_k;
use serde::{Deserialize, Serialize};

/// A sizing recommendation for one algorithm at one operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sizing {
    /// Table size: bits per filter (GBF) or entries (TBF) or counters
    /// (\[21\]).
    pub m: usize,
    /// Recommended hash count.
    pub k: usize,
    /// Predicted FP rate at that size.
    pub predicted_fp: f64,
    /// Total memory in bits, including structural overhead (the `Q+1`-th
    /// GBF filter, TBF entry width, \[21\] counter width).
    pub total_bits: usize,
}

/// Smallest per-filter `m` (bits) for a GBF over `(n, q)` to stay at or
/// below `target_fp`, probing with the optimal `k` at each size.
///
/// # Panics
///
/// Panics if `target_fp` is not in `(0, 1)` or `q == 0`.
#[must_use]
pub fn gbf_sizing(n: usize, q: usize, target_fp: f64) -> Sizing {
    assert!(q > 0, "q must be positive");
    assert!(
        (0.0..1.0).contains(&target_fp) && target_fp > 0.0,
        "bad target"
    );
    let n_sub = n.div_ceil(q);
    let m = binary_search_m(
        |m| {
            let k = optimal_k(m, n_sub);
            gbf::fp_worst_case(m, k, n, q)
        },
        target_fp,
    );
    let k = optimal_k(m, n_sub);
    Sizing {
        m,
        k,
        predicted_fp: gbf::fp_worst_case(m, k, n, q),
        total_bits: m * (q + 1),
    }
}

/// Smallest entry count `m` for a sliding-window TBF over `n` to stay at
/// or below `target_fp` (entry width for the default `C = N − 1`).
///
/// # Panics
///
/// Panics if `target_fp` is not in `(0, 1)` or `n < 2`.
#[must_use]
pub fn tbf_sizing(n: usize, target_fp: f64) -> Sizing {
    assert!(n >= 2, "window too small");
    assert!(
        (0.0..1.0).contains(&target_fp) && target_fp > 0.0,
        "bad target"
    );
    let m = binary_search_m(
        |m| {
            let k = optimal_k(m, n);
            tbf::fp_sliding(m, k, n)
        },
        target_fp,
    );
    let k = optimal_k(m, n);
    let entry_bits = 64 - (2 * n as u64 - 1).leading_zeros() as usize;
    Sizing {
        m,
        k,
        predicted_fp: tbf::fp_sliding(m, k, n),
        total_bits: m * entry_bits,
    }
}

/// Smallest counter count `m` for the \[21\] scheme over `(n, q)` to stay
/// at or below `target_fp` (the answer explodes for small targets —
/// that is Fig. 1's point).
///
/// # Panics
///
/// Panics if `target_fp` is not in `(0, 1)` or `q == 0`.
#[must_use]
pub fn counting_scheme_sizing(n: usize, q: usize, target_fp: f64) -> Sizing {
    assert!(q > 0, "q must be positive");
    assert!(
        (0.0..1.0).contains(&target_fp) && target_fp > 0.0,
        "bad target"
    );
    let m = binary_search_m(
        |m| {
            let k = optimal_k(m, n);
            counting_scheme::fp_same_m(m, k, n)
        },
        target_fp,
    );
    let k = optimal_k(m, n);
    // Worst-case-safe counter widths as in §3.3: log(N/Q) per sub-window
    // counter (Q filters) + log(N) for the main filter.
    let sub_bits = 64 - ((n.div_ceil(q)) as u64).leading_zeros() as usize;
    let main_bits = 64 - (n as u64).leading_zeros() as usize;
    Sizing {
        m,
        k,
        predicted_fp: counting_scheme::fp_same_m(m, k, n),
        total_bits: m * (q * sub_bits + main_bits),
    }
}

/// A per-tenant memory budget for the multi-tenant arena.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantBudget {
    /// TBF entries per tenant region (`m_t`).
    pub entries: usize,
    /// Recommended hash count.
    pub k: usize,
    /// Predicted per-tenant FP rate when the tenant's window is full.
    pub predicted_fp: f64,
    /// Payload bits of one region (`m_t · entry_bits`).
    pub payload_bits: usize,
    /// Budgeted bytes per tenant: the payload rounded up to whole
    /// 64-byte cache lines — the slab stride the arena actually pays.
    pub bytes_per_tenant: usize,
}

/// Sizes one arena tenant: the smallest sliding-window TBF region over
/// a per-tenant window of `n` that stays at or below `target_fp`, plus
/// the cache-line-rounded stride the arena's slab charges for it. This
/// is the budget the `cfd-bench-tenants` gate holds the measured
/// amortized bytes/tenant against.
///
/// # Panics
///
/// Panics if `target_fp` is not in `(0, 1)` or `n < 2`.
#[must_use]
pub fn arena_tenant_budget(n: usize, target_fp: f64) -> TenantBudget {
    let sizing = tbf_sizing(n, target_fp);
    let bytes_per_line = 64;
    let lines = sizing.total_bits.div_ceil(8 * bytes_per_line);
    TenantBudget {
        entries: sizing.m,
        k: sizing.k,
        predicted_fp: sizing.predicted_fp,
        payload_bits: sizing.total_bits,
        bytes_per_tenant: lines.max(1) * bytes_per_line,
    }
}

/// Doubling + bisection search for the smallest `m` with
/// `fp(m) <= target`.
fn binary_search_m(fp: impl Fn(usize) -> f64, target: f64) -> usize {
    let mut hi = 64usize;
    while fp(hi) > target {
        hi = hi.checked_mul(2).expect("sizing overflow");
    }
    let mut lo = hi / 2;
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if fp(mid) <= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizings_meet_their_targets() {
        let g = gbf_sizing(1 << 16, 8, 0.01);
        assert!(g.predicted_fp <= 0.01);
        let t = tbf_sizing(1 << 16, 0.01);
        assert!(t.predicted_fp <= 0.01);
        let c = counting_scheme_sizing(1 << 16, 8, 0.01);
        assert!(c.predicted_fp <= 0.01);
    }

    #[test]
    fn sizings_are_minimal_ish() {
        let g = gbf_sizing(1 << 14, 4, 0.01);
        let k = optimal_k(g.m / 2, (1 << 14) / 4);
        assert!(
            crate::gbf::fp_worst_case(g.m / 2, k, 1 << 14, 4) > 0.01,
            "half the memory should miss the target"
        );
    }

    #[test]
    fn tighter_targets_cost_more_memory() {
        let loose = tbf_sizing(1 << 14, 0.01);
        let tight = tbf_sizing(1 << 14, 0.0001);
        assert!(tight.m > loose.m);
        assert!(tight.total_bits > loose.total_bits);
    }

    #[test]
    fn counting_scheme_needs_more_memory_than_gbf() {
        // Same window, same target: the [21] scheme pays for counters and
        // a full-N main filter.
        let g = gbf_sizing(1 << 16, 31, 0.001);
        let c = counting_scheme_sizing(1 << 16, 31, 0.001);
        assert!(
            c.total_bits > g.total_bits,
            "counting {} <= gbf {}",
            c.total_bits,
            g.total_bits
        );
    }

    #[test]
    #[should_panic(expected = "bad target")]
    fn bad_target_panics() {
        let _ = tbf_sizing(100, 0.0);
    }

    #[test]
    fn arena_tenant_budget_rounds_to_cache_lines() {
        let b = arena_tenant_budget(32, 0.01);
        assert!(b.predicted_fp <= 0.01);
        assert_eq!(b.bytes_per_tenant % 64, 0);
        assert!(b.bytes_per_tenant * 8 >= b.payload_bits);
        assert!(
            b.bytes_per_tenant * 8 < b.payload_bits + 512,
            "at most one spare line"
        );
        // Wider windows cost more bytes per tenant.
        assert!(arena_tenant_budget(1 << 10, 0.01).bytes_per_tenant > b.bytes_per_tenant);
    }
}
