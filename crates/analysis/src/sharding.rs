//! Closed-form model of keyspace-sharded detection
//! (`cfd-core::sharded::ShardedDetector`).
//!
//! Sharding routes each id to one of `S` detectors sized `n_s = N/S`.
//! Two questions matter:
//!
//! 1. **False positives.** Unchanged in form: a shard holds `1/S` of the
//!    live elements in `1/S` of the memory, so its Bloom load — and thus
//!    the per-probe FP rate — equals the unsharded detector's. See
//!    [`fp_sliding_sharded`].
//!
//! 2. **Coverage.** A shard's count window advances only on same-shard
//!    arrivals. A global-stream duplicate at gap `g` (i.e. `g − 1`
//!    intervening elements) is still inside its shard's window iff fewer
//!    than `n_s` of those interveners routed to the same shard. With a
//!    uniform router that count is `Binomial(g − 1, 1/S)`, giving the
//!    closed form of [`coverage_at_gap`]. Coverage is 1 for `g ≤ n_s`
//!    (zero false negatives can never degrade below the shard's own
//!    window) and decays around `g ≈ N` with width `O(√(N/S))` — the
//!    price of parallelism is a *soft* window edge, never a missed
//!    in-shard duplicate.

use crate::tbf::fp_sliding;

/// Per-shard window under the `N/S` sizing rule (≥ 2, matching
/// `cfd-core::sharded::per_shard_window`).
#[must_use]
pub fn per_shard_window(n: usize, shards: usize) -> usize {
    n.div_ceil(shards.max(1)).max(2)
}

/// Steady-state per-probe FP rate of a sharded TBF where each of the
/// `shards` shards has `m / shards` entries and window `N / shards`.
///
/// Equal to the unsharded rate up to integer rounding: load per entry is
/// invariant under splitting both numerator and denominator by `S`.
#[must_use]
pub fn fp_sliding_sharded(m: usize, k: usize, n: usize, shards: usize) -> f64 {
    let s = shards.max(1);
    fp_sliding(m.div_ceil(s), k, per_shard_window(n, s))
}

/// Probability that a duplicate at global gap `g` (elements since the
/// valid click, `g ≥ 1`) is still covered by its shard's window.
///
/// `P[Binomial(g − 1, 1/S) ≤ n_s − 1]`: at most `n_s − 1` of the `g − 1`
/// intervening elements may share the duplicate's shard, otherwise the
/// valid click has slid out. Computed by the stable recurrence for the
/// binomial CDF; exact up to floating-point rounding.
#[must_use]
pub fn coverage_at_gap(n: usize, shards: usize, g: u64) -> f64 {
    assert!(g >= 1, "gap counts elements since the valid click");
    let s = shards.max(1);
    let n_s = per_shard_window(n, s) as u64;
    let trials = g - 1;
    if trials < n_s {
        return 1.0; // fewer interveners than the shard window holds
    }
    if s == 1 {
        return 0.0; // trials >= n_s with every element in-shard
    }
    let p = 1.0 / s as f64;
    let q = 1.0 - p;
    // Log-space recurrence (robust for huge windows, where the pmf of
    // early terms underflows): ln P[X=0] = trials·ln q, then
    // ln P[X=j] = ln P[X=j−1] + ln((trials−j+1)/j) + ln(p/q).
    let ln_pq = (p / q).ln();
    let mut ln_pmf = trials as f64 * q.ln();
    let mut cdf = ln_pmf.exp();
    let mode = trials as f64 * p;
    for j in 1..n_s {
        ln_pmf += ((trials - j + 1) as f64 / j as f64).ln() + ln_pq;
        cdf += ln_pmf.exp();
        if j as f64 > mode && ln_pmf < -745.0 {
            break; // past the mode and below f64 resolution: converged
        }
    }
    cdf.min(1.0)
}

/// Expected fraction of duplicates covered when duplicate gaps are
/// uniform on `[1, max_gap]` (a simple attack model: the bot replays a
/// click at a random point within `max_gap` elements).
#[must_use]
pub fn mean_coverage_uniform_gaps(n: usize, shards: usize, max_gap: u64) -> f64 {
    assert!(max_gap >= 1, "need at least one gap");
    let total: f64 = (1..=max_gap).map(|g| coverage_at_gap(n, shards, g)).sum();
    total / max_gap as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_core::sharded::{per_shard_window as core_rule, ShardedDetector};
    use cfd_core::{Tbf, TbfConfig};
    use cfd_windows::{DuplicateDetector, Verdict};

    #[test]
    fn sizing_rule_matches_core() {
        for (n, s) in [(4096, 4), (1000, 3), (10, 8), (7, 1)] {
            assert_eq!(per_shard_window(n, s), core_rule(n, s));
        }
    }

    #[test]
    fn fp_rate_is_invariant_under_sharding() {
        let unsharded = fp_sliding(1 << 16, 7, 1 << 12);
        for s in [2, 4, 8] {
            let sharded = fp_sliding_sharded(1 << 16, 7, 1 << 12, s);
            let ratio = sharded / unsharded;
            assert!(
                (0.9..1.1).contains(&ratio),
                "s={s}: sharded {sharded} vs {unsharded}"
            );
        }
    }

    #[test]
    fn coverage_is_one_inside_shard_window_and_decays_past_n() {
        let (n, s) = (1 << 12, 4);
        let n_s = per_shard_window(n, s) as u64;
        assert_eq!(coverage_at_gap(n, s, 1), 1.0);
        assert_eq!(coverage_at_gap(n, s, n_s), 1.0);
        // Around the nominal window edge, coverage is ~1/2.
        let mid = coverage_at_gap(n, s, n as u64);
        assert!((0.3..0.7).contains(&mid), "edge coverage {mid}");
        // Far beyond the window, coverage vanishes.
        assert!(coverage_at_gap(n, s, 4 * n as u64) < 1e-6);
        // Monotone non-increasing in the gap.
        let mut prev = 1.0;
        for g in (1..=(3 * n as u64)).step_by(64) {
            let c = coverage_at_gap(n, s, g);
            assert!(c <= prev + 1e-12, "coverage rose at gap {g}");
            prev = c;
        }
    }

    #[test]
    fn single_shard_coverage_is_the_hard_window_edge() {
        let n = 256;
        let n_s = per_shard_window(n, 1) as u64;
        assert_eq!(coverage_at_gap(n, 1, n_s), 1.0);
        assert_eq!(coverage_at_gap(n, 1, n_s + 1), 0.0);
    }

    #[test]
    fn mean_coverage_decreases_with_longer_attack_horizon() {
        let (n, s) = (1 << 10, 4);
        let short = mean_coverage_uniform_gaps(n, s, n as u64 / 2);
        let long = mean_coverage_uniform_gaps(n, s, 4 * n as u64);
        assert!(short > 0.99, "short-horizon coverage {short}");
        assert!(long < short, "horizon did not degrade coverage");
    }

    /// The model vs the detector: measure empirical coverage of a
    /// sharded TBF at several gaps and compare with `coverage_at_gap`.
    /// The detector has zero false negatives *within shard windows*, so
    /// the only losses at gap `g` are router-driven slide-outs — exactly
    /// what the binomial model predicts.
    #[test]
    fn model_matches_sharded_detector_measurement() {
        let (n, shards) = (512usize, 4usize);
        let trials = 400u32;
        for gap in [n as u64 / 2, n as u64, 2 * n as u64] {
            let mut covered = 0u32;
            for trial in 0..trials {
                let mut d = ShardedDetector::from_fn(9, shards, |_| {
                    let n_s = per_shard_window(n, shards);
                    // Memory generous enough that FPs ~ never inflate
                    // the covered count.
                    Tbf::new(
                        TbfConfig::builder(n_s)
                            .entries(n_s * 20)
                            .hash_count(10)
                            .seed(u64::from(trial))
                            .build()
                            .expect("cfg"),
                    )
                })
                .expect("sharded");
                let probe = (u64::from(trial) << 32 | 0xD0B).to_le_bytes();
                assert_eq!(d.observe(&probe), Verdict::Distinct);
                // `gap - 1` intervening distinct fillers, disjoint from
                // the probe keyspace.
                for i in 0..gap - 1 {
                    d.observe(&(u64::from(trial) << 20 | (i + 1) << 52).to_le_bytes());
                }
                if d.observe(&probe) == Verdict::Duplicate {
                    covered += 1;
                }
            }
            let measured = f64::from(covered) / f64::from(trials);
            let predicted = coverage_at_gap(n, shards, gap);
            // Binomial sampling noise at 400 trials: ~3σ ≈ 0.075.
            assert!(
                (measured - predicted).abs() < 0.08,
                "gap {gap}: measured {measured}, predicted {predicted}"
            );
        }
    }
}
