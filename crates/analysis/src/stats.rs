//! Statistics helpers for the experiment harness.

use serde::{Deserialize, Serialize};

/// Sample mean of a slice (0 for an empty slice).
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance (0 for fewer than two samples).
#[must_use]
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// A binomial proportion with its confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Proportion {
    /// Point estimate `successes / trials`.
    pub estimate: f64,
    /// Lower bound of the Wilson 95% interval.
    pub lo: f64,
    /// Upper bound of the Wilson 95% interval.
    pub hi: f64,
}

/// Wilson 95% score interval for `successes` out of `trials`.
///
/// Preferred over the normal approximation because false-positive counts
/// are tiny relative to the trials (often zero), where Wald intervals
/// collapse to a useless `[0, 0]`.
///
/// ```rust
/// use cfd_analysis::stats::wilson_95;
/// let p = wilson_95(0, 1_000_000);
/// assert_eq!(p.estimate, 0.0);
/// assert!(p.hi > 0.0); // zero observed still bounds the true rate away from "exactly 0"
/// ```
///
/// # Panics
///
/// Panics if `trials == 0`.
#[must_use]
pub fn wilson_95(successes: u64, trials: u64) -> Proportion {
    assert!(trials > 0, "need at least one trial");
    const Z: f64 = 1.959_964; // 97.5th normal percentile
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = Z * Z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (Z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    Proportion {
        estimate: p,
        lo: (center - half).max(0.0),
        hi: (center + half).min(1.0),
    }
}

/// Geometric mean of positive values (0 if any value is non-positive or
/// the slice is empty); used for summarizing speedup ratios.
#[must_use]
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_known_values() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_edges() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn wilson_contains_truth_for_typical_rates() {
        // 50 successes in 1000 trials: interval must contain 0.05.
        let p = wilson_95(50, 1000);
        assert!(p.lo < 0.05 && 0.05 < p.hi);
        assert!((p.estimate - 0.05).abs() < 1e-12);
    }

    #[test]
    fn wilson_zero_successes_has_positive_upper() {
        let p = wilson_95(0, 10_000);
        assert_eq!(p.lo, 0.0);
        assert!(p.hi > 0.0 && p.hi < 0.001);
    }

    #[test]
    fn wilson_all_successes_has_sub_one_lower() {
        let p = wilson_95(100, 100);
        assert!(p.lo < 1.0 && p.hi == 1.0);
    }

    #[test]
    fn geometric_mean_of_ratios() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
        assert_eq!(geometric_mean(&[1.0, -1.0]), 0.0);
    }
}
