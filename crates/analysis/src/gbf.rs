//! False-positive model for GBF over jumping windows (Theorem 1).
//!
//! A GBF probe reports *duplicate* iff **any** of the `Q` active
//! sub-window filters contains all `k` probe bits. With each full filter
//! holding `n_sub = N/Q` elements in `m` bits,
//!
//! ```text
//! f_sub(n)  = (1 − e^{−k·n/m})^k          (classical Bloom, §2.1)
//! FP_probe  = 1 − (1 − f_full)^{Q−1} · (1 − f_cur)
//! ```
//!
//! where `f_cur` depends on how full the current sub-window is. The
//! *steady* model averages `f_cur` over a uniformly distributed fill
//! level (what a long experiment measures); the *worst-case* model takes
//! every filter full (an upper bound, slightly pessimistic).

use cfd_bloom::params::fp_rate;

/// Worst-case probe FP rate: all `q` filters at full load `n_sub`.
///
/// ```rust
/// use cfd_analysis::gbf::fp_worst_case;
/// let f = fp_worst_case(1_876_246, 10, 1 << 20, 8);
/// assert!(f > 0.0 && f < 0.02);
/// ```
#[must_use]
pub fn fp_worst_case(m: usize, k: usize, n: usize, q: usize) -> f64 {
    assert!(q > 0, "q must be positive");
    let n_sub = n.div_ceil(q);
    let f_sub = fp_rate(m, k, n_sub);
    union_fp(f_sub, q as u32)
}

/// Steady-state probe FP rate: `q − 1` full filters plus the current one
/// averaged over its fill level (Simpson integration, 64 panels).
#[must_use]
pub fn fp_steady(m: usize, k: usize, n: usize, q: usize) -> f64 {
    assert!(q > 0, "q must be positive");
    let n_sub = n.div_ceil(q);
    let f_full = fp_rate(m, k, n_sub);
    let f_cur = average_fill_fp(m, k, n_sub);
    1.0 - (1.0 - f_full).powi(q as i32 - 1) * (1.0 - f_cur)
}

/// `1 − (1 − f)^q`: probability at least one of `q` independent filters
/// false-positives.
#[must_use]
pub fn union_fp(f_single: f64, q: u32) -> f64 {
    1.0 - (1.0 - f_single).powi(q as i32)
}

/// Mean Bloom FP over a uniformly random fill `u ∈ [0, 1]` of `n_sub`
/// elements (Simpson's rule).
fn average_fill_fp(m: usize, k: usize, n_sub: usize) -> f64 {
    const PANELS: usize = 64;
    let h = 1.0 / PANELS as f64;
    let f = |u: f64| fp_rate(m, k, (u * n_sub as f64) as usize);
    let mut sum = f(0.0) + f(1.0);
    for i in 1..PANELS {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        sum += w * f(i as f64 * h);
    }
    sum * h / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_below_worst_case() {
        for (m, k, n, q) in [(1 << 20, 10, 1 << 18, 8), (1 << 16, 5, 1 << 14, 4)] {
            let w = fp_worst_case(m, k, n, q);
            let s = fp_steady(m, k, n, q);
            assert!(s <= w + 1e-12, "steady {s} above worst {w}");
            assert!(s > 0.0);
        }
    }

    #[test]
    fn degenerate_single_subwindow_matches_classic() {
        let m = 1 << 16;
        let (k, n) = (5, 10_000);
        let w = fp_worst_case(m, k, n, 1);
        assert!((w - fp_rate(m, k, n)).abs() < 1e-12);
    }

    #[test]
    fn fp_grows_with_window_size() {
        let mut last = 0.0;
        for n in [1 << 15, 1 << 16, 1 << 17, 1 << 18, 1 << 19, 1 << 20] {
            let f = fp_worst_case(1 << 20, 7, n, 31);
            assert!(f >= last, "not monotone at n={n}");
            last = f;
        }
    }

    #[test]
    fn union_fp_bounds() {
        assert_eq!(union_fp(0.0, 10), 0.0);
        assert!((union_fp(1.0, 3) - 1.0).abs() < 1e-12);
        // Small f: union ~ q*f.
        let f = union_fp(1e-6, 31);
        assert!((f / (31.0 * 1e-6) - 1.0).abs() < 0.01);
    }

    #[test]
    fn paper_fig2a_operating_point_is_sub_one_percent() {
        // N = 2^20, Q = 8, m = 1,876,246, k = 10 (the paper's setting).
        let f = fp_worst_case(1_876_246, 10, 1 << 20, 8);
        assert!(f > 1e-4 && f < 0.01, "f = {f}");
    }
}
