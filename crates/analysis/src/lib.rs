//! Closed-form false-positive models for the paper's figures.
//!
//! The "theoretical result" curves of Fig. 1 and Figs. 2(a)/2(b) come
//! from these models:
//!
//! * [`gbf`] — false-positive rate of a GBF probe over a jumping window
//!   (union of `Q` sub-window Bloom filters, with an optional average
//!   over the current sub-window's fill level).
//! * [`counting_scheme`] — the Metwally et al. \[21\] main-filter model the
//!   paper plots in Fig. 1 (§3.3): querying a combined filter that
//!   effectively holds all `N` window elements.
//! * [`blocked`] — false-positive penalty of cache-line-blocked probing
//!   (`ProbeLayout::Blocked`): Poisson per-block load mixed through an
//!   inclusion–exclusion coverage term, in closed form.
//! * [`tbf`] — false-positive rate of a TBF probe over a sliding window
//!   (classical Bloom load at `n = N − 1` active elements; stale entries
//!   fail the activity check and do not contribute).
//! * [`apbf`] — run-sum model of the age-partitioned Bloom filter
//!   backend (`Σ` over the `l + 1` possible `k`-slice runs).
//! * [`swbf`] — fingerprint-collision + side-filter model of the
//!   sliding-window Bloom filter backend.
//! * [`select`] — spec-driven backend selection: resolving the sweep
//!   harness's `algo = "auto"` from the closed forms plus the measured
//!   throughput ranking.
//! * [`sharding`] — coverage and FP model of the keyspace-sharded layer
//!   (`cfd-core::sharded`): binomial probability that a global-window
//!   duplicate survives per-shard window slide-out.
//! * [`sizing`] — inverse solvers: memory for a target FP rate under each
//!   algorithm.
//! * [`stats`] — small statistics helpers for the experiment harness
//!   (means, Wilson confidence intervals for FP counts).
//!
//! Modeling assumptions are documented per function; EXPERIMENTS.md
//! cross-checks every model against the measured rates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apbf;
pub mod blocked;
pub mod cost;
pub mod counting_scheme;
pub mod gbf;
pub mod select;
pub mod sharding;
pub mod sizing;
pub mod stats;
pub mod swbf;
pub mod tbf;

pub use cfd_bloom::params::{bits_for_fp, fp_rate, fp_rate_exact, optimal_k};
