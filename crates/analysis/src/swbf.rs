//! False-positive model for the sliding-window Bloom filter backend.
//!
//! The SWBF (after Naor–Yogev) is a fingerprinted timestamp dictionary:
//! each element stores an `f`-bit fingerprint plus an arrival stamp in
//! one of `b` candidate cells, overflowing to a small timestamp-only
//! side filter. A distinct element false-positives two ways:
//!
//! * **fingerprint collision** — some candidate cell is live *and*
//!   holds the query's fingerprint: `≈ b · load · 2^{−f}`;
//! * **side-filter collision** — all `k` of its side probes hit live
//!   stamps: `side_load^k`. The side term is *not* gated by the main
//!   load: a querier cannot know whether an element overflowed, so it
//!   always consults the side filter when the side filter is live.
//!
//! ```text
//! FP = b · load · 2^{−f}  +  side_load^k
//! side_load = 1 − exp(−k · load^b · N / m_side)
//! ```
//!
//! where `load = min(1, N / cells)` is the steady-state occupancy of
//! the main dictionary and `k · load^b · N` the expected live side
//! stamps (each overflow writes `k` stamps, overflow probability
//! `load^b`).

/// Steady-state FP estimate for an SWBF with `cells` main dictionary
/// slots, `side_cells` side-filter slots, `fingerprint_bits`-bit
/// fingerprints, `candidates` main probes, and `side_probes` side
/// probes, over a sliding window of `n` elements.
///
/// Take the structural parameters from a built config:
/// `SwbfConfig::cells()`, `::side_cells()`, `.fingerprint_bits`, and
/// `Swbf::effective_candidates()` (the blocked layout may cap the
/// candidate count).
///
/// ```rust
/// use cfd_analysis::swbf::fp_sliding;
/// // 64 Ki window, 4-way dictionary at quarter load, 12-bit prints.
/// let f = fp_sliding(1 << 16, 1 << 18, 1 << 14, 12, 4, 4);
/// assert!(f > 0.0 && f < 1e-3);
/// ```
///
/// # Panics
///
/// Panics if `cells`, `side_cells`, `candidates`, or `side_probes` is
/// zero.
#[must_use]
pub fn fp_sliding(
    n: usize,
    cells: usize,
    side_cells: usize,
    fingerprint_bits: u32,
    candidates: usize,
    side_probes: usize,
) -> f64 {
    let load = load(n, cells);
    let side = side_load(n, cells, side_cells, candidates, side_probes);
    fp_at_loads(load, side, fingerprint_bits, candidates, side_probes)
}

/// Steady-state main-dictionary occupancy `min(1, N / cells)`.
///
/// # Panics
///
/// Panics if `cells` is zero.
#[must_use]
pub fn load(n: usize, cells: usize) -> f64 {
    assert!(cells > 0, "cells must be positive");
    (n as f64 / cells as f64).min(1.0)
}

/// Steady-state side-filter occupancy: `k · load^b · N` expected live
/// stamps Poisson-scattered over `side_cells` slots.
///
/// # Panics
///
/// Panics if `cells`, `side_cells`, `candidates`, or `side_probes` is
/// zero.
#[must_use]
pub fn side_load(
    n: usize,
    cells: usize,
    side_cells: usize,
    candidates: usize,
    side_probes: usize,
) -> f64 {
    assert!(side_cells > 0, "side_cells must be positive");
    assert!(candidates > 0, "candidates must be positive");
    assert!(side_probes > 0, "side_probes must be positive");
    let stamps = side_probes as f64 * load(n, cells).powi(candidates as i32) * n as f64;
    1.0 - (-stamps / side_cells as f64).exp()
}

/// The FP at explicit loads — the analytic counterpart of the
/// detector's own `estimated_fp` health stat, split out so measured
/// loads can be plugged in directly.
#[must_use]
pub fn fp_at_loads(
    load: f64,
    side_load: f64,
    fingerprint_bits: u32,
    candidates: usize,
    side_probes: usize,
) -> f64 {
    let collision = candidates as f64 * load * 0.5f64.powi(fingerprint_bits as i32);
    collision + side_load.powi(side_probes as i32)
}

/// Overflow probability per insert in the *blocked* layout: all `b`
/// candidate cells confined to one `slots`-cell cache-line block.
///
/// The uniform model's `load^b` undershoots because block occupancy
/// fluctuates and `P(all b candidates live | j live in block) =
/// C(j,b)/C(slots,b)` is convex in `j`: crowded blocks overflow far
/// more than the average block. Mixing over `J ~ Poisson(slots·load)`
/// (uncapped, which over-weights crowded blocks — the bound direction):
///
/// ```text
/// overflow = E_J [ C(min(J, slots), b) / C(slots, b) ]
/// ```
///
/// # Panics
///
/// Panics if `slots` or `candidates` is zero, or `candidates > slots`.
#[must_use]
pub fn overflow_blocked(load: f64, slots: usize, candidates: usize) -> f64 {
    assert!(slots > 0, "slots must be positive");
    assert!(candidates > 0, "candidates must be positive");
    assert!(candidates <= slots, "more candidates than block slots");
    let choose =
        |n: usize, k: usize| -> f64 { (0..k).map(|i| (n - i) as f64 / (k - i) as f64).product() };
    let denom = choose(slots, candidates);
    let lambda = slots as f64 * load.min(1.0);
    let hi = (lambda + 8.0 * lambda.sqrt()).ceil() as usize + 1;
    let mut p = (-lambda).exp();
    let mut overflow = 0.0;
    for j in 0..=hi {
        if j > 0 {
            p *= lambda / j as f64;
        }
        let live = j.min(slots);
        if live >= candidates {
            overflow += p * (choose(live, candidates) / denom).min(1.0);
        }
    }
    overflow.min(1.0)
}

/// Steady-state FP estimate for the *blocked* layout: the fingerprint
/// collision term is unchanged (linear in load, so the block mixture
/// preserves its mean), but the side-filter term routes through
/// [`overflow_blocked`] — crowded blocks spill far more stamps than the
/// uniform `load^b` predicts.
///
/// `slots` is the cells-per-block of the realized geometry: the largest
/// power of two `≤ 512 / cell_bits`.
///
/// # Panics
///
/// Panics as [`overflow_blocked`] and [`fp_sliding`] do.
#[must_use]
pub fn fp_sliding_blocked(
    n: usize,
    cells: usize,
    side_cells: usize,
    fingerprint_bits: u32,
    slots: usize,
    candidates: usize,
    side_probes: usize,
) -> f64 {
    assert!(side_cells > 0, "side_cells must be positive");
    assert!(side_probes > 0, "side_probes must be positive");
    let load = load(n, cells);
    let overflow = overflow_blocked(load, slots, candidates);
    let stamps = side_probes as f64 * overflow * n as f64;
    let side = 1.0 - (-stamps / side_cells as f64).exp();
    fp_at_loads(load, side, fingerprint_bits, candidates, side_probes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_core::config::ProbeLayout;
    use cfd_core::{Swbf, SwbfConfig};
    use cfd_windows::{DuplicateDetector, Verdict};

    #[test]
    fn fp_is_monotone_in_load_and_fingerprint() {
        let base = fp_sliding(1 << 14, 1 << 15, 1 << 10, 12, 4, 4);
        assert!(fp_sliding(1 << 15, 1 << 15, 1 << 10, 12, 4, 4) > base);
        assert!(fp_sliding(1 << 14, 1 << 15, 1 << 10, 16, 4, 4) < base);
    }

    #[test]
    fn side_term_is_not_gated_by_main_load() {
        // Even a near-empty main dictionary must keep the side term: a
        // querier cannot tell whether an element overflowed.
        let f = fp_at_loads(1e-6, 0.9, 12, 4, 4);
        assert!(f > 0.9f64.powi(4) * 0.99);
    }

    #[test]
    fn model_bounds_simulated_fp_both_layouts() {
        // Steady-state distinct stream, then probe fresh keys: the
        // measured FP must sit at or below the model (with sampling
        // slack), and the model must not be vacuous.
        let n = 1 << 12;
        for probe in [ProbeLayout::Scattered, ProbeLayout::Blocked] {
            let cfg = SwbfConfig::for_budget(n, n * 128, 7, probe).expect("cfg");
            let mut d = Swbf::new(cfg).expect("detector");
            for i in 0..8 * n as u64 {
                d.observe(&i.to_le_bytes());
            }
            let trials = 400_000u64;
            let fp = (0..trials)
                .filter(|i| d.observe(&(u64::MAX - i).to_le_bytes()) == Verdict::Duplicate)
                .count() as f64;
            let measured = fp / trials as f64;
            // Blocked candidates share a cache-line block, so overflow
            // (and through it the side term) needs the block mixture.
            let bound = match probe {
                ProbeLayout::Scattered => fp_sliding(
                    n,
                    cfg.cells(),
                    cfg.side_cells(),
                    cfg.fingerprint_bits,
                    d.effective_candidates(),
                    4,
                ),
                ProbeLayout::Blocked => {
                    let slots = 1 << (512usize / cfg.cell_bits() as usize).ilog2();
                    fp_sliding_blocked(
                        n,
                        cfg.cells(),
                        cfg.side_cells(),
                        cfg.fingerprint_bits,
                        slots,
                        d.effective_candidates(),
                        4,
                    )
                }
            };
            // Sampling slack: at these rates a handful of collisions
            // decides the estimate, so gate at bound + 3σ.
            let sigma = (bound * trials as f64).sqrt().max(3.0) / trials as f64;
            assert!(
                measured <= bound + 3.0 * sigma,
                "{probe:?}: measured {measured:.3e} above bound {bound:.3e}"
            );
            assert!(bound < 1e-3, "{probe:?}: bound {bound:.3e} vacuous");
        }
    }

    #[test]
    fn crowded_filter_routes_fp_through_the_side_term() {
        // A deliberately starved SWBF saturates: the model must still
        // bound the (now large) measured rate.
        let n = 1 << 10;
        let cfg = SwbfConfig::for_budget(n, n * 24, 7, ProbeLayout::Scattered).expect("cfg");
        let mut d = Swbf::new(cfg).expect("detector");
        for i in 0..8 * n as u64 {
            d.observe(&i.to_le_bytes());
        }
        assert!(d.side_inserted(), "starved filter should overflow");
        let trials = 100_000u64;
        let fp = (0..trials)
            .filter(|i| d.observe(&(u64::MAX - i).to_le_bytes()) == Verdict::Duplicate)
            .count() as f64;
        let measured = fp / trials as f64;
        let bound = fp_sliding(
            n,
            cfg.cells(),
            cfg.side_cells(),
            cfg.fingerprint_bits,
            d.effective_candidates(),
            4,
        );
        let sigma = (bound * trials as f64).sqrt().max(3.0) / trials as f64;
        assert!(
            measured <= bound + 3.0 * sigma,
            "measured {measured:.3e} above bound {bound:.3e}"
        );
    }
}
