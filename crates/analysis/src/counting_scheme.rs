//! False-positive model for the Metwally et al. \[21\] jumping-window
//! scheme (the Fig. 1 comparison baseline).
//!
//! The paper's §3.3 critique: the scheme answers membership against the
//! *main* filter, which is the sum of all sub-window counting filters —
//! "it is as if all `N` elements are inserted into the single main Bloom
//! filter". The probe FP is therefore the classical Bloom rate at load
//! `N`, regardless of `Q`:
//!
//! ```text
//! FP_main = (1 − e^{−k·N/m})^k
//! ```
//!
//! A second effect the paper notes: with the same *memory* (not the same
//! `m`), counters of `b` bits shrink the filter to `m/b` cells, pushing
//! the rate even higher. Both variants are provided.

use cfd_bloom::params::fp_rate;

/// Probe FP rate of the \[21\] scheme with `m` counters (the paper's
/// "same filter size" comparison in Fig. 1).
#[must_use]
pub fn fp_same_m(m: usize, k: usize, n: usize) -> f64 {
    fp_rate(m, k, n)
}

/// Probe FP rate of the \[21\] scheme under the same *memory budget* as a
/// GBF with `m`-bit filters: `b`-bit counters leave only `m / b` cells.
///
/// # Panics
///
/// Panics if `counter_bits == 0`.
#[must_use]
pub fn fp_same_memory(m_bits: usize, counter_bits: u32, k: usize, n: usize) -> f64 {
    assert!(counter_bits > 0, "counter width must be positive");
    fp_rate(m_bits / counter_bits as usize, k, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbf;

    #[test]
    fn main_filter_rate_ignores_q() {
        // Load is N either way — the scheme's core weakness.
        let f = fp_same_m(1 << 20, 7, 1 << 18);
        assert!(f > 0.0 && f < 1.0);
    }

    #[test]
    fn counting_cells_make_it_worse() {
        let same_m = fp_same_m(1 << 20, 7, 1 << 17);
        let same_mem = fp_same_memory(1 << 20, 4, 7, 1 << 17);
        assert!(same_mem > same_m);
    }

    #[test]
    fn fig1_shape_gbf_wins_at_large_n() {
        // The Fig. 1 claim: with Q = 31 and per-filter m = 2^20, the [21]
        // scheme's FP rate explodes with N while GBF's stays low.
        let m = 1 << 20;
        let q = 31;
        let k = 10;
        for n in [1 << 15, 1 << 16, 1 << 17, 1 << 18, 1 << 19, 1 << 20] {
            let prev = fp_same_m(m, k, n);
            let ours = gbf::fp_worst_case(m, k, n, q);
            assert!(ours <= prev + 1e-15, "GBF not better at n={n}");
            // In the light-load regime the advantage is ~q^{k-1}; it never
            // drops below three orders of magnitude across the sweep.
            assert!(
                prev / ours.max(1e-300) > 1e3,
                "advantage collapsed at n={n}"
            );
        }
        // At N = 2^20 the difference is orders of magnitude.
        let prev = fp_same_m(m, k, 1 << 20);
        let ours = gbf::fp_worst_case(m, k, 1 << 20, q);
        assert!(prev / ours > 1e3, "prev={prev} ours={ours}");
    }
}
