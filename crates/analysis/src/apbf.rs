//! False-positive model for the age-partitioned Bloom filter backend.
//!
//! An APBF (Shtul, Baquero, Almeida) keeps `k + l` logical slices of
//! equal capacity; each insert sets one bit in each of the `k`
//! youngest, and a query reports *duplicate* iff some run of `k`
//! consecutive slices all have its bit set. A distinct element
//! false-positives through any of the `l + 1` possible runs:
//!
//! ```text
//! FP = Σ_{i=0}^{l}  Π_{j=i}^{i+k−1}  r_j
//! ```
//!
//! where `r_j` is the fill ratio of the slice at logical age `j`. At
//! steady state on an all-distinct stream, the slice at age `j` has
//! absorbed `min(j + 1, k)` generations of `g = ⌈N/l⌉` single-bit
//! inserts into `m_s` bits, so
//!
//! ```text
//! r_j = 1 − exp(−min(j + 1, k) · g / m_s)
//! ```
//!
//! The `min(j+1, k)` term counts the youngest slices' partial history
//! as one full generation each, which rounds *up* — the model is a
//! steady-state **upper bound**, the direction the shootout gate needs.
//! Duplicates only lower it further (they insert nothing).

/// Steady-state FP upper bound for an APBF of `k + l` slices of
/// `slice_bits` bits each over a sliding window of `n` elements.
///
/// `slice_bits` is the *per-slice* capacity — `Apbf::slice_capacity()`
/// on a built detector, whichever probe layout it uses (the blocked
/// layout's smaller power-of-two lanes are already folded in there).
///
/// ```rust
/// use cfd_analysis::apbf::fp_sliding;
/// // 4 hashes, 12 age slices, 256 Kbit slices, 64 Ki-element window.
/// let f = fp_sliding(1 << 16, 4, 12, 1 << 18);
/// assert!(f > 0.0 && f < 1e-2);
/// ```
///
/// # Panics
///
/// Panics if `k`, `l`, or `slice_bits` is zero.
#[must_use]
pub fn fp_sliding(n: usize, k: usize, l: usize, slice_bits: usize) -> f64 {
    let fills = steady_fills(n, k, l, slice_bits);
    fp_from_fills(k, l, &fills)
}

/// The steady-state fill ratio of each logical slice, youngest first
/// (`k + l` entries) — the analytic counterpart of
/// `Apbf::logical_fills()`.
///
/// # Panics
///
/// Panics if `k`, `l`, or `slice_bits` is zero.
#[must_use]
pub fn steady_fills(n: usize, k: usize, l: usize, slice_bits: usize) -> Vec<f64> {
    assert!(k > 0, "k must be positive");
    assert!(l > 0, "l must be positive");
    assert!(slice_bits > 0, "slice_bits must be positive");
    let g = n.div_ceil(l).max(1) as f64;
    let m_s = slice_bits as f64;
    (0..k + l)
        .map(|j| 1.0 - (-((j + 1).min(k) as f64) * g / m_s).exp())
        .collect()
}

/// The run-sum FP at explicit per-age fills (youngest first, `k + l`
/// entries): `Σ_{i=0..l} Π_{j=i..i+k−1} fill_j`. Use with measured
/// fills to separate the fill model from the run-combinatorics model.
///
/// # Panics
///
/// Panics if `fills` has fewer than `k + l` entries.
#[must_use]
pub fn fp_from_fills(k: usize, l: usize, fills: &[f64]) -> f64 {
    assert!(fills.len() >= k + l, "need k + l fills");
    (0..=l)
        .map(|i| fills[i..i + k].iter().product::<f64>())
        .sum()
}

/// Steady-state FP bound for the *blocked* layout: `lines` cache lines,
/// each holding one `lane_bits`-bit lane per slice, with **all** of an
/// element's probes confined to one line.
///
/// Sharing a line correlates the per-slice fills a query sees — a
/// crowded line is crowded in *every* slice at once — so the uniform
/// model of [`fp_sliding`] undershoots. This bound mixes the run sum
/// over the Poisson line population: with `W ~ Poisson((k+l)·g /
/// lines)` window elements on the query's line, each slice lane at age
/// `j` holds `W · min(j+1, k)/(k+l)` of their bits,
///
/// ```text
/// FP = E_W [ Σ_{i=0}^{l} Π_{j=i}^{i+k−1} (1 − (1−1/L)^{W·min(j+1,k)/(k+l)}) ]
/// ```
///
/// (the Jensen gap of the mixture is exactly the blocked penalty; see
/// [`crate::blocked`] for the classical-Bloom analogue).
///
/// A second blocked-only FP path is the **twin term**: offsets inside a
/// lane follow the arithmetic progression `(h1 + p·stride) mod L` with
/// an odd stride, so an element on the query's line whose `(h1 mod L,
/// stride mod L)` matches the query's — probability `2/L²` — lands on
/// the query's bit in *every* slice at once, turning its own `k`-slice
/// insertion run into a guaranteed false positive while that run is
/// alive. With `(l+1)·g` run-complete elements in the window:
///
/// ```text
/// twin = 1 − exp(−(l+1)·g/lines · 2/L²)
/// ```
///
/// Take `lines` and `lane_bits` from the built detector:
/// `Apbf::slice_capacity() / lane_bits` and the layout's lane width, or
/// equivalently `lines = total_bits / 512` and `lane_bits =
/// slice_capacity / lines`.
///
/// # Panics
///
/// Panics if `k`, `l`, `lines`, or `lane_bits` is zero.
#[must_use]
pub fn fp_sliding_blocked(n: usize, k: usize, l: usize, lines: usize, lane_bits: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    assert!(l > 0, "l must be positive");
    assert!(lines > 0, "lines must be positive");
    assert!(lane_bits > 0, "lane_bits must be positive");
    let g = n.div_ceil(l).max(1) as f64;
    let ages = (k + l) as f64;
    let lambda = ages * g / lines as f64;
    let keep = 1.0 - 1.0 / lane_bits as f64;
    let fp_at = |w: f64| -> f64 {
        let fills: Vec<f64> = (0..k + l)
            .map(|j| 1.0 - keep.powf(w * (j + 1).min(k) as f64 / ages))
            .collect();
        fp_from_fills(k, l, &fills)
    };
    // Poisson mixture, truncated at mean + 8σ (tail mass < 1e-15).
    let hi = (lambda + 8.0 * lambda.sqrt()).ceil() as usize + 1;
    let mut p = (-lambda).exp(); // P(W = 0)
    let mut fp = 0.0;
    for w in 0..=hi {
        if w > 0 {
            p *= lambda / w as f64;
        }
        fp += p * fp_at(w as f64);
    }
    let ll = lane_bits as f64;
    let twins = (l + 1) as f64 * g / lines as f64 * 2.0 / (ll * ll);
    let twin = 1.0 - (-twins).exp();
    (fp + twin).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_core::config::ProbeLayout;
    use cfd_core::{Apbf, ApbfConfig};
    use cfd_windows::{DuplicateDetector, Verdict};

    #[test]
    fn fp_is_monotone_in_load_and_memory() {
        let base = fp_sliding(1 << 14, 4, 12, 1 << 14);
        assert!(fp_sliding(1 << 15, 4, 12, 1 << 14) > base, "more load");
        assert!(fp_sliding(1 << 14, 4, 12, 1 << 15) < base, "more memory");
    }

    #[test]
    fn uniform_fill_reduces_to_l_plus_one_r_to_the_k() {
        let fills = vec![0.3; 16];
        let f = fp_from_fills(4, 12, &fills);
        let expected = 13.0 * 0.3f64.powi(4);
        assert!((f - expected).abs() < 1e-12);
    }

    #[test]
    fn model_bounds_simulated_fp_both_layouts() {
        // Fill a real APBF to steady state with distinct keys, then
        // probe fresh never-inserted keys: the measured FP rate must
        // sit below the analytic bound, and the bound must not be
        // vacuously loose (within 50× of measured or below 1e-4).
        let n = 1 << 12;
        for probe in [ProbeLayout::Scattered, ProbeLayout::Blocked] {
            let cfg = ApbfConfig::for_budget(n, n * 16, 7, probe).expect("cfg");
            let mut d = Apbf::new(cfg).expect("detector");
            for i in 0..8 * n as u64 {
                d.observe(&i.to_le_bytes());
            }
            let trials = 200_000u64;
            let fp = (0..trials)
                .filter(|i| d.observe(&(u64::MAX - i).to_le_bytes()) == Verdict::Duplicate)
                .count() as f64;
            // Querying fresh keys inserts them too; only count each
            // first sighting, which `observe` of a fresh key is.
            let measured = fp / trials as f64;
            // The blocked layout needs the line-load mixture model: a
            // query's k probes share one cache line, so per-slice fills
            // are correlated and the uniform model undershoots.
            let bound = match probe {
                ProbeLayout::Scattered => fp_sliding(n, cfg.k, cfg.l, d.slice_capacity()),
                ProbeLayout::Blocked => {
                    let lines = cfg.total_bits / 512;
                    let lane_bits = d.slice_capacity() / lines;
                    fp_sliding_blocked(n, cfg.k, cfg.l, lines, lane_bits)
                }
            };
            assert!(
                measured <= bound * 1.5,
                "{probe:?}: measured {measured:.3e} above bound {bound:.3e}"
            );
            assert!(
                bound <= (measured * 50.0).max(1e-4),
                "{probe:?}: bound {bound:.3e} vacuous vs measured {measured:.3e}"
            );
        }
    }

    #[test]
    fn analytic_fills_track_the_detectors_measured_fills() {
        let n = 1 << 12;
        let cfg = ApbfConfig::for_budget(n, n * 16, 7, ProbeLayout::Scattered).expect("cfg");
        let mut d = Apbf::new(cfg).expect("detector");
        for i in 0..8 * n as u64 {
            d.observe(&i.to_le_bytes());
        }
        let analytic = steady_fills(n, cfg.k, cfg.l, d.slice_capacity());
        let measured = d.logical_fills();
        // Mature slices (age >= k) must match closely; young slices
        // are partially filled, below their rounded-up model value.
        for (j, (a, m)) in analytic.iter().zip(&measured).enumerate() {
            if j >= cfg.k {
                assert!((a - m).abs() < 0.05, "age {j}: model {a:.3} vs {m:.3}");
            } else {
                assert!(m <= &(a + 0.02), "age {j}: model {a:.3} vs {m:.3}");
            }
        }
    }
}
