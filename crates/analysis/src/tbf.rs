//! False-positive model for TBF over sliding windows (Theorem 2).
//!
//! A TBF probe false-positives iff all `k` probed entries are non-empty
//! *and* hold active timestamps. At steady state the active content is
//! the `N − 1` in-window valid elements, each having stamped (at most)
//! `k` entries, so the probability one probed entry is active is the
//! classical Bloom bit-set probability at load `N − 1`:
//!
//! ```text
//! p_active = 1 − (1 − 1/m)^{k(N−1)} ≈ 1 − e^{−k(N−1)/m}
//! FP       = p_active^k
//! ```
//!
//! Expired-but-not-yet-swept entries do **not** contribute: they fail the
//! activity check (their age is outside `[1, N−1]`); timestamp aliasing
//! is prevented by the sweep schedule (see `cfd-core::tbf`). The model is
//! therefore identical in form to a classical Bloom filter of `m` cells
//! holding the live window.

use cfd_bloom::params::{fp_rate, fp_rate_exact};

/// Steady-state TBF probe FP rate (approximate form).
///
/// ```rust
/// use cfd_analysis::tbf::fp_sliding;
/// // The paper's Fig. 2(b) point: N = 2^20, m = 15,112,980, k = 10.
/// let f = fp_sliding(15_112_980, 10, 1 << 20);
/// assert!(f > 1e-5 && f < 1e-2);
/// ```
#[must_use]
pub fn fp_sliding(m: usize, k: usize, n: usize) -> f64 {
    fp_rate(m, k, n.saturating_sub(1))
}

/// Steady-state TBF probe FP rate (exact binomial form).
#[must_use]
pub fn fp_sliding_exact(m: usize, k: usize, n: usize) -> f64 {
    fp_rate_exact(m, k, n.saturating_sub(1))
}

/// FP rate of TBF adapted to a jumping window of `q` sub-windows
/// (elements of the current partial + `q − 1` full sub-windows are
/// active; load is between `N − N/Q` and `N`).
///
/// Returns `(lower, upper)` bounds from the two load extremes.
#[must_use]
pub fn fp_jumping_bounds(m: usize, k: usize, n: usize, q: usize) -> (f64, f64) {
    assert!(q > 0, "q must be positive");
    let low_load = n - n.div_ceil(q);
    (fp_rate(m, k, low_load), fp_rate(m, k, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approximate_tracks_exact() {
        for (m, k, n) in [(1 << 20, 10, 1 << 16), (15_112_980, 10, 1 << 20)] {
            let a = fp_sliding(m, k, n);
            let e = fp_sliding_exact(m, k, n);
            assert!((a - e).abs() < 1e-6, "{a} vs {e}");
        }
    }

    #[test]
    fn optimal_k_minimizes_the_model() {
        let m = 15_112_980;
        let n = 1 << 20;
        let best = cfd_bloom::params::optimal_k(m, n);
        let f_best = fp_sliding(m, best, n);
        for k in [best - 3, best - 1, best + 1, best + 3] {
            assert!(fp_sliding(m, k, n) >= f_best * 0.999, "k={k}");
        }
    }

    #[test]
    fn jumping_bounds_bracket_sliding() {
        let (lo, hi) = fp_jumping_bounds(1 << 20, 8, 1 << 16, 8);
        let mid = fp_sliding(1 << 20, 8, 1 << 16);
        assert!(lo <= mid && mid <= hi, "{lo} {mid} {hi}");
    }

    #[test]
    fn fp_is_monotone_in_n_and_m() {
        assert!(fp_sliding(1 << 20, 8, 1 << 16) < fp_sliding(1 << 20, 8, 1 << 17));
        assert!(fp_sliding(1 << 21, 8, 1 << 16) < fp_sliding(1 << 20, 8, 1 << 16));
    }
}
