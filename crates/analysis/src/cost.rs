//! Per-element cost models (Theorems 1.3 and 2.3).
//!
//! The paper states running time in memory operations per element; these
//! functions compute the same quantities from the configuration, in the
//! exact units `cfd_core::OpCounters` counts, so the benches can print
//! *predicted vs. counted* side by side and the tests can assert they
//! match.

use serde::{Deserialize, Serialize};

/// Predicted per-element memory-operation counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Words/entries read per probe.
    pub probe_reads: f64,
    /// Words/entries written per *distinct* element.
    pub insert_writes: f64,
    /// Words/entries processed by cleaning per element (reads for TBF,
    /// writes for GBF).
    pub clean_ops: f64,
}

impl CostModel {
    /// Total predicted memory operations per element, assuming a
    /// fraction `distinct` of elements insert.
    #[must_use]
    pub fn total(&self, distinct: f64) -> f64 {
        self.probe_reads + self.insert_writes * distinct + self.clean_ops
    }
}

/// Theorem 1 cost model for GBF with a `D = 64`-bit word
/// (`lane_words = ⌈(Q+1)/64⌉` for the padded layout, 1 for the tight
/// layout):
///
/// * probe: `k · lane_words` word reads,
/// * insert: `k` word read-modify-writes,
/// * cleaning: at most `⌈m / ⌈N/Q⌉⌉` word writes (the §3.1 quota),
///   amortizing the `O(m)` wipe over one sub-window — the
///   `O((Q/D)·(M/N))` term of the theorem.
#[must_use]
pub fn gbf_cost(m: usize, k: usize, n: usize, q: usize, lane_words: usize) -> CostModel {
    assert!(q > 0 && n > 0, "window must be positive");
    let sub_len = n.div_ceil(q);
    CostModel {
        probe_reads: (k * lane_words) as f64,
        insert_writes: k as f64,
        clean_ops: m.div_ceil(sub_len) as f64,
    }
}

/// Theorem 2 cost model for TBF over a sliding window:
///
/// * probe: at most `k` entry reads (early exit on the first empty or
///   expired entry),
/// * insert: `k` entry writes,
/// * cleaning: exactly `⌈m / (C+1)⌉` entry reads per element — the
///   `O(M / (N log N))` term with the typical `C = N − 1`.
#[must_use]
pub fn tbf_cost(m: usize, k: usize, c: usize) -> CostModel {
    CostModel {
        probe_reads: k as f64,
        insert_writes: k as f64,
        clean_ops: m.div_ceil(c + 1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbf_cost_matches_theorem_shape() {
        // Doubling Q with fixed total memory leaves the quota ~constant
        // but the probe width grows once Q+1 crosses a word boundary.
        let narrow = gbf_cost(1 << 20, 10, 1 << 20, 8, 1);
        let wide = gbf_cost(1 << 20, 10, 1 << 20, 255, 4);
        assert_eq!(narrow.probe_reads, 10.0);
        assert_eq!(wide.probe_reads, 40.0);
        assert!(wide.clean_ops > narrow.clean_ops);
    }

    #[test]
    fn tbf_cost_flat_in_window_for_c_n_minus_1() {
        // With C = N-1 and m proportional to N, the sweep quota is a
        // constant number of entries per element.
        for log_n in [14u32, 17, 20] {
            let n = 1usize << log_n;
            let cost = tbf_cost(n * 14, 10, n - 1);
            assert!((cost.clean_ops - 14.0).abs() <= 1.0, "n=2^{log_n}");
        }
    }

    #[test]
    fn total_weights_inserts_by_distinct_fraction() {
        let c = CostModel {
            probe_reads: 10.0,
            insert_writes: 10.0,
            clean_ops: 14.0,
        };
        assert!((c.total(1.0) - 34.0).abs() < 1e-12);
        assert!((c.total(0.0) - 24.0).abs() < 1e-12);
    }
}
