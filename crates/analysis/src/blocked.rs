//! False-positive penalty model for cache-line-blocked probing.
//!
//! Blocked mode (`ProbeLayout::Blocked`) confines all of an element's
//! probes to one 512-bit cache line of `s` slots, chosen by an
//! independent block hash. That buys one memory access per probe set,
//! but costs false positives: block loads are no longer averaged over
//! the whole table. A block that drew more than its share of insertions
//! is disproportionately easy for a fresh key to collide with (Putze,
//! Sanders & Singler 2007 analyse the bit-granular case).
//!
//! ## The closed form
//!
//! Model the per-block insertion count as `Poisson(λ)` with
//! `λ = inserts / blocks`, and each insertion as marking a uniform
//! `k`-subset of the block's `s` slots (the detectors' double-hash walk
//! visits exactly `min(k, s)` distinct slots; the saturation cap keeps
//! `k ≤ s/2`). A fresh probe false-positives iff its own `k`-subset is
//! fully covered. Inclusion–exclusion over the probe's slots gives, for
//! a block holding `j` insertions,
//!
//! ```text
//! P(FP | j) = Σ_{i=0}^{k} (−1)^i C(k,i) · r_i^j,
//! r_i       = C(s−i, k) / C(s, k)        (one insertion avoids a fixed
//!                                          i-subset of the probe slots)
//! ```
//!
//! and the Poisson mixture collapses term by term
//! (`E[r^J] = e^{−λ(1−r)}` for `J ~ Poisson(λ)`):
//!
//! ```text
//! FP_blocked(s, k, λ) = Σ_{i=0}^{k} (−1)^i C(k,i) · e^{−λ(1−r_i)}
//! ```
//!
//! No tail truncation is needed. The formula captures both regimes:
//! for `s ≫ k` it approaches the classical rate, and for coarse slots
//! (e.g. padded GBF groups, `s = 8`) it exposes the saturation blow-up
//! that makes blocked probing a bad trade there.

/// Probes a blocked detector actually issues: `min(k, s/2)`, at least
/// one — the same saturation cap `cfd-core` applies, so model and
/// implementation agree on the probe count.
#[must_use]
pub fn effective_k(k: usize, slots: usize) -> usize {
    k.min(slots / 2).max(1)
}

/// `C(s−i, k) / C(s, k)` without forming the binomials: the probability
/// that one insertion's `k`-subset avoids a fixed `i`-subset.
fn avoid_ratio(s: usize, k: usize, i: usize) -> f64 {
    if s < i + k {
        return 0.0;
    }
    let mut r = 1.0;
    for t in 0..k {
        r *= (s - i - t) as f64 / (s - t) as f64;
    }
    r
}

/// Steady-state FP rate of one blocked Bloom-style table of `m` slots
/// in lines of `slots`, holding `inserts` live distinct elements.
///
/// `k` is the configured hash count; the saturation cap is applied
/// internally. Values are clamped to `[0, 1]` (the alternating sum can
/// drift a few ulps outside).
///
/// ```rust
/// use cfd_analysis::blocked::fp_blocked;
/// // 2^16 slots in 32-slot lines, 4095 live elements, k = 10: a few
/// // percent, versus ~1e-3 scattered.
/// let f = fp_blocked(1 << 16, 32, 10, 4095);
/// assert!(f > 1e-3 && f < 0.1);
/// ```
///
/// # Panics
///
/// Panics when fewer than one whole block fits (`m < slots`) or
/// `slots == 0`.
#[must_use]
pub fn fp_blocked(m: usize, slots: usize, k: usize, inserts: usize) -> f64 {
    assert!(slots > 0, "slots must be positive");
    let blocks = m / slots;
    assert!(blocks > 0, "table of {m} slots holds no {slots}-slot block");
    let k = effective_k(k, slots);
    let lambda = inserts as f64 / blocks as f64;
    let mut sum = 0.0;
    let mut binom = 1.0;
    for i in 0..=k {
        if i > 0 {
            binom *= (k - i + 1) as f64 / i as f64;
        }
        let term = binom * (-lambda * (1.0 - avoid_ratio(slots, k, i))).exp();
        if i % 2 == 0 {
            sum += term;
        } else {
            sum -= term;
        }
    }
    sum.clamp(0.0, 1.0)
}

/// Exact blocked FP under the probe schedule `cfd-hash` actually uses.
///
/// [`fp_blocked`] models each probe set as a *uniform* `k`-subset of the
/// block, but `BlockPlan` derives offsets by plain double hashing:
/// `off_i = (start + i · stride) mod s` with uniform start and uniform
/// odd stride — only `s²/2` distinct probe sets, not `C(s,k)`. Two
/// elements sharing a stride overlap in long runs, so real blocked
/// filters false-positive noticeably more than the uniform model says
/// (about 1.2–2× at the paper's `k = 10`). This function computes the
/// rate *exactly* for that progression family, by the same
/// inclusion–exclusion + Poisson collapse, with `r_T` evaluated against
/// the enumerated progression set and the result averaged over the
/// query's own stride (start averages out by rotation invariance):
///
/// ```text
/// FP = (2/s) Σ_{e odd} Σ_{T ⊆ Q_e} (−1)^{|T|} e^{−λ(1−r_T)},
/// r_T = P(one insertion's progression avoids T)
/// ```
///
/// Cost is `O(s/2 · 2^k · s²/2)` — fine for cache-line blocks. For
/// geometries where enumeration would explode (`k_eff > 12` or
/// `slots > 64`, far outside the cap `k ≤ s/2` regime this layout
/// targets) it falls back to the uniform model, which converges to the
/// same value as `s` grows.
///
/// # Panics
///
/// Same sizing panics as [`fp_blocked`].
#[must_use]
pub fn fp_blocked_double_hash(m: usize, slots: usize, k: usize, inserts: usize) -> f64 {
    assert!(slots > 0, "slots must be positive");
    let blocks = m / slots;
    assert!(blocks > 0, "table of {m} slots holds no {slots}-slot block");
    let k = effective_k(k, slots);
    if k > 12 || slots > 64 || !slots.is_power_of_two() {
        return fp_blocked(m, slots, k, inserts);
    }
    let s = slots;
    let lambda = inserts as f64 / blocks as f64;
    // Every insertion progression as a slot bitmask (start × odd stride).
    let mut inserted: Vec<u64> = Vec::with_capacity(s * s / 2);
    for start in 0..s {
        for stride in (1..s).step_by(2) {
            let mut mask = 0u64;
            for i in 0..k {
                mask |= 1u64 << ((start + i * stride) % s);
            }
            inserted.push(mask);
        }
    }
    let total = inserted.len() as f64;
    let mut fp = 0.0;
    for stride in (1..s).step_by(2) {
        // Query slots (start 0 by rotation invariance of the insert set).
        let q: Vec<usize> = (0..k).map(|i| (i * stride) % s).collect();
        let mut sum = 0.0;
        for t in 0u32..(1 << k) {
            let mut t_mask = 0u64;
            for (bit, slot) in q.iter().enumerate() {
                if t & (1 << bit) != 0 {
                    t_mask |= 1u64 << slot;
                }
            }
            let avoiding = inserted.iter().filter(|&&ins| ins & t_mask == 0).count();
            let r = avoiding as f64 / total;
            let term = (-lambda * (1.0 - r)).exp();
            if t.count_ones() % 2 == 0 {
                sum += term;
            } else {
                sum -= term;
            }
        }
        fp += sum;
    }
    (fp / (s / 2) as f64).clamp(0.0, 1.0)
}

/// Blocked-probe FP rate for a TBF over a sliding window of `n`
/// (live load `n − 1`, as in [`crate::tbf::fp_sliding`]), under the
/// exact double-hash probe model — the bound the bench harness and CI
/// hold measurements against.
#[must_use]
pub fn fp_blocked_tbf(m: usize, slots: usize, k: usize, n: usize) -> f64 {
    fp_blocked_double_hash(m, slots, k, n.saturating_sub(1))
}

/// Blocked-probe FP rate for a GBF of `m` groups over a jumping window
/// of `n` elements in `q` sub-windows: each of the `q` active lanes is
/// an independent blocked table loaded with one sub-window
/// (`⌈n/q⌉` elements, all-distinct worst case), and a false positive
/// needs only one lane to collide — the union over lanes.
#[must_use]
pub fn fp_blocked_gbf(m: usize, slots: usize, k: usize, n: usize, q: usize) -> f64 {
    assert!(q > 0, "q must be positive");
    let lane = fp_blocked_double_hash(m, slots, k, n.div_ceil(q));
    1.0 - (1.0 - lane).powi(q as i32)
}

/// The blocked-over-scattered FP multiplier at the same sizing — the
/// price of one-line probing. Returns `inf`-free output by flooring the
/// scattered rate at `f64::MIN_POSITIVE`.
#[must_use]
pub fn penalty(m: usize, slots: usize, k: usize, inserts: usize) -> f64 {
    let scattered = cfd_bloom::params::fp_rate(m, k, inserts).max(f64::MIN_POSITIVE);
    fp_blocked(m, slots, k, inserts) / scattered
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_core::config::ProbeLayout;
    use cfd_core::{Tbf, TbfConfig};
    use cfd_windows::{DuplicateDetector, Verdict};

    #[test]
    fn empty_table_has_zero_fp() {
        assert!(fp_blocked(1 << 16, 32, 10, 0).abs() < 1e-12);
    }

    #[test]
    fn fp_is_monotone_in_load_and_reaches_one() {
        let mut last = 0.0;
        for inserts in [100, 1_000, 10_000, 100_000, 1_000_000] {
            let f = fp_blocked(1 << 16, 32, 10, inserts);
            assert!(f >= last, "not monotone at {inserts}");
            last = f;
        }
        assert!(last > 0.999, "overloaded table must saturate, got {last}");
    }

    #[test]
    fn blocked_is_never_cheaper_than_scattered() {
        for (m, slots, k, inserts) in [
            (1 << 16, 32, 10, 4_000),
            (1 << 18, 16, 8, 20_000),
            (1 << 14, 8, 10, 500),
        ] {
            assert!(
                penalty(m, slots, k, inserts) >= 0.99,
                "penalty below 1 at m={m} slots={slots}"
            );
        }
    }

    #[test]
    fn coarse_slots_expose_the_saturation_regime() {
        // The padded-GBF shape that motivated the probe cap: 8-slot
        // blocks, k = 10 capped to 4, one 512-element sub-window over
        // 896 blocks. The model must predict the blow-up (tens of
        // percent after the lane union), not a classical-Bloom rate.
        let f = fp_blocked_gbf(7_168, 8, 10, 4_096, 8);
        assert!(f > 0.15, "saturation regime underestimated: {f}");
        // The same sizing with 32-slot lines (tight layout) is an order
        // of magnitude healthier.
        let tight = fp_blocked_gbf(4 * 7_168, 32, 10, 4_096, 8);
        assert!(tight < f / 3.0, "tight {tight} vs padded {f}");
    }

    #[test]
    fn model_tracks_measured_blocked_tbf_fp() {
        // All-distinct stream: every Duplicate verdict is a false
        // positive. The measured rate must sit inside a generous band
        // around the model, and the occupancy-based online estimator
        // (which ignores block load variance) must not exceed it.
        let n = 1 << 12;
        let m = n * 16;
        let cfg = TbfConfig::builder(n)
            .entries(m)
            .hash_count(10)
            .seed(77)
            .probe(ProbeLayout::Blocked)
            .build()
            .unwrap();
        let slots = cfg.block_geometry().unwrap().slots();
        let mut d = Tbf::new(cfg).unwrap();
        let mut fps = 0u64;
        let total = 20 * n as u64;
        for i in 0..total {
            if d.observe(&i.to_le_bytes()) == Verdict::Duplicate {
                fps += 1;
            }
        }
        let measured = fps as f64 / total as f64;
        let model = fp_blocked_tbf(m, slots, 10, n);
        // The CI gate's bound: measured within 10% of the model plus
        // three-sigma sampling slack.
        let slack = 3.0 * (model * (1.0 - model) / total as f64).sqrt();
        assert!(
            measured <= model * 1.1 + slack,
            "measured {measured} above model bound {model}"
        );
        assert!(
            model <= measured * 1.3 + 1e-3,
            "model {model} far above measured {measured}"
        );
        use cfd_windows::DetectorStats;
        assert!(
            d.estimated_fp() <= model * 1.5 + 1e-3,
            "online estimate {} should not exceed the blocked model {model}",
            d.estimated_fp()
        );
    }

    #[test]
    fn double_hash_probes_collide_more_than_uniform_subsets() {
        // The progression family is a tiny fraction of all k-subsets,
        // so its FP dominates the uniform model — and converges to it
        // as load vanishes.
        for (m, slots, k, inserts) in [(1 << 20, 16, 10, 1 << 16), (1 << 19, 32, 10, 1 << 14)] {
            let exact = fp_blocked_double_hash(m, slots, k, inserts);
            let uniform = fp_blocked(m, slots, k, inserts);
            assert!(
                exact >= uniform * 0.999,
                "exact {exact} below uniform {uniform}"
            );
            assert!(
                exact < uniform * 5.0,
                "exact {exact} implausibly far above {uniform}"
            );
        }
        assert!(fp_blocked_double_hash(1 << 20, 16, 10, 0).abs() < 1e-12);
    }

    #[test]
    fn large_blocks_approach_the_classical_rate() {
        // s = 512 (bit-granular blocks): the penalty shrinks toward 1.
        let p = penalty(1 << 22, 512, 8, 1 << 17);
        assert!(p < 3.0, "512-slot blocks should be near-classical: {p}");
    }
}
