//! Spec-driven backend selection: resolving `algo = "auto"` from the
//! closed forms.
//!
//! A scenario sweep declares a memory budget (cells per window element)
//! and a target false-positive rate; `auto` asks the harness to pick
//! the backend. This module answers from the models alone — no stream
//! is run:
//!
//! 1. Predict each count-window backend's FP rate at the declared
//!    geometry, using the same budget arithmetic the registry
//!    constructors apply ([`tbf`], [`gbf`], [`apbf`], [`swbf`]).
//! 2. Keep the candidates whose prediction meets the target.
//! 3. Among those, prefer the fastest: the measured equal-memory
//!    shootout ranking (`apbf > gbf > swbf > tbf`, EXPERIMENTS.md) is
//!    stable across batch sizes and layouts, so it is baked in as
//!    [`THROUGHPUT_RANK`].
//!
//! If nothing meets the target the lowest predicted rate wins — the
//! caller gets the least-bad backend plus `meets_target = false` to
//! report.
//!
//! Under a **time** window only the paper's two timestamped backends
//! exist; the same Bloom arithmetic applies with `n` read as expected
//! clicks per window, so `auto` resolves between `time-tbf` and
//! `time-gbf`.

use crate::{apbf, gbf, swbf, tbf};

/// Backends fastest-first, from the equal-memory shootout
/// (EXPERIMENTS.md "Equal-memory shootout": apbf 5.34 M/s, gbf 4.91,
/// swbf 4.59, tbf 2.84 at 2^20 × 256 bits).
pub const THROUGHPUT_RANK: &[&str] = &["apbf", "gbf", "swbf", "tbf"];

/// One backend's predicted standing at a declared geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Backend name as the registry knows it.
    pub algo: &'static str,
    /// Closed-form FP prediction at the geometry.
    pub predicted_fp: f64,
}

/// The resolution of one `algo = "auto"` request.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoChoice {
    /// The chosen backend.
    pub algo: &'static str,
    /// Its predicted FP rate.
    pub predicted_fp: f64,
    /// Whether the prediction meets the requested target (when not,
    /// the choice is merely the least bad).
    pub meets_target: bool,
    /// Every candidate considered, for the report.
    pub candidates: Vec<Candidate>,
}

/// Timestamp width of the TBF family at window `n` (matches
/// `cfd_bits::words::bits_for_value(2n − 1)`).
fn ts_bits(n: usize) -> u32 {
    let v = 2 * n.max(1) as u64 - 1;
    64 - v.leading_zeros()
}

/// Predicted APBF FP at a total budget: the same scattered-layout
/// shape search `ApbfConfig::for_budget` runs, scored with the
/// [`apbf`] steady-state model.
fn apbf_predict(n: usize, total_bits: usize) -> Option<f64> {
    let mut best: Option<f64> = None;
    for k in 2..=16usize {
        for l in 1..=48usize {
            let slice_bits = (total_bits / (k + l + 1)) / 64 * 64;
            if slice_bits == 0 {
                continue;
            }
            let fp = apbf::fp_sliding(n, k, l, slice_bits);
            if best.is_none_or(|b| fp < b) {
                best = Some(fp);
            }
        }
    }
    best
}

/// Predicted SWBF FP at a total budget: the same fingerprint-width
/// search `SwbfConfig::for_budget` runs, scored with the [`swbf`]
/// model. Mirrors the config's layout constants (`B = 4` candidates,
/// `K = 4` side probes, side filter = 1/32 of the budget).
fn swbf_predict(n: usize, total_bits: usize) -> Option<f64> {
    const B: usize = 4;
    const K_SIDE: usize = 4;
    let side_bits = total_bits / 32;
    let ts = ts_bits(n) as usize;
    let side_cells = side_bits / ts;
    let mut best: Option<f64> = None;
    for f in 8..=24u32 {
        let cells = (total_bits - side_bits) / (f as usize + ts);
        if cells < B || side_cells < K_SIDE {
            continue;
        }
        let fp = swbf::fp_sliding(n, cells, side_cells, f, B, K_SIDE);
        if best.is_none_or(|b| fp < b) {
            best = Some(fp);
        }
    }
    best
}

/// Resolves `algo = "auto"` for a count window of `n` elements at
/// `cells_per_element` budget, `k` hashes, and `q` sub-windows.
///
/// # Panics
///
/// Panics if `n`, `cells_per_element`, `k`, or `q` is zero, or
/// `target_fp` is not in `(0, 1)`.
#[must_use]
pub fn auto_select(
    n: usize,
    q: usize,
    cells_per_element: usize,
    k: usize,
    target_fp: f64,
) -> AutoChoice {
    assert!(
        n > 0 && cells_per_element > 0 && k > 0 && q > 0,
        "bad geometry"
    );
    assert!(target_fp > 0.0 && target_fp < 1.0, "bad target_fp");
    let mut candidates = vec![
        Candidate {
            algo: "tbf",
            predicted_fp: tbf::fp_sliding(n * cells_per_element, k, n),
        },
        Candidate {
            algo: "gbf",
            predicted_fp: gbf::fp_worst_case(n.div_ceil(q) * cells_per_element, k, n, q),
        },
    ];
    if let Some(fp) = apbf_predict(n, n * cells_per_element) {
        candidates.push(Candidate {
            algo: "apbf",
            predicted_fp: fp,
        });
    }
    let swbf_total = n * cells_per_element * (ts_bits(n) as usize + 12);
    if let Some(fp) = swbf_predict(n, swbf_total) {
        candidates.push(Candidate {
            algo: "swbf",
            predicted_fp: fp,
        });
    }
    choose(candidates, target_fp)
}

/// Resolves `auto` for a **time** window sized for `n` expected clicks:
/// the TBF/GBF Bloom arithmetic with the backend names of the
/// timestamped variants.
///
/// # Panics
///
/// Panics as [`auto_select`] does.
#[must_use]
pub fn auto_select_timed(
    n: usize,
    q: usize,
    cells_per_element: usize,
    k: usize,
    target_fp: f64,
) -> AutoChoice {
    assert!(
        n > 0 && cells_per_element > 0 && k > 0 && q > 0,
        "bad geometry"
    );
    assert!(target_fp > 0.0 && target_fp < 1.0, "bad target_fp");
    let candidates = vec![
        Candidate {
            algo: "time-tbf",
            predicted_fp: tbf::fp_sliding(n * cells_per_element, k, n),
        },
        Candidate {
            algo: "time-gbf",
            predicted_fp: gbf::fp_worst_case(n.div_ceil(q) * cells_per_element, k, n, q),
        },
    ];
    choose(candidates, target_fp)
}

fn rank(algo: &str) -> usize {
    // Time variants rank as their count-window counterparts.
    let base = algo.strip_prefix("time-").unwrap_or(algo);
    THROUGHPUT_RANK
        .iter()
        .position(|&a| a == base)
        .unwrap_or(THROUGHPUT_RANK.len())
}

fn choose(candidates: Vec<Candidate>, target_fp: f64) -> AutoChoice {
    let meeting = candidates
        .iter()
        .filter(|c| c.predicted_fp <= target_fp)
        .min_by_key(|c| rank(c.algo));
    let (algo, predicted_fp, meets_target) = match meeting {
        Some(c) => (c.algo, c.predicted_fp, true),
        None => {
            let least_bad = candidates
                .iter()
                .min_by(|a, b| a.predicted_fp.total_cmp(&b.predicted_fp))
                .expect("candidate list is never empty");
            (least_bad.algo, least_bad.predicted_fp, false)
        }
    };
    AutoChoice {
        algo,
        predicted_fp,
        meets_target,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_picks_gbf() {
        // A "cell" is each backend's native unit, so at 14
        // cells/element APBF holds only 14 *bits* per element — not
        // enough for 1% — while GBF (14 filter bits/element) just
        // clears it and outranks the timestamped backends.
        let c = auto_select(1 << 16, 8, 14, 10, 0.01);
        assert_eq!(c.algo, "gbf", "{c:?}");
        assert!(c.meets_target);
        assert!(c.predicted_fp <= 0.01);
        assert_eq!(c.candidates.len(), 4);
    }

    #[test]
    fn generous_budget_picks_the_fastest_backend() {
        // At 64 cells/element even APBF's per-bit budget clears 1%,
        // and it is the fastest backend in the shootout ranking.
        let c = auto_select(1 << 16, 8, 64, 10, 0.01);
        assert_eq!(c.algo, "apbf", "{c:?}");
        assert!(c.meets_target);
    }

    #[test]
    fn starved_budget_returns_least_bad() {
        // 1 bit per element cannot reach 1e-6 on any backend.
        let c = auto_select(1 << 16, 8, 1, 2, 1e-6);
        assert!(!c.meets_target);
        let min = c
            .candidates
            .iter()
            .map(|x| x.predicted_fp)
            .fold(f64::INFINITY, f64::min);
        assert!((c.predicted_fp - min).abs() < 1e-12);
    }

    #[test]
    fn predictions_track_the_budget() {
        let tight = auto_select(1 << 14, 8, 4, 3, 0.5);
        let roomy = auto_select(1 << 14, 8, 20, 10, 0.5);
        for (t, r) in tight.candidates.iter().zip(&roomy.candidates) {
            assert_eq!(t.algo, r.algo);
            assert!(
                r.predicted_fp < t.predicted_fp,
                "{}: {} !< {}",
                t.algo,
                r.predicted_fp,
                t.predicted_fp
            );
        }
    }

    #[test]
    fn timed_auto_resolves_to_a_time_backend() {
        let c = auto_select_timed(1 << 14, 8, 14, 10, 0.01);
        assert!(c.algo.starts_with("time-"), "{c:?}");
        assert!(c.meets_target);
        assert_eq!(c.candidates.len(), 2);
    }

    #[test]
    fn throughput_rank_breaks_ties_toward_apbf_over_gbf() {
        // Loose target: many meet it; the winner must be the best-ranked
        // of those that do.
        let c = auto_select(1 << 16, 8, 14, 10, 0.9);
        let best_rank = c
            .candidates
            .iter()
            .filter(|x| x.predicted_fp <= 0.9)
            .map(|x| rank(x.algo))
            .min()
            .unwrap();
        assert_eq!(rank(c.algo), best_rank);
    }
}
