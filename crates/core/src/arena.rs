//! Multi-tenant detector arena: many (advertiser, campaign) windows in
//! one shared slab.
//!
//! The paper's commissioner dedupes *each campaign's* click stream
//! independently (§1), but at millions of campaigns one heap-allocated
//! detector per tenant means millions of allocations, cold caches, and a
//! per-tenant hash cost. [`TenantArena`] packs every tenant's filter into
//! one [`cfd_bits::slab::WordSlab`]: a tenant is a *(slot, shared
//! geometry)* view over the slab's words — all tenants share one entry
//! width, one probe count, and one cache-line-aligned stride, so the
//! per-tenant marginal cost is the stride bytes and a 16-byte map entry.
//!
//! Per tenant the arena runs the paper's timing Bloom filter (§4)
//! verbatim: `m_t` wraparound timestamp entries over a sliding window of
//! the tenant's last `n_t` clicks, amortized cleaning included. The three
//! scale mechanisms on top:
//!
//! * **Hash-once routing** — a [`Planner`] plan carries the id's routing
//!   prefix ([`cfd_hash::tenant_prefix`]: the first eight key bytes) next
//!   to its 128-bit probe hash, so keys shaped `[tenant_id ‖ click_id]`
//!   route to their tenant with *zero* extra hash work, whatever the
//!   tenant count. The prefix→slot map is a flat open-addressing table
//!   (linear probing, backward-shift deletion).
//! * **Lazy instantiation** — a tenant materializes on its first click:
//!   pop a free slot (growing the slab by doubling when none is free),
//!   write the all-ones `empty` marker over its region, start its wrap
//!   clock at zero.
//! * **Idle decay** — optionally ([`ArenaConfig::with_idle_eviction`]),
//!   each arrival also inspects one slot round-robin (the same amortized
//!   schedule as the cleaning daemon) and evicts any tenant idle for more
//!   than the configured number of global arrivals, recycling its slot.
//!   Off by default: eviction forgets a tenant's window, which the
//!   registry-built backend must not do.
//!
//! Batch replay ([`PlannedDetector::apply_plan_batch_into`]) preserves
//! stream order exactly — batch ≡ sequential — while prefetching the next
//! tenant's region across run boundaries, so same-tenant runs (which the
//! Zipf generator in `cfd-stream` emits naturally) replay out of warm
//! lines.

use crate::backend;
use crate::config::{ConfigError, ProbeLayout};
use crate::ops::OpCounters;
use crate::sharded::PlannedDetector;
use cfd_bits::slab::{PackedRef, PackedView, WordSlab};
use cfd_bits::words::bits_for_value;
use cfd_hash::mix::splitmix64;
use cfd_hash::{BlockGeometry, DoubleHashFamily, Planner, ProbePlan};
use cfd_telemetry::{DetectorHealth, DetectorStats, TenantHealth};
use cfd_windows::{DuplicateDetector, Verdict, WindowSpec};
use std::cell::Cell;

/// Initial slot count used by [`ArenaConfig::for_budget`]: a memory
/// budget is split into this many tenant regions up front, and the slab
/// doubles from there on demand.
pub const DEFAULT_INITIAL_SLOTS: usize = 8;

/// Hard ceiling on arena slots (2^26 ≈ 67M tenants): a restore guard so
/// a corrupt checkpoint header cannot demand an absurd allocation.
const MAX_ARENA_SLOTS: usize = 1 << 26;

/// Geometry shared by every tenant of a [`TenantArena`].
///
/// One config describes *all* tenants: per-tenant window `n_t`, entries
/// per tenant `m_t`, probe count `k`, and the probe layout. The arena
/// needs the shapes identical — that is what lets a tenant be a plain
/// (slot, stride) view instead of an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaConfig {
    /// Per-tenant sliding-window length in elements (`n_t >= 2`).
    pub tenant_window: usize,
    /// Timestamp entries per tenant region (`m_t` in the TBF sizing).
    pub tenant_entries: usize,
    /// Probe indices per element (`k`, `1..=64`).
    pub hash_count: usize,
    /// Hash-family seed shared by probing and routing.
    pub seed: u64,
    /// Slots allocated up front; the slab doubles when they run out.
    pub initial_slots: usize,
    /// `Some(a)`: evict a tenant once it has been idle for more than `a`
    /// global arrivals (`a >= 1`). `None` (default): tenants never decay.
    pub idle_eviction: Option<u64>,
    /// Probe layout of every tenant region.
    pub probe: ProbeLayout,
}

impl ArenaConfig {
    /// Config with the given shared tenant geometry,
    /// [`DEFAULT_INITIAL_SLOTS`] slots, no idle eviction, and scattered
    /// probing. Validated by [`TenantArena::new`].
    #[must_use]
    pub fn new(tenant_window: usize, tenant_entries: usize, hash_count: usize, seed: u64) -> Self {
        Self {
            tenant_window,
            tenant_entries,
            hash_count,
            seed,
            initial_slots: DEFAULT_INITIAL_SLOTS,
            idle_eviction: None,
            probe: ProbeLayout::Scattered,
        }
    }

    /// Splits a total memory budget into [`DEFAULT_INITIAL_SLOTS`]
    /// per-tenant regions: `m_t = (total_bits / slots) / entry_bits`.
    /// The slab grows by doubling once more tenants than slots appear,
    /// so the budget bounds the *initial* footprint, not the tenant
    /// count.
    pub fn for_budget(
        tenant_window: usize,
        total_bits: usize,
        hash_count: usize,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        if tenant_window < 2 {
            return Err(ConfigError::WindowTooSmall(tenant_window));
        }
        let entry_bits = bits_for_value(2 * tenant_window as u64 - 1) as usize;
        let tenant_entries = (total_bits / DEFAULT_INITIAL_SLOTS) / entry_bits;
        if tenant_entries == 0 {
            return Err(ConfigError::MemoryTooSmall {
                provided: total_bits,
                required: DEFAULT_INITIAL_SLOTS * entry_bits,
            });
        }
        Ok(Self::new(tenant_window, tenant_entries, hash_count, seed))
    }

    /// The same config with a different initial slot count.
    #[must_use]
    pub fn with_initial_slots(mut self, slots: usize) -> Self {
        self.initial_slots = slots;
        self
    }

    /// The same config with idle eviction enabled: tenants untouched for
    /// more than `idle_arrivals` global arrivals are decayed and their
    /// slot recycled.
    #[must_use]
    pub fn with_idle_eviction(mut self, idle_arrivals: u64) -> Self {
        self.idle_eviction = Some(idle_arrivals);
        self
    }

    /// The same config with a different probe layout.
    #[must_use]
    pub fn with_probe(mut self, probe: ProbeLayout) -> Self {
        self.probe = probe;
        self
    }

    /// Timestamp clock period: `2·n_t − 1`, the TBF wraparound range for
    /// a window of `n_t` with `c = n_t − 1` expiry slack.
    #[must_use]
    pub fn range(&self) -> u64 {
        2 * self.tenant_window as u64 - 1
    }

    /// Bits per timestamp entry.
    #[must_use]
    pub fn entry_bits(&self) -> u32 {
        bits_for_value(self.range())
    }

    /// Entries each arrival sweeps in its tenant's region:
    /// `⌈m_t / n_t⌉`, the TBF amortized-cleaning quota for
    /// `c = n_t − 1`.
    #[must_use]
    pub fn clean_quota(&self) -> usize {
        self.tenant_entries.div_ceil(self.tenant_window)
    }

    /// The cache-line block geometry shared by every region, when one
    /// exists for this entry shape.
    #[must_use]
    pub fn block_geometry(&self) -> Option<BlockGeometry> {
        BlockGeometry::for_line(self.tenant_entries, self.entry_bits() as usize)
    }

    /// Raw (pre-rounding) words per tenant region; [`WordSlab`] rounds
    /// this up to whole cache lines.
    fn stride_words(&self) -> Result<usize, ConfigError> {
        let bits = self
            .tenant_entries
            .checked_mul(self.entry_bits() as usize)
            .ok_or(ConfigError::ArithmeticOverflow {
                what: "tenant region bits",
            })?;
        Ok(bits.div_ceil(64))
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.tenant_window < 2 {
            return Err(ConfigError::WindowTooSmall(self.tenant_window));
        }
        if self.tenant_entries == 0 {
            return Err(ConfigError::ZeroDimension("tenant entry count m_t"));
        }
        if self.initial_slots == 0 {
            return Err(ConfigError::ZeroDimension("arena slot count"));
        }
        if !(1..=64).contains(&self.hash_count) {
            return Err(ConfigError::BadHashCount(self.hash_count));
        }
        if self.idle_eviction == Some(0) {
            return Err(ConfigError::ZeroDimension("idle eviction age"));
        }
        self.stride_words()?;
        Ok(())
    }
}

/// Point-in-time gauges of one arena, for telemetry export and the
/// tenant bench.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArenaStats {
    /// Slots currently allocated in the slab.
    pub slots: usize,
    /// Tenants currently materialized.
    pub live_tenants: usize,
    /// Tenants decayed by idle eviction since construction.
    pub evictions: u64,
    /// Total slab payload, bytes.
    pub slab_bytes: usize,
    /// Bytes of one tenant region (cache-line-rounded stride).
    pub stride_bytes: usize,
    /// `live_tenants / slots`.
    pub occupancy: f64,
    /// Amortized slab bytes per live tenant (0 when no tenant is live).
    pub bytes_per_live_tenant: f64,
}

/// Per-tenant bookkeeping: 32 bytes beside the region itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TenantMeta {
    /// The routing prefix that owns this slot.
    prefix: u64,
    /// Wraparound clock position: the timestamp the tenant's *next*
    /// element receives.
    now: u64,
    /// Next entry index of the tenant's cleaning sweep.
    clean_next: usize,
    /// Global arrival counter value at the tenant's last click.
    last_touch: u64,
}

const EMPTY_SLOT: u32 = u32::MAX;

/// Whether a timestamp is inside the active window relative to a tenant
/// clock at `now` — the standalone TBF predicate: wraparound age in
/// `[1, n_t − 1]`.
#[inline]
fn active_in(ts: u64, now: u64, range: u64, hi: u64) -> bool {
    let age = if now >= ts {
        now - ts
    } else {
        range - ts + now
    };
    (1..=hi).contains(&age)
}

/// Flat open-addressing prefix→slot map: linear probing, power-of-two
/// capacity, backward-shift deletion (no tombstones, so lookup cost
/// stays bounded under heavy eviction churn). Rebuilt from tenant metas
/// on restore — never serialized.
#[derive(Debug, Clone)]
struct TenantMap {
    keys: Vec<u64>,
    slots: Vec<u32>,
    live: usize,
}

impl TenantMap {
    fn with_room_for(expected: usize) -> Self {
        let cap = (expected.max(4) * 2).next_power_of_two();
        Self {
            keys: vec![0; cap],
            slots: vec![EMPTY_SLOT; cap],
            live: 0,
        }
    }

    #[inline]
    fn mask(&self) -> usize {
        self.keys.len() - 1
    }

    #[inline]
    fn home(&self, prefix: u64) -> usize {
        splitmix64(prefix) as usize & self.mask()
    }

    #[inline]
    fn find(&self, prefix: u64) -> Option<u32> {
        let mask = self.mask();
        let mut i = self.home(prefix);
        loop {
            if self.slots[i] == EMPTY_SLOT {
                return None;
            }
            if self.keys[i] == prefix {
                return Some(self.slots[i]);
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts an absent prefix, growing past the 0.7 load factor.
    fn insert(&mut self, prefix: u64, slot: u32) {
        if (self.live + 1) * 10 > self.keys.len() * 7 {
            self.grow();
        }
        let mask = self.mask();
        let mut i = self.home(prefix);
        while self.slots[i] != EMPTY_SLOT {
            debug_assert_ne!(self.keys[i], prefix, "prefix inserted twice");
            i = (i + 1) & mask;
        }
        self.keys[i] = prefix;
        self.slots[i] = slot;
        self.live += 1;
    }

    fn grow(&mut self) {
        let mut bigger = Self {
            keys: vec![0; self.keys.len() * 2],
            slots: vec![EMPTY_SLOT; self.keys.len() * 2],
            live: 0,
        };
        for i in 0..self.keys.len() {
            if self.slots[i] != EMPTY_SLOT {
                bigger.insert(self.keys[i], self.slots[i]);
            }
        }
        *self = bigger;
    }

    /// Removes a prefix by backward-shifting the cluster behind it: an
    /// entry at `j` moves into the hole at `i` only if its home position
    /// lies cyclically outside `(i, j]`, which preserves every remaining
    /// entry's reachability from its home.
    fn remove(&mut self, prefix: u64) -> bool {
        let mask = self.mask();
        let mut i = self.home(prefix);
        loop {
            if self.slots[i] == EMPTY_SLOT {
                return false;
            }
            if self.keys[i] == prefix {
                break;
            }
            i = (i + 1) & mask;
        }
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            if self.slots[j] == EMPTY_SLOT {
                break;
            }
            let home = self.home(self.keys[j]);
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(i) & mask) {
                self.keys[i] = self.keys[j];
                self.slots[i] = self.slots[j];
                i = j;
            }
        }
        self.slots[i] = EMPTY_SLOT;
        self.live -= 1;
        true
    }
}

/// Many logical per-tenant timing Bloom filters in one shared slab,
/// routed hash-once by key prefix.
///
/// Keys are `[tenant_id ‖ click_id]`: the first eight bytes route
/// (see [`cfd_hash::tenant_prefix`]), the full key probes. Each tenant
/// behaves exactly like a standalone [`crate::Tbf`] over that tenant's
/// subsequence of the stream — [`TenantArena::window`] reports the
/// *per-tenant* sliding window.
///
/// ```rust
/// use cfd_core::arena::{ArenaConfig, TenantArena};
/// use cfd_windows::DuplicateDetector;
///
/// let mut arena = TenantArena::new(ArenaConfig::new(64, 512, 4, 7)).unwrap();
/// let click = |tenant: u64, click: u64| {
///     let mut key = tenant.to_le_bytes().to_vec();
///     key.extend_from_slice(&click.to_le_bytes());
///     key
/// };
/// assert!(arena.observe(&click(1, 10)).is_distinct());
/// assert!(arena.observe(&click(2, 10)).is_distinct()); // other tenant
/// assert!(arena.observe(&click(1, 10)).is_duplicate());
/// assert_eq!(arena.live_tenants(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TenantArena {
    cfg: ArenaConfig,
    slab: WordSlab,
    metas: Vec<Option<TenantMeta>>,
    map: TenantMap,
    /// Recycled slot stack; popped before the slab grows.
    free: Vec<u32>,
    family: DoubleHashFamily,
    geo: Option<BlockGeometry>,
    k_eff: usize,
    entry_bits: u32,
    /// All-ones entry marker (also the packed `max_value`).
    empty: u64,
    /// Global arrival counter driving idle decay.
    arrivals: u64,
    /// Round-robin eviction-scan position.
    scan_cursor: usize,
    evictions: u64,
    ops: OpCounters,
    probe_buf: Vec<usize>,
    plan_buf: Vec<ProbePlan>,
    scans: Cell<u64>,
}

impl TenantArena {
    /// Builds an empty arena (no tenant materialized) after validating
    /// the shared geometry.
    pub fn new(cfg: ArenaConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let geo = match cfg.probe {
            ProbeLayout::Scattered => None,
            ProbeLayout::Blocked => Some(cfg.block_geometry().ok_or(
                ConfigError::BlockedUnsupported {
                    slot_bits: cfg.entry_bits() as usize,
                    m: cfg.tenant_entries,
                },
            )?),
        };
        let k_eff = backend::effective_k(cfg.hash_count, geo.as_ref());
        let entry_bits = cfg.entry_bits();
        let slab = WordSlab::new(cfg.initial_slots, cfg.stride_words()?);
        Ok(Self {
            cfg,
            slab,
            metas: vec![None; cfg.initial_slots],
            map: TenantMap::with_room_for(cfg.initial_slots),
            free: (0..cfg.initial_slots as u32).rev().collect(),
            family: DoubleHashFamily::new(cfg.seed),
            geo,
            k_eff,
            entry_bits,
            empty: (1u64 << entry_bits) - 1,
            arrivals: 0,
            scan_cursor: 0,
            evictions: 0,
            ops: OpCounters::new(),
            probe_buf: vec![0; k_eff],
            plan_buf: Vec::new(),
            scans: Cell::new(0),
        })
    }

    /// The shared tenant geometry.
    #[must_use]
    pub fn config(&self) -> &ArenaConfig {
        &self.cfg
    }

    /// Tenants currently materialized.
    #[must_use]
    pub fn live_tenants(&self) -> usize {
        self.map.live
    }

    /// Slots currently allocated (live + free).
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slab.slots()
    }

    /// Tenants decayed by idle eviction since construction.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Cumulative memory-operation counters.
    #[must_use]
    pub fn counters(&self) -> OpCounters {
        self.ops
    }

    /// Point-in-time arena gauges (exported as the `arena.*` metrics).
    #[must_use]
    pub fn arena_stats(&self) -> ArenaStats {
        let slots = self.slab.slots();
        let live = self.map.live;
        let slab_bytes = self.slab.memory_bits() / 8;
        ArenaStats {
            slots,
            live_tenants: live,
            evictions: self.evictions,
            slab_bytes,
            stride_bytes: self.slab.stride_words() * 8,
            occupancy: live as f64 / slots.max(1) as f64,
            bytes_per_live_tenant: if live == 0 {
                0.0
            } else {
                slab_bytes as f64 / live as f64
            },
        }
    }

    /// One round-robin idle-decay step, mirroring the cleaning daemon's
    /// amortization: inspect one slot per arrival.
    fn evict_step(&mut self) {
        let Some(idle) = self.cfg.idle_eviction else {
            return;
        };
        let slots = self.slab.slots();
        let cursor = self.scan_cursor;
        self.scan_cursor = (cursor + 1) % slots;
        if let Some(meta) = self.metas[cursor] {
            if self.arrivals.saturating_sub(meta.last_touch) > idle {
                self.map.remove(meta.prefix);
                self.metas[cursor] = None;
                self.slab.fill_region(cursor, u64::MAX);
                self.free.push(cursor as u32);
                self.evictions += 1;
            }
        }
    }

    /// Resolves a prefix to its slot, materializing the tenant on first
    /// click (growing the slab by doubling when no slot is free).
    fn slot_for(&mut self, prefix: u64) -> usize {
        if let Some(slot) = self.map.find(prefix) {
            return slot as usize;
        }
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let old = self.slab.slots();
                assert!(old * 2 <= MAX_ARENA_SLOTS, "arena slot cap exceeded");
                self.slab.grow(old);
                self.metas.resize(old * 2, None);
                self.free.extend((old as u32..(old * 2) as u32).rev());
                self.free.pop().expect("grow produced free slots")
            }
        };
        self.slab.fill_region(slot as usize, u64::MAX);
        self.metas[slot as usize] = Some(TenantMeta {
            prefix,
            now: 0,
            clean_next: 0,
            last_touch: self.arrivals,
        });
        self.map.insert(prefix, slot);
        slot as usize
    }

    /// The amortized cleaning sweep of one tenant: `⌈m_t/n_t⌉` entries
    /// from its sweep cursor, split at the region boundary.
    fn clean_step(&mut self, slot: usize, meta: &mut TenantMeta) {
        let m = self.cfg.tenant_entries;
        let quota = self.cfg.clean_quota();
        let range = self.cfg.range();
        let hi = self.cfg.tenant_window as u64 - 1;
        let mut view = PackedView::new(self.slab.region_mut(slot), m, self.entry_bits);
        let first = quota.min(m - meta.clean_next);
        let mut cleaned = view.expire_range(meta.clean_next, first, meta.now, range, 1, hi);
        if quota > first {
            cleaned += view.expire_range(0, quota - first, meta.now, range, 1, hi);
        }
        self.ops.clean_reads += quota as u64;
        self.ops.clean_writes += cleaned as u64;
        meta.clean_next = (meta.clean_next + quota) % m;
    }

    /// The stateful half of one observation: route, decay-scan, clean,
    /// probe, insert, tick the tenant clock.
    fn apply(&mut self, plan: ProbePlan) -> Verdict {
        self.arrivals += 1;
        self.ops.elements += 1;
        self.ops.hash_evals += 1;
        self.evict_step();
        let slot = self.slot_for(plan.prefix());
        let mut meta = self.metas[slot].expect("routed slot is live");
        meta.last_touch = self.arrivals;
        self.clean_step(slot, &mut meta);

        let m = self.cfg.tenant_entries;
        let mut probes = std::mem::take(&mut self.probe_buf);
        probes.resize(self.k_eff, 0);
        match &self.geo {
            Some(geo) => plan.fill_blocked(geo, &mut probes),
            None => plan.fill(m, &mut probes),
        }

        let empty = self.empty;
        let range = self.cfg.range();
        let hi = self.cfg.tenant_window as u64 - 1;
        let mut view = PackedView::new(self.slab.region_mut(slot), m, self.entry_bits);
        let mut duplicate = true;
        let mut reads = 0u64;
        for &i in &probes {
            reads += 1;
            let e = view.get(i);
            if e == empty || !active_in(e, meta.now, range, hi) {
                duplicate = false;
                break;
            }
        }
        self.ops.probe_reads += reads;
        if !duplicate {
            for &i in &probes {
                view.set(i, meta.now);
            }
            self.ops.insert_writes += probes.len() as u64;
        }
        self.probe_buf = probes;
        meta.now = (meta.now + 1) % self.cfg.range();
        self.metas[slot] = Some(meta);
        if duplicate {
            Verdict::Duplicate
        } else {
            Verdict::Distinct
        }
    }

    /// Active (in-window) entries across all live tenants; one full
    /// occupancy scan.
    fn active_entries(&self) -> u64 {
        self.scans.set(self.scans.get() + 1);
        let m = self.cfg.tenant_entries;
        let range = self.cfg.range();
        let hi = self.cfg.tenant_window as u64 - 1;
        let mut active = 0u64;
        for (slot, meta) in self.metas.iter().enumerate() {
            let Some(meta) = meta else { continue };
            let view = PackedRef::new(self.slab.region(slot), m, self.entry_bits);
            for i in 0..m {
                let e = view.get(i);
                if e != self.empty && active_in(e, meta.now, range, hi) {
                    active += 1;
                }
            }
        }
        active
    }

    fn fill_from_active(&self, active: u64) -> f64 {
        let live_entries = self.map.live * self.cfg.tenant_entries;
        if live_entries == 0 {
            0.0
        } else {
            active as f64 / live_entries as f64
        }
    }

    fn sweep_fraction(&self) -> f64 {
        if self.map.live == 0 {
            return 0.0;
        }
        let m = self.cfg.tenant_entries as f64;
        let sum: f64 = self
            .metas
            .iter()
            .flatten()
            .map(|meta| meta.clean_next as f64 / m)
            .sum();
        sum / self.map.live as f64
    }

    fn duplicates_observed(&self) -> u64 {
        self.ops.elements - self.ops.insert_writes / self.k_eff as u64
    }

    pub(crate) fn checkpoint_parts(&self) -> (ArenaConfig, ArenaState) {
        (
            self.cfg,
            ArenaState {
                arrivals: self.arrivals,
                scan_cursor: self.scan_cursor as u64,
                evictions: self.evictions,
                slots: self.slab.slots() as u64,
                metas: self
                    .metas
                    .iter()
                    .map(|m| m.map(|m| (m.prefix, m.now, m.clean_next as u64, m.last_touch)))
                    .collect(),
                free: self.free.iter().map(|&s| u64::from(s)).collect(),
                words: self.slab.as_words().to_vec(),
            },
        )
    }

    /// Rebuilds an arena from checkpointed parts, re-deriving the
    /// prefix→slot map; `None` on any inconsistency.
    pub(crate) fn from_checkpoint_parts(cfg: ArenaConfig, state: ArenaState) -> Option<Self> {
        let mut arena = Self::new(cfg).ok()?;
        let slots = usize::try_from(state.slots).ok()?;
        if slots < cfg.initial_slots || slots > MAX_ARENA_SLOTS || state.metas.len() != slots {
            return None;
        }
        let slab = WordSlab::from_words(state.words, slots, cfg.stride_words().ok()?)?;
        let mut map = TenantMap::with_room_for(slots.min(state.metas.len()));
        let mut metas: Vec<Option<TenantMeta>> = Vec::with_capacity(slots);
        for parts in &state.metas {
            metas.push(match *parts {
                None => None,
                Some((prefix, now, clean_next, last_touch)) => {
                    let clean_next = usize::try_from(clean_next).ok()?;
                    if now >= cfg.range()
                        || clean_next >= cfg.tenant_entries
                        || last_touch > state.arrivals
                        || map.find(prefix).is_some()
                    {
                        return None;
                    }
                    map.insert(prefix, (metas.len()) as u32);
                    Some(TenantMeta {
                        prefix,
                        now,
                        clean_next,
                        last_touch,
                    })
                }
            });
        }
        let mut seen = vec![false; slots];
        let mut free = Vec::with_capacity(state.free.len());
        for &f in &state.free {
            let f = usize::try_from(f).ok()?;
            if f >= slots || seen[f] || metas[f].is_some() {
                return None;
            }
            seen[f] = true;
            free.push(f as u32);
        }
        if free.len() + map.live != slots {
            return None;
        }
        let scan_cursor = usize::try_from(state.scan_cursor).ok()?;
        if scan_cursor >= slots {
            return None;
        }
        arena.slab = slab;
        arena.metas = metas;
        arena.map = map;
        arena.free = free;
        arena.arrivals = state.arrivals;
        arena.scan_cursor = scan_cursor;
        arena.evictions = state.evictions;
        Some(arena)
    }
}

/// Checkpointed dynamic state of an arena (configuration travels
/// separately). The prefix→slot map is *not* part of the state — it is
/// re-derived from the metas on restore.
pub(crate) struct ArenaState {
    pub arrivals: u64,
    pub scan_cursor: u64,
    pub evictions: u64,
    pub slots: u64,
    pub metas: Vec<Option<(u64, u64, u64, u64)>>,
    pub free: Vec<u64>,
    pub words: Vec<u64>,
}

impl DuplicateDetector for TenantArena {
    fn observe(&mut self, id: &[u8]) -> Verdict {
        let plan = self.probe_planner().plan(id);
        self.apply(plan)
    }

    fn observe_batch_into(&mut self, ids: &[&[u8]], out: &mut Vec<Verdict>) {
        let mut plans = std::mem::take(&mut self.plan_buf);
        self.probe_planner().plan_refs_into(ids, &mut plans);
        self.apply_plan_batch_into(&plans, out);
        self.plan_buf = plans;
    }

    fn observe_flat_into(&mut self, keys: &[u8], key_len: usize, out: &mut Vec<Verdict>) {
        assert!(key_len > 0, "key_len must be positive");
        assert_eq!(keys.len() % key_len, 0, "flat buffer not a key multiple");
        let mut plans = std::mem::take(&mut self.plan_buf);
        self.probe_planner()
            .plan_flat_into(keys, key_len, &mut plans);
        self.apply_plan_batch_into(&plans, out);
        self.plan_buf = plans;
    }

    fn window(&self) -> WindowSpec {
        WindowSpec::Sliding {
            n: self.cfg.tenant_window,
        }
    }

    fn memory_bits(&self) -> usize {
        self.slab.memory_bits()
    }

    fn reset(&mut self) {
        *self = Self::new(self.cfg).expect("validated config");
    }

    fn name(&self) -> &'static str {
        "arena"
    }
}

impl PlannedDetector for TenantArena {
    fn probe_planner(&self) -> Planner {
        Planner::from_family(self.family)
    }

    fn apply_plan(&mut self, plan: ProbePlan) -> Verdict {
        self.apply(plan)
    }

    /// Order-preserving replay (batch ≡ sequential by construction) that
    /// prefetches the *next* tenant's region across run boundaries, so
    /// grouped same-tenant runs replay out of warm cache lines.
    fn apply_plan_batch_into(&mut self, plans: &[ProbePlan], out: &mut Vec<Verdict>) {
        out.clear();
        out.reserve(plans.len());
        for (i, &plan) in plans.iter().enumerate() {
            if let Some(next) = plans.get(i + 1) {
                if next.prefix() != plan.prefix() {
                    if let Some(slot) = self.map.find(next.prefix()) {
                        self.slab.prefetch(slot as usize);
                    }
                }
            }
            out.push(self.apply(plan));
        }
    }
}

impl DetectorStats for TenantArena {
    fn stats_name(&self) -> &'static str {
        "arena"
    }

    fn fill_ratios(&self) -> Vec<f64> {
        vec![self.fill_from_active(self.active_entries())]
    }

    fn sweep_position(&self) -> f64 {
        self.sweep_fraction()
    }

    fn cleaned_entries(&self) -> u64 {
        self.ops.clean_writes
    }

    fn observed_elements(&self) -> u64 {
        self.ops.elements
    }

    fn observed_duplicates(&self) -> u64 {
        self.duplicates_observed()
    }

    fn estimated_fp(&self) -> f64 {
        self.fill_from_active(self.active_entries())
            .powi(self.k_eff as i32)
    }

    fn occupancy_scans(&self) -> u64 {
        self.scans.get()
    }

    fn tenant_health(&self) -> Option<TenantHealth> {
        let s = self.arena_stats();
        Some(TenantHealth {
            slots: s.slots,
            live_tenants: s.live_tenants,
            evictions: s.evictions,
            occupancy: s.occupancy,
            bytes_per_live_tenant: s.bytes_per_live_tenant,
        })
    }

    fn health(&self) -> DetectorHealth {
        let fill = self.fill_from_active(self.active_entries());
        DetectorHealth {
            detector: self.stats_name(),
            fill_ratios: vec![fill],
            cleaning_backlog: 0.0,
            sweep_position: self.sweep_fraction(),
            cleaned_entries: self.ops.clean_writes,
            observed_elements: self.ops.elements,
            observed_duplicates: self.duplicates_observed(),
            estimated_fp: fill.powi(self.k_eff as i32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tbf;
    use crate::TbfConfig;
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn key(tenant: u64, click: u64) -> Vec<u8> {
        let mut k = tenant.to_le_bytes().to_vec();
        k.extend_from_slice(&click.to_le_bytes());
        k
    }

    fn small_cfg() -> ArenaConfig {
        ArenaConfig::new(32, 307, 4, 0xA1E)
    }

    #[test]
    fn config_validation_rejects_bad_shapes() {
        assert_eq!(
            TenantArena::new(ArenaConfig::new(1, 8, 4, 0)).unwrap_err(),
            ConfigError::WindowTooSmall(1)
        );
        assert_eq!(
            TenantArena::new(ArenaConfig::new(8, 0, 4, 0)).unwrap_err(),
            ConfigError::ZeroDimension("tenant entry count m_t")
        );
        assert_eq!(
            TenantArena::new(ArenaConfig::new(8, 8, 0, 0)).unwrap_err(),
            ConfigError::BadHashCount(0)
        );
        assert_eq!(
            TenantArena::new(ArenaConfig::new(8, 8, 4, 0).with_initial_slots(0)).unwrap_err(),
            ConfigError::ZeroDimension("arena slot count")
        );
        assert_eq!(
            TenantArena::new(ArenaConfig::new(8, 8, 4, 0).with_idle_eviction(0)).unwrap_err(),
            ConfigError::ZeroDimension("idle eviction age")
        );
    }

    #[test]
    fn for_budget_splits_bits_across_initial_slots() {
        let cfg = ArenaConfig::for_budget(1 << 14, (1 << 14) * 32, 10, 0).unwrap();
        let arena = TenantArena::new(cfg).unwrap();
        // 15-bit entries, 65536 bits per slot → 4369 entries; the
        // cache-line-rounded slab lands exactly on the budget here.
        assert_eq!(cfg.tenant_entries, 4369);
        assert_eq!(arena.memory_bits(), (1 << 14) * 32);
        assert!(ArenaConfig::for_budget(1 << 14, 64, 10, 0).is_err());
    }

    #[test]
    fn detects_duplicates_per_tenant_and_isolates_tenants() {
        let mut arena = TenantArena::new(small_cfg()).unwrap();
        assert!(arena.observe(&key(1, 7)).is_distinct());
        assert!(arena.observe(&key(2, 7)).is_distinct());
        assert!(arena.observe(&key(1, 7)).is_duplicate());
        assert!(arena.observe(&key(2, 7)).is_duplicate());
        assert_eq!(arena.live_tenants(), 2);
    }

    #[test]
    fn each_tenant_matches_a_standalone_tbf() {
        // Interleave 3 tenants' streams; every verdict must equal the
        // verdict of a dedicated TBF fed only that tenant's stream.
        let cfg = small_cfg();
        let mut arena = TenantArena::new(cfg).unwrap();
        let mut solo: HashMap<u64, Tbf> = (1..=3)
            .map(|t| {
                let c = TbfConfig::builder(cfg.tenant_window)
                    .entries(cfg.tenant_entries)
                    .hash_count(cfg.hash_count)
                    .range_extension(cfg.tenant_window - 1)
                    .seed(cfg.seed)
                    .build()
                    .unwrap();
                (t, Tbf::new(c).unwrap())
            })
            .collect();
        let mut rng = 0x9E37u64;
        for step in 0..4000u64 {
            rng = splitmix64(rng);
            let t = 1 + rng % 3;
            let click = rng % 40 + step / 200; // drifting duplicate-heavy ids
            let k = key(t, click);
            assert_eq!(
                arena.observe(&k),
                solo.get_mut(&t).unwrap().observe(&k),
                "tenant {t} step {step}"
            );
        }
    }

    #[test]
    fn lazy_growth_doubles_the_slab() {
        let cfg = small_cfg().with_initial_slots(2);
        let mut arena = TenantArena::new(cfg).unwrap();
        assert_eq!(arena.slot_count(), 2);
        for t in 0..9u64 {
            arena.observe(&key(t, 0));
        }
        assert_eq!(arena.live_tenants(), 9);
        assert_eq!(arena.slot_count(), 16);
        let spare_bits = arena.memory_bits();
        arena.observe(&key(99, 0));
        assert_eq!(spare_bits, arena.memory_bits(), "room for 16 tenants");
    }

    #[test]
    fn idle_tenants_decay_and_slots_recycle() {
        let cfg = small_cfg().with_initial_slots(4).with_idle_eviction(64);
        let mut arena = TenantArena::new(cfg).unwrap();
        arena.observe(&key(7, 1));
        // Keep three other tenants busy until tenant 7 ages out.
        for i in 0..400u64 {
            arena.observe(&key(1 + i % 3, i));
        }
        assert!(arena.evictions() >= 1);
        assert_eq!(arena.live_tenants(), 3);
        assert_eq!(arena.slot_count(), 4, "slot recycled, no growth");
        // The decayed tenant restarts fresh: its duplicate is forgotten.
        assert!(arena.observe(&key(7, 1)).is_distinct());
    }

    #[test]
    fn batch_and_flat_replay_match_sequential() {
        let cfg = small_cfg();
        let mut seq = TenantArena::new(cfg).unwrap();
        let mut batched = TenantArena::new(cfg).unwrap();
        let mut flat_arena = TenantArena::new(cfg).unwrap();
        let mut rng = 1u64;
        let keys: Vec<Vec<u8>> = (0..600)
            .map(|_| {
                rng = splitmix64(rng);
                key(rng % 17, rng % 23)
            })
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let flat: Vec<u8> = keys.iter().flatten().copied().collect();
        let expect: Vec<Verdict> = refs.iter().map(|id| seq.observe(id)).collect();
        let mut got = Vec::new();
        batched.observe_batch_into(&refs, &mut got);
        assert_eq!(expect, got);
        flat_arena.observe_flat_into(&flat, 16, &mut got);
        assert_eq!(expect, got);
    }

    #[test]
    fn blocked_layout_matches_scattered_semantics() {
        let cfg = small_cfg().with_probe(ProbeLayout::Blocked);
        let mut arena = TenantArena::new(cfg).unwrap();
        assert!(arena.observe(&key(3, 3)).is_distinct());
        assert!(arena.observe(&key(3, 3)).is_duplicate());
        // 1-bit entries cannot host a blocked walk of two slots… they
        // can (512 fit); instead reject a region smaller than one block.
        let tiny = ArenaConfig::new(32, 2, 4, 0).with_probe(ProbeLayout::Blocked);
        assert!(matches!(
            TenantArena::new(tiny).unwrap_err(),
            ConfigError::BlockedUnsupported { .. }
        ));
    }

    #[test]
    fn stats_report_occupancy_without_batch_scans() {
        let cfg = small_cfg();
        let mut arena = TenantArena::new(cfg).unwrap();
        for i in 0..100u64 {
            arena.observe(&key(i % 5, i));
        }
        assert_eq!(arena.occupancy_scans(), 0, "observe path never scans");
        let health = arena.health();
        assert_eq!(arena.occupancy_scans(), 1, "health pays exactly one scan");
        assert!(health.fill_ratios[0] > 0.0);
        assert_eq!(health.observed_elements, 100);
        let stats = arena.arena_stats();
        assert_eq!(stats.live_tenants, 5);
        assert_eq!(stats.slots, DEFAULT_INITIAL_SLOTS);
        assert!((stats.occupancy - 5.0 / 8.0).abs() < 1e-12);
        assert_eq!(stats.stride_bytes % 64, 0);
    }

    #[test]
    fn reset_returns_to_the_initial_footprint() {
        let cfg = small_cfg().with_initial_slots(2);
        let mut arena = TenantArena::new(cfg).unwrap();
        for t in 0..40u64 {
            arena.observe(&key(t, 0));
        }
        assert!(arena.slot_count() > 2);
        arena.reset();
        assert_eq!(arena.slot_count(), 2);
        assert_eq!(arena.live_tenants(), 0);
        assert_eq!(arena.counters(), OpCounters::new());
        assert!(arena.observe(&key(0, 0)).is_distinct());
    }

    #[test]
    fn checkpoint_parts_round_trip_preserves_future_verdicts() {
        let cfg = small_cfg().with_initial_slots(2).with_idle_eviction(128);
        let mut arena = TenantArena::new(cfg).unwrap();
        let mut rng = 3u64;
        for _ in 0..800 {
            rng = splitmix64(rng);
            arena.observe(&key(rng % 11, rng % 19));
        }
        let (saved_cfg, state) = arena.checkpoint_parts();
        let mut restored = TenantArena::from_checkpoint_parts(saved_cfg, state).unwrap();
        assert_eq!(arena.memory_bits(), restored.memory_bits());
        assert_eq!(arena.live_tenants(), restored.live_tenants());
        for _ in 0..800 {
            rng = splitmix64(rng);
            let k = key(rng % 11, rng % 19);
            assert_eq!(arena.observe(&k), restored.observe(&k));
        }
    }

    #[test]
    fn from_checkpoint_parts_rejects_inconsistencies() {
        let cfg = small_cfg().with_initial_slots(2);
        let mut arena = TenantArena::new(cfg).unwrap();
        arena.observe(&key(1, 1));
        let (saved, good) = arena.checkpoint_parts();
        let rebuild = |mutate: &dyn Fn(&mut ArenaState)| {
            let (_, mut st) = arena.checkpoint_parts();
            mutate(&mut st);
            TenantArena::from_checkpoint_parts(saved, st)
        };
        assert!(TenantArena::from_checkpoint_parts(saved, good).is_some());
        assert!(rebuild(&|st| st.slots = 3).is_none(), "meta/slot mismatch");
        assert!(rebuild(&|st| st.words.pop().map(|_| ()).unwrap()).is_none());
        assert!(rebuild(&|st| st.scan_cursor = 99).is_none());
        assert!(rebuild(&|st| st.free.clear()).is_none(), "free-list gap");
        assert!(rebuild(&|st| {
            for m in st.metas.iter_mut().flatten() {
                m.1 = u64::MAX; // clock beyond range
            }
        })
        .is_none());
    }

    proptest! {
        #[test]
        fn tenant_map_matches_std_hashmap(ops in proptest::collection::vec(
            (any::<u8>(), 0u32..64), 1..400)) {
            let mut map = TenantMap::with_room_for(4);
            let mut model: HashMap<u64, u32> = HashMap::new();
            for (i, (k, slot)) in ops.into_iter().enumerate() {
                let k = u64::from(k % 96);
                if i % 3 == 2 {
                    prop_assert_eq!(map.remove(k), model.remove(&k).is_some());
                } else if let std::collections::hash_map::Entry::Vacant(e) = model.entry(k) {
                    map.insert(k, slot);
                    e.insert(slot);
                } else {
                    prop_assert_eq!(map.find(k), model.get(&k).copied());
                }
                prop_assert_eq!(map.live, model.len());
            }
            for (k, v) in &model {
                prop_assert_eq!(map.find(*k), Some(*v));
            }
        }
    }
}
