//! The APBF backend: age-partitioned blocked Bloom filters over sliding
//! windows (Shtul, Baquero & Almeida, "Age-Partitioned Bloom Filters").
//!
//! Where the TBF widens each cell to a timestamp, the APBF keeps plain
//! *bits* but partitions them into `k + l` logical slices ordered by
//! age. A distinct element sets one bit in each of the `k` youngest
//! slices; a query reports a duplicate iff some `k` *consecutive*
//! slices all hit — the run an insertion leaves behind as it ages.
//! Every `g = ⌈n/l⌉` arrivals the slices shift one age: the oldest
//! retires and a pre-wiped spare becomes the new slice 0, so the
//! structure holds `k + l + 1` physical slices and wipes exactly one of
//! them — incrementally, a few words per arrival — per generation.
//!
//! The guarantees mirror the paper's Theorem 2 shape: zero false
//! negatives over the last `n` arrivals (an insertion survives at least
//! `l` shifts and `l·g ≥ n`), one-sided false positives of roughly
//! `(l+1)·r^k` at per-slice fill `r`, and O(1) amortized maintenance.
//! Unlike the TBF, stale elements expire *structurally* — no timestamp
//! aliasing, so there is no range-extension parameter to tune.
//!
//! Both probe layouts of the suite are supported: `Scattered` gives
//! each slice its own word-aligned bit range; `Blocked` confines all
//! `k + l + 1` probes of an element to one 512-bit cache line split
//! into per-slice lanes, so an observation touches one line.

use crate::backend::{self, BatchBufs, CountCore, ProbeCore};
use crate::config::{ConfigError, ProbeLayout};
use crate::ops::OpCounters;
use cfd_bits::BitVec;
use cfd_hash::mix::splitmix64;
use cfd_hash::{BlockGeometry, DoubleHashFamily, HashFamily, Planner, ProbePlan};
use cfd_telemetry::DetectorStats;
use cfd_windows::{DuplicateDetector, Verdict, WindowSpec};
use std::cell::Cell;

/// Bits per cache-line block in the blocked layout.
const LINE_BITS: usize = 512;

/// Validated APBF shape. All fields are plain data; [`Apbf::new`]
/// validates them, and [`ApbfConfig::for_budget`] derives a
/// false-positive-optimal shape from a memory budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApbfConfig {
    /// Sliding-window length in arrivals (`N`).
    pub n: usize,
    /// Slices an element sets / consecutive hits a duplicate needs.
    pub k: usize,
    /// Extra age slices; an insertion stays queryable for `l` shifts.
    pub l: usize,
    /// Total memory budget in bits for all `k + l + 1` physical slices.
    pub total_bits: usize,
    /// Hash seed shared with every detector of the same family.
    pub seed: u64,
    /// Probe derivation layout.
    pub probe: ProbeLayout,
}

impl ApbfConfig {
    /// Arrivals per generation: slices shift one age every `g = ⌈n/l⌉`
    /// arrivals, which makes `l` shifts cover at least `n` arrivals.
    #[must_use]
    pub fn generation_len(&self) -> usize {
        self.n.div_ceil(self.l).max(1)
    }

    /// Physical slices: `k + l` logical ages plus the wiping spare.
    #[must_use]
    pub fn physical_slices(&self) -> usize {
        self.k + self.l + 1
    }

    /// Searches `(k, l)` for the lowest modeled false-positive rate at
    /// window `n` under `total_bits` of memory — the equal-memory
    /// counterpart of `TbfConfig::builder(n).entries(..)`.
    ///
    /// The model is the slice-uniform closed form also exposed by
    /// `cfd-analysis`: fill `r = 1 − exp(−k·g / m_s)` at `m_s` bits per
    /// slice, `fp = (l+1)·r^k`. The objective is clamped at a floor of
    /// one expected false positive per hundred windows (`0.01 / n`):
    /// below that, FP differences are un-observable in any realistic
    /// stream, so spending more probes on them only buys per-element
    /// cost. Ties — including everything at the floor — prefer fewer
    /// probes (smaller `k`, then smaller `l`). Deterministic for fixed
    /// inputs.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::MemoryTooSmall`] if no searched shape
    /// fits the budget, or [`ConfigError::WindowTooSmall`] for `n < 2`.
    pub fn for_budget(
        n: usize,
        total_bits: usize,
        seed: u64,
        probe: ProbeLayout,
    ) -> Result<Self, ConfigError> {
        if n < 2 {
            return Err(ConfigError::WindowTooSmall(n));
        }
        let fp_floor = 0.01 / n as f64;
        let mut best: Option<(f64, usize, usize)> = None;
        for k in 2..=16usize {
            for l in 1..=48usize {
                let s = k + l + 1;
                let per_slice = match probe {
                    ProbeLayout::Scattered => (total_bits / s) / 64 * 64,
                    ProbeLayout::Blocked => {
                        let lines = total_bits / LINE_BITS;
                        match lane_bits_for(s) {
                            Some(w) => lines * w,
                            None => continue,
                        }
                    }
                };
                if per_slice == 0 {
                    continue;
                }
                let g = n.div_ceil(l).max(1);
                let r = 1.0 - (-((k * g) as f64) / per_slice as f64).exp();
                let fp = ((l + 1) as f64 * r.powi(k as i32)).max(fp_floor);
                let better = match best {
                    None => true,
                    Some((bf, bk, bl)) => fp < bf || (fp == bf && (k < bk || (k == bk && l < bl))),
                };
                if better {
                    best = Some((fp, k, l));
                }
            }
        }
        let (_, k, l) = best.ok_or(ConfigError::MemoryTooSmall {
            provided: total_bits,
            required: 4 * 64,
        })?;
        Ok(Self {
            n,
            k,
            l,
            total_bits,
            seed,
            probe,
        })
    }
}

/// Largest power-of-two lane width fitting `s` slices in one line, or
/// `None` when fewer than two bits per lane fit.
fn lane_bits_for(s: usize) -> Option<usize> {
    let raw = LINE_BITS / s;
    if raw < 2 {
        return None;
    }
    Some(1 << (usize::BITS - 1 - raw.leading_zeros()))
}

/// How the physical slices map onto the backing bit vector.
#[derive(Debug, Clone, Copy)]
enum Layout {
    /// Slice `p` owns the word-aligned range
    /// `[p · 64·slice_words, (p+1) · 64·slice_words)`.
    Scattered {
        /// 64-bit words per slice.
        slice_words: usize,
    },
    /// Every element maps to one 512-bit line; slice `p` owns the
    /// `lane_bits`-wide lane at offset `p · lane_bits` of each line.
    Blocked {
        /// Cache lines in the table.
        lines: usize,
        /// Power-of-two bits per slice lane.
        lane_bits: usize,
    },
}

/// Dynamic APBF state captured by a checkpoint.
pub(crate) struct ApbfState {
    pub base: usize,
    pub in_gen: usize,
    pub wipe: Option<(usize, usize)>,
    pub bit_words: Vec<u64>,
}

/// Age-partitioned Bloom-filter duplicate detector over count-based
/// sliding windows.
///
/// ```rust
/// use cfd_core::{Apbf, ApbfConfig, ProbeLayout};
/// use cfd_windows::{DuplicateDetector, Verdict};
///
/// # fn main() -> Result<(), cfd_core::ConfigError> {
/// let cfg = ApbfConfig::for_budget(1 << 12, 1 << 20, 7, ProbeLayout::Scattered)?;
/// let mut d = Apbf::new(cfg)?;
/// assert_eq!(d.observe(b"198.51.100.4|beef|ad-3"), Verdict::Distinct);
/// assert_eq!(d.observe(b"198.51.100.4|beef|ad-3"), Verdict::Duplicate);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Apbf {
    cfg: ApbfConfig,
    bits: BitVec,
    layout: Layout,
    family: DoubleHashFamily,
    /// Physical index of logical slice 0.
    base: usize,
    /// Arrivals since the last shift; shifts at `g`.
    in_gen: usize,
    /// Arrivals per generation (`⌈n/l⌉`).
    g: usize,
    /// In-progress spare wipe: `(physical slice, unit cursor)` where a
    /// unit is a word (scattered) or a line (blocked).
    wipe: Option<(usize, usize)>,
    /// Wipe units per arrival: `⌈units_per_slice / g⌉`, so a retired
    /// slice is clean before it becomes logical slice 0 again.
    wipe_quota: usize,
    ops: OpCounters,
    bufs: BatchBufs,
    /// `O(m)` occupancy scans performed (snapshot-cadence only).
    scans: Cell<u64>,
}

impl Apbf {
    /// Creates a detector from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the shape is invalid: `n < 2`,
    /// `k` outside `1..=64`, `l = 0`, a budget too small for one word
    /// (scattered) or one line (blocked) per slice, or a blocked lane
    /// narrower than two bits.
    pub fn new(cfg: ApbfConfig) -> Result<Self, ConfigError> {
        if cfg.n < 2 {
            return Err(ConfigError::WindowTooSmall(cfg.n));
        }
        if !(1..=64).contains(&cfg.k) {
            return Err(ConfigError::BadHashCount(cfg.k));
        }
        if cfg.l == 0 {
            return Err(ConfigError::ZeroDimension("age slices l"));
        }
        let s = cfg.physical_slices();
        let g = cfg.generation_len();
        let (layout, len, units) = match cfg.probe {
            ProbeLayout::Scattered => {
                let slice_words = (cfg.total_bits / s) / 64;
                if slice_words == 0 {
                    return Err(ConfigError::MemoryTooSmall {
                        provided: cfg.total_bits,
                        required: s * 64,
                    });
                }
                (
                    Layout::Scattered { slice_words },
                    s * slice_words * 64,
                    slice_words,
                )
            }
            ProbeLayout::Blocked => {
                let lane_bits = lane_bits_for(s).ok_or(ConfigError::BlockedUnsupported {
                    slot_bits: 1,
                    m: cfg.total_bits,
                })?;
                let lines = cfg.total_bits / LINE_BITS;
                if lines == 0 {
                    return Err(ConfigError::MemoryTooSmall {
                        provided: cfg.total_bits,
                        required: LINE_BITS,
                    });
                }
                (
                    Layout::Blocked { lines, lane_bits },
                    lines * LINE_BITS,
                    lines,
                )
            }
        };
        Ok(Self {
            bits: BitVec::new(len),
            layout,
            family: DoubleHashFamily::new(cfg.seed),
            base: 0,
            in_gen: 0,
            g,
            wipe: None,
            wipe_quota: units.div_ceil(g),
            ops: OpCounters::new(),
            bufs: BatchBufs::default(),
            scans: Cell::new(0),
            cfg,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> ApbfConfig {
        self.cfg
    }

    /// Memory-operation counters.
    #[must_use]
    pub fn ops(&self) -> OpCounters {
        self.ops
    }

    /// The sliding window in elements (`N`).
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.cfg.n
    }

    /// Bits addressable per slice under the realized layout.
    #[must_use]
    pub fn slice_capacity(&self) -> usize {
        match self.layout {
            Layout::Scattered { slice_words } => slice_words * 64,
            Layout::Blocked { lines, lane_bits } => lines * lane_bits,
        }
    }

    /// Arrivals after which an insertion is guaranteed gone: `(l+1)·g`
    /// shifts retire its youngest slice.
    #[must_use]
    pub fn expiry_horizon(&self) -> usize {
        (self.cfg.l + 1) * self.g
    }

    /// Physical index of logical slice `j` (age order, 0 = youngest).
    #[inline]
    fn phys(&self, j: usize) -> usize {
        let s = self.cfg.physical_slices();
        let p = self.base + j;
        if p >= s {
            p - s
        } else {
            p
        }
    }

    /// Internal state snapshot for checkpointing.
    pub(crate) fn checkpoint_parts(&self) -> (ApbfConfig, ApbfState) {
        (
            self.cfg,
            ApbfState {
                base: self.base,
                in_gen: self.in_gen,
                wipe: self.wipe,
                bit_words: self.bits.as_words().to_vec(),
            },
        )
    }

    /// Rebuilds a detector from checkpoint parts; `None` if inconsistent.
    pub(crate) fn from_checkpoint_parts(cfg: ApbfConfig, state: ApbfState) -> Option<Self> {
        let mut d = Self::new(cfg).ok()?;
        let s = cfg.physical_slices();
        let units = match d.layout {
            Layout::Scattered { slice_words } => slice_words,
            Layout::Blocked { lines, .. } => lines,
        };
        if state.base >= s || state.in_gen >= d.g {
            return None;
        }
        if let Some((slice, cursor)) = state.wipe {
            if slice >= s || cursor >= units {
                return None;
            }
        }
        let len = d.bits.len();
        d.bits = BitVec::from_words(state.bit_words, len)?;
        d.base = state.base;
        d.in_gen = state.in_gen;
        d.wipe = state.wipe;
        Some(d)
    }

    /// Advances the in-progress spare wipe by the per-arrival quota.
    fn clean_step(&mut self) {
        let Some((slice, cursor)) = self.wipe else {
            return;
        };
        match self.layout {
            Layout::Scattered { slice_words } => {
                let end = (cursor + self.wipe_quota).min(slice_words);
                let word_base = slice * slice_words;
                self.bits
                    .clear_word_range(word_base + cursor, word_base + end);
                self.ops.clean_writes += (end - cursor) as u64;
                self.wipe = (end < slice_words).then_some((slice, end));
            }
            Layout::Blocked { lines, lane_bits } => {
                let end = (cursor + self.wipe_quota).min(lines);
                for line in cursor..end {
                    self.bits
                        .clear_range(line * LINE_BITS + slice * lane_bits, lane_bits);
                }
                self.ops.clean_writes += (end - cursor) as u64;
                self.wipe = (end < lines).then_some((slice, end));
            }
        }
    }

    /// Completes any residual wipe immediately (rotation safety net;
    /// the quota schedule finishes within one generation on its own).
    fn finish_wipe(&mut self) {
        while self.wipe.is_some() {
            self.clean_step();
        }
    }

    /// Counts the arrival; every `g` arrivals the slices shift one age:
    /// the pre-wiped spare becomes logical 0 and the retired oldest
    /// slice becomes the spare, starting its incremental wipe.
    fn advance(&mut self) {
        self.in_gen += 1;
        if self.in_gen < self.g {
            return;
        }
        self.in_gen = 0;
        debug_assert!(
            self.wipe.is_none(),
            "spare wipe must finish within one generation"
        );
        self.finish_wipe();
        let s = self.cfg.physical_slices();
        // The spare (base − 1 mod s) becomes logical 0; the old oldest
        // logical slice (k + l − 1) becomes the new spare.
        self.base = (self.base + s - 1) % s;
        self.wipe = Some((self.phys(self.cfg.k + self.cfg.l), 0));
    }

    /// The pure hashing half of this detector, shareable across threads.
    #[must_use]
    pub fn planner(&self) -> Planner {
        Planner::from_family(self.family)
    }

    /// Hashes `id` into a replayable [`ProbePlan`] (pure; no state touched).
    #[inline]
    #[must_use]
    pub fn plan(&self, id: &[u8]) -> ProbePlan {
        ProbePlan::from_pair(self.family.pair(id))
    }

    /// The stateful half of an observation: wipe step, consecutive-run
    /// probe, insert when distinct, advance the generation clock.
    pub fn apply(&mut self, plan: ProbePlan) -> Verdict {
        let mut bufs = std::mem::take(&mut self.bufs);
        let verdict = backend::apply_plan(self, &mut bufs, plan);
        self.bufs = bufs;
        verdict
    }

    /// Replays a batch of precomputed plans with lookahead prefetch.
    pub fn apply_batch(&mut self, plans: &[ProbePlan]) -> Vec<Verdict> {
        let mut out = Vec::with_capacity(plans.len());
        self.apply_batch_into(plans, &mut out);
        out
    }

    /// Allocation-free [`Apbf::apply_batch`]: verdicts go into `out`
    /// (cleared first, capacity reused).
    pub fn apply_batch_into(&mut self, plans: &[ProbePlan], out: &mut Vec<Verdict>) {
        let mut bufs = std::mem::take(&mut self.bufs);
        backend::apply_batch_into(self, &mut bufs, plans, out);
        self.bufs = bufs;
    }

    /// [`Apbf::apply`] with the plan's probe indices already expanded.
    /// `probes[p]` is the bit for *physical* slice `p`.
    fn apply_at(&mut self, probes: &[usize]) -> Verdict {
        self.ops.elements += 1;
        self.ops.hash_evals += 1;
        self.clean_step();

        // Query: a duplicate left a run of k consecutive set slices
        // somewhere in the k + l logical ages. Scan young → old,
        // bailing once the remaining ages cannot complete a run; the
        // early exit keeps the touched-line count (the scattered
        // layout's real cost) at its minimum and beats branch-free
        // mask collection even when all ages share one L1-hot line.
        // Physical slice indices advance by wrap-around increment
        // instead of `phys(j)`'s per-age modulo.
        let ages = self.cfg.k + self.cfg.l;
        let k = self.cfg.k;
        let s = self.cfg.physical_slices();
        let mut p = self.base;
        let mut run = 0usize;
        let mut dup = false;
        for j in 0..ages {
            if run + (ages - j) < k {
                break;
            }
            self.ops.probe_reads += 1;
            if self.bits.get(probes[p]) {
                run += 1;
                if run == k {
                    dup = true;
                    break;
                }
            } else {
                run = 0;
            }
            p += 1;
            if p == s {
                p = 0;
            }
        }

        let verdict = if dup {
            // Duplicates are not valid clicks and must not refresh the
            // stored element (Definition 1), so nothing is written.
            Verdict::Duplicate
        } else {
            let mut p = self.base;
            for _ in 0..k {
                self.bits.set(probes[p]);
                p += 1;
                if p == s {
                    p = 0;
                }
            }
            self.ops.insert_writes += k as u64;
            Verdict::Distinct
        };
        self.advance();
        verdict
    }

    /// Set-bit count per physical slice, in one pass over the table.
    fn slice_ones(&self) -> Vec<usize> {
        self.scans.set(self.scans.get() + 1);
        let s = self.cfg.physical_slices();
        let mut counts = vec![0usize; s];
        match self.layout {
            Layout::Scattered { slice_words } => {
                for i in self.bits.iter_ones() {
                    counts[i / (slice_words * 64)] += 1;
                }
            }
            Layout::Blocked { lane_bits, .. } => {
                for i in self.bits.iter_ones() {
                    counts[(i % LINE_BITS) / lane_bits] += 1;
                }
            }
        }
        counts
    }

    /// Fill ratio of each *logical* slice, youngest first (`O(m)`).
    #[must_use]
    pub fn logical_fills(&self) -> Vec<f64> {
        let counts = self.slice_ones();
        let cap = self.slice_capacity().max(1) as f64;
        (0..self.cfg.k + self.cfg.l)
            .map(|j| counts[self.phys(j)] as f64 / cap)
            .collect()
    }

    /// The slice-product false-positive estimate at the given logical
    /// fills: `Σ_{i=0..l} Π_{j=i..i+k−1} fill_j`.
    fn fp_from_fills(&self, fills: &[f64]) -> f64 {
        let k = self.cfg.k;
        (0..=self.cfg.l)
            .map(|i| fills[i..i + k].iter().product::<f64>())
            .sum()
    }
}

impl ProbeCore for Apbf {
    #[inline]
    fn table_len(&self) -> usize {
        self.bits.len()
    }

    #[inline]
    fn probe_width(&self) -> usize {
        self.cfg.physical_slices()
    }

    /// Both layouts derive probes themselves, so the standard blocked
    /// geometry is never used.
    #[inline]
    fn block_geo(&self) -> Option<&BlockGeometry> {
        None
    }

    /// `probes[p]` addresses *physical* slice `p`: per-slice double
    /// hashing in scattered mode; one multiply-shift-selected line with
    /// per-slice lanes in blocked mode (the line pick remixes the pair
    /// so it stays independent of the shard router's `h1` bits).
    fn fill_probes(&self, plan: ProbePlan, out: &mut [usize]) {
        let pair = plan.pair();
        let h1 = pair.h1;
        let stride = pair.odd_stride();
        match self.layout {
            Layout::Scattered { slice_words } => {
                // Strength-reduced double hashing: two divisions total,
                // then an add with conditional wrap per slice — a
                // per-probe 64-bit modulo costs more than the probe's
                // cache-line load at any cached scale.
                let m_s = (slice_words * 64) as u64;
                let step = stride % m_s;
                let mut off = h1 % m_s;
                let mut base = 0usize;
                for slot in out.iter_mut() {
                    *slot = base + off as usize;
                    base += slice_words * 64;
                    off += step;
                    if off >= m_s {
                        off -= m_s;
                    }
                }
            }
            Layout::Blocked { lines, lane_bits } => {
                let mixed = splitmix64(h1 ^ pair.h2.rotate_left(32));
                let line = ((u128::from(mixed) * lines as u128) >> 64) as usize;
                let mask = (lane_bits - 1) as u64;
                for (p, slot) in out.iter_mut().enumerate() {
                    let off = h1.wrapping_add((p as u64).wrapping_mul(stride)) & mask;
                    *slot = line * LINE_BITS + p * lane_bits + off as usize;
                }
            }
        }
    }

    #[inline]
    fn prefetch(&self, idx: usize) {
        self.bits.prefetch(idx);
    }

    /// Blocked probes all land in one 512-bit line.
    #[inline]
    fn probes_share_line(&self) -> bool {
        matches!(self.layout, Layout::Blocked { .. })
    }
}

impl CountCore for Apbf {
    #[inline]
    fn apply_probes(&mut self, _plan: ProbePlan, probes: &[usize]) -> Verdict {
        self.apply_at(probes)
    }
}

impl DuplicateDetector for Apbf {
    fn observe(&mut self, id: &[u8]) -> Verdict {
        let plan = self.plan(id);
        self.apply(plan)
    }

    fn observe_batch(&mut self, ids: &[&[u8]]) -> Vec<Verdict> {
        let mut out = Vec::with_capacity(ids.len());
        self.observe_batch_into(ids, &mut out);
        out
    }

    fn observe_batch_into(&mut self, ids: &[&[u8]], out: &mut Vec<Verdict>) {
        let mut bufs = std::mem::take(&mut self.bufs);
        let planner = self.planner();
        backend::observe_refs_into(self, &mut bufs, planner, ids, out);
        self.bufs = bufs;
    }

    fn observe_flat_into(&mut self, keys: &[u8], key_len: usize, out: &mut Vec<Verdict>) {
        let mut bufs = std::mem::take(&mut self.bufs);
        let planner = self.planner();
        backend::observe_flat_into(self, &mut bufs, planner, keys, key_len, out);
        self.bufs = bufs;
    }

    fn window(&self) -> WindowSpec {
        WindowSpec::Sliding { n: self.cfg.n }
    }

    fn memory_bits(&self) -> usize {
        self.bits.memory_bits()
    }

    fn reset(&mut self) {
        *self = Self::new(self.cfg).expect("configuration was already validated");
    }

    fn name(&self) -> &'static str {
        "apbf"
    }
}

impl DetectorStats for Apbf {
    fn stats_name(&self) -> &'static str {
        "apbf"
    }

    /// One entry per logical slice, youngest first (`O(m)`, one scan).
    fn fill_ratios(&self) -> Vec<f64> {
        self.logical_fills()
    }

    /// Progress of the spare-slice wipe (`1.0` when no wipe pending).
    fn sweep_position(&self) -> f64 {
        let units = match self.layout {
            Layout::Scattered { slice_words } => slice_words,
            Layout::Blocked { lines, .. } => lines,
        };
        match self.wipe {
            Some((_, cursor)) => cursor as f64 / units.max(1) as f64,
            None => 1.0,
        }
    }

    fn cleaned_entries(&self) -> u64 {
        self.ops.clean_writes
    }

    fn observed_elements(&self) -> u64 {
        self.ops.elements
    }

    /// Distinct elements perform exactly `k` insert writes.
    fn observed_duplicates(&self) -> u64 {
        self.ops.elements - self.ops.insert_writes / self.cfg.k as u64
    }

    /// `Σ_{i=0..l} Π fills[i..i+k]` at the live per-slice occupancy —
    /// the run-based analogue of the classical Bloom FP formula (`O(m)`).
    fn estimated_fp(&self) -> f64 {
        self.fp_from_fills(&self.logical_fills())
    }

    fn occupancy_scans(&self) -> u64 {
        self.scans.get()
    }

    /// Single-scan override: `fill_ratios` and `estimated_fp` share one
    /// `O(m)` pass.
    fn health(&self) -> cfd_telemetry::DetectorHealth {
        let fills = self.logical_fills();
        cfd_telemetry::DetectorHealth {
            detector: self.stats_name(),
            fill_ratios: fills.clone(),
            cleaning_backlog: 0.0,
            sweep_position: self.sweep_position(),
            cleaned_entries: self.cleaned_entries(),
            observed_elements: self.observed_elements(),
            observed_duplicates: self.observed_duplicates(),
            estimated_fp: self.fp_from_fills(&fills),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_windows::ExactSlidingDedup;

    fn apbf(n: usize, total_bits: usize) -> Apbf {
        Apbf::new(ApbfConfig::for_budget(n, total_bits, 77, ProbeLayout::Scattered).unwrap())
            .unwrap()
    }

    fn blocked_apbf(n: usize, total_bits: usize) -> Apbf {
        Apbf::new(ApbfConfig::for_budget(n, total_bits, 77, ProbeLayout::Blocked).unwrap()).unwrap()
    }

    #[test]
    fn immediate_duplicate_detected() {
        let mut d = apbf(16, 1 << 16);
        assert_eq!(d.observe(b"x"), Verdict::Distinct);
        assert_eq!(d.observe(b"x"), Verdict::Duplicate);
    }

    #[test]
    fn for_budget_picks_a_valid_low_fp_shape() {
        let cfg = ApbfConfig::for_budget(1 << 12, 1 << 22, 1, ProbeLayout::Scattered).unwrap();
        assert!(cfg.k >= 2 && cfg.l >= 1);
        assert!(cfg.l * cfg.generation_len() >= cfg.n);
        // Determinism: same inputs, same shape.
        let again = ApbfConfig::for_budget(1 << 12, 1 << 22, 1, ProbeLayout::Scattered).unwrap();
        assert_eq!(cfg, again);
    }

    #[test]
    fn zero_false_negatives_vs_exact_oracle() {
        let n = 64;
        let mut d = apbf(n, 1 << 16);
        let mut oracle = ExactSlidingDedup::new(n);
        for i in 0..20_000u64 {
            let key = (i % 89).to_le_bytes();
            let got = d.observe(&key);
            let want = oracle.observe(&key);
            if want == Verdict::Duplicate {
                assert_eq!(got, Verdict::Duplicate, "false negative at element {i}");
            }
        }
    }

    #[test]
    fn blocked_mode_has_zero_false_negatives() {
        let n = 64;
        let mut d = blocked_apbf(n, 1 << 16);
        let mut oracle = ExactSlidingDedup::new(n);
        for i in 0..20_000u64 {
            let key = (i % 89).to_le_bytes();
            let got = d.observe(&key);
            let want = oracle.observe(&key);
            if want == Verdict::Duplicate {
                assert_eq!(got, Verdict::Duplicate, "false negative at element {i}");
            }
        }
    }

    #[test]
    fn stale_elements_expire_structurally() {
        let mut d = apbf(32, 1 << 16);
        d.observe(b"stale");
        // Push the element past its guaranteed-expired horizon.
        for i in 0..d.expiry_horizon() as u64 {
            d.observe(&i.to_le_bytes());
        }
        assert_eq!(d.observe(b"stale"), Verdict::Distinct);
    }

    #[test]
    fn duplicates_do_not_refresh_validity() {
        // Continuously re-observing a key never re-inserts it, so it
        // expires on schedule from the ORIGINAL insert despite the spam.
        let mut d = apbf(32, 1 << 16);
        assert_eq!(d.observe(b"a"), Verdict::Distinct);
        let mut went_distinct = false;
        for _ in 0..2 * d.expiry_horizon() {
            if d.observe(b"a") == Verdict::Distinct {
                went_distinct = true;
                break;
            }
        }
        assert!(went_distinct, "duplicate spam must not extend the element");
    }

    #[test]
    fn batch_matches_sequential() {
        let keys: Vec<Vec<u8>> = (0..6000u64)
            .map(|i| (i % 700).to_le_bytes().to_vec())
            .collect();
        let slices: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let mut sequential = apbf(256, 1 << 18);
        let mut batched = apbf(256, 1 << 18);
        let want: Vec<Verdict> = slices.iter().map(|id| sequential.observe(id)).collect();
        let mut got = Vec::new();
        for chunk in slices.chunks(513) {
            got.extend(batched.observe_batch(chunk));
        }
        assert_eq!(got, want);
    }

    #[test]
    fn blocked_batch_matches_sequential() {
        let keys: Vec<Vec<u8>> = (0..6000u64)
            .map(|i| (i % 700).to_le_bytes().to_vec())
            .collect();
        let slices: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let mut sequential = blocked_apbf(256, 1 << 18);
        let mut batched = blocked_apbf(256, 1 << 18);
        let want: Vec<Verdict> = slices.iter().map(|id| sequential.observe(id)).collect();
        let mut got = Vec::new();
        for chunk in slices.chunks(513) {
            got.extend(batched.observe_batch(chunk));
        }
        assert_eq!(got, want);
    }

    #[test]
    fn false_positive_rate_is_low_with_adequate_memory() {
        // ~64 bits per window element: the model predicts fp far below
        // the TBF at equal memory; assert a loose ceiling.
        let n = 1 << 12;
        let mut d = apbf(n, n * 64);
        let mut fps = 0u64;
        let total = 20 * n as u64;
        for i in 0..total {
            if d.observe(&i.to_le_bytes()) == Verdict::Duplicate {
                fps += 1;
            }
        }
        let rate = fps as f64 / total as f64;
        assert!(rate < 0.01, "fp rate {rate} too high");
    }

    #[test]
    fn occupancy_stays_bounded_by_wipes() {
        // A long distinct stream cannot fill the table: retired slices
        // are wiped every generation, so steady-state fill matches the
        // model, not the stream length.
        let n = 512;
        let mut d = apbf(n, n * 64);
        for i in 0..50_000u64 {
            d.observe(&i.to_le_bytes());
        }
        let fills = d.logical_fills();
        let g = d.config().generation_len();
        let cap = d.slice_capacity() as f64;
        // Oldest logical slice holds at most (l+1)·g·k insertions' bits.
        let model_max = 1.0 - (-((d.config().k * (d.config().l + 1) * g) as f64) / cap).exp();
        for (j, f) in fills.iter().enumerate() {
            assert!(
                *f <= model_max * 1.5 + 0.02,
                "slice {j} fill {f} above bound {model_max}"
            );
        }
        assert!(d.ops().clean_writes > 0, "wipes must actually run");
    }

    #[test]
    fn checkpoint_parts_roundtrip() {
        let mut d = apbf(64, 1 << 16);
        for i in 0..1000u64 {
            d.observe(&(i % 100).to_le_bytes());
        }
        let (cfg, state) = d.checkpoint_parts();
        let mut restored = Apbf::from_checkpoint_parts(cfg, state).expect("valid parts");
        // Identical verdicts on a follow-up stream.
        for i in 0..500u64 {
            let key = (i % 70).to_le_bytes();
            assert_eq!(d.observe(&key), restored.observe(&key), "element {i}");
        }
    }

    #[test]
    fn checkpoint_parts_reject_inconsistent_state() {
        let d = apbf(64, 1 << 16);
        let (cfg, mut state) = d.checkpoint_parts();
        state.base = cfg.physical_slices();
        assert!(Apbf::from_checkpoint_parts(cfg, state).is_none());
        let (cfg, mut state) = d.checkpoint_parts();
        state.bit_words.pop();
        assert!(Apbf::from_checkpoint_parts(cfg, state).is_none());
    }

    #[test]
    fn occupancy_scans_counts_table_passes_only() {
        let mut d = apbf(256, 1 << 16);
        let keys: Vec<Vec<u8>> = (0..2000u64).map(|i| i.to_le_bytes().to_vec()).collect();
        let slices: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        d.observe_batch(&slices);
        assert_eq!(d.occupancy_scans(), 0, "hot path must not scan");
        let _ = d.fill_ratios();
        assert_eq!(d.occupancy_scans(), 1);
        let _ = d.health();
        assert_eq!(d.occupancy_scans(), 2, "health pays exactly one scan");
    }

    #[test]
    fn reset_restores_empty_state() {
        let mut d = apbf(16, 1 << 16);
        d.observe(b"k");
        d.reset();
        assert_eq!(d.observe(b"k"), Verdict::Distinct);
    }
}
