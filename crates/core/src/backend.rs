//! The backend-agnostic hot-path layer shared by every window-filter
//! backend.
//!
//! PRs 1–5 grew the same machinery — flat-buffer batch replay with
//! lookahead prefetch, blocked/scattered probe expansion, recycled
//! buffers, and (for timed detectors) the per-run clock cache — once per
//! detector. This module extracts it behind two small traits so a new
//! backend implements only its *probe semantics* and inherits the whole
//! batch/prefetch schedule:
//!
//! * [`ProbeCore`] — how one element's probe indices are derived and
//!   prefetched under the configured [`crate::ProbeLayout`].
//! * [`CountCore`] / [`TimedCore`] — the innermost stateful step
//!   (sweep + probe + insert) for count- and time-based windows.
//!
//! The free functions below are the former per-detector methods
//! (`expand_plans`, `replay_into`, `apply_batch_into`, `observe_*_into`,
//! `replay_at_into`) verbatim, parameterized over the core. Buffers live
//! in a [`BatchBufs`] the detector owns and `mem::take`s around each
//! call, so the hot path stays allocation-free after warm-up.

use cfd_hash::{BlockGeometry, Planner, ProbePlan};
use cfd_windows::Verdict;

/// Elements of lookahead in the batch replay loop: while element `i` is
/// applied, element `i + PREFETCH_AHEAD`'s cache lines are being pulled.
pub(crate) const PREFETCH_AHEAD: usize = 8;

/// Recycled scratch buffers for the plan → probe → verdict pipeline.
///
/// `take`/restore around the shared free functions keeps the borrow of
/// the detector (`&mut C`) disjoint from the buffers.
#[derive(Debug, Clone, Default)]
pub(crate) struct BatchBufs {
    /// Single-element probe scratch (`probe_width` slots).
    pub probe: Vec<usize>,
    /// Batch probe buffer: a `PREFETCH_AHEAD`-deep ring for the count
    /// replay, a whole-batch flat expansion for the timed replay.
    pub flat: Vec<usize>,
    /// Recycled plan buffer for the id-hashing frontends.
    pub plans: Vec<ProbePlan>,
}

/// Probe-index derivation and prefetch for one backend: the geometry
/// half of the hot path.
pub(crate) trait ProbeCore {
    /// Number of addressable slots (`m`); the range of scattered probes.
    fn table_len(&self) -> usize;

    /// Probe indices issued per element (`k_eff` for Bloom-style
    /// backends; structural widths like slices-per-element for others).
    fn probe_width(&self) -> usize;

    /// The cache-line block geometry, when the standard blocked layout
    /// is in use. Backends with a custom blocked derivation return
    /// `None` and override [`ProbeCore::fill_probes`] /
    /// [`ProbeCore::probes_share_line`] instead.
    fn block_geo(&self) -> Option<&BlockGeometry>;

    /// Expands a plan into `out.len()` probe indices under the
    /// configured layout.
    #[inline]
    fn fill_probes(&self, plan: ProbePlan, out: &mut [usize]) {
        match self.block_geo() {
            Some(g) => plan.fill_blocked(g, out),
            None => plan.fill(self.table_len(), out),
        }
    }

    /// Hints the CPU to pull slot `idx`'s cache line early.
    fn prefetch(&self, idx: usize);

    /// `true` when all of an element's probes land on one cache line,
    /// so prefetching the first suffices.
    #[inline]
    fn probes_share_line(&self) -> bool {
        self.block_geo().is_some()
    }

    /// Number of consecutive elements the backend classifies together
    /// in its wide (SIMD) probe path; 1 means element-at-a-time.
    ///
    /// Backends that override this must make
    /// [`CountCore::apply_probes_grouped`] bit-identical to the
    /// sequential loop — the replay only changes how many rows are
    /// handed over per call, never their order.
    ///
    /// No in-tree backend overrides it today: the gather-based grouped
    /// probe was built for TBF/GBF and measured ~20× *slower* than the
    /// early-exit scalar probe on blocked layouts (the probe reads ~2–3
    /// of its words on a distinct-heavy stream; a gather always pays for
    /// all of them — see docs/PERFORMANCE.md, "SIMD probe path"). The
    /// hook stays for cores whose per-element work is unconditional.
    #[inline]
    fn wide_group(&self) -> usize {
        1
    }
}

/// The stateful half of a count-window backend: one observation given
/// its expanded probes.
pub(crate) trait CountCore: ProbeCore {
    /// Sweep, probe, insert-if-distinct, advance the window clock. The
    /// plan is passed alongside its expanded probes for backends that
    /// derive extra per-element material from the hash pair
    /// (fingerprints, side-table probes); Bloom-style backends ignore it.
    fn apply_probes(&mut self, plan: ProbePlan, probes: &[usize]) -> Verdict;

    /// Applies a group of consecutive plans whose probe rows are
    /// already expanded (`probe_width` indices per plan, concatenated
    /// in `rows`), pushing one verdict per plan in order.
    ///
    /// The default is the sequential loop; backends with a wide probe
    /// path (see [`ProbeCore::wide_group`]) override this to classify
    /// several elements per hardware iteration. Any override must stay
    /// bit-identical to this default — verdicts *and* op counters.
    #[inline]
    fn apply_probes_grouped(
        &mut self,
        plans: &[ProbePlan],
        rows: &[usize],
        out: &mut Vec<Verdict>,
    ) {
        let w = self.probe_width();
        debug_assert_eq!(rows.len(), plans.len() * w);
        for (plan, row) in plans.iter().zip(rows.chunks_exact(w)) {
            out.push(self.apply_probes(*plan, row));
        }
    }
}

/// The stateful half of a time-window backend. Split so the batch
/// replay can cache clock work across same-unit runs exactly like the
/// hand-written per-detector loops did.
pub(crate) trait TimedCore: ProbeCore {
    /// Maps a tick to its absolute time unit.
    fn unit_of(&self, tick: u64) -> u64;

    /// The high-water unit (`None` before the first observation).
    fn high_water(&self) -> Option<u64>;

    /// Advances the clock to `unit` (replaying skipped units' sweeps),
    /// clamping regressions; returns the effective unit.
    fn advance_to(&mut self, unit: u64) -> u64;

    /// The wraparound stamp written for observations in `unit` (backends
    /// without per-entry stamps return any constant).
    fn stamp_of(&self, unit: u64) -> u64;

    /// Counts one clock regression (a clamped element inside a cached
    /// same-unit run, where [`TimedCore::advance_to`] is not consulted).
    fn note_regression(&mut self);

    /// Probe + insert at the already-advanced clock position.
    fn apply_probes_at(&mut self, plan: ProbePlan, probes: &[usize], stamp_now: u64) -> Verdict;
}

/// Expands every plan's probe indices into the recycled flat buffer
/// (`probe_width` indices per element).
pub(crate) fn expand_plans<C: ProbeCore + ?Sized>(
    core: &C,
    plans: &[ProbePlan],
    flat: &mut Vec<usize>,
) {
    let w = core.probe_width();
    flat.clear();
    flat.resize(plans.len() * w, 0);
    for (plan, slot) in plans.iter().zip(flat.chunks_exact_mut(w)) {
        core.fill_probes(*plan, slot);
    }
}

/// Applies one plan through the single-element scratch buffer.
pub(crate) fn apply_plan<C: CountCore + ?Sized>(
    core: &mut C,
    bufs: &mut BatchBufs,
    plan: ProbePlan,
) -> Verdict {
    let w = core.probe_width();
    bufs.probe.resize(w, 0);
    core.fill_probes(plan, &mut bufs.probe);
    core.apply_probes(plan, &bufs.probe)
}

/// Fused expand + replay with lookahead prefetch: element
/// `i + PREFETCH_AHEAD`'s probes are expanded (and their cache lines
/// prefetched) while element `i` is applied, through a
/// `PREFETCH_AHEAD`-deep ring of probe rows.
///
/// The ring replaces the former whole-batch flat buffer: at a wide
/// `probe_width` (APBF expands one row per physical slice — 65 at the
/// shootout budget) a 1024-element batch expanded to ~0.5 MB, so the
/// replay loop fought its own scratch for L2 and ran *slower* than the
/// sequential path. The ring keeps the in-flight scratch at
/// `PREFETCH_AHEAD × probe_width` slots — L1-resident at any width —
/// while preserving the exact prefetch distance of the old schedule.
pub(crate) fn replay_into<C: CountCore + ?Sized>(
    core: &mut C,
    plans: &[ProbePlan],
    ring: &mut Vec<usize>,
    out: &mut Vec<Verdict>,
) {
    let w = core.probe_width();
    let one_line = core.probes_share_line();
    out.clear();
    if plans.is_empty() {
        return;
    }
    // Lookahead scales inversely with the lines prefetched per element:
    // 16 elements deep for one-line (blocked) cores, shallower as the
    // per-element line count grows, so the lines in flight stay within
    // what the core can track instead of evicting each other before
    // use. (Deeper one-line rings were measured slower: at 32 the
    // blocked APBF batch path lost ~10%.)
    let lines_per_element = if one_line { 1 } else { w };
    let group = core.wide_group().max(1);
    let mut depth = (4 * PREFETCH_AHEAD)
        .div_ceil(lines_per_element)
        .min(2 * PREFETCH_AHEAD)
        .min(plans.len());
    if group > 1 {
        // Wide cores consume whole groups of consecutive rows per
        // call; rounding the ring depth up to a group multiple keeps
        // every group contiguous in the ring (no mid-group wrap).
        depth = depth.div_ceil(group) * group;
    }
    ring.clear();
    ring.resize(depth * w, 0);
    // Prime the ring: expand + prefetch the first `depth` elements.
    for (row, plan) in ring.chunks_exact_mut(w).zip(plans) {
        core.fill_probes(*plan, row);
        if one_line {
            core.prefetch(row[0]);
        } else {
            for &j in row.iter() {
                core.prefetch(j);
            }
        }
    }
    let mut i = 0;
    while i < plans.len() {
        let g = group.min(plans.len() - i);
        let at = (i % depth) * w;
        core.apply_probes_grouped(&plans[i..i + g], &ring[at..at + g * w], out);
        // Recycle the rows just applied for elements `i + depth` on.
        for j in i..i + g {
            if let Some(plan) = plans.get(j + depth) {
                let row_at = (j % depth) * w;
                let row = &mut ring[row_at..row_at + w];
                core.fill_probes(*plan, row);
                if one_line {
                    core.prefetch(row[0]);
                } else {
                    for &p in row.iter() {
                        core.prefetch(p);
                    }
                }
            }
        }
        i += g;
    }
}

/// Expand + replay: the batch half shared by `apply_batch_into` and the
/// id-hashing frontends. Verdicts go into `out` (cleared first,
/// capacity reused).
pub(crate) fn apply_batch_into<C: CountCore + ?Sized>(
    core: &mut C,
    bufs: &mut BatchBufs,
    plans: &[ProbePlan],
    out: &mut Vec<Verdict>,
) {
    replay_into(core, plans, &mut bufs.flat, out);
}

/// Hashes a batch of ids (pure, multi-lane over equal-length runs) and
/// replays the plans with lookahead prefetch.
pub(crate) fn observe_refs_into<C: CountCore + ?Sized>(
    core: &mut C,
    bufs: &mut BatchBufs,
    planner: Planner,
    ids: &[&[u8]],
    out: &mut Vec<Verdict>,
) {
    let mut plans = std::mem::take(&mut bufs.plans);
    planner.plan_refs_into(ids, &mut plans);
    apply_batch_into(core, bufs, &plans, out);
    bufs.plans = plans;
}

/// [`observe_refs_into`] over a flat fixed-stride key buffer.
pub(crate) fn observe_flat_into<C: CountCore + ?Sized>(
    core: &mut C,
    bufs: &mut BatchBufs,
    planner: Planner,
    keys: &[u8],
    key_len: usize,
    out: &mut Vec<Verdict>,
) {
    let mut plans = std::mem::take(&mut bufs.plans);
    planner.plan_flat_into(keys, key_len, &mut plans);
    apply_batch_into(core, bufs, &plans, out);
    bufs.plans = plans;
}

/// Applies one plan at `tick` through the single-element scratch buffer.
pub(crate) fn apply_plan_at<C: TimedCore + ?Sized>(
    core: &mut C,
    bufs: &mut BatchBufs,
    plan: ProbePlan,
    tick: u64,
) -> Verdict {
    let w = core.probe_width();
    bufs.probe.resize(w, 0);
    core.fill_probes(plan, &mut bufs.probe);
    let unit = core.advance_to(core.unit_of(tick));
    let stamp_now = core.stamp_of(unit);
    core.apply_probes_at(plan, &bufs.probe, stamp_now)
}

/// Timed batch replay with lookahead prefetch and per-run clock cache:
/// `advance_to` and the wraparound stamp are recomputed only when an
/// element's unit differs from its predecessor's, so a burst of clicks
/// inside one unit pays the division once. Clamped runs still count one
/// regression per element to match the sequential path.
pub(crate) fn replay_at_into<C: TimedCore + ?Sized>(
    core: &mut C,
    plans: &[ProbePlan],
    flat: &[usize],
    ticks: &[u64],
    out: &mut Vec<Verdict>,
) {
    let w = core.probe_width();
    let one_line = core.probes_share_line();
    out.clear();
    // Per-run clock cache: (raw unit, stamp, whether the run is clamped).
    let mut run: Option<(u64, u64, bool)> = None;
    let mut ahead = flat.chunks_exact(w).skip(PREFETCH_AHEAD);
    for ((plan, slot), &tick) in plans.iter().zip(flat.chunks_exact(w)).zip(ticks) {
        if let Some(next) = ahead.next() {
            if one_line {
                core.prefetch(next[0]);
            } else {
                for &j in next {
                    core.prefetch(j);
                }
            }
        }
        let raw = core.unit_of(tick);
        let stamp_now = match run {
            Some((r, stamp, clamped)) if r == raw => {
                if clamped {
                    core.note_regression();
                }
                stamp
            }
            _ => {
                let high_water = core.high_water();
                let unit = core.advance_to(raw);
                let clamped = high_water.is_some_and(|h| raw < h);
                let stamp = core.stamp_of(unit);
                run = Some((raw, stamp, clamped));
                stamp
            }
        };
        out.push(core.apply_probes_at(*plan, slot, stamp_now));
    }
}

/// Timed expand + replay.
///
/// # Panics
/// Panics if `plans.len() != ticks.len()`.
pub(crate) fn apply_batch_at_into<C: TimedCore + ?Sized>(
    core: &mut C,
    bufs: &mut BatchBufs,
    plans: &[ProbePlan],
    ticks: &[u64],
    out: &mut Vec<Verdict>,
) {
    assert_eq!(plans.len(), ticks.len(), "one tick per plan");
    expand_plans(core, plans, &mut bufs.flat);
    replay_at_into(core, plans, &bufs.flat, ticks, out);
}

/// Hashes a batch of ids and replays the plans at their ticks.
///
/// # Panics
/// Panics if `ids.len() != ticks.len()`.
pub(crate) fn observe_refs_at_into<C: TimedCore + ?Sized>(
    core: &mut C,
    bufs: &mut BatchBufs,
    planner: Planner,
    ids: &[&[u8]],
    ticks: &[u64],
    out: &mut Vec<Verdict>,
) {
    assert_eq!(ids.len(), ticks.len(), "one tick per id");
    let mut plans = std::mem::take(&mut bufs.plans);
    planner.plan_refs_into(ids, &mut plans);
    apply_batch_at_into(core, bufs, &plans, ticks, out);
    bufs.plans = plans;
}

/// [`observe_refs_at_into`] over a flat fixed-stride key buffer.
///
/// # Panics
/// Panics if `key_len == 0` or the key count does not match `ticks`.
pub(crate) fn observe_flat_at_into<C: TimedCore + ?Sized>(
    core: &mut C,
    bufs: &mut BatchBufs,
    planner: Planner,
    keys: &[u8],
    key_len: usize,
    ticks: &[u64],
    out: &mut Vec<Verdict>,
) {
    assert!(key_len > 0, "key_len must be non-zero");
    assert_eq!(keys.len() / key_len, ticks.len(), "one tick per key");
    let mut plans = std::mem::take(&mut bufs.plans);
    planner.plan_flat_into(keys, key_len, &mut plans);
    apply_batch_at_into(core, bufs, &plans, ticks, out);
    bufs.plans = plans;
}

/// The `k_eff` saturation cap shared by every blocked backend: probes
/// per element are capped at half the block so one insertion can never
/// saturate its cache line (see `crate::Gbf` for the rationale).
pub(crate) fn effective_k(k: usize, geo: Option<&BlockGeometry>) -> usize {
    match geo {
        Some(g) => k.min(g.slots() / 2).max(1),
        None => k,
    }
}
