//! Validated configurations for the GBF and TBF detectors.

use cfd_bits::words::bits_for_value;
use cfd_hash::BlockGeometry;
use std::fmt;

/// Memory layout of the GBF group matrix.
///
/// The paper's example packs `Q + 1 = 32` filters into one 32-bit word;
/// [`GbfLayout::Tight`] generalizes that (several groups per 64-bit word,
/// `⌊64/(Q+1)⌋`× less memory) while [`GbfLayout::Padded`] rounds each
/// group up to whole words (simpler indexing, supports any `Q`).
/// The two layouts are verdict-for-verdict identical; `cfd-bench`'s
/// ablation suite measures the speed difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GbfLayout {
    /// One-or-more whole 64-bit words per group (any `Q`).
    #[default]
    Padded,
    /// Multiple groups per word; requires `Q + 1 <= 32`.
    Tight,
}

/// Probe-index derivation scheme of a detector.
///
/// [`ProbeLayout::Scattered`] is the classic Kirsch–Mitzenmacher walk
/// over the whole table: best false-positive rate, but each membership
/// test touches up to `k` cache lines. [`ProbeLayout::Blocked`] confines
/// an element's `k` probes to one 64-byte line
/// ([`cfd_hash::BlockGeometry`]): one line per probe, a slightly higher
/// FP rate (per-block load variance; modelled in
/// `cfd_analysis::blocked`). Zero false negatives hold under either —
/// the probed cells per key are deterministic, only *which* cells
/// changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeLayout {
    /// Enhanced double hashing over the whole table (`k` cache lines).
    #[default]
    Scattered,
    /// All probes inside one 64-byte block (one cache line).
    Blocked,
}

/// Error returned when a detector configuration is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A required dimension was zero.
    ZeroDimension(&'static str),
    /// The sub-window count exceeds the window length.
    TooManySubWindows {
        /// Sub-windows requested.
        q: usize,
        /// Window length.
        n: usize,
    },
    /// `k` outside the supported `1..=64`.
    BadHashCount(usize),
    /// The memory budget is too small to give each filter at least one
    /// bit / entry.
    MemoryTooSmall {
        /// Bits provided.
        provided: usize,
        /// Minimum bits required.
        required: usize,
    },
    /// Window too small for the sliding-window algorithm (`n >= 2`).
    WindowTooSmall(usize),
    /// The tight GBF layout only supports `Q + 1 <= 32` lanes.
    LayoutTooWide {
        /// Sub-windows requested.
        q: usize,
    },
    /// Blocked probing degenerates for this shape: fewer than two slots
    /// fit in a 64-byte line, or the table holds less than one block.
    BlockedUnsupported {
        /// Bits per probe slot (group or timestamp entry).
        slot_bits: usize,
        /// Slots in the table.
        m: usize,
    },
    /// Window arithmetic overflowed `u64` — the time-based configs
    /// multiply unit counts by ticks per unit, which silently wraps in
    /// release builds unless rejected up front.
    ArithmeticOverflow {
        /// The quantity whose computation overflowed.
        what: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroDimension(what) => write!(f, "{what} must be positive"),
            ConfigError::TooManySubWindows { q, n } => {
                write!(f, "q = {q} sub-windows exceed the n = {n} element window")
            }
            ConfigError::BadHashCount(k) => write!(f, "hash count k = {k} outside 1..=64"),
            ConfigError::MemoryTooSmall { provided, required } => {
                write!(f, "memory budget {provided} bits below minimum {required}")
            }
            ConfigError::WindowTooSmall(n) => {
                write!(f, "sliding window n = {n} below the minimum of 2")
            }
            ConfigError::LayoutTooWide { q } => {
                write!(f, "tight layout supports Q + 1 <= 32 lanes, got Q = {q}")
            }
            ConfigError::BlockedUnsupported { slot_bits, m } => {
                write!(
                    f,
                    "blocked probing unsupported for {m} slots of {slot_bits} bits \
                     (need >= 2 slots per 64-byte line and >= 1 block)"
                )
            }
            ConfigError::ArithmeticOverflow { what } => {
                write!(f, "u64 overflow computing {what}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of a [`crate::Gbf`] detector.
///
/// Built with [`GbfConfig::builder`]; memory can be given either as a
/// per-filter size `m` or as a total budget `M` split into `Q + 1` filters
/// exactly as §3.1 prescribes (`m = M / (Q + 1)`).
///
/// ```rust
/// use cfd_core::GbfConfig;
/// let cfg = GbfConfig::builder(1 << 20, 8)
///     .total_memory_bits(16 << 20)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(cfg.m, (16 << 20) / 9);
/// assert!(cfg.k >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GbfConfig {
    /// Jumping-window length `N` in elements.
    pub n: usize,
    /// Number of sub-windows `Q`.
    pub q: usize,
    /// Bits per sub-window Bloom filter (`m`).
    pub m: usize,
    /// Hash functions per element (`k`).
    pub k: usize,
    /// Hash seed.
    pub seed: u64,
    /// Group-matrix memory layout.
    pub layout: GbfLayout,
    /// Probe-index derivation scheme.
    pub probe: ProbeLayout,
}

impl GbfConfig {
    /// Starts building a configuration for a window of `n` elements and
    /// `q` sub-windows.
    #[must_use]
    pub fn builder(n: usize, q: usize) -> GbfConfigBuilder {
        GbfConfigBuilder {
            n,
            q,
            m: None,
            total: None,
            k: None,
            seed: 0,
            layout: GbfLayout::Padded,
            probe: ProbeLayout::Scattered,
        }
    }

    /// Bits one group occupies for blocking purposes: the padded layout
    /// strides whole words per group, the tight layout packs `Q + 1`
    /// bits per group (word-boundary padding keeps a block's span
    /// within one line; see `cfd_hash::block`).
    #[must_use]
    pub fn group_bits(&self) -> usize {
        let lanes = self.q + 1;
        match self.layout {
            GbfLayout::Padded => lanes.div_ceil(64) * 64,
            GbfLayout::Tight => lanes,
        }
    }

    /// The cache-line block geometry, when `probe` is blocked.
    #[must_use]
    pub fn block_geometry(&self) -> Option<BlockGeometry> {
        match self.probe {
            ProbeLayout::Scattered => None,
            ProbeLayout::Blocked => BlockGeometry::for_line(self.m, self.group_bits()),
        }
    }

    /// Elements per sub-window (`⌈N/Q⌉`).
    #[must_use]
    pub fn sub_len(&self) -> usize {
        self.n.div_ceil(self.q)
    }

    /// Groups that must be cleaned per arrival so the expired filter is
    /// fully wiped within one sub-window (`⌈m / sub_len⌉`).
    #[must_use]
    pub fn clean_quota(&self) -> usize {
        self.m.div_ceil(self.sub_len())
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.n == 0 {
            return Err(ConfigError::ZeroDimension("window length n"));
        }
        if self.q == 0 {
            return Err(ConfigError::ZeroDimension("sub-window count q"));
        }
        if self.q > self.n {
            return Err(ConfigError::TooManySubWindows {
                q: self.q,
                n: self.n,
            });
        }
        if self.m == 0 {
            return Err(ConfigError::ZeroDimension("filter size m"));
        }
        if !(1..=64).contains(&self.k) {
            return Err(ConfigError::BadHashCount(self.k));
        }
        if self.layout == GbfLayout::Tight && self.q + 1 > 32 {
            return Err(ConfigError::LayoutTooWide { q: self.q });
        }
        if self.probe == ProbeLayout::Blocked && self.block_geometry().is_none() {
            return Err(ConfigError::BlockedUnsupported {
                slot_bits: self.group_bits(),
                m: self.m,
            });
        }
        Ok(())
    }
}

/// Builder for [`GbfConfig`].
#[derive(Debug, Clone)]
pub struct GbfConfigBuilder {
    n: usize,
    q: usize,
    m: Option<usize>,
    total: Option<usize>,
    k: Option<usize>,
    seed: u64,
    layout: GbfLayout,
    probe: ProbeLayout,
}

impl GbfConfigBuilder {
    /// Sets the per-filter size `m` in bits.
    #[must_use]
    pub fn filter_bits(mut self, m: usize) -> Self {
        self.m = Some(m);
        self
    }

    /// Sets the total memory budget `M`; each of the `Q + 1` filters gets
    /// `M / (Q + 1)` bits.
    #[must_use]
    pub fn total_memory_bits(mut self, total: usize) -> Self {
        self.total = Some(total);
        self
    }

    /// Sets the hash-function count `k` explicitly (otherwise the optimal
    /// `k = ln 2 · m / (N/Q)` is used).
    #[must_use]
    pub fn hash_count(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Sets the hash seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the group-matrix layout (default [`GbfLayout::Padded`]).
    #[must_use]
    pub fn layout(mut self, layout: GbfLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Selects the probe derivation (default [`ProbeLayout::Scattered`]).
    #[must_use]
    pub fn probe(mut self, probe: ProbeLayout) -> Self {
        self.probe = probe;
        self
    }

    /// Finalizes and validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when dimensions are inconsistent, memory is
    /// insufficient, or `k` is out of range.
    pub fn build(self) -> Result<GbfConfig, ConfigError> {
        if self.q == 0 {
            return Err(ConfigError::ZeroDimension("sub-window count q"));
        }
        let m = match (self.m, self.total) {
            (Some(m), _) => m,
            (None, Some(total)) => {
                let m = total / (self.q + 1);
                if m == 0 {
                    return Err(ConfigError::MemoryTooSmall {
                        provided: total,
                        required: self.q + 1,
                    });
                }
                m
            }
            (None, None) => return Err(ConfigError::ZeroDimension("memory (m or total)")),
        };
        let sub = if self.q > 0 {
            self.n.div_ceil(self.q).max(1)
        } else {
            1
        };
        let k = self.k.unwrap_or_else(|| cfd_bloom_optimal_k(m, sub));
        let cfg = GbfConfig {
            n: self.n,
            q: self.q,
            m,
            k,
            seed: self.seed,
            layout: self.layout,
            probe: self.probe,
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

/// Configuration of a [`crate::Tbf`] detector.
///
/// ```rust
/// use cfd_core::TbfConfig;
/// let cfg = TbfConfig::builder(1 << 16).entries(1 << 20).build().expect("valid");
/// assert_eq!(cfg.c, (1 << 16) - 1); // the paper's typical C = N − 1
/// assert_eq!(cfg.entry_bits(), 17); // ⌈log2(N + C + 1)⌉
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TbfConfig {
    /// Sliding-window length `N` in elements.
    pub n: usize,
    /// Number of TBF entries (`m`).
    pub m: usize,
    /// Hash functions per element (`k`).
    pub k: usize,
    /// Timestamp-range extension `C` (§4.1); larger `C` = wider entries
    /// but a lazier cleaning sweep.
    pub c: usize,
    /// Hash seed.
    pub seed: u64,
    /// Probe-index derivation scheme.
    pub probe: ProbeLayout,
}

impl TbfConfig {
    /// Starts building a configuration for a sliding window of `n`
    /// elements.
    #[must_use]
    pub fn builder(n: usize) -> TbfConfigBuilder {
        TbfConfigBuilder {
            n,
            m: None,
            total: None,
            k: None,
            c: None,
            seed: 0,
            probe: ProbeLayout::Scattered,
        }
    }

    /// The cache-line block geometry, when `probe` is blocked (slots are
    /// the packed `entry_bits()`-wide timestamp cells).
    #[must_use]
    pub fn block_geometry(&self) -> Option<BlockGeometry> {
        match self.probe {
            ProbeLayout::Scattered => None,
            ProbeLayout::Blocked => BlockGeometry::for_line(self.m, self.entry_bits() as usize),
        }
    }

    /// The wraparound timestamp range (`N + C`).
    #[must_use]
    pub fn range(&self) -> u64 {
        self.n as u64 + self.c as u64
    }

    /// Bits per entry: enough for timestamps `0..N+C−1` plus the reserved
    /// all-ones *empty* pattern (`⌈log2(N + C + 1)⌉`).
    #[must_use]
    pub fn entry_bits(&self) -> u32 {
        bits_for_value(self.range())
    }

    /// Entries scanned by the cleaning sweep per arrival
    /// (`⌈m / (C + 1)⌉`, §4.1).
    #[must_use]
    pub fn clean_quota(&self) -> usize {
        self.m.div_ceil(self.c + 1)
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.n < 2 {
            return Err(ConfigError::WindowTooSmall(self.n));
        }
        if self.m == 0 {
            return Err(ConfigError::ZeroDimension("entry count m"));
        }
        if !(1..=64).contains(&self.k) {
            return Err(ConfigError::BadHashCount(self.k));
        }
        if self.probe == ProbeLayout::Blocked && self.block_geometry().is_none() {
            return Err(ConfigError::BlockedUnsupported {
                slot_bits: self.entry_bits() as usize,
                m: self.m,
            });
        }
        Ok(())
    }
}

/// Builder for [`TbfConfig`].
#[derive(Debug, Clone)]
pub struct TbfConfigBuilder {
    n: usize,
    m: Option<usize>,
    total: Option<usize>,
    k: Option<usize>,
    c: Option<usize>,
    seed: u64,
    probe: ProbeLayout,
}

impl TbfConfigBuilder {
    /// Sets the entry count `m` directly.
    #[must_use]
    pub fn entries(mut self, m: usize) -> Self {
        self.m = Some(m);
        self
    }

    /// Sets a total memory budget in bits; the entry count becomes
    /// `M / entry_bits` (Theorem 2's `m = M / O(log N)`).
    #[must_use]
    pub fn total_memory_bits(mut self, total: usize) -> Self {
        self.total = Some(total);
        self
    }

    /// Sets the hash-function count explicitly (otherwise optimal for
    /// `n` elements in `m` entries).
    #[must_use]
    pub fn hash_count(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Sets the range extension `C` (default `N − 1`, the paper's typical
    /// choice).
    #[must_use]
    pub fn range_extension(mut self, c: usize) -> Self {
        self.c = Some(c);
        self
    }

    /// Sets the hash seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the probe derivation (default [`ProbeLayout::Scattered`]).
    #[must_use]
    pub fn probe(mut self, probe: ProbeLayout) -> Self {
        self.probe = probe;
        self
    }

    /// Finalizes and validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on inconsistent dimensions, insufficient
    /// memory, or out-of-range `k`.
    pub fn build(self) -> Result<TbfConfig, ConfigError> {
        if self.n < 2 {
            return Err(ConfigError::WindowTooSmall(self.n));
        }
        let c = self.c.unwrap_or(self.n - 1);
        let entry_bits = bits_for_value(self.n as u64 + c as u64) as usize;
        let m = match (self.m, self.total) {
            (Some(m), _) => m,
            (None, Some(total)) => {
                let m = total / entry_bits;
                if m == 0 {
                    return Err(ConfigError::MemoryTooSmall {
                        provided: total,
                        required: entry_bits,
                    });
                }
                m
            }
            (None, None) => return Err(ConfigError::ZeroDimension("memory (entries or total)")),
        };
        let k = self.k.unwrap_or_else(|| cfd_bloom_optimal_k(m, self.n));
        let cfg = TbfConfig {
            n: self.n,
            m,
            k,
            c,
            seed: self.seed,
            probe: self.probe,
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

/// Optimal `k = round(ln 2 · m/n)` clamped to `[1, 64]`.
///
/// Local duplicate of `cfd_bloom::params::optimal_k` to keep `cfd-core`'s
/// dependency surface minimal (core must not depend on the baselines).
fn cfd_bloom_optimal_k(m: usize, n: usize) -> usize {
    if n == 0 {
        return 1;
    }
    let k = (std::f64::consts::LN_2 * m as f64 / n as f64).round();
    (k as usize).clamp(1, 64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbf_total_memory_split() {
        let cfg = GbfConfig::builder(1 << 10, 7)
            .total_memory_bits(8_000)
            .build()
            .unwrap();
        assert_eq!(cfg.m, 1_000);
        assert_eq!(cfg.sub_len(), (1 << 10) / 7 + 1);
    }

    #[test]
    fn gbf_auto_k_is_optimal_for_sub_window() {
        // m = 14 bits per sub-window element -> k ~ 10.
        let cfg = GbfConfig::builder(1 << 16, 8)
            .filter_bits((1 << 16) / 8 * 14)
            .build()
            .unwrap();
        assert_eq!(cfg.k, 10);
    }

    #[test]
    fn gbf_clean_quota_covers_filter_within_subwindow() {
        let cfg = GbfConfig::builder(1000, 10)
            .filter_bits(12_345)
            .build()
            .unwrap();
        assert!(cfg.clean_quota() * cfg.sub_len() >= cfg.m);
    }

    #[test]
    fn gbf_rejects_bad_dimensions() {
        assert!(matches!(
            GbfConfig::builder(0, 1).filter_bits(10).build(),
            Err(ConfigError::ZeroDimension(_))
        ));
        assert!(matches!(
            GbfConfig::builder(4, 9).filter_bits(10).build(),
            Err(ConfigError::TooManySubWindows { .. })
        ));
        assert!(matches!(
            GbfConfig::builder(10, 2)
                .filter_bits(10)
                .hash_count(0)
                .build(),
            Err(ConfigError::BadHashCount(0))
        ));
        assert!(matches!(
            GbfConfig::builder(10, 2).total_memory_bits(2).build(),
            Err(ConfigError::MemoryTooSmall { .. })
        ));
        assert!(GbfConfig::builder(10, 2).build().is_err());
    }

    #[test]
    fn tbf_default_c_and_entry_bits() {
        let cfg = TbfConfig::builder(1 << 20)
            .entries(15_112_980)
            .build()
            .unwrap();
        assert_eq!(cfg.c, (1 << 20) - 1);
        // N + C = 2^21 - 1; need 21 bits for timestamps + all-ones free.
        assert_eq!(cfg.entry_bits(), 21);
        assert_eq!(cfg.k, 10); // 14.4 entries per element
    }

    #[test]
    fn tbf_quota_sweeps_table_within_c_plus_one() {
        let cfg = TbfConfig::builder(1_000)
            .entries(7_777)
            .range_extension(99)
            .build()
            .unwrap();
        assert!(cfg.clean_quota() * (cfg.c + 1) >= cfg.m);
    }

    #[test]
    fn tbf_total_memory_derives_entry_count() {
        let n = 1 << 16;
        let cfg = TbfConfig::builder(n)
            .total_memory_bits(n * 2 * 17)
            .build()
            .unwrap();
        // entry_bits = ceil(log2(2N)) = 17 for N = 2^16 with C = N-1.
        assert_eq!(cfg.entry_bits(), 17);
        assert_eq!(cfg.m, n * 2);
    }

    #[test]
    fn tbf_rejects_degenerate_windows() {
        assert!(matches!(
            TbfConfig::builder(1).entries(10).build(),
            Err(ConfigError::WindowTooSmall(1))
        ));
        assert!(matches!(
            TbfConfig::builder(10).total_memory_bits(1).build(),
            Err(ConfigError::MemoryTooSmall { .. })
        ));
    }

    #[test]
    fn blocked_probe_builds_and_exposes_geometry() {
        let cfg = TbfConfig::builder(1 << 16)
            .entries(1 << 20)
            .probe(ProbeLayout::Blocked)
            .build()
            .unwrap();
        let geo = cfg.block_geometry().unwrap();
        // 17-bit entries: 30 per line -> 16 slots.
        assert_eq!(geo.slots(), 16);
        assert_eq!(geo.slot_bits(), 17);

        let cfg = GbfConfig::builder(1 << 12, 8)
            .filter_bits(1 << 16)
            .probe(ProbeLayout::Blocked)
            .build()
            .unwrap();
        // Padded layout: 9 lanes -> 1 word per group -> 8 groups per line.
        assert_eq!(cfg.block_geometry().unwrap().slots(), 8);
        assert!(cfg.block_geometry().unwrap().slot_bits() == 64);

        let tight = GbfConfig::builder(1 << 12, 8)
            .filter_bits(1 << 16)
            .layout(GbfLayout::Tight)
            .probe(ProbeLayout::Blocked)
            .build()
            .unwrap();
        // Tight layout: 9-bit groups -> 56 per line -> 32 slots.
        assert_eq!(tight.block_geometry().unwrap().slots(), 32);
    }

    #[test]
    fn scattered_probe_has_no_geometry() {
        let cfg = TbfConfig::builder(1 << 10)
            .entries(1 << 14)
            .build()
            .unwrap();
        assert_eq!(cfg.probe, ProbeLayout::Scattered);
        assert!(cfg.block_geometry().is_none());
    }

    #[test]
    fn blocked_probe_rejects_degenerate_shapes() {
        // m smaller than one block.
        assert!(matches!(
            TbfConfig::builder(1 << 16)
                .entries(4)
                .probe(ProbeLayout::Blocked)
                .build(),
            Err(ConfigError::BlockedUnsupported { .. })
        ));
        // Padded GBF with Q + 1 > 256 lanes: > 256-bit groups, < 2 per line.
        assert!(matches!(
            GbfConfig::builder(1 << 14, 300)
                .filter_bits(1 << 16)
                .probe(ProbeLayout::Blocked)
                .build(),
            Err(ConfigError::BlockedUnsupported { .. })
        ));
    }

    #[test]
    fn errors_display_reasonably() {
        let e = ConfigError::TooManySubWindows { q: 9, n: 4 };
        assert!(e.to_string().contains("9"));
        let e = ConfigError::MemoryTooSmall {
            provided: 1,
            required: 17,
        };
        assert!(e.to_string().contains("17"));
    }
}
