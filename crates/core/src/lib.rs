//! # Click-fraud duplicate detection: GBF and TBF
//!
//! This crate is the primary contribution of the reproduced paper,
//! *Detecting Click Fraud in Pay-Per-Click Streams of Online Advertising
//! Networks* (Zhang & Guan, ICDCS 2008): two one-pass, small-memory
//! algorithms that detect duplicate clicks over decaying windows with
//! **zero false negatives** and a low, bounded false-positive rate.
//!
//! * [`Gbf`] — *group Bloom filters* over count-based **jumping windows**
//!   with a small number of sub-windows `Q` (§3). One probe checks all
//!   `Q` sub-window filters with `k` word reads thanks to a
//!   bit-interleaved layout, and expired filters are wiped incrementally.
//! * [`Tbf`] — *timing Bloom filters* over count-based **sliding
//!   windows** (§4). Bloom cells widen to `O(log N)`-bit wraparound
//!   timestamps; an incremental sweep erases expired timestamps before
//!   their values can be reused.
//! * [`JumpingTbf`] — TBF adapted to jumping windows with *large* `Q`,
//!   where GBF's `Q`-lane probe would be too wide (§4.1 extension).
//! * [`TimeGbf`] / [`TimeTbf`] — the time-based-window extensions of
//!   §3.1 / §4.1: windows measured in time units instead of elements.
//! * [`ShardedDetector`] — keyspace-sharded composition of any detector:
//!   ids route by an independent hash to one of `S` shards sized `N/S`,
//!   preserving zero false negatives per shard while enabling batch and
//!   multi-thread processing (see `cfd-adnet`'s parallel pipeline).
//!
//! Every count-based detector splits its step into a pure `plan(id)`
//! (one hash, reusable across threads and batches) and a stateful
//! `apply(plan)`; `observe` is the fused convenience form.
//!
//! All detectors implement [`cfd_windows::DuplicateDetector`] (or the
//! timed variant) and carry [`OpCounters`] so benchmarks can reproduce
//! the paper's running-time theorems in memory operations.
//!
//! ## Quick start
//!
//! ```rust
//! use cfd_core::{Tbf, TbfConfig};
//! use cfd_windows::{DuplicateDetector, Verdict};
//!
//! # fn main() -> Result<(), cfd_core::ConfigError> {
//! // A sliding window of the last 4096 clicks, ~14 entries per element.
//! let cfg = TbfConfig::builder(4096).entries(4096 * 14).build()?;
//! let mut detector = Tbf::new(cfg)?;
//!
//! assert_eq!(detector.observe(b"ip=203.0.113.9;ad=17"), Verdict::Distinct);
//! assert_eq!(detector.observe(b"ip=203.0.113.9;ad=17"), Verdict::Duplicate);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apbf;
pub mod arena;
mod backend;
pub mod checkpoint;
pub mod config;
pub mod gbf;
pub mod gbf_time;
pub mod ops;
pub mod registry;
pub mod sharded;
pub mod swbf;
pub mod tbf;
pub mod tbf_jumping;
pub mod tbf_time;

pub use apbf::{Apbf, ApbfConfig};
pub use arena::{ArenaConfig, ArenaStats, TenantArena};
/// Runtime scalar/SIMD dispatch shared by every backend's probe and
/// cleaning kernels (re-exported so frontends — telemetry, benches,
/// the CLI — can read and steer it without a `cfd-bits` dependency).
pub use cfd_bits::simd;
pub use checkpoint::{CheckpointError, CheckpointState};
pub use config::{
    ConfigError, GbfConfig, GbfConfigBuilder, GbfLayout, ProbeLayout, TbfConfig, TbfConfigBuilder,
};
pub use gbf::Gbf;
pub use gbf_time::{TimeGbf, TimeGbfConfig};
pub use ops::OpCounters;
pub use registry::{BackendGeometry, DetectorBackend, MemorySpec};
pub use sharded::{PlannedDetector, ShardRouter, ShardedDetector, TimedPlannedDetector};
pub use swbf::{Swbf, SwbfConfig};
pub use tbf::Tbf;
pub use tbf_jumping::JumpingTbf;
pub use tbf_time::{TimeTbf, TimeTbfConfig};
