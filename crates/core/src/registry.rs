//! The backend registry: window-filter detectors as named plugins.
//!
//! Every count-window detector in this crate — TBF, GBF, jumping-TBF,
//! APBF, SWBF — shares the same operational contract: it classifies
//! clicks ([`DuplicateDetector`](cfd_windows::DuplicateDetector)),
//! exposes its hashing half for batch and sharded replay
//! ([`PlannedDetector`]), reports health telemetry
//! ([`DetectorStats`]), and round-trips
//! its complete state through the
//! tagged `CFDS` checkpoint framing. [`DetectorBackend`] names that
//! contract, and this module maps algorithm names to constructors so
//! the CLI, the `cfd-adnet` pipeline, and `cfd-bench` all resolve
//! backends through one table instead of hand-rolled `match` arms.
//!
//! The registry is the single source of truth for which backends
//! exist: `--algo` help text, the README algorithm table, and the
//! differential test harness all iterate [`backends`], so adding a
//! backend here is the *only* step needed to surface it everywhere.
//!
//! ```rust
//! use cfd_core::registry::{self, BackendGeometry, MemorySpec};
//! use cfd_windows::{DuplicateDetector, Verdict};
//!
//! # fn main() -> Result<(), cfd_core::registry::BackendBuildError> {
//! let geo = BackendGeometry::new(4096, MemorySpec::TotalBits(4096 * 64));
//! let mut detector = registry::build("apbf", &geo)?;
//! assert_eq!(detector.observe(b"click"), Verdict::Distinct);
//! assert_eq!(detector.observe(b"click"), Verdict::Duplicate);
//! # Ok(())
//! # }
//! ```

use crate::arena::{ArenaConfig, TenantArena};
use crate::checkpoint::{
    self, CheckpointError, CheckpointState, KIND_APBF, KIND_ARENA, KIND_GBF, KIND_JUMPING_TBF,
    KIND_SWBF, KIND_TBF,
};
use crate::config::{ConfigError, ProbeLayout};
use crate::sharded::PlannedDetector;
use crate::tbf_jumping::JumpingTbfConfig;
use crate::{Apbf, ApbfConfig, Gbf, GbfConfig, JumpingTbf, Swbf, SwbfConfig, Tbf, TbfConfig};
use cfd_bits::words::bits_for_value;
use cfd_hash::{Planner, ProbePlan};
use cfd_telemetry::DetectorStats;
use cfd_windows::Verdict;
use std::fmt;

/// The full plugin contract of a count-window detector backend: stream
/// classification, hash-once batch replay, health telemetry, and tagged
/// checkpointing. Blanket-implemented for every [`CheckpointState`]
/// detector, so concrete backends never implement it by hand.
///
/// `Box<dyn DetectorBackend>` implements the whole contract again
/// (including [`CheckpointState`], dispatching restores on the
/// checkpoint's kind tag), so runtime-chosen backends compose with
/// every generic wrapper — `ShardedDetector<Box<dyn DetectorBackend>>`
/// keeps hash-once routing *and* checkpointing.
pub trait DetectorBackend: PlannedDetector + DetectorStats + Send {
    /// Serializes the complete state in the tagged `CFDS` framing
    /// (object-safe form of [`CheckpointState::checkpoint`]).
    fn checkpoint_bytes(&self) -> Vec<u8>;
}

impl<T: PlannedDetector + DetectorStats + CheckpointState + Send> DetectorBackend for T {
    fn checkpoint_bytes(&self) -> Vec<u8> {
        CheckpointState::checkpoint(self)
    }
}

impl PlannedDetector for Box<dyn DetectorBackend> {
    fn probe_planner(&self) -> Planner {
        (**self).probe_planner()
    }
    fn apply_plan(&mut self, plan: ProbePlan) -> Verdict {
        (**self).apply_plan(plan)
    }
    fn apply_plan_batch(&mut self, plans: &[ProbePlan]) -> Vec<Verdict> {
        (**self).apply_plan_batch(plans)
    }
    fn apply_plan_batch_into(&mut self, plans: &[ProbePlan], out: &mut Vec<Verdict>) {
        (**self).apply_plan_batch_into(plans, out);
    }
}

impl CheckpointState for Box<dyn DetectorBackend> {
    fn checkpoint(&self) -> Vec<u8> {
        (**self).checkpoint_bytes()
    }

    /// Restores whichever backend the buffer's kind tag names — the
    /// backend-agnostic entry point for state recovery. A tag no entry
    /// claims yields [`CheckpointError::UnknownBackend`] instead of a
    /// panic, so a gateway restarting on an older binary degrades to a
    /// clean error.
    fn restore(buf: &[u8]) -> Result<Self, CheckpointError> {
        restore_any(buf)
    }
}

/// How much memory a backend gets to spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemorySpec {
    /// Total payload budget in bits; every backend spends the whole
    /// budget its own way (the equal-memory comparison the shootout
    /// bench uses).
    TotalBits(usize),
    /// The paper's per-element sizing idiom: `c` cells per window
    /// element, where a *cell* is the backend's native storage unit —
    /// filter bits for GBF and APBF, timestamp entries for the TBF
    /// family, fingerprint+timestamp slots for SWBF.
    CellsPerElement(usize),
}

/// The backend-agnostic shape every registry constructor builds from.
///
/// Backends ignore the knobs they do not have: APBF and SWBF derive
/// their own probe counts from the budget, so `hash_count` only binds
/// the TBF/GBF family; `sub_windows` only binds the jumping-window
/// detectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendGeometry {
    /// Count-window length `N` in elements.
    pub window: usize,
    /// Memory to spend, total or per element.
    pub memory: MemorySpec,
    /// Sub-window count `Q` for jumping-window backends.
    pub sub_windows: usize,
    /// Hash functions per element for the TBF/GBF family.
    pub hash_count: usize,
    /// Hash seed (align with `ShardRouter::probe_seed` for hash-once
    /// sharded routing).
    pub seed: u64,
    /// Probe index layout (scattered vs. cache-line-blocked).
    pub probe: ProbeLayout,
}

impl BackendGeometry {
    /// A geometry with the CLI's defaults: 8 sub-windows, 10 hashes,
    /// seed 0, scattered probes.
    #[must_use]
    pub fn new(window: usize, memory: MemorySpec) -> Self {
        Self {
            window,
            memory,
            sub_windows: 8,
            hash_count: 10,
            seed: 0,
            probe: ProbeLayout::Scattered,
        }
    }

    /// Returns the geometry with `sub_windows` replaced.
    #[must_use]
    pub fn with_sub_windows(mut self, q: usize) -> Self {
        self.sub_windows = q;
        self
    }

    /// Returns the geometry with `hash_count` replaced.
    #[must_use]
    pub fn with_hash_count(mut self, k: usize) -> Self {
        self.hash_count = k;
        self
    }

    /// Returns the geometry with `seed` replaced.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the geometry with `probe` replaced.
    #[must_use]
    pub fn with_probe(mut self, probe: ProbeLayout) -> Self {
        self.probe = probe;
        self
    }
}

/// Constructor signature of a registered backend.
type BuildFn = fn(&BackendGeometry) -> Result<Box<dyn DetectorBackend>, ConfigError>;
/// Checkpoint-restore signature of a registered backend.
type RestoreFn = fn(&[u8]) -> Result<Box<dyn DetectorBackend>, CheckpointError>;

/// One registered backend: its name, checkpoint kind tag, one-line
/// summary, and constructors.
pub struct BackendEntry {
    /// The `--algo` name.
    pub name: &'static str,
    /// The `CFDS` kind tag its checkpoints carry.
    pub kind: u8,
    /// Window model, for generated docs.
    pub window_model: &'static str,
    /// One-line summary, for generated docs and help text.
    pub summary: &'static str,
    build: BuildFn,
    restore: RestoreFn,
}

impl fmt::Debug for BackendEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BackendEntry")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .finish_non_exhaustive()
    }
}

impl BackendEntry {
    /// Builds this backend from the common geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the geometry cannot fund the
    /// backend's minimum shape.
    pub fn build(&self, geo: &BackendGeometry) -> Result<Box<dyn DetectorBackend>, ConfigError> {
        (self.build)(geo)
    }

    /// Restores this backend from one of its checkpoints.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on malformed input or a kind tag
    /// belonging to a different backend.
    pub fn restore(&self, buf: &[u8]) -> Result<Box<dyn DetectorBackend>, CheckpointError> {
        (self.restore)(buf)
    }
}

/// TBF entries for a memory spec (`M / entry_bits`, Theorem 2).
fn tbf_entries(geo: &BackendGeometry) -> usize {
    match geo.memory {
        MemorySpec::TotalBits(total) => {
            total / bits_for_value(2 * geo.window.max(1) as u64 - 1) as usize
        }
        MemorySpec::CellsPerElement(c) => geo.window * c,
    }
}

static BACKENDS: &[BackendEntry] = &[
    BackendEntry {
        name: "tbf",
        kind: KIND_TBF,
        window_model: "sliding, count-based",
        summary: "timing Bloom filter: O(log N)-bit timestamp cells, incremental sweep (paper §4)",
        build: |geo| {
            let cfg = TbfConfig::builder(geo.window)
                .entries(tbf_entries(geo))
                .hash_count(geo.hash_count)
                .seed(geo.seed)
                .probe(geo.probe)
                .build()?;
            Ok(Box::new(Tbf::new(cfg)?))
        },
        restore: |buf| Ok(Box::new(Tbf::restore(buf)?)),
    },
    BackendEntry {
        name: "gbf",
        kind: KIND_GBF,
        window_model: "jumping, count-based, small Q",
        summary: "group Bloom filters: Q sub-window filters probed in one interleaved read (paper §3)",
        build: |geo| {
            let mut b = GbfConfig::builder(geo.window, geo.sub_windows);
            b = match geo.memory {
                // The default padded layout spends one whole word per
                // probe group (`group_bits`), so an equal-memory build
                // must divide by the real group stride, not `Q + 1` —
                // GBF pays for its padding in the comparison.
                MemorySpec::TotalBits(total) => {
                    let group_bits = (geo.sub_windows + 1).div_ceil(64) * 64;
                    b.filter_bits(total / group_bits)
                }
                MemorySpec::CellsPerElement(c) => {
                    b.filter_bits(geo.window.div_ceil(geo.sub_windows.max(1)) * c)
                }
            };
            let cfg = b
                .hash_count(geo.hash_count)
                .seed(geo.seed)
                .probe(geo.probe)
                .build()?;
            Ok(Box::new(Gbf::new(cfg)?))
        },
        restore: |buf| Ok(Box::new(Gbf::restore(buf)?)),
    },
    BackendEntry {
        name: "jumping-tbf",
        kind: KIND_JUMPING_TBF,
        window_model: "jumping, count-based, large Q",
        summary: "TBF over sub-window indices: jumping windows where GBF's Q-lane probe is too wide (§4.1)",
        build: |geo| {
            let q = geo.sub_windows;
            let m = match geo.memory {
                MemorySpec::TotalBits(total) => total / bits_for_value(2 * q.max(1) as u64) as usize,
                MemorySpec::CellsPerElement(c) => geo.window * c,
            };
            let cfg = JumpingTbfConfig::new(geo.window, q, m, geo.hash_count, geo.seed)?
                .with_probe(geo.probe)?;
            Ok(Box::new(JumpingTbf::new(cfg)?))
        },
        restore: |buf| Ok(Box::new(JumpingTbf::restore(buf)?)),
    },
    BackendEntry {
        name: "apbf",
        kind: KIND_APBF,
        window_model: "sliding, count-based",
        summary: "age-partitioned Bloom filter: k+l rotating slices, k-run queries, no timestamps",
        build: |geo| {
            let total = match geo.memory {
                MemorySpec::TotalBits(total) => total,
                MemorySpec::CellsPerElement(c) => geo.window * c,
            };
            let cfg = ApbfConfig::for_budget(geo.window, total, geo.seed, geo.probe)?;
            Ok(Box::new(Apbf::new(cfg)?))
        },
        restore: |buf| Ok(Box::new(Apbf::restore(buf)?)),
    },
    BackendEntry {
        name: "swbf",
        kind: KIND_SWBF,
        window_model: "sliding, count-based",
        summary: "sliding window Bloom filter: fingerprinted timestamp dictionary with cuckoo-style candidates",
        build: |geo| {
            let total = match geo.memory {
                MemorySpec::TotalBits(total) => total,
                // A SWBF "cell" is a fingerprint+timestamp dictionary
                // slot; fund `c` slots per element at a nominal 12-bit
                // fingerprint (`for_budget` re-picks the exact width
                // for the final budget).
                MemorySpec::CellsPerElement(c) => {
                    let ts = bits_for_value(2 * geo.window.max(1) as u64 - 1) as usize;
                    geo.window * c * (ts + 12)
                }
            };
            let cfg = SwbfConfig::for_budget(geo.window, total, geo.seed, geo.probe)?;
            Ok(Box::new(Swbf::new(cfg)?))
        },
        restore: |buf| Ok(Box::new(Swbf::restore(buf)?)),
    },
    BackendEntry {
        name: "arena",
        kind: KIND_ARENA,
        window_model: "sliding, count-based, per tenant",
        summary: "multi-tenant arena: one TBF region per key prefix (advertiser, campaign) in a shared slab, hash-once routing",
        build: |geo| {
            let total = match geo.memory {
                MemorySpec::TotalBits(total) => total,
                MemorySpec::CellsPerElement(c) => {
                    let eb = bits_for_value(2 * geo.window.max(1) as u64 - 1) as usize;
                    // c cells per element for each initially funded
                    // tenant region.
                    geo.window * c * eb * crate::arena::DEFAULT_INITIAL_SLOTS
                }
            };
            let cfg = ArenaConfig::for_budget(geo.window, total, geo.hash_count, geo.seed)?
                .with_probe(geo.probe);
            Ok(Box::new(TenantArena::new(cfg)?))
        },
        restore: |buf| Ok(Box::new(TenantArena::restore(buf)?)),
    },
];

/// Every registered count-window backend, in documentation order.
#[must_use]
pub fn backends() -> &'static [BackendEntry] {
    BACKENDS
}

/// Looks a backend up by its `--algo` name.
#[must_use]
pub fn find(name: &str) -> Option<&'static BackendEntry> {
    BACKENDS.iter().find(|e| e.name == name)
}

/// Error from [`build`]: the name is unknown, or the geometry cannot
/// fund the backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendBuildError {
    /// No registered backend has this name.
    UnknownName(String),
    /// The named backend rejected the geometry.
    Config(ConfigError),
}

impl fmt::Display for BackendBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownName(name) => {
                write!(f, "unknown backend `{name}` (registered: {})", algo_list())
            }
            Self::Config(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for BackendBuildError {}

impl From<ConfigError> for BackendBuildError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

/// Builds the named backend from the common geometry.
///
/// # Errors
///
/// Returns [`BackendBuildError::UnknownName`] for a name no entry
/// claims, [`BackendBuildError::Config`] when the backend rejects the
/// geometry.
pub fn build(
    name: &str,
    geo: &BackendGeometry,
) -> Result<Box<dyn DetectorBackend>, BackendBuildError> {
    let entry = find(name).ok_or_else(|| BackendBuildError::UnknownName(name.to_owned()))?;
    Ok(entry.build(geo)?)
}

/// Restores whichever backend a checkpoint's kind tag names.
///
/// # Errors
///
/// Returns [`CheckpointError::UnknownBackend`] when the tag belongs to
/// no registered backend (e.g. a checkpoint written by a newer binary),
/// and the usual [`CheckpointError`]s on malformed input.
pub fn restore_any(buf: &[u8]) -> Result<Box<dyn DetectorBackend>, CheckpointError> {
    let kind = checkpoint::peek_kind(buf)?;
    let entry = BACKENDS
        .iter()
        .find(|e| e.kind == kind)
        .ok_or(CheckpointError::UnknownBackend { found: kind })?;
    entry.restore(buf)
}

/// The registered `--algo` names joined with `|` — CLI usage text pulls
/// this instead of hard-coding the list.
#[must_use]
pub fn algo_list() -> String {
    BACKENDS
        .iter()
        .map(|e| e.name)
        .collect::<Vec<_>>()
        .join("|")
}

/// The README's algorithm table, generated from the registry so docs
/// cannot drift from the code (a test diffs this against `README.md`).
#[must_use]
pub fn markdown_table() -> String {
    let mut out = String::from("| `--algo` | window model | summary |\n|---|---|---|\n");
    for e in BACKENDS {
        out.push_str(&format!(
            "| `{}` | {} | {} |\n",
            e.name, e.window_model, e.summary
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_windows::DuplicateDetector;

    fn geo() -> BackendGeometry {
        BackendGeometry::new(512, MemorySpec::TotalBits(512 * 64)).with_seed(7)
    }

    #[test]
    fn every_backend_builds_and_detects() {
        for entry in backends() {
            for probe in [ProbeLayout::Scattered, ProbeLayout::Blocked] {
                let mut d = entry.build(&geo().with_probe(probe)).expect(entry.name);
                assert_eq!(d.observe(b"click-a"), Verdict::Distinct, "{}", entry.name);
                assert_eq!(d.observe(b"click-a"), Verdict::Duplicate, "{}", entry.name);
                let n = match d.window() {
                    cfd_windows::WindowSpec::Sliding { n }
                    | cfd_windows::WindowSpec::Jumping { n, .. } => n,
                    other => panic!("{}: unexpected window {other:?}", entry.name),
                };
                assert_eq!(n, 512, "{}", entry.name);
            }
        }
    }

    #[test]
    fn cells_per_element_spec_matches_legacy_cli_sizing() {
        // The CLI's historic `--cells-per-element` knob must keep
        // building identical detectors through the registry.
        let geo = BackendGeometry::new(1 << 12, MemorySpec::CellsPerElement(14))
            .with_hash_count(10)
            .with_seed(3);
        let built = build("tbf", &geo).expect("tbf");
        let direct = Tbf::new(
            TbfConfig::builder(1 << 12)
                .entries((1 << 12) * 14)
                .hash_count(10)
                .seed(3)
                .build()
                .expect("cfg"),
        )
        .expect("detector");
        assert_eq!(built.memory_bits(), direct.memory_bits());
    }

    #[test]
    fn equal_memory_budgets_land_within_tolerance() {
        // TotalBits is the shootout's fairness contract: every backend
        // must spend the budget, not quietly under-allocate.
        let budget = (1 << 14) * 32;
        for entry in backends() {
            let d = entry
                .build(&BackendGeometry::new(
                    1 << 14,
                    MemorySpec::TotalBits(budget),
                ))
                .expect(entry.name);
            let used = d.memory_bits() as f64 / budget as f64;
            assert!(
                (0.8..=1.12).contains(&used),
                "{} spent {used:.3} of the budget",
                entry.name
            );
        }
    }

    #[test]
    fn restore_any_dispatches_on_the_kind_tag() {
        for entry in backends() {
            let mut original = entry.build(&geo()).expect(entry.name);
            for i in 0..2_000u64 {
                original.observe(&(i % 300).to_le_bytes());
            }
            let buf = original.checkpoint_bytes();
            let mut restored = restore_any(&buf).expect(entry.name);
            assert_eq!(restored.name(), original.name(), "{}", entry.name);
            for i in 2_000..5_000u64 {
                let key = (i % 300).to_le_bytes();
                assert_eq!(
                    original.observe(&key),
                    restored.observe(&key),
                    "{} i={i}",
                    entry.name
                );
            }
        }
    }

    #[test]
    fn unknown_kind_tag_is_a_typed_error_not_a_panic() {
        // Forge a valid header whose kind no registered backend claims
        // (a checkpoint from some future binary).
        let mut buf = build("tbf", &geo()).expect("tbf").checkpoint_bytes();
        buf[6] = 0xEF;
        assert_eq!(
            restore_any(&buf).err(),
            Some(CheckpointError::UnknownBackend { found: 0xEF })
        );
        // Mismatched (known, but different) tags stay typed too.
        let swbf_buf = build("swbf", &geo()).expect("swbf").checkpoint_bytes();
        assert!(matches!(
            find("apbf").expect("entry").restore(&swbf_buf),
            Err(CheckpointError::WrongKind { found: 7, .. })
        ));
        // And garbage stays BadMagic.
        assert_eq!(restore_any(b"junk").err(), Some(CheckpointError::BadMagic));
    }

    #[test]
    fn boxed_backends_compose_with_sharding_and_checkpointing() {
        use crate::sharded::ShardedDetector;
        type Dyn = Box<dyn DetectorBackend>;
        let mut original: ShardedDetector<Dyn> = ShardedDetector::from_fn(17, 4, |_| {
            Ok::<_, BackendBuildError>(build("apbf", &geo()).expect("apbf"))
        })
        .expect("sharded");
        for i in 0..4_000u64 {
            original.observe(&(i % 500).to_le_bytes());
        }
        let buf = CheckpointState::checkpoint(&original);
        let mut restored =
            <ShardedDetector<Dyn> as CheckpointState>::restore(&buf).expect("valid checkpoint");
        for i in 4_000..9_000u64 {
            let key = (i % 500).to_le_bytes();
            assert_eq!(original.observe(&key), restored.observe(&key), "i={i}");
        }
    }

    #[test]
    fn generated_docs_cover_every_entry() {
        let list = algo_list();
        let table = markdown_table();
        for entry in backends() {
            assert!(list.contains(entry.name));
            assert!(table.contains(entry.name));
        }
        assert_eq!(list.matches('|').count() + 1, backends().len());
    }
}
