//! TBF over jumping windows with a large number of sub-windows (§4.1).
//!
//! "TBF can also be easily extended to handle jumping windows. If TBF is
//! utilized over a jumping window which is evenly divided into `Q`
//! sub-windows, then all elements in the same sub-window will have the
//! same timestamp, and they will be eliminated from TBF simultaneously.
//! When `Q` is large, GBF cannot process the click stream efficiently,
//! and TBF is a better choice."
//!
//! Entries store the *sub-window index* (wraparound range `Q + C_q`)
//! instead of the element position, so entry width is `O(log Q)` — far
//! below the sliding TBF's `O(log N)` — and the probe is `k` entry reads
//! regardless of `Q`, where GBF would need `k × ⌈(Q+1)/64⌉` word reads.

use crate::backend::{self, BatchBufs, CountCore, ProbeCore};
use crate::config::{ConfigError, ProbeLayout};
use crate::ops::OpCounters;
use cfd_bits::words::bits_for_value;
use cfd_bits::PackedIntVec;
use cfd_hash::{BlockGeometry, DoubleHashFamily, HashFamily, Planner, ProbePlan};
use cfd_telemetry::DetectorStats;
use cfd_windows::{DuplicateDetector, JumpingClock, Verdict, WindowSpec, WrapCounter};
use std::cell::Cell;

/// Configuration of a [`JumpingTbf`] detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JumpingTbfConfig {
    /// Jumping-window length `N` in elements.
    pub n: usize,
    /// Number of sub-windows `Q` (may be large — that is the point).
    pub q: usize,
    /// Number of TBF entries (`m`).
    pub m: usize,
    /// Hash functions per element (`k`).
    pub k: usize,
    /// Sub-window-index range extension `C_q` (default `Q`).
    pub c_q: usize,
    /// Hash seed.
    pub seed: u64,
    /// Probe index layout (scattered vs. cache-line-blocked).
    pub probe: ProbeLayout,
}

impl JumpingTbfConfig {
    /// Creates a validated configuration with the default `C_q = Q`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on zero dimensions, `q > n`, or bad `k`.
    pub fn new(n: usize, q: usize, m: usize, k: usize, seed: u64) -> Result<Self, ConfigError> {
        let cfg = Self {
            n,
            q,
            m,
            k,
            c_q: q,
            seed,
            probe: ProbeLayout::Scattered,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Returns the configuration with the probe layout replaced.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BlockedUnsupported`] when `Blocked` is
    /// requested but the entry width / table shape cannot form blocks.
    pub fn with_probe(mut self, probe: ProbeLayout) -> Result<Self, ConfigError> {
        self.probe = probe;
        if probe == ProbeLayout::Blocked && self.block_geometry().is_none() {
            return Err(ConfigError::BlockedUnsupported {
                slot_bits: self.entry_bits() as usize,
                m: self.m,
            });
        }
        Ok(self)
    }

    /// Cache-line block geometry for the blocked probe layout; `None`
    /// when scattered or when the shape does not admit blocks.
    #[must_use]
    pub fn block_geometry(&self) -> Option<BlockGeometry> {
        if self.probe != ProbeLayout::Blocked {
            return None;
        }
        BlockGeometry::for_line(self.m, self.entry_bits() as usize)
    }

    /// The wraparound sub-index range (`Q + C_q`).
    #[must_use]
    pub fn range(&self) -> u64 {
        (self.q + self.c_q) as u64
    }

    /// Bits per entry (`⌈log2(Q + C_q + 1)⌉`, all-ones reserved as empty).
    #[must_use]
    pub fn entry_bits(&self) -> u32 {
        bits_for_value(self.range())
    }

    /// Entries swept per arrival: the cleanable band of an entry spans
    /// `C_q` sub-windows = `C_q × ⌈N/Q⌉` arrivals, so
    /// `⌈m / (C_q · sub_len)⌉` keeps the sweep ahead of value reuse.
    #[must_use]
    pub fn clean_quota(&self) -> usize {
        let band = self.c_q * self.n.div_ceil(self.q);
        self.m.div_ceil(band.max(1))
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.n == 0 {
            return Err(ConfigError::ZeroDimension("window length n"));
        }
        if self.q == 0 || self.c_q == 0 {
            return Err(ConfigError::ZeroDimension("sub-window count q"));
        }
        if self.q > self.n {
            return Err(ConfigError::TooManySubWindows {
                q: self.q,
                n: self.n,
            });
        }
        if self.m == 0 {
            return Err(ConfigError::ZeroDimension("entry count m"));
        }
        if !(1..=64).contains(&self.k) {
            return Err(ConfigError::BadHashCount(self.k));
        }
        Ok(())
    }
}

/// Mutable-state snapshot carried by a checkpoint (the configuration
/// travels separately).
pub(crate) struct JumpingTbfState {
    pub sub_now: u64,
    pub slot: usize,
    pub filled: usize,
    pub completed_subwindows: u64,
    pub clean_next: usize,
    pub entry_words: Vec<u64>,
}

/// Timing-Bloom-filter duplicate detector over count-based jumping
/// windows (the large-`Q` regime where [`crate::Gbf`] is too slow).
///
/// ```rust
/// use cfd_core::tbf_jumping::{JumpingTbf, JumpingTbfConfig};
/// use cfd_windows::{DuplicateDetector, Verdict};
///
/// # fn main() -> Result<(), cfd_core::ConfigError> {
/// // 1024 sub-windows: GBF would need 17 words per probe group.
/// let cfg = JumpingTbfConfig::new(1 << 14, 1 << 10, 1 << 18, 7, 0)?;
/// let mut d = JumpingTbf::new(cfg)?;
/// assert_eq!(d.observe(b"bot-17"), Verdict::Distinct);
/// assert_eq!(d.observe(b"bot-17"), Verdict::Duplicate);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct JumpingTbf {
    cfg: JumpingTbfConfig,
    entries: PackedIntVec,
    clock: JumpingClock,
    /// Wraparound *sub-window* counter; `now()` is the current sub-index.
    sub: WrapCounter,
    family: DoubleHashFamily,
    clean_next: usize,
    clean_quota: usize,
    empty: u64,
    ops: OpCounters,
    bufs: BatchBufs,
    /// Blocked-probe geometry; `None` in scattered mode.
    geo: Option<BlockGeometry>,
    /// Probes per element: `k` scattered, `min(k, slots/2)` blocked
    /// (saturation cap; see [`crate::Gbf`]).
    k_eff: usize,
    /// `O(m)` occupancy scans performed (snapshot cadence only).
    scans: Cell<u64>,
}

impl JumpingTbf {
    /// Creates a detector from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is inconsistent.
    pub fn new(cfg: JumpingTbfConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let geo = match cfg.probe {
            ProbeLayout::Scattered => None,
            ProbeLayout::Blocked => Some(cfg.block_geometry().ok_or(
                ConfigError::BlockedUnsupported {
                    slot_bits: cfg.entry_bits() as usize,
                    m: cfg.m,
                },
            )?),
        };
        let k_eff = backend::effective_k(cfg.k, geo.as_ref());
        let entries = PackedIntVec::new_all_ones(cfg.m, cfg.entry_bits());
        let empty = entries.max_value();
        Ok(Self {
            clock: JumpingClock::new(cfg.q, cfg.n.div_ceil(cfg.q)),
            sub: WrapCounter::new(cfg.range()),
            family: DoubleHashFamily::new(cfg.seed),
            clean_next: 0,
            clean_quota: cfg.clean_quota(),
            empty,
            ops: OpCounters::new(),
            bufs: BatchBufs::default(),
            geo,
            k_eff,
            scans: Cell::new(0),
            entries,
            cfg,
        })
    }

    /// Probes issued per element: `k` in scattered mode, `min(k,
    /// slots/2)` in blocked mode (saturation cap; see [`crate::Gbf`]).
    #[must_use]
    pub fn effective_hash_count(&self) -> usize {
        self.k_eff
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> JumpingTbfConfig {
        self.cfg
    }

    /// Memory-operation counters.
    #[must_use]
    pub fn ops(&self) -> OpCounters {
        self.ops
    }

    /// Internal state snapshot for checkpointing.
    pub(crate) fn checkpoint_parts(&self) -> (JumpingTbfConfig, JumpingTbfState) {
        (
            self.cfg,
            JumpingTbfState {
                sub_now: self.sub.now(),
                slot: self.clock.slot(),
                filled: self.clock.filled(),
                completed_subwindows: self.clock.completed_subwindows(),
                clean_next: self.clean_next,
                entry_words: self.entries.as_words().to_vec(),
            },
        )
    }

    /// Rebuilds a detector from checkpoint parts; `None` if inconsistent.
    pub(crate) fn from_checkpoint_parts(
        cfg: JumpingTbfConfig,
        state: JumpingTbfState,
    ) -> Option<Self> {
        // Size-check against the provided payload BEFORE allocating: a
        // corrupt header could otherwise request an absurd table.
        let expected_words = cfg.m.checked_mul(cfg.entry_bits() as usize)?.div_ceil(64);
        if state.entry_words.len() != expected_words || state.clean_next >= cfg.m {
            return None;
        }
        let mut d = Self::new(cfg).ok()?;
        d.sub = WrapCounter::from_parts(cfg.range(), state.sub_now)?;
        d.clock = JumpingClock::from_parts(
            cfg.q,
            cfg.n.div_ceil(cfg.q),
            state.slot,
            state.filled,
            state.completed_subwindows,
        )?;
        d.clean_next = state.clean_next;
        d.entries = cfd_bits::PackedIntVec::from_words(state.entry_words, cfg.m, cfg.entry_bits())?;
        Some(d)
    }

    /// Number of entries holding an *active* sub-window index — the
    /// occupancy that drives the false-positive rate (`O(m)`).
    #[must_use]
    pub fn active_entries(&self) -> usize {
        self.scans.set(self.scans.get() + 1);
        (0..self.cfg.m)
            .filter(|&i| {
                let e = self.entries.get(i);
                e != self.empty && self.is_active(e)
            })
            .count()
    }

    /// Sub-index age: 0 = current sub-window. Active iff `< Q`.
    #[inline]
    fn sub_age(&self, e: u64) -> u64 {
        let now = self.sub.now();
        let range = self.cfg.range();
        if now >= e {
            now - e
        } else {
            range - e + now
        }
    }

    #[inline]
    fn is_active(&self, e: u64) -> bool {
        self.sub_age(e) < self.cfg.q as u64
    }

    fn clean_step(&mut self) {
        let m = self.cfg.m;
        for _ in 0..self.clean_quota {
            let i = self.clean_next;
            self.clean_next += 1;
            if self.clean_next == m {
                self.clean_next = 0;
            }
            let e = self.entries.get(i);
            self.ops.clean_reads += 1;
            if e != self.empty && !self.is_active(e) {
                self.entries.set(i, self.empty);
                self.ops.clean_writes += 1;
            }
        }
    }

    /// The pure hashing half of this detector, shareable across threads.
    #[must_use]
    pub fn planner(&self) -> Planner {
        Planner::from_family(self.family)
    }

    /// Hashes `id` into a replayable [`ProbePlan`] (pure; no state touched).
    #[inline]
    #[must_use]
    pub fn plan(&self, id: &[u8]) -> ProbePlan {
        ProbePlan::from_pair(self.family.pair(id))
    }

    /// The stateful half of an observation; `observe(id)` ≡
    /// `apply(plan(id))`. The hash evaluation is accounted to this
    /// element regardless of where it was computed.
    pub fn apply(&mut self, plan: ProbePlan) -> Verdict {
        let mut bufs = std::mem::take(&mut self.bufs);
        let verdict = backend::apply_plan(self, &mut bufs, plan);
        self.bufs = bufs;
        verdict
    }

    /// Replays a batch of precomputed plans with the same lookahead
    /// prefetch as `observe_batch` — the stateful half of the sharded
    /// hash-once path, where plans were produced while routing.
    pub fn apply_batch(&mut self, plans: &[ProbePlan]) -> Vec<Verdict> {
        let mut out = Vec::with_capacity(plans.len());
        self.apply_batch_into(plans, &mut out);
        out
    }

    /// Allocation-free [`JumpingTbf::apply_batch`]: verdicts go into
    /// `out` (cleared first, capacity reused).
    pub fn apply_batch_into(&mut self, plans: &[ProbePlan], out: &mut Vec<Verdict>) {
        let mut bufs = std::mem::take(&mut self.bufs);
        backend::apply_batch_into(self, &mut bufs, plans, out);
        self.bufs = bufs;
    }

    /// [`JumpingTbf::apply`] with the probe indices already expanded —
    /// the innermost stateful step, shared by per-click and batch paths.
    fn apply_at(&mut self, probes: &[usize]) -> Verdict {
        self.ops.elements += 1;
        self.ops.hash_evals += 1;
        self.clean_step();

        let mut present_and_active = true;
        for &i in probes {
            let e = self.entries.get(i);
            self.ops.probe_reads += 1;
            if e == self.empty || !self.is_active(e) {
                present_and_active = false;
                break;
            }
        }

        let verdict = if present_and_active {
            Verdict::Duplicate
        } else {
            let t = self.sub.now();
            for &i in probes {
                self.entries.set(i, t);
            }
            self.ops.insert_writes += probes.len() as u64;
            Verdict::Distinct
        };

        if self.clock.record_arrival().is_some() {
            // All elements of the finished sub-window share the expiring
            // timestamp; advancing the sub-counter retires them together.
            self.sub.advance();
        }
        verdict
    }
}

impl ProbeCore for JumpingTbf {
    #[inline]
    fn table_len(&self) -> usize {
        self.cfg.m
    }

    #[inline]
    fn probe_width(&self) -> usize {
        self.k_eff
    }

    #[inline]
    fn block_geo(&self) -> Option<&BlockGeometry> {
        self.geo.as_ref()
    }

    #[inline]
    fn prefetch(&self, idx: usize) {
        self.entries.prefetch(idx);
    }
}

impl CountCore for JumpingTbf {
    #[inline]
    fn apply_probes(&mut self, _plan: ProbePlan, probes: &[usize]) -> Verdict {
        self.apply_at(probes)
    }
}

impl DuplicateDetector for JumpingTbf {
    fn observe(&mut self, id: &[u8]) -> Verdict {
        let plan = self.plan(id);
        self.apply(plan)
    }

    fn observe_batch(&mut self, ids: &[&[u8]]) -> Vec<Verdict> {
        let mut out = Vec::with_capacity(ids.len());
        self.observe_batch_into(ids, &mut out);
        out
    }

    fn observe_batch_into(&mut self, ids: &[&[u8]], out: &mut Vec<Verdict>) {
        // Hash up front (multi-lane over equal-length runs) and replay
        // with lookahead prefetch — same pattern as `Tbf`.
        let mut bufs = std::mem::take(&mut self.bufs);
        let planner = self.planner();
        backend::observe_refs_into(self, &mut bufs, planner, ids, out);
        self.bufs = bufs;
    }

    fn observe_flat_into(&mut self, keys: &[u8], key_len: usize, out: &mut Vec<Verdict>) {
        let mut bufs = std::mem::take(&mut self.bufs);
        let planner = self.planner();
        backend::observe_flat_into(self, &mut bufs, planner, keys, key_len, out);
        self.bufs = bufs;
    }

    fn window(&self) -> WindowSpec {
        WindowSpec::Jumping {
            n: self.cfg.n,
            q: self.cfg.q,
        }
    }

    fn memory_bits(&self) -> usize {
        self.entries.memory_bits()
    }

    fn reset(&mut self) {
        *self = Self::new(self.cfg).expect("configuration was already validated");
    }

    fn name(&self) -> &'static str {
        "jumping-tbf"
    }
}

impl DetectorStats for JumpingTbf {
    fn stats_name(&self) -> &'static str {
        "jumping-tbf"
    }

    /// One entry: the active-sub-index occupancy ratio (`O(m)`).
    fn fill_ratios(&self) -> Vec<f64> {
        vec![self.active_entries() as f64 / self.cfg.m as f64]
    }

    /// Normalized position of the incremental sweep through the table.
    fn sweep_position(&self) -> f64 {
        self.clean_next as f64 / self.cfg.m as f64
    }

    fn cleaned_entries(&self) -> u64 {
        self.ops.clean_writes
    }

    fn observed_elements(&self) -> u64 {
        self.ops.elements
    }

    /// Distinct elements perform exactly `k_eff` insert writes, so the
    /// duplicate count is recoverable from the op counters.
    fn observed_duplicates(&self) -> u64 {
        self.ops.elements - self.ops.insert_writes / self.k_eff as u64
    }

    /// Classical Bloom FP at the live active occupancy:
    /// `(active/m)^k_eff`.
    fn estimated_fp(&self) -> f64 {
        (self.active_entries() as f64 / self.cfg.m as f64).powi(self.k_eff as i32)
    }

    fn occupancy_scans(&self) -> u64 {
        self.scans.get()
    }

    /// Single-scan override: `fill_ratios` and `estimated_fp` each need
    /// the `O(m)` active-entry count; assemble the sample from one scan
    /// (see the matching override on `Tbf`).
    fn health(&self) -> cfd_telemetry::DetectorHealth {
        let fill = self.active_entries() as f64 / self.cfg.m as f64;
        cfd_telemetry::DetectorHealth {
            detector: self.stats_name(),
            fill_ratios: vec![fill],
            cleaning_backlog: 0.0,
            sweep_position: self.sweep_position(),
            cleaned_entries: self.cleaned_entries(),
            observed_elements: self.observed_elements(),
            observed_duplicates: self.observed_duplicates(),
            estimated_fp: fill.powi(self.k_eff as i32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_windows::ExactJumpingDedup;

    fn jtbf(n: usize, q: usize, m: usize, k: usize) -> JumpingTbf {
        JumpingTbf::new(JumpingTbfConfig::new(n, q, m, k, 21).unwrap()).unwrap()
    }

    #[test]
    fn immediate_duplicate_detected() {
        let mut d = jtbf(64, 16, 1 << 12, 5);
        assert_eq!(d.observe(b"x"), Verdict::Distinct);
        assert_eq!(d.observe(b"x"), Verdict::Duplicate);
    }

    #[test]
    fn whole_subwindow_expires_together() {
        // n = 8, q = 4 -> sub-windows of 2 elements, window = 4 subs.
        let mut d = jtbf(8, 4, 1 << 12, 5);
        d.observe(b"a"); // sub 0
        d.observe(b"b"); // sub 0 done
        for i in 0..6u32 {
            d.observe(&i.to_le_bytes()); // subs 1..3 fill
        }
        // a and b were in sub 0, which left the window after 4 rotations.
        assert_eq!(d.observe(b"a"), Verdict::Distinct);
        assert_eq!(d.observe(b"b"), Verdict::Distinct);
        // Both are valid again and immediately duplicate on repeat.
        assert_eq!(d.observe(b"a"), Verdict::Duplicate);
    }

    #[test]
    fn zero_false_negatives_vs_exact_oracle() {
        let (n, q) = (60, 12);
        let mut d = jtbf(n, q, 1 << 14, 6);
        let mut oracle = ExactJumpingDedup::new(n, q);
        for i in 0..20_000u64 {
            let key = (i % 83).to_le_bytes();
            let got = d.observe(&key);
            let want = oracle.observe(&key);
            if want == Verdict::Duplicate {
                assert_eq!(got, Verdict::Duplicate, "false negative at element {i}");
            }
        }
    }

    #[test]
    fn zero_false_negatives_with_large_q() {
        let (n, q) = (256, 64);
        let mut d = jtbf(n, q, 1 << 14, 6);
        let mut oracle = ExactJumpingDedup::new(n, q);
        for i in 0..30_000u64 {
            let key = (i % 300).to_le_bytes();
            let got = d.observe(&key);
            if oracle.observe(&key) == Verdict::Duplicate {
                assert_eq!(got, Verdict::Duplicate, "false negative at element {i}");
            }
        }
    }

    #[test]
    fn entry_width_scales_with_q_not_n() {
        let cfg = JumpingTbfConfig::new(1 << 20, 1 << 10, 1 << 16, 7, 0).unwrap();
        // range = 2q = 2^11 (power of two, so one extra bit keeps the
        // all-ones empty pattern distinct) -> 12-bit entries, vs 21 for
        // the sliding TBF over the same N = 2^20 window.
        assert_eq!(cfg.entry_bits(), 12);
    }

    #[test]
    fn false_positive_rate_low_on_distinct_stream() {
        let n = 1 << 12;
        let q = 1 << 8;
        let m = n * 14;
        let mut d = jtbf(n, q, m, 10);
        let mut fps = 0u64;
        let total = 20 * n as u64;
        for i in 0..total {
            if d.observe(&i.to_le_bytes()) == Verdict::Duplicate {
                fps += 1;
            }
        }
        assert!(
            (fps as f64 / total as f64) < 0.01,
            "fp rate too high: {fps}"
        );
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(JumpingTbfConfig::new(4, 9, 10, 3, 0).is_err());
        assert!(JumpingTbfConfig::new(0, 1, 10, 3, 0).is_err());
        assert!(JumpingTbfConfig::new(8, 2, 0, 3, 0).is_err());
        assert!(JumpingTbfConfig::new(8, 2, 10, 0, 0).is_err());
    }

    #[test]
    fn reset_restores_empty_state() {
        let mut d = jtbf(16, 4, 1 << 10, 4);
        d.observe(b"k");
        d.reset();
        assert_eq!(d.observe(b"k"), Verdict::Distinct);
    }

    fn blocked_jtbf(n: usize, q: usize, m: usize, k: usize) -> JumpingTbf {
        let cfg = JumpingTbfConfig::new(n, q, m, k, 21)
            .unwrap()
            .with_probe(ProbeLayout::Blocked)
            .unwrap();
        JumpingTbf::new(cfg).unwrap()
    }

    #[test]
    fn blocked_mode_has_zero_false_negatives() {
        let (n, q) = (60, 12);
        let mut d = blocked_jtbf(n, q, 1 << 14, 6);
        let mut oracle = ExactJumpingDedup::new(n, q);
        for i in 0..20_000u64 {
            let key = (i % 83).to_le_bytes();
            let got = d.observe(&key);
            let want = oracle.observe(&key);
            if want == Verdict::Duplicate {
                assert_eq!(got, Verdict::Duplicate, "false negative at element {i}");
            }
        }
    }

    #[test]
    fn blocked_batch_matches_sequential() {
        let keys: Vec<Vec<u8>> = (0..6000u64)
            .map(|i| (i % 500).to_le_bytes().to_vec())
            .collect();
        let slices: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let mut sequential = blocked_jtbf(256, 64, 1 << 14, 6);
        let mut batched = blocked_jtbf(256, 64, 1 << 14, 6);
        let want: Vec<Verdict> = slices.iter().map(|id| sequential.observe(id)).collect();
        let mut got = Vec::new();
        for chunk in slices.chunks(511) {
            got.extend(batched.observe_batch(chunk));
        }
        assert_eq!(got, want);
    }

    #[test]
    fn batch_matches_sequential_scattered_too() {
        let keys: Vec<Vec<u8>> = (0..6000u64)
            .map(|i| (i % 500).to_le_bytes().to_vec())
            .collect();
        let slices: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let mut sequential = jtbf(256, 64, 1 << 14, 6);
        let mut batched = jtbf(256, 64, 1 << 14, 6);
        let want: Vec<Verdict> = slices.iter().map(|id| sequential.observe(id)).collect();
        let mut got = Vec::new();
        for chunk in slices.chunks(511) {
            got.extend(batched.observe_batch(chunk));
        }
        assert_eq!(got, want);
    }

    #[test]
    fn blocked_fp_stays_usable_with_adequate_memory() {
        // 12-bit entries at Q = 2^10 -> 32 slots per line; 16 entries
        // per element keeps the per-block load variance penalty small.
        let n = 1 << 12;
        let q = 1 << 10;
        let mut d = blocked_jtbf(n, q, n * 16, 10);
        assert_eq!(d.effective_hash_count(), 10);
        let mut fps = 0u64;
        let total = 20 * n as u64;
        for i in 0..total {
            if d.observe(&i.to_le_bytes()) == Verdict::Duplicate {
                fps += 1;
            }
        }
        let rate = fps as f64 / total as f64;
        assert!(rate < 0.06, "blocked fp rate {rate} too high");
    }
}
