//! TBF over jumping windows with a large number of sub-windows (§4.1).
//!
//! "TBF can also be easily extended to handle jumping windows. If TBF is
//! utilized over a jumping window which is evenly divided into `Q`
//! sub-windows, then all elements in the same sub-window will have the
//! same timestamp, and they will be eliminated from TBF simultaneously.
//! When `Q` is large, GBF cannot process the click stream efficiently,
//! and TBF is a better choice."
//!
//! Entries store the *sub-window index* (wraparound range `Q + C_q`)
//! instead of the element position, so entry width is `O(log Q)` — far
//! below the sliding TBF's `O(log N)` — and the probe is `k` entry reads
//! regardless of `Q`, where GBF would need `k × ⌈(Q+1)/64⌉` word reads.

use crate::config::ConfigError;
use crate::ops::OpCounters;
use cfd_bits::words::bits_for_value;
use cfd_bits::PackedIntVec;
use cfd_hash::{DoubleHashFamily, HashFamily, Planner, ProbePlan};
use cfd_telemetry::DetectorStats;
use cfd_windows::{DuplicateDetector, JumpingClock, Verdict, WindowSpec, WrapCounter};

/// Configuration of a [`JumpingTbf`] detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JumpingTbfConfig {
    /// Jumping-window length `N` in elements.
    pub n: usize,
    /// Number of sub-windows `Q` (may be large — that is the point).
    pub q: usize,
    /// Number of TBF entries (`m`).
    pub m: usize,
    /// Hash functions per element (`k`).
    pub k: usize,
    /// Sub-window-index range extension `C_q` (default `Q`).
    pub c_q: usize,
    /// Hash seed.
    pub seed: u64,
}

impl JumpingTbfConfig {
    /// Creates a validated configuration with the default `C_q = Q`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on zero dimensions, `q > n`, or bad `k`.
    pub fn new(n: usize, q: usize, m: usize, k: usize, seed: u64) -> Result<Self, ConfigError> {
        let cfg = Self {
            n,
            q,
            m,
            k,
            c_q: q,
            seed,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// The wraparound sub-index range (`Q + C_q`).
    #[must_use]
    pub fn range(&self) -> u64 {
        (self.q + self.c_q) as u64
    }

    /// Bits per entry (`⌈log2(Q + C_q + 1)⌉`, all-ones reserved as empty).
    #[must_use]
    pub fn entry_bits(&self) -> u32 {
        bits_for_value(self.range())
    }

    /// Entries swept per arrival: the cleanable band of an entry spans
    /// `C_q` sub-windows = `C_q × ⌈N/Q⌉` arrivals, so
    /// `⌈m / (C_q · sub_len)⌉` keeps the sweep ahead of value reuse.
    #[must_use]
    pub fn clean_quota(&self) -> usize {
        let band = self.c_q * self.n.div_ceil(self.q);
        self.m.div_ceil(band.max(1))
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.n == 0 {
            return Err(ConfigError::ZeroDimension("window length n"));
        }
        if self.q == 0 || self.c_q == 0 {
            return Err(ConfigError::ZeroDimension("sub-window count q"));
        }
        if self.q > self.n {
            return Err(ConfigError::TooManySubWindows {
                q: self.q,
                n: self.n,
            });
        }
        if self.m == 0 {
            return Err(ConfigError::ZeroDimension("entry count m"));
        }
        if !(1..=64).contains(&self.k) {
            return Err(ConfigError::BadHashCount(self.k));
        }
        Ok(())
    }
}

/// Timing-Bloom-filter duplicate detector over count-based jumping
/// windows (the large-`Q` regime where [`crate::Gbf`] is too slow).
///
/// ```rust
/// use cfd_core::tbf_jumping::{JumpingTbf, JumpingTbfConfig};
/// use cfd_windows::{DuplicateDetector, Verdict};
///
/// # fn main() -> Result<(), cfd_core::ConfigError> {
/// // 1024 sub-windows: GBF would need 17 words per probe group.
/// let cfg = JumpingTbfConfig::new(1 << 14, 1 << 10, 1 << 18, 7, 0)?;
/// let mut d = JumpingTbf::new(cfg)?;
/// assert_eq!(d.observe(b"bot-17"), Verdict::Distinct);
/// assert_eq!(d.observe(b"bot-17"), Verdict::Duplicate);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct JumpingTbf {
    cfg: JumpingTbfConfig,
    entries: PackedIntVec,
    clock: JumpingClock,
    /// Wraparound *sub-window* counter; `now()` is the current sub-index.
    sub: WrapCounter,
    family: DoubleHashFamily,
    clean_next: usize,
    clean_quota: usize,
    empty: u64,
    ops: OpCounters,
    probe_buf: Vec<usize>,
}

impl JumpingTbf {
    /// Creates a detector from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is inconsistent.
    pub fn new(cfg: JumpingTbfConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let entries = PackedIntVec::new_all_ones(cfg.m, cfg.entry_bits());
        let empty = entries.max_value();
        Ok(Self {
            clock: JumpingClock::new(cfg.q, cfg.n.div_ceil(cfg.q)),
            sub: WrapCounter::new(cfg.range()),
            family: DoubleHashFamily::new(cfg.seed),
            clean_next: 0,
            clean_quota: cfg.clean_quota(),
            empty,
            ops: OpCounters::new(),
            probe_buf: vec![0; cfg.k],
            entries,
            cfg,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> JumpingTbfConfig {
        self.cfg
    }

    /// Memory-operation counters.
    #[must_use]
    pub fn ops(&self) -> OpCounters {
        self.ops
    }

    /// Number of entries holding an *active* sub-window index — the
    /// occupancy that drives the false-positive rate (`O(m)`).
    #[must_use]
    pub fn active_entries(&self) -> usize {
        (0..self.cfg.m)
            .filter(|&i| {
                let e = self.entries.get(i);
                e != self.empty && self.is_active(e)
            })
            .count()
    }

    /// Sub-index age: 0 = current sub-window. Active iff `< Q`.
    #[inline]
    fn sub_age(&self, e: u64) -> u64 {
        let now = self.sub.now();
        let range = self.cfg.range();
        if now >= e {
            now - e
        } else {
            range - e + now
        }
    }

    #[inline]
    fn is_active(&self, e: u64) -> bool {
        self.sub_age(e) < self.cfg.q as u64
    }

    fn clean_step(&mut self) {
        let m = self.cfg.m;
        for _ in 0..self.clean_quota {
            let i = self.clean_next;
            self.clean_next += 1;
            if self.clean_next == m {
                self.clean_next = 0;
            }
            let e = self.entries.get(i);
            self.ops.clean_reads += 1;
            if e != self.empty && !self.is_active(e) {
                self.entries.set(i, self.empty);
                self.ops.clean_writes += 1;
            }
        }
    }

    /// The pure hashing half of this detector, shareable across threads.
    #[must_use]
    pub fn planner(&self) -> Planner {
        Planner::from_family(self.family)
    }

    /// Hashes `id` into a replayable [`ProbePlan`] (pure; no state touched).
    #[inline]
    #[must_use]
    pub fn plan(&self, id: &[u8]) -> ProbePlan {
        ProbePlan::from_pair(self.family.pair(id))
    }

    /// The stateful half of an observation; `observe(id)` ≡
    /// `apply(plan(id))`. The hash evaluation is accounted to this
    /// element regardless of where it was computed.
    pub fn apply(&mut self, plan: ProbePlan) -> Verdict {
        self.ops.elements += 1;
        self.ops.hash_evals += 1;
        self.clean_step();

        plan.fill(self.cfg.m, &mut self.probe_buf);

        let mut present_and_active = true;
        for &i in &self.probe_buf {
            let e = self.entries.get(i);
            self.ops.probe_reads += 1;
            if e == self.empty || !self.is_active(e) {
                present_and_active = false;
                break;
            }
        }

        let verdict = if present_and_active {
            Verdict::Duplicate
        } else {
            let t = self.sub.now();
            for &i in &self.probe_buf {
                self.entries.set(i, t);
            }
            self.ops.insert_writes += self.probe_buf.len() as u64;
            Verdict::Distinct
        };

        if self.clock.record_arrival().is_some() {
            // All elements of the finished sub-window share the expiring
            // timestamp; advancing the sub-counter retires them together.
            self.sub.advance();
        }
        verdict
    }
}

impl DuplicateDetector for JumpingTbf {
    fn observe(&mut self, id: &[u8]) -> Verdict {
        let plan = self.plan(id);
        self.apply(plan)
    }

    fn observe_batch(&mut self, ids: &[&[u8]]) -> Vec<Verdict> {
        let plans: Vec<ProbePlan> = ids.iter().map(|id| self.plan(id)).collect();
        plans.into_iter().map(|p| self.apply(p)).collect()
    }

    fn window(&self) -> WindowSpec {
        WindowSpec::Jumping {
            n: self.cfg.n,
            q: self.cfg.q,
        }
    }

    fn memory_bits(&self) -> usize {
        self.entries.memory_bits()
    }

    fn reset(&mut self) {
        *self = Self::new(self.cfg).expect("configuration was already validated");
    }

    fn name(&self) -> &'static str {
        "jumping-tbf"
    }
}

impl DetectorStats for JumpingTbf {
    fn stats_name(&self) -> &'static str {
        "jumping-tbf"
    }

    /// One entry: the active-sub-index occupancy ratio (`O(m)`).
    fn fill_ratios(&self) -> Vec<f64> {
        vec![self.active_entries() as f64 / self.cfg.m as f64]
    }

    /// Normalized position of the incremental sweep through the table.
    fn sweep_position(&self) -> f64 {
        self.clean_next as f64 / self.cfg.m as f64
    }

    fn cleaned_entries(&self) -> u64 {
        self.ops.clean_writes
    }

    fn observed_elements(&self) -> u64 {
        self.ops.elements
    }

    /// Distinct elements perform exactly `k` insert writes, so the
    /// duplicate count is recoverable from the op counters.
    fn observed_duplicates(&self) -> u64 {
        self.ops.elements - self.ops.insert_writes / self.cfg.k as u64
    }

    /// Classical Bloom FP at the live active occupancy: `(active/m)^k`.
    fn estimated_fp(&self) -> f64 {
        (self.active_entries() as f64 / self.cfg.m as f64).powi(self.cfg.k as i32)
    }

    /// Single-scan override: `fill_ratios` and `estimated_fp` each need
    /// the `O(m)` active-entry count; assemble the sample from one scan
    /// (see the matching override on `Tbf`).
    fn health(&self) -> cfd_telemetry::DetectorHealth {
        let fill = self.active_entries() as f64 / self.cfg.m as f64;
        cfd_telemetry::DetectorHealth {
            detector: self.stats_name(),
            fill_ratios: vec![fill],
            cleaning_backlog: 0.0,
            sweep_position: self.sweep_position(),
            cleaned_entries: self.cleaned_entries(),
            observed_elements: self.observed_elements(),
            observed_duplicates: self.observed_duplicates(),
            estimated_fp: fill.powi(self.cfg.k as i32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_windows::ExactJumpingDedup;

    fn jtbf(n: usize, q: usize, m: usize, k: usize) -> JumpingTbf {
        JumpingTbf::new(JumpingTbfConfig::new(n, q, m, k, 21).unwrap()).unwrap()
    }

    #[test]
    fn immediate_duplicate_detected() {
        let mut d = jtbf(64, 16, 1 << 12, 5);
        assert_eq!(d.observe(b"x"), Verdict::Distinct);
        assert_eq!(d.observe(b"x"), Verdict::Duplicate);
    }

    #[test]
    fn whole_subwindow_expires_together() {
        // n = 8, q = 4 -> sub-windows of 2 elements, window = 4 subs.
        let mut d = jtbf(8, 4, 1 << 12, 5);
        d.observe(b"a"); // sub 0
        d.observe(b"b"); // sub 0 done
        for i in 0..6u32 {
            d.observe(&i.to_le_bytes()); // subs 1..3 fill
        }
        // a and b were in sub 0, which left the window after 4 rotations.
        assert_eq!(d.observe(b"a"), Verdict::Distinct);
        assert_eq!(d.observe(b"b"), Verdict::Distinct);
        // Both are valid again and immediately duplicate on repeat.
        assert_eq!(d.observe(b"a"), Verdict::Duplicate);
    }

    #[test]
    fn zero_false_negatives_vs_exact_oracle() {
        let (n, q) = (60, 12);
        let mut d = jtbf(n, q, 1 << 14, 6);
        let mut oracle = ExactJumpingDedup::new(n, q);
        for i in 0..20_000u64 {
            let key = (i % 83).to_le_bytes();
            let got = d.observe(&key);
            let want = oracle.observe(&key);
            if want == Verdict::Duplicate {
                assert_eq!(got, Verdict::Duplicate, "false negative at element {i}");
            }
        }
    }

    #[test]
    fn zero_false_negatives_with_large_q() {
        let (n, q) = (256, 64);
        let mut d = jtbf(n, q, 1 << 14, 6);
        let mut oracle = ExactJumpingDedup::new(n, q);
        for i in 0..30_000u64 {
            let key = (i % 300).to_le_bytes();
            let got = d.observe(&key);
            if oracle.observe(&key) == Verdict::Duplicate {
                assert_eq!(got, Verdict::Duplicate, "false negative at element {i}");
            }
        }
    }

    #[test]
    fn entry_width_scales_with_q_not_n() {
        let cfg = JumpingTbfConfig::new(1 << 20, 1 << 10, 1 << 16, 7, 0).unwrap();
        // range = 2q = 2^11 (power of two, so one extra bit keeps the
        // all-ones empty pattern distinct) -> 12-bit entries, vs 21 for
        // the sliding TBF over the same N = 2^20 window.
        assert_eq!(cfg.entry_bits(), 12);
    }

    #[test]
    fn false_positive_rate_low_on_distinct_stream() {
        let n = 1 << 12;
        let q = 1 << 8;
        let m = n * 14;
        let mut d = jtbf(n, q, m, 10);
        let mut fps = 0u64;
        let total = 20 * n as u64;
        for i in 0..total {
            if d.observe(&i.to_le_bytes()) == Verdict::Duplicate {
                fps += 1;
            }
        }
        assert!(
            (fps as f64 / total as f64) < 0.01,
            "fp rate too high: {fps}"
        );
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(JumpingTbfConfig::new(4, 9, 10, 3, 0).is_err());
        assert!(JumpingTbfConfig::new(0, 1, 10, 3, 0).is_err());
        assert!(JumpingTbfConfig::new(8, 2, 0, 3, 0).is_err());
        assert!(JumpingTbfConfig::new(8, 2, 10, 0, 0).is_err());
    }

    #[test]
    fn reset_restores_empty_state() {
        let mut d = jtbf(16, 4, 1 << 10, 4);
        d.observe(b"k");
        d.reset();
        assert_eq!(d.observe(b"k"), Verdict::Distinct);
    }
}
