//! Keyspace sharding: scale-out composition of duplicate detectors.
//!
//! A [`ShardedDetector`] splits the click keyspace over `S` inner
//! detectors by the high bits of a *router hash* (seeded independently
//! of the detectors' probe hashing). Every occurrence of an id lands on
//! the same shard, so a shard sees the complete duplicate history of its
//! keys — the one-sided **zero-false-negative** guarantee of GBF/TBF
//! survives composition: relative to the per-shard window semantics, a
//! duplicate is never reported distinct.
//!
//! ## Window semantics and the `N/S` sizing rule
//!
//! Count-based windows change meaning under sharding. A shard advances
//! its window only on *its own* arrivals, so a shard with window `n_s`
//! covers the last `n_s` same-shard elements — in expectation the last
//! `S · n_s` elements of the global stream, but binomially distributed
//! around that. Sizing each shard at `n_s = N/S` therefore approximates
//! one global window of `N` with the same total memory and `S`-way
//! parallelism; `cfd-analysis::sharding` gives the closed-form
//! probability that a global-window duplicate at a given gap is still
//! covered. Time-based windows are unaffected (all shards share wall
//! clock).

use crate::config::ConfigError;
use cfd_hash::{DoubleHashFamily, HashFamily, HashPair, Planner, ProbePlan};
use cfd_telemetry::{DetectorHealth, DetectorStats, TenantHealth};
use cfd_windows::{DuplicateDetector, TimedDuplicateDetector, Verdict, WindowSpec};

/// Routes ids to shards by the high bits of an independent hash.
///
/// Uses the multiply-shift reduction `(h · S) >> 64`, which consumes the
/// *high* bits of the router hash — disjoint from the low-bits-modulo
/// reduction of the probe indices, and unbiased for any shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    family: DoubleHashFamily,
    shards: usize,
}

impl ShardRouter {
    /// Creates a router over `shards` shards.
    ///
    /// The router derives its hashing from `seed` but decorrelates it
    /// from same-seeded detector probe hashing, so routing never biases
    /// which filter cells a shard's keys touch.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroDimension`] when `shards == 0`.
    pub fn new(seed: u64, shards: usize) -> Result<Self, ConfigError> {
        if shards == 0 {
            return Err(ConfigError::ZeroDimension("shard count"));
        }
        Ok(Self {
            family: DoubleHashFamily::new(cfd_hash::mix::splitmix64(seed ^ 0x5EED_0F5A_ADC0_DE01)),
            shards,
        })
    }

    /// Number of shards routed over.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shard of `id`; deterministic, in `[0, shard_count)`.
    #[inline]
    #[must_use]
    pub fn route(&self, id: &[u8]) -> usize {
        self.route_pair(self.family.pair(id))
    }

    /// The shard of an already-computed router-family [`HashPair`] —
    /// the reduction half of [`ShardRouter::route`], split out so the
    /// hash-once batch path can hash each id exactly once and reuse the
    /// pair for probing.
    #[inline]
    #[must_use]
    pub fn route_pair(&self, pair: HashPair) -> usize {
        ((u128::from(pair.h1) * self.shards as u128) >> 64) as usize
    }

    /// A [`Planner`] over the router's hash family. Detectors built
    /// with [`ShardRouter::probe_seed`] share this family, which is the
    /// alignment the hash-once path requires.
    #[must_use]
    pub fn planner(&self) -> Planner {
        Planner::from_family(self.family)
    }

    /// The probe seed aligned with this router: build shard detectors
    /// with this seed and `ShardedDetector::observe_batch_hash_once`
    /// computes one hash per click for routing *and* probing. Routing
    /// consumes the pair's high `h1` bits (multiply-shift) while
    /// scattered probing reduces modulo `m` and blocked probing remixes
    /// through `splitmix64`, so sharing the family does not correlate a
    /// shard with the filter cells its keys touch.
    #[must_use]
    pub fn probe_seed(&self) -> u64 {
        self.family.seed()
    }

    /// Routes a flat buffer of fixed-stride ids (`key_len` bytes each,
    /// packed end-to-end) in one multi-lane hashing pass, writing one
    /// shard index per id into `out` (cleared first, capacity reused).
    ///
    /// Equivalent to calling [`ShardRouter::route`] per id; this is the
    /// allocation-free form the pipeline's ingest stage uses.
    ///
    /// # Panics
    /// If `key_len == 0` or the buffer length is not a multiple of it.
    pub fn route_flat_into(&self, keys: &[u8], key_len: usize, out: &mut Vec<usize>) {
        out.resize(keys.len() / key_len.max(1), 0);
        cfd_hash::lanes::fill_flat_pairs(keys, key_len, self.family.seed(), out, |pair| {
            self.route_pair(pair)
        });
    }

    /// The shard of a *tenant* routing prefix ([`cfd_hash::tenant_prefix`]:
    /// the first eight key bytes). Unlike [`ShardRouter::route`], every id
    /// sharing a prefix lands on the same shard, which is what partitions
    /// the tenants of a `TenantArena` across shards without splitting any
    /// tenant's window. Costs one `splitmix64` — no key hash at all.
    #[inline]
    #[must_use]
    pub fn route_prefix(&self, prefix: u64) -> usize {
        let mixed = cfd_hash::mix::splitmix64(prefix ^ self.family.seed());
        ((u128::from(mixed) * self.shards as u128) >> 64) as usize
    }
}

/// A detector whose hashing half is exposed as a [`Planner`] so batches
/// can be hashed once, routed, and replayed — implemented by the
/// Bloom-style detectors, not the exact baselines (which need the raw
/// id, not a hash, to answer exactly).
pub trait PlannedDetector: DuplicateDetector {
    /// The pure hashing half; plans are only portable between detectors
    /// sharing its seed.
    fn probe_planner(&self) -> Planner;

    /// Replays one plan produced by this detector's planner
    /// (`observe(id)` ≡ `apply_plan(probe_planner().plan(id))`).
    fn apply_plan(&mut self, plan: ProbePlan) -> Verdict;

    /// Replays a batch of plans, preserving order; implementations
    /// override this with a prefetching replay.
    fn apply_plan_batch(&mut self, plans: &[ProbePlan]) -> Vec<Verdict> {
        plans.iter().map(|&p| self.apply_plan(p)).collect()
    }

    /// Allocation-free [`PlannedDetector::apply_plan_batch`]: verdicts
    /// go into `out` (cleared first, capacity reused).
    fn apply_plan_batch_into(&mut self, plans: &[ProbePlan], out: &mut Vec<Verdict>) {
        out.clear();
        for &p in plans {
            out.push(self.apply_plan(p));
        }
    }
}

impl PlannedDetector for crate::Tbf {
    fn probe_planner(&self) -> Planner {
        self.planner()
    }
    fn apply_plan(&mut self, plan: ProbePlan) -> Verdict {
        self.apply(plan)
    }
    fn apply_plan_batch(&mut self, plans: &[ProbePlan]) -> Vec<Verdict> {
        self.apply_batch(plans)
    }
    fn apply_plan_batch_into(&mut self, plans: &[ProbePlan], out: &mut Vec<Verdict>) {
        self.apply_batch_into(plans, out);
    }
}

impl PlannedDetector for crate::Gbf {
    fn probe_planner(&self) -> Planner {
        self.planner()
    }
    fn apply_plan(&mut self, plan: ProbePlan) -> Verdict {
        self.apply(plan)
    }
    fn apply_plan_batch(&mut self, plans: &[ProbePlan]) -> Vec<Verdict> {
        self.apply_batch(plans)
    }
    fn apply_plan_batch_into(&mut self, plans: &[ProbePlan], out: &mut Vec<Verdict>) {
        self.apply_batch_into(plans, out);
    }
}

impl PlannedDetector for crate::Apbf {
    fn probe_planner(&self) -> Planner {
        self.planner()
    }
    fn apply_plan(&mut self, plan: ProbePlan) -> Verdict {
        self.apply(plan)
    }
    fn apply_plan_batch(&mut self, plans: &[ProbePlan]) -> Vec<Verdict> {
        self.apply_batch(plans)
    }
    fn apply_plan_batch_into(&mut self, plans: &[ProbePlan], out: &mut Vec<Verdict>) {
        self.apply_batch_into(plans, out);
    }
}

impl PlannedDetector for crate::Swbf {
    fn probe_planner(&self) -> Planner {
        self.planner()
    }
    fn apply_plan(&mut self, plan: ProbePlan) -> Verdict {
        self.apply(plan)
    }
    fn apply_plan_batch(&mut self, plans: &[ProbePlan]) -> Vec<Verdict> {
        self.apply_batch(plans)
    }
    fn apply_plan_batch_into(&mut self, plans: &[ProbePlan], out: &mut Vec<Verdict>) {
        self.apply_batch_into(plans, out);
    }
}

impl PlannedDetector for crate::tbf_jumping::JumpingTbf {
    fn probe_planner(&self) -> Planner {
        self.planner()
    }
    fn apply_plan(&mut self, plan: ProbePlan) -> Verdict {
        self.apply(plan)
    }
    fn apply_plan_batch(&mut self, plans: &[ProbePlan]) -> Vec<Verdict> {
        self.apply_batch(plans)
    }
    fn apply_plan_batch_into(&mut self, plans: &[ProbePlan], out: &mut Vec<Verdict>) {
        self.apply_batch_into(plans, out);
    }
}

/// The timed counterpart of [`PlannedDetector`]: a time-based detector
/// whose hashing half is a [`Planner`], so the sharded hash-once path
/// can route and probe from one hash per click while threading each
/// click's tick through to the stateful replay.
pub trait TimedPlannedDetector: TimedDuplicateDetector {
    /// The pure hashing half; plans are only portable between detectors
    /// sharing its seed.
    fn probe_planner(&self) -> Planner;

    /// Replays one plan at `tick`
    /// (`observe_at(id, t)` ≡ `apply_plan_at(probe_planner().plan(id), t)`).
    fn apply_plan_at(&mut self, plan: ProbePlan, tick: u64) -> Verdict;

    /// Replays a batch of plans with their ticks, preserving order;
    /// implementations override this with a prefetching replay.
    fn apply_plan_batch_at(&mut self, plans: &[ProbePlan], ticks: &[u64]) -> Vec<Verdict> {
        plans
            .iter()
            .zip(ticks)
            .map(|(&p, &t)| self.apply_plan_at(p, t))
            .collect()
    }
}

impl TimedPlannedDetector for crate::TimeTbf {
    fn probe_planner(&self) -> Planner {
        self.planner()
    }
    fn apply_plan_at(&mut self, plan: ProbePlan, tick: u64) -> Verdict {
        self.apply_at(plan, tick)
    }
    fn apply_plan_batch_at(&mut self, plans: &[ProbePlan], ticks: &[u64]) -> Vec<Verdict> {
        self.apply_batch_at(plans, ticks)
    }
}

impl TimedPlannedDetector for crate::TimeGbf {
    fn probe_planner(&self) -> Planner {
        self.planner()
    }
    fn apply_plan_at(&mut self, plan: ProbePlan, tick: u64) -> Verdict {
        self.apply_at(plan, tick)
    }
    fn apply_plan_batch_at(&mut self, plans: &[ProbePlan], ticks: &[u64]) -> Vec<Verdict> {
        self.apply_batch_at(plans, ticks)
    }
}

/// The per-shard count window implementing the `N/S` sizing rule.
///
/// Clamped to 2 so every shard remains a valid sliding-window detector
/// even for tiny `N`.
#[must_use]
pub fn per_shard_window(n: usize, shards: usize) -> usize {
    n.div_ceil(shards.max(1)).max(2)
}

/// `S` inner detectors behind one [`DuplicateDetector`] face, routed by
/// keyspace.
///
/// ```rust
/// use cfd_core::sharded::{per_shard_window, ShardedDetector};
/// use cfd_core::{Tbf, TbfConfig};
/// use cfd_windows::{DuplicateDetector, Verdict};
///
/// # fn main() -> Result<(), cfd_core::ConfigError> {
/// let (n, shards) = (4096, 4);
/// let mut d = ShardedDetector::from_fn(9, shards, |_| {
///     let n_s = per_shard_window(n, shards);
///     Tbf::new(TbfConfig::builder(n_s).entries(n_s * 14).build()?)
/// })?;
/// assert_eq!(d.observe(b"ip|cookie|ad"), Verdict::Distinct);
/// assert_eq!(d.observe(b"ip|cookie|ad"), Verdict::Duplicate);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ShardedDetector<D> {
    router: ShardRouter,
    /// Construction seed of the router, kept for checkpointing (the
    /// router itself only holds the derived hash family).
    router_seed: u64,
    shards: Vec<D>,
}

impl<D> ShardedDetector<D> {
    /// Wraps pre-built shard detectors (one per shard, keyspace-routed).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroDimension`] when `shards` is empty.
    pub fn new(router_seed: u64, shards: Vec<D>) -> Result<Self, ConfigError> {
        let router = ShardRouter::new(router_seed, shards.len())?;
        Ok(Self {
            router,
            router_seed,
            shards,
        })
    }

    /// Builds `count` shards with `make(shard_index)`.
    ///
    /// # Errors
    ///
    /// Propagates the first `make` error; rejects `count == 0`.
    pub fn from_fn<E: From<ConfigError>>(
        router_seed: u64,
        count: usize,
        mut make: impl FnMut(usize) -> Result<D, E>,
    ) -> Result<Self, E> {
        let router = ShardRouter::new(router_seed, count)?;
        let shards = (0..count).map(&mut make).collect::<Result<Vec<_>, E>>()?;
        Ok(Self {
            router,
            router_seed,
            shards,
        })
    }

    /// The keyspace router.
    #[must_use]
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// The seed the router was constructed from (checkpoint header).
    #[must_use]
    pub fn router_seed(&self) -> u64 {
        self.router_seed
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard detectors, in router order.
    #[must_use]
    pub fn shards(&self) -> &[D] {
        &self.shards
    }

    /// Mutable access to one shard (diagnostics, op counters).
    pub fn shard_mut(&mut self, index: usize) -> &mut D {
        &mut self.shards[index]
    }

    /// Consumes the wrapper, returning the shard detectors.
    #[must_use]
    pub fn into_shards(self) -> Vec<D> {
        self.shards
    }
}

impl<D: PlannedDetector> ShardedDetector<D> {
    /// Whether every shard's probe family matches the router's, i.e.
    /// the shards were built with [`ShardRouter::probe_seed`]. Only
    /// then can one hash serve both routing and probing.
    #[must_use]
    pub fn hash_once_aligned(&self) -> bool {
        let seed = self.router.probe_seed();
        self.shards.iter().all(|s| s.probe_planner().seed() == seed)
    }

    /// [`DuplicateDetector::observe_batch`] hashing each id exactly
    /// once: the router pair doubles as the probe plan, removing the
    /// second hash evaluation per click that the generic path pays
    /// (`route` hashes, then each shard's `observe_batch` hashes
    /// again). Verdicts are identical to `observe_batch` when the
    /// shards are router-aligned; on misaligned shards this falls back
    /// to the two-hash path rather than probing with a foreign family.
    pub fn observe_batch_hash_once(&mut self, ids: &[&[u8]]) -> Vec<Verdict> {
        if !self.hash_once_aligned() {
            return self.observe_batch(ids);
        }
        let planner = self.router.planner();
        if self.shards.len() == 1 {
            let plans: Vec<ProbePlan> = ids.iter().map(|id| planner.plan(id)).collect();
            return self.shards[0].apply_plan_batch(&plans);
        }
        // Same bucket/replay/gather scheme as `observe_batch`, but the
        // buckets hold plans instead of ids.
        let shard_count = self.shards.len();
        let cap = ids.len() / shard_count + 1;
        let mut buckets: Vec<Vec<ProbePlan>> = vec![Vec::with_capacity(cap); shard_count];
        let mut routes = Vec::with_capacity(ids.len());
        for id in ids {
            let plan = planner.plan(id);
            let shard = self.router.route_pair(plan.pair());
            buckets[shard].push(plan);
            routes.push(shard);
        }
        let verdicts: Vec<Vec<Verdict>> = buckets
            .iter()
            .zip(&mut self.shards)
            .map(|(bucket, shard)| shard.apply_plan_batch(bucket))
            .collect();
        let mut cursor = vec![0usize; shard_count];
        routes
            .into_iter()
            .map(|shard| {
                let v = verdicts[shard][cursor[shard]];
                cursor[shard] += 1;
                v
            })
            .collect()
    }

    /// [`ShardedDetector::observe_batch_hash_once`] routed by *tenant
    /// prefix* instead of key hash: every id whose first eight bytes
    /// match goes to the same shard ([`ShardRouter::route_prefix`]).
    /// This is the sharded driving mode for tenant arenas — a tenant's
    /// whole window lives in exactly one shard, so per-tenant duplicate
    /// detection across shards equals a single arena's. Still hash-once:
    /// the plan's routing prefix is a byte copy, not a second hash.
    /// Falls back to per-id `observe` (same routing) on shards not built
    /// with [`ShardRouter::probe_seed`].
    pub fn observe_batch_tenant_routed(&mut self, ids: &[&[u8]]) -> Vec<Verdict> {
        if !self.hash_once_aligned() {
            let routes: Vec<usize> = ids
                .iter()
                .map(|id| self.router.route_prefix(cfd_hash::tenant_prefix(id)))
                .collect();
            return ids
                .iter()
                .zip(routes)
                .map(|(id, shard)| self.shards[shard].observe(id))
                .collect();
        }
        let planner = self.router.planner();
        let shard_count = self.shards.len();
        if shard_count == 1 {
            let plans: Vec<ProbePlan> = ids.iter().map(|id| planner.plan(id)).collect();
            return self.shards[0].apply_plan_batch(&plans);
        }
        let cap = ids.len() / shard_count + 1;
        let mut buckets: Vec<Vec<ProbePlan>> = vec![Vec::with_capacity(cap); shard_count];
        let mut routes = Vec::with_capacity(ids.len());
        for id in ids {
            let plan = planner.plan(id);
            let shard = self.router.route_prefix(plan.prefix());
            buckets[shard].push(plan);
            routes.push(shard);
        }
        let verdicts: Vec<Vec<Verdict>> = buckets
            .iter()
            .zip(&mut self.shards)
            .map(|(bucket, shard)| shard.apply_plan_batch(bucket))
            .collect();
        let mut cursor = vec![0usize; shard_count];
        routes
            .into_iter()
            .map(|shard| {
                let v = verdicts[shard][cursor[shard]];
                cursor[shard] += 1;
                v
            })
            .collect()
    }
}

impl<D: TimedPlannedDetector> ShardedDetector<D> {
    /// Whether every timed shard's probe family matches the router's
    /// (see [`ShardedDetector::hash_once_aligned`]).
    #[must_use]
    pub fn timed_hash_once_aligned(&self) -> bool {
        let seed = self.router.probe_seed();
        self.shards.iter().all(|s| s.probe_planner().seed() == seed)
    }

    /// [`TimedDuplicateDetector::observe_batch_at`] hashing each id
    /// exactly once: the router pair doubles as the probe plan, and each
    /// click's tick rides along into its shard's bucket so per-shard
    /// clock order is exactly what sequential `observe_at` calls would
    /// produce. Falls back to the two-hash path on misaligned shards.
    pub fn observe_batch_hash_once_at(&mut self, ids: &[&[u8]], ticks: &[u64]) -> Vec<Verdict> {
        assert_eq!(ids.len(), ticks.len(), "one tick per id");
        if !self.timed_hash_once_aligned() {
            return self.observe_batch_at(ids, ticks);
        }
        let planner = self.router.planner();
        if self.shards.len() == 1 {
            let plans: Vec<ProbePlan> = ids.iter().map(|id| planner.plan(id)).collect();
            return self.shards[0].apply_plan_batch_at(&plans, ticks);
        }
        let shard_count = self.shards.len();
        let cap = ids.len() / shard_count + 1;
        let mut plan_buckets: Vec<Vec<ProbePlan>> = vec![Vec::with_capacity(cap); shard_count];
        let mut tick_buckets: Vec<Vec<u64>> = vec![Vec::with_capacity(cap); shard_count];
        let mut routes = Vec::with_capacity(ids.len());
        for (id, &tick) in ids.iter().zip(ticks) {
            let plan = planner.plan(id);
            let shard = self.router.route_pair(plan.pair());
            plan_buckets[shard].push(plan);
            tick_buckets[shard].push(tick);
            routes.push(shard);
        }
        let verdicts: Vec<Vec<Verdict>> = plan_buckets
            .iter()
            .zip(&tick_buckets)
            .zip(&mut self.shards)
            .map(|((plans, ticks), shard)| shard.apply_plan_batch_at(plans, ticks))
            .collect();
        let mut cursor = vec![0usize; shard_count];
        routes
            .into_iter()
            .map(|shard| {
                let v = verdicts[shard][cursor[shard]];
                cursor[shard] += 1;
                v
            })
            .collect()
    }
}

/// Timed composition: routing is tick-blind (by id only), and every
/// shard advances its clock from its *own* clicks' ticks. All shards
/// share wall clock, so — unlike count windows — the per-shard window
/// semantics equal the global ones and no `N/S` rescaling applies.
impl<D: TimedDuplicateDetector> TimedDuplicateDetector for ShardedDetector<D> {
    fn observe_at(&mut self, id: &[u8], tick: u64) -> Verdict {
        let shard = self.router.route(id);
        self.shards[shard].observe_at(id, tick)
    }

    fn observe_batch_at_into(&mut self, ids: &[&[u8]], ticks: &[u64], out: &mut Vec<Verdict>) {
        assert_eq!(ids.len(), ticks.len(), "one tick per id");
        out.clear();
        if self.shards.len() == 1 {
            self.shards[0].observe_batch_at_into(ids, ticks, out);
            return;
        }
        // Same bucket/replay/gather scheme as the count-based
        // `observe_batch`, with each click's tick riding in a parallel
        // per-shard bucket.
        let shard_count = self.shards.len();
        let cap = ids.len() / shard_count + 1;
        let mut id_buckets: Vec<Vec<&[u8]>> = vec![Vec::with_capacity(cap); shard_count];
        let mut tick_buckets: Vec<Vec<u64>> = vec![Vec::with_capacity(cap); shard_count];
        let mut routes = Vec::with_capacity(ids.len());
        for (id, &tick) in ids.iter().zip(ticks) {
            let shard = self.router.route(id);
            id_buckets[shard].push(id);
            tick_buckets[shard].push(tick);
            routes.push(shard);
        }
        let verdicts: Vec<Vec<Verdict>> = id_buckets
            .iter()
            .zip(&tick_buckets)
            .zip(&mut self.shards)
            .map(|((bucket, ticks), shard)| shard.observe_batch_at(bucket, ticks))
            .collect();
        let mut cursor = vec![0usize; shard_count];
        out.extend(routes.into_iter().map(|shard| {
            let v = verdicts[shard][cursor[shard]];
            cursor[shard] += 1;
            v
        }));
    }

    fn window(&self) -> WindowSpec {
        // Time-based windows pass through unscaled: all shards share
        // wall clock.
        self.shards[0].window()
    }

    fn memory_bits(&self) -> usize {
        self.shards
            .iter()
            .map(TimedDuplicateDetector::memory_bits)
            .sum()
    }

    fn reset(&mut self) {
        for shard in &mut self.shards {
            shard.reset();
        }
    }

    fn name(&self) -> &'static str {
        "sharded"
    }
}

impl<D: DuplicateDetector> DuplicateDetector for ShardedDetector<D> {
    fn observe(&mut self, id: &[u8]) -> Verdict {
        let shard = self.router.route(id);
        self.shards[shard].observe(id)
    }

    fn observe_batch(&mut self, ids: &[&[u8]]) -> Vec<Verdict> {
        if self.shards.len() == 1 {
            return self.shards[0].observe_batch(ids);
        }
        // Partition the batch per shard (keeping per-shard stream order,
        // which is all a shard's window semantics depend on), batch each
        // shard once, then gather verdicts back into input order: the
        // i-th id's verdict is the next unconsumed verdict of its
        // shard's bucket, because bucketing preserved relative order.
        let shard_count = self.shards.len();
        let cap = ids.len() / shard_count + 1;
        let mut buckets: Vec<Vec<&[u8]>> = vec![Vec::with_capacity(cap); shard_count];
        let mut routes = Vec::with_capacity(ids.len());
        for id in ids {
            let shard = self.router.route(id);
            buckets[shard].push(id);
            routes.push(shard);
        }
        let verdicts: Vec<Vec<Verdict>> = buckets
            .iter()
            .zip(&mut self.shards)
            .map(|(bucket, shard)| shard.observe_batch(bucket))
            .collect();
        let mut cursor = vec![0usize; shard_count];
        routes
            .into_iter()
            .map(|shard| {
                let v = verdicts[shard][cursor[shard]];
                cursor[shard] += 1;
                v
            })
            .collect()
    }

    /// The *approximated global* window: count-based shard windows scale
    /// by the shard count (the `N/S` rule run backwards); time-based
    /// windows pass through unscaled because all shards share wall
    /// clock.
    fn window(&self) -> WindowSpec {
        let s = self.shards.len();
        match self.shards[0].window() {
            WindowSpec::Sliding { n } => WindowSpec::Sliding { n: n * s },
            WindowSpec::Jumping { n, q } => WindowSpec::Jumping { n: n * s, q },
            WindowSpec::Landmark { n } => WindowSpec::Landmark { n: n * s },
            time_based => time_based,
        }
    }

    fn memory_bits(&self) -> usize {
        self.shards.iter().map(DuplicateDetector::memory_bits).sum()
    }

    fn reset(&mut self) {
        for shard in &mut self.shards {
            shard.reset();
        }
    }

    fn name(&self) -> &'static str {
        "sharded"
    }
}

/// Health of the composition: per-shard samples folded with
/// [`DetectorHealth::aggregate`] — fill ratios concatenate across
/// shards, counters sum, backlog/sweep/FP average.
impl<D: DetectorStats> DetectorStats for ShardedDetector<D> {
    fn stats_name(&self) -> &'static str {
        "sharded"
    }

    fn fill_ratios(&self) -> Vec<f64> {
        self.shards
            .iter()
            .flat_map(DetectorStats::fill_ratios)
            .collect()
    }

    fn cleaning_backlog(&self) -> f64 {
        self.shards
            .iter()
            .map(DetectorStats::cleaning_backlog)
            .sum::<f64>()
            / self.shards.len() as f64
    }

    fn sweep_position(&self) -> f64 {
        self.shards
            .iter()
            .map(DetectorStats::sweep_position)
            .sum::<f64>()
            / self.shards.len() as f64
    }

    fn cleaned_entries(&self) -> u64 {
        self.shards.iter().map(DetectorStats::cleaned_entries).sum()
    }

    fn observed_elements(&self) -> u64 {
        self.shards
            .iter()
            .map(DetectorStats::observed_elements)
            .sum()
    }

    fn observed_duplicates(&self) -> u64 {
        self.shards
            .iter()
            .map(DetectorStats::observed_duplicates)
            .sum()
    }

    fn estimated_fp(&self) -> f64 {
        self.shards
            .iter()
            .map(DetectorStats::estimated_fp)
            .sum::<f64>()
            / self.shards.len() as f64
    }

    fn occupancy_scans(&self) -> u64 {
        self.shards.iter().map(DetectorStats::occupancy_scans).sum()
    }

    fn tenant_health(&self) -> Option<TenantHealth> {
        let samples: Vec<TenantHealth> = self
            .shards
            .iter()
            .filter_map(DetectorStats::tenant_health)
            .collect();
        if samples.is_empty() {
            return None;
        }
        let slots: usize = samples.iter().map(|s| s.slots).sum();
        let live: usize = samples.iter().map(|s| s.live_tenants).sum();
        let slab_bytes: f64 = samples
            .iter()
            .map(|s| s.bytes_per_live_tenant * s.live_tenants as f64)
            .sum();
        Some(TenantHealth {
            slots,
            live_tenants: live,
            evictions: samples.iter().map(|s| s.evictions).sum(),
            occupancy: live as f64 / slots.max(1) as f64,
            bytes_per_live_tenant: if live == 0 {
                0.0
            } else {
                slab_bytes / live as f64
            },
        })
    }

    fn health(&self) -> DetectorHealth {
        let samples: Vec<DetectorHealth> = self.shards.iter().map(DetectorStats::health).collect();
        let mut health =
            DetectorHealth::aggregate(&samples).expect("sharded detector has >= 1 shard");
        health.detector = "sharded";
        health
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gbf, GbfConfig, Tbf, TbfConfig};
    use cfd_windows::ExactSlidingDedup;

    fn sharded_tbf(n: usize, shards: usize) -> ShardedDetector<Tbf> {
        ShardedDetector::from_fn(3, shards, |_| {
            let n_s = per_shard_window(n, shards);
            Tbf::new(
                TbfConfig::builder(n_s)
                    .entries(n_s * 14)
                    .hash_count(7)
                    .seed(11)
                    .build()?,
            )
        })
        .expect("valid sharded tbf")
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let router = ShardRouter::new(5, 7).expect("router");
        for i in 0..10_000u64 {
            let id = i.to_le_bytes();
            let s = router.route(&id);
            assert!(s < 7);
            assert_eq!(s, router.route(&id));
        }
    }

    #[test]
    fn routing_spreads_keys_roughly_evenly() {
        let shards = 8;
        let router = ShardRouter::new(1, shards).expect("router");
        let mut counts = vec![0u32; shards];
        let total = 80_000u64;
        for i in 0..total {
            counts[router.route(&i.to_le_bytes())] += 1;
        }
        let expected = total as f64 / shards as f64;
        for (s, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - expected).abs() / expected;
            assert!(dev < 0.05, "shard {s} count {c} deviates {dev:.3}");
        }
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(ShardRouter::new(0, 0).is_err());
        assert!(ShardedDetector::<Tbf>::new(0, Vec::new()).is_err());
    }

    #[test]
    fn immediate_duplicates_detected_any_shard_count() {
        for shards in [1, 2, 4, 8] {
            let mut d = sharded_tbf(1 << 12, shards);
            assert_eq!(d.observe(b"dup-me"), Verdict::Distinct, "s={shards}");
            assert_eq!(d.observe(b"dup-me"), Verdict::Duplicate, "s={shards}");
        }
    }

    #[test]
    fn zero_false_negatives_vs_per_shard_oracle() {
        // The exact reference for sharded semantics: one exact sliding
        // dedup per shard, same router. Anything it calls duplicate, the
        // sharded TBF must too.
        let (n, shards) = (512, 4);
        let mut d = sharded_tbf(n, shards);
        let router = d.router();
        let n_s = per_shard_window(n, shards);
        let mut oracles: Vec<ExactSlidingDedup> =
            (0..shards).map(|_| ExactSlidingDedup::new(n_s)).collect();
        for i in 0..30_000u64 {
            let key = (i % 700).to_le_bytes();
            let got = d.observe(&key);
            let want = oracles[router.route(&key)].observe(&key);
            if want == Verdict::Duplicate {
                assert_eq!(got, Verdict::Duplicate, "false negative at element {i}");
            }
        }
    }

    #[test]
    fn observe_batch_matches_observe_across_shards() {
        let ids: Vec<Vec<u8>> = (0..4_000u64)
            .map(|i| (i % 900).to_le_bytes().to_vec())
            .collect();
        let id_slices: Vec<&[u8]> = ids.iter().map(Vec::as_slice).collect();
        let mut sequential = sharded_tbf(1 << 10, 4);
        let mut batched = sharded_tbf(1 << 10, 4);
        let want: Vec<Verdict> = id_slices.iter().map(|id| sequential.observe(id)).collect();
        let mut got = Vec::new();
        for chunk in id_slices.chunks(97) {
            got.extend(batched.observe_batch(chunk));
        }
        assert_eq!(got, want);
    }

    #[test]
    fn window_scales_count_windows_by_shard_count() {
        let d = sharded_tbf(4096, 4);
        assert_eq!(
            d.window(),
            WindowSpec::Sliding {
                n: per_shard_window(4096, 4) * 4
            }
        );
    }

    #[test]
    fn memory_is_summed_and_reset_clears_all_shards() {
        let mut d = sharded_tbf(1 << 10, 4);
        let single = d.shards()[0].memory_bits();
        assert_eq!(d.memory_bits(), single * 4);
        d.observe(b"x");
        d.reset();
        assert_eq!(d.observe(b"x"), Verdict::Distinct);
        assert_eq!(d.name(), "sharded");
    }

    #[test]
    fn sharded_gbf_detects_duplicates() {
        let mut d: ShardedDetector<Gbf> = ShardedDetector::from_fn(2, 4, |_| {
            Gbf::new(
                GbfConfig::builder(per_shard_window(1 << 12, 4), 8)
                    .filter_bits(1 << 14)
                    .hash_count(6)
                    .seed(4)
                    .build()?,
            )
        })
        .expect("valid sharded gbf");
        assert_eq!(d.observe(b"a"), Verdict::Distinct);
        assert_eq!(d.observe(b"b"), Verdict::Distinct);
        assert_eq!(d.observe(b"a"), Verdict::Duplicate);
        assert!(matches!(d.window(), WindowSpec::Jumping { .. }));
    }

    #[test]
    fn hash_once_matches_generic_batch_when_aligned() {
        let (n, shards) = (1 << 10, 4);
        let make = |router: &ShardRouter| {
            let seed = router.probe_seed();
            ShardedDetector::from_fn(3, shards, |_| {
                let n_s = per_shard_window(n, shards);
                Tbf::new(
                    TbfConfig::builder(n_s)
                        .entries(n_s * 14)
                        .hash_count(7)
                        .seed(seed)
                        .build()?,
                )
            })
            .expect("valid sharded tbf")
        };
        let router = ShardRouter::new(3, shards).expect("router");
        let mut generic = make(&router);
        let mut hash_once = make(&router);
        assert!(hash_once.hash_once_aligned());

        let ids: Vec<Vec<u8>> = (0..6_000u64)
            .map(|i| (i % 900).to_le_bytes().to_vec())
            .collect();
        let id_slices: Vec<&[u8]> = ids.iter().map(Vec::as_slice).collect();
        let mut want = Vec::new();
        let mut got = Vec::new();
        for chunk in id_slices.chunks(97) {
            want.extend(generic.observe_batch(chunk));
            got.extend(hash_once.observe_batch_hash_once(chunk));
        }
        assert_eq!(got, want);
    }

    #[test]
    fn hash_once_falls_back_when_misaligned() {
        // Shards seeded independently of the router: the fast path must
        // refuse to probe with the router family and instead produce
        // the same verdicts as the generic path.
        let mut a = sharded_tbf(1 << 10, 4);
        let mut b = sharded_tbf(1 << 10, 4);
        assert!(!a.hash_once_aligned());
        let ids: Vec<Vec<u8>> = (0..3_000u64)
            .map(|i| (i % 500).to_le_bytes().to_vec())
            .collect();
        let id_slices: Vec<&[u8]> = ids.iter().map(Vec::as_slice).collect();
        let want = a.observe_batch(&id_slices);
        let got = b.observe_batch_hash_once(&id_slices);
        assert_eq!(got, want);
    }

    #[test]
    fn per_shard_window_covers_edge_cases() {
        assert_eq!(per_shard_window(4096, 4), 1024);
        assert_eq!(per_shard_window(10, 4), 3);
        assert_eq!(per_shard_window(1, 8), 2); // clamped for Tbf validity
        assert_eq!(per_shard_window(100, 1), 100);
    }

    // ---- time-based sharding -------------------------------------------

    use crate::{TimeGbf, TimeGbfConfig, TimeTbf, TimeTbfConfig};
    use cfd_windows::ExactTimeSlidingDedup;

    fn sharded_time_tbf(seed: u64, shards: usize) -> ShardedDetector<TimeTbf> {
        ShardedDetector::from_fn(seed, shards, |_| {
            TimeTbf::new(TimeTbfConfig::new(32, 10, 1 << 12, 6, 21)?)
        })
        .expect("valid sharded time-tbf")
    }

    /// An irregular but mostly-monotone tick stream with occasional
    /// regressions, plus a cyclic key so duplicates recur at many gaps.
    fn timed_stream(len: u64) -> (Vec<Vec<u8>>, Vec<u64>) {
        let mut tick = 0u64;
        let mut ids = Vec::new();
        let mut ticks = Vec::new();
        for i in 0..len {
            tick += (i * 7 + 3) % 11;
            if i % 97 == 96 {
                tick = tick.saturating_sub(25); // regressions exercise clamping
            }
            ids.push((i % 700).to_le_bytes().to_vec());
            ticks.push(tick);
        }
        (ids, ticks)
    }

    #[test]
    fn timed_sharded_batch_matches_sequential() {
        let (ids, ticks) = timed_stream(6_000);
        let id_slices: Vec<&[u8]> = ids.iter().map(Vec::as_slice).collect();
        let mut sequential = sharded_time_tbf(3, 4);
        let mut batched = sharded_time_tbf(3, 4);
        let want: Vec<Verdict> = id_slices
            .iter()
            .zip(&ticks)
            .map(|(id, &t)| sequential.observe_at(id, t))
            .collect();
        let mut got = Vec::new();
        for (idc, tc) in id_slices.chunks(97).zip(ticks.chunks(97)) {
            got.extend(batched.observe_batch_at(idc, tc));
        }
        assert_eq!(got, want);
    }

    #[test]
    fn timed_sharded_zero_false_negatives_vs_global_oracle() {
        // Time-based windows are shard-transparent: all shards share
        // wall clock, so one *global* exact timed oracle is the ground
        // truth (no per-shard rescaling, unlike count windows).
        let mut d = sharded_time_tbf(7, 4);
        let mut oracle = ExactTimeSlidingDedup::new(32, 10);
        let (ids, ticks) = timed_stream(30_000);
        for (i, (id, &t)) in ids.iter().zip(&ticks).enumerate() {
            let got = d.observe_at(id, t);
            if oracle.observe_at(id, t) == Verdict::Duplicate {
                assert_eq!(got, Verdict::Duplicate, "false negative at element {i}");
            }
        }
    }

    #[test]
    fn timed_hash_once_matches_generic_batch_when_aligned() {
        let shards = 4;
        let router = ShardRouter::new(3, shards).expect("router");
        let seed = router.probe_seed();
        let make = || {
            ShardedDetector::from_fn(3, shards, |_| {
                TimeGbf::new(TimeGbfConfig::new(6, 5, 10, 1 << 12, 4, seed)?)
            })
            .expect("valid sharded time-gbf")
        };
        let mut generic = make();
        let mut hash_once = make();
        assert!(hash_once.timed_hash_once_aligned());

        let (ids, ticks) = timed_stream(6_000);
        let id_slices: Vec<&[u8]> = ids.iter().map(Vec::as_slice).collect();
        let mut want = Vec::new();
        let mut got = Vec::new();
        for (idc, tc) in id_slices.chunks(97).zip(ticks.chunks(97)) {
            want.extend(generic.observe_batch_at(idc, tc));
            got.extend(hash_once.observe_batch_hash_once_at(idc, tc));
        }
        assert_eq!(got, want);
    }

    #[test]
    fn timed_hash_once_falls_back_when_misaligned() {
        // Shards seeded independently of the router: the fast path must
        // refuse the router family and match the generic path instead.
        let mut a = sharded_time_tbf(5, 4);
        let mut b = sharded_time_tbf(5, 4);
        assert!(!a.timed_hash_once_aligned());
        let (ids, ticks) = timed_stream(3_000);
        let id_slices: Vec<&[u8]> = ids.iter().map(Vec::as_slice).collect();
        let want = a.observe_batch_at(&id_slices, &ticks);
        let got = b.observe_batch_hash_once_at(&id_slices, &ticks);
        assert_eq!(got, want);
    }

    #[test]
    fn route_prefix_is_deterministic_and_in_range() {
        let router = ShardRouter::new(9, 7).unwrap();
        for prefix in 0..10_000u64 {
            let shard = router.route_prefix(prefix);
            assert!(shard < 7);
            assert_eq!(shard, router.route_prefix(prefix), "stable");
        }
        // All ids sharing a tenant prefix land on one shard.
        let mut key = 42u64.to_le_bytes().to_vec();
        key.extend_from_slice(b"click-a");
        assert_eq!(
            router.route_prefix(cfd_hash::tenant_prefix(&key)),
            router.route_prefix(42)
        );
        // And the mapping actually spreads tenants around.
        let hits: std::collections::HashSet<usize> =
            (0..100u64).map(|p| router.route_prefix(p)).collect();
        assert!(hits.len() > 1);
    }

    #[test]
    fn tenant_routed_batch_matches_one_arena_per_tenant_stream() {
        use crate::arena::{ArenaConfig, TenantArena};
        // Sharded arenas driven tenant-routed must give each tenant the
        // same verdicts as ONE arena seeing the whole stream: a tenant
        // never splits across shards, and within a shard the arena is
        // order-preserving.
        let router_seed = 11;
        let router = ShardRouter::new(router_seed, 4).unwrap();
        let cfg = ArenaConfig::new(32, 307, 4, router.probe_seed()).with_initial_slots(2);
        let mut sharded =
            ShardedDetector::from_fn(router_seed, 4, |_| TenantArena::new(cfg)).unwrap();
        assert!(sharded.hash_once_aligned());
        let mut reference = TenantArena::new(cfg).unwrap();
        let mut rng = 77u64;
        let keys: Vec<Vec<u8>> = (0..4_000)
            .map(|_| {
                rng = cfd_hash::mix::splitmix64(rng);
                let mut k = (rng % 23).to_le_bytes().to_vec();
                k.extend_from_slice(&(rng % 31).to_le_bytes());
                k
            })
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let want: Vec<Verdict> = refs.iter().map(|id| reference.observe(id)).collect();
        let got = sharded.observe_batch_tenant_routed(&refs);
        assert_eq!(got, want);
        let live: usize = sharded.shards().iter().map(TenantArena::live_tenants).sum();
        assert_eq!(live, reference.live_tenants(), "tenants partitioned");
        assert!(
            sharded
                .shards()
                .iter()
                .filter(|s| s.live_tenants() > 0)
                .count()
                > 1,
            "tenants actually spread across shards"
        );
    }

    #[test]
    fn tenant_routed_fallback_matches_on_misaligned_shards() {
        use crate::arena::{ArenaConfig, TenantArena};
        let cfg = ArenaConfig::new(32, 307, 4, 0xDECAF).with_initial_slots(2);
        let mut fast = ShardedDetector::from_fn(5, 3, |_| TenantArena::new(cfg)).unwrap();
        let mut slow = ShardedDetector::from_fn(5, 3, |_| TenantArena::new(cfg)).unwrap();
        assert!(!fast.hash_once_aligned());
        let keys: Vec<Vec<u8>> = (0..900u64)
            .map(|i| {
                let mut k = (i % 13).to_le_bytes().to_vec();
                k.extend_from_slice(&(i % 17).to_le_bytes());
                k
            })
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let want = fast.observe_batch_tenant_routed(&refs);
        // Reference: per-id routing through the same prefix router.
        let router = ShardRouter::new(5, 3).unwrap();
        let got: Vec<Verdict> = refs
            .iter()
            .map(|id| {
                let shard = router.route_prefix(cfd_hash::tenant_prefix(id));
                slow.shard_mut(shard).observe(id)
            })
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn timed_window_passes_through_unscaled() {
        let d = sharded_time_tbf(3, 4);
        // 32 units of 10 ticks: the global window, not 4x it.
        assert_eq!(
            TimedDuplicateDetector::window(&d),
            WindowSpec::TimeSliding { ticks: 320 }
        );
        let single = TimedDuplicateDetector::memory_bits(&d.shards()[0]);
        assert_eq!(TimedDuplicateDetector::memory_bits(&d), single * 4);
    }
}
