//! The TBF algorithm: timing Bloom filters over sliding windows (§4).
//!
//! Each of the `m` cells of a classical Bloom filter is widened to an
//! `O(log N)`-bit *entry* holding the wraparound timestamp of the last
//! insertion that touched it (all-ones = empty). An element is a
//! duplicate iff all its `k` entries are **present** (not empty) and
//! **active** (timestamps within the last `N − 1` positions — the `N`-th
//! position back is the element that just slid out).
//!
//! Timestamps live in a wraparound range of `N + C` values (§4.1). An
//! incremental sweep of `⌈m / (C+1)⌉` entries per arrival erases expired
//! timestamps before their values can be reused: an entry becomes
//! sweepable at age `N` and its value aliases a fresh timestamp only at
//! age `N + C`, giving the sweep `C + 1` arrivals of slack — exactly the
//! schedule the paper prescribes.
//!
//! Per Theorem 2: zero false negatives, classical-Bloom false-positive
//! rate at `n = N`, and `O(M / (N log N))` entry operations per element.

use crate::backend::{self, BatchBufs, CountCore, ProbeCore};
use crate::config::{ConfigError, TbfConfig};
use crate::ops::OpCounters;
use cfd_bits::PackedIntVec;
use cfd_hash::{BlockGeometry, DoubleHashFamily, HashFamily, Planner, ProbePlan};
use cfd_telemetry::DetectorStats;
use cfd_windows::{DuplicateDetector, Verdict, WindowSpec, WrapCounter};
use std::cell::Cell;

/// Dynamic TBF state captured by a checkpoint.
pub(crate) struct TbfState {
    pub now: u64,
    pub clean_next: usize,
    pub entry_words: Vec<u64>,
}

/// Timing-Bloom-filter duplicate detector over count-based sliding
/// windows.
///
/// ```rust
/// use cfd_core::{Tbf, TbfConfig};
/// use cfd_windows::{DuplicateDetector, Verdict};
///
/// # fn main() -> Result<(), cfd_core::ConfigError> {
/// let cfg = TbfConfig::builder(1 << 12).entries(1 << 16).build()?;
/// let mut tbf = Tbf::new(cfg)?;
/// assert_eq!(tbf.observe(b"198.51.100.4|beef|ad-3"), Verdict::Distinct);
/// assert_eq!(tbf.observe(b"198.51.100.4|beef|ad-3"), Verdict::Duplicate);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Tbf {
    cfg: TbfConfig,
    entries: PackedIntVec,
    wrap: WrapCounter,
    family: DoubleHashFamily,
    clean_next: usize,
    clean_quota: usize,
    empty: u64,
    ops: OpCounters,
    bufs: BatchBufs,
    /// Blocked-probe geometry; `None` in scattered mode.
    geo: Option<BlockGeometry>,
    /// Probes actually issued per element: `k` scattered, capped at
    /// half the block in blocked mode so one insertion can never
    /// saturate its cache line (see `Gbf` for the rationale).
    k_eff: usize,
    /// `O(m)` occupancy scans performed (snapshot-cadence only; see
    /// `DetectorStats::occupancy_scans`).
    scans: Cell<u64>,
}

impl Tbf {
    /// Creates a detector from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is internally
    /// inconsistent (normally impossible after `TbfConfig::build`).
    pub fn new(cfg: TbfConfig) -> Result<Self, ConfigError> {
        if cfg.n < 2 {
            return Err(ConfigError::WindowTooSmall(cfg.n));
        }
        if cfg.m == 0 {
            return Err(ConfigError::ZeroDimension("entry count m"));
        }
        if !(1..=64).contains(&cfg.k) {
            return Err(ConfigError::BadHashCount(cfg.k));
        }
        let geo = match cfg.probe {
            crate::config::ProbeLayout::Scattered => None,
            crate::config::ProbeLayout::Blocked => Some(cfg.block_geometry().ok_or(
                ConfigError::BlockedUnsupported {
                    slot_bits: cfg.entry_bits() as usize,
                    m: cfg.m,
                },
            )?),
        };
        let k_eff = backend::effective_k(cfg.k, geo.as_ref());
        let entries = PackedIntVec::new_all_ones(cfg.m, cfg.entry_bits());
        let empty = entries.max_value();
        Ok(Self {
            wrap: WrapCounter::new(cfg.range()),
            family: DoubleHashFamily::new(cfg.seed),
            clean_next: 0,
            clean_quota: cfg.clean_quota(),
            empty,
            ops: OpCounters::new(),
            bufs: BatchBufs::default(),
            geo,
            k_eff,
            scans: Cell::new(0),
            entries,
            cfg,
        })
    }

    /// Probes issued per element: `k` in scattered mode, `min(k,
    /// slots/2)` in blocked mode (saturation cap; see [`crate::Gbf`]).
    #[must_use]
    pub fn effective_hash_count(&self) -> usize {
        self.k_eff
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> TbfConfig {
        self.cfg
    }

    /// Memory-operation counters (Theorem 2 accounting).
    #[must_use]
    pub fn ops(&self) -> OpCounters {
        self.ops
    }

    /// Number of non-empty entries (diagnostics; `O(m)`).
    #[must_use]
    pub fn occupied_entries(&self) -> usize {
        self.scans.set(self.scans.get() + 1);
        self.cfg.m - self.entries.count_eq(self.empty)
    }

    /// Number of entries holding an *active* timestamp — occupied and
    /// within the window, excluding expired-but-unswept entries
    /// (diagnostics; `O(m)`). This is the occupancy that drives the
    /// false-positive rate: only active entries can satisfy a probe.
    #[must_use]
    pub fn active_entries(&self) -> usize {
        self.scans.set(self.scans.get() + 1);
        (0..self.cfg.m)
            .filter(|&i| {
                let e = self.entries.get(i);
                e != self.empty && self.is_active(e)
            })
            .count()
    }

    /// The sliding window in elements (`N`).
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.cfg.n
    }

    /// Active means age in `[1, N−1]`: the arriving element is compared
    /// against the `N − 1` elements still in the window after the oldest
    /// slid out.
    #[inline]
    fn is_active(&self, t: u64) -> bool {
        self.wrap.is_active(t, self.cfg.n as u64 - 1)
    }

    /// Internal state snapshot for checkpointing.
    pub(crate) fn checkpoint_parts(&self) -> (TbfConfig, TbfState) {
        (
            self.cfg,
            TbfState {
                now: self.wrap.now(),
                clean_next: self.clean_next,
                entry_words: self.entries.as_words().to_vec(),
            },
        )
    }

    /// Rebuilds a detector from checkpoint parts; `None` if inconsistent.
    pub(crate) fn from_checkpoint_parts(
        cfg: TbfConfig,
        now: u64,
        clean_next: usize,
        entry_words: Vec<u64>,
    ) -> Option<Self> {
        // Size-check against the provided payload BEFORE allocating: a
        // corrupt header could otherwise request an absurd table.
        let expected_words = cfg.m.checked_mul(cfg.entry_bits() as usize)?.div_ceil(64);
        if entry_words.len() != expected_words || clean_next >= cfg.m {
            return None;
        }
        let mut d = Self::new(cfg).ok()?;
        d.wrap = cfd_windows::WrapCounter::from_parts(cfg.range(), now)?;
        d.clean_next = clean_next;
        d.entries = cfd_bits::PackedIntVec::from_words(entry_words, cfg.m, cfg.entry_bits())?;
        Some(d)
    }

    /// Step 1 (§4.1): sweep the next `⌈m/(C+1)⌉` entries, erasing expired
    /// timestamps (age 0 — an alias about to be reused — or age ≥ N).
    ///
    /// The sweep is the TBF's per-element cost center (the quota is
    /// typically an order of magnitude larger than `k`), so it runs
    /// through [`PackedIntVec::expire_timestamps`] — a wide
    /// compare-and-store that classifies eight entries per flush on
    /// AVX2 and falls back to the identical scalar predicate otherwise.
    /// The quota is split at the table boundary so each segment is a
    /// contiguous entry range.
    fn clean_step(&mut self) {
        let m = self.cfg.m;
        let now = self.wrap.now();
        let range = self.cfg.range();
        let hi = self.cfg.n as u64 - 1;
        let mut remaining = self.clean_quota;
        while remaining > 0 {
            let seg = remaining.min(m - self.clean_next);
            let cleaned = self.entries.expire_timestamps(
                self.clean_next,
                seg,
                self.empty,
                self.empty,
                now,
                range,
                1,
                hi,
            );
            self.ops.clean_reads += seg as u64;
            self.ops.clean_writes += cleaned as u64;
            self.clean_next += seg;
            if self.clean_next == m {
                self.clean_next = 0;
            }
            remaining -= seg;
        }
    }

    /// The pure hashing half of this detector, shareable across threads.
    ///
    /// Plans it produces are valid for any GBF/TBF built with the same
    /// seed.
    #[must_use]
    pub fn planner(&self) -> Planner {
        Planner::from_family(self.family)
    }

    /// Hashes `id` into a replayable [`ProbePlan`] (pure; no state touched).
    #[inline]
    #[must_use]
    pub fn plan(&self, id: &[u8]) -> ProbePlan {
        ProbePlan::from_pair(self.family.pair(id))
    }

    /// The stateful half of an observation: sweep, probe, insert when
    /// distinct, advance the wraparound clock.
    ///
    /// `observe(id)` ≡ `apply(plan(id))`; the split lets callers hash
    /// batches (or hash on another thread) before replaying here. The
    /// one hash evaluation is accounted to this element regardless of
    /// where it was computed, keeping Theorem 2's per-element op counts.
    pub fn apply(&mut self, plan: ProbePlan) -> Verdict {
        let mut bufs = std::mem::take(&mut self.bufs);
        let verdict = backend::apply_plan(self, &mut bufs, plan);
        self.bufs = bufs;
        verdict
    }

    /// Replays a batch of precomputed plans with the same lookahead
    /// prefetch as `observe_batch` — the stateful half of the sharded
    /// hash-once path, where plans were produced while routing.
    pub fn apply_batch(&mut self, plans: &[ProbePlan]) -> Vec<Verdict> {
        let mut out = Vec::with_capacity(plans.len());
        self.apply_batch_into(plans, &mut out);
        out
    }

    /// Allocation-free [`Tbf::apply_batch`]: verdicts go into `out`
    /// (cleared first, capacity reused).
    pub fn apply_batch_into(&mut self, plans: &[ProbePlan], out: &mut Vec<Verdict>) {
        let mut bufs = std::mem::take(&mut self.bufs);
        backend::apply_batch_into(self, &mut bufs, plans, out);
        self.bufs = bufs;
    }

    /// [`Tbf::apply`] with the plan's probe indices already expanded —
    /// the innermost stateful step, shared by the per-click and batch
    /// paths.
    fn apply_at(&mut self, probes: &[usize]) -> Verdict {
        self.ops.elements += 1;
        self.ops.hash_evals += 1;

        // Step 1: expire stale timestamps.
        self.clean_step();

        // Step 2: probe and (for distinct elements) insert.
        let mut present_and_active = true;
        for &i in probes {
            let e = self.entries.get(i);
            self.ops.probe_reads += 1;
            if e == self.empty || !self.is_active(e) {
                present_and_active = false;
                break;
            }
        }

        let verdict = if present_and_active {
            // Duplicate: per Definition 1 it is not a valid click and must
            // not refresh the stored timestamps.
            Verdict::Duplicate
        } else {
            // In blocked mode all k probes share one cache line, so the
            // wide dispatch merges the writes in registers and stores
            // each word once (`set_all`); scalar dispatch is the plain
            // per-entry loop. Identical resulting words either way.
            self.entries.set_all(probes, self.wrap.now());
            self.ops.insert_writes += probes.len() as u64;
            Verdict::Distinct
        };
        self.wrap.advance();
        verdict
    }
}

impl ProbeCore for Tbf {
    #[inline]
    fn table_len(&self) -> usize {
        self.cfg.m
    }

    #[inline]
    fn probe_width(&self) -> usize {
        self.k_eff
    }

    #[inline]
    fn block_geo(&self) -> Option<&BlockGeometry> {
        self.geo.as_ref()
    }

    #[inline]
    fn prefetch(&self, idx: usize) {
        self.entries.prefetch(idx);
    }
}

impl CountCore for Tbf {
    #[inline]
    fn apply_probes(&mut self, _plan: ProbePlan, probes: &[usize]) -> Verdict {
        self.apply_at(probes)
    }
}

impl DuplicateDetector for Tbf {
    fn observe(&mut self, id: &[u8]) -> Verdict {
        let plan = self.plan(id);
        self.apply(plan)
    }

    fn observe_batch(&mut self, ids: &[&[u8]]) -> Vec<Verdict> {
        let mut out = Vec::with_capacity(ids.len());
        self.observe_batch_into(ids, &mut out);
        out
    }

    fn observe_batch_into(&mut self, ids: &[&[u8]], out: &mut Vec<Verdict>) {
        // Hash the whole batch up front (pure, multi-lane over
        // equal-length runs) and expand every plan's probe indices into
        // one flat buffer. Knowing future probes is what per-click
        // `observe` fundamentally cannot do: while element `i` is
        // applied, element `i + PREFETCH_AHEAD`'s cache lines are
        // already being pulled, hiding the random-access latency of a
        // table much larger than L1/L2.
        let mut bufs = std::mem::take(&mut self.bufs);
        let planner = self.planner();
        backend::observe_refs_into(self, &mut bufs, planner, ids, out);
        self.bufs = bufs;
    }

    fn observe_flat_into(&mut self, keys: &[u8], key_len: usize, out: &mut Vec<Verdict>) {
        let mut bufs = std::mem::take(&mut self.bufs);
        let planner = self.planner();
        backend::observe_flat_into(self, &mut bufs, planner, keys, key_len, out);
        self.bufs = bufs;
    }

    fn window(&self) -> WindowSpec {
        WindowSpec::Sliding { n: self.cfg.n }
    }

    fn memory_bits(&self) -> usize {
        self.entries.memory_bits()
    }

    fn reset(&mut self) {
        *self = Self::new(self.cfg).expect("configuration was already validated");
    }

    fn name(&self) -> &'static str {
        "tbf"
    }
}

impl DetectorStats for Tbf {
    fn stats_name(&self) -> &'static str {
        "tbf"
    }

    /// One entry: the active-timestamp occupancy ratio (`O(m)`).
    fn fill_ratios(&self) -> Vec<f64> {
        vec![self.active_entries() as f64 / self.cfg.m as f64]
    }

    /// Normalized position of the incremental sweep through the table.
    fn sweep_position(&self) -> f64 {
        self.clean_next as f64 / self.cfg.m as f64
    }

    fn cleaned_entries(&self) -> u64 {
        self.ops.clean_writes
    }

    fn observed_elements(&self) -> u64 {
        self.ops.elements
    }

    /// Distinct elements perform exactly `k_eff` insert writes, so the
    /// duplicate count is recoverable from the op counters.
    fn observed_duplicates(&self) -> u64 {
        self.ops.elements - self.ops.insert_writes / self.k_eff as u64
    }

    /// A fresh key is flagged iff all `k_eff` probes land on active
    /// entries: `(active/m)^k_eff` — the classical Bloom FP formula
    /// evaluated at the *live* occupancy instead of the design point
    /// (`cfd_analysis::tbf::fp_sliding`). In blocked mode this is a
    /// lower bound: per-block load variance adds a penalty the
    /// `cfd_analysis::blocked` model quantifies.
    fn estimated_fp(&self) -> f64 {
        (self.active_entries() as f64 / self.cfg.m as f64).powi(self.k_eff as i32)
    }

    fn occupancy_scans(&self) -> u64 {
        self.scans.get()
    }

    /// Single-scan override: `fill_ratios` and `estimated_fp` each need
    /// the `O(m)` active-entry count, and the default assembly would
    /// pay that scan twice. Pipeline workers sample health at every
    /// reporter request and once at shutdown, so halving the scan keeps
    /// the instrumented pipeline inside its overhead budget.
    fn health(&self) -> cfd_telemetry::DetectorHealth {
        let fill = self.active_entries() as f64 / self.cfg.m as f64;
        cfd_telemetry::DetectorHealth {
            detector: self.stats_name(),
            fill_ratios: vec![fill],
            cleaning_backlog: 0.0,
            sweep_position: self.sweep_position(),
            cleaned_entries: self.cleaned_entries(),
            observed_elements: self.observed_elements(),
            observed_duplicates: self.observed_duplicates(),
            estimated_fp: fill.powi(self.k_eff as i32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_windows::ExactSlidingDedup;

    fn tbf(n: usize, m: usize, k: usize) -> Tbf {
        Tbf::new(
            TbfConfig::builder(n)
                .entries(m)
                .hash_count(k)
                .seed(77)
                .build()
                .expect("valid config"),
        )
        .expect("valid tbf")
    }

    #[test]
    fn immediate_duplicate_detected() {
        let mut d = tbf(16, 1 << 12, 5);
        assert_eq!(d.observe(b"x"), Verdict::Distinct);
        assert_eq!(d.observe(b"x"), Verdict::Duplicate);
    }

    #[test]
    fn element_slides_out_after_n() {
        let n = 8;
        let mut d = tbf(n, 1 << 14, 6);
        d.observe(b"first"); // position 0
        for i in 0..n as u32 - 1 {
            d.observe(&i.to_le_bytes()); // positions 1..=7
        }
        // Position 8: "first" is exactly N back -> out of window.
        assert_eq!(d.observe(b"first"), Verdict::Distinct);
    }

    #[test]
    fn element_still_in_window_at_n_minus_1() {
        let n = 8;
        let mut d = tbf(n, 1 << 14, 6);
        d.observe(b"first"); // position 0
        for i in 0..n as u32 - 2 {
            d.observe(&i.to_le_bytes()); // positions 1..=6
        }
        // Position 7: "first" has age 7 = N-1 -> still inside.
        assert_eq!(d.observe(b"first"), Verdict::Duplicate);
    }

    #[test]
    fn duplicates_do_not_refresh_validity() {
        let n = 4;
        let mut d = tbf(n, 1 << 14, 6);
        assert_eq!(d.observe(b"a"), Verdict::Distinct); // pos 0 (valid)
        assert_eq!(d.observe(b"a"), Verdict::Duplicate); // pos 1
        assert_eq!(d.observe(b"a"), Verdict::Duplicate); // pos 2
        assert_eq!(d.observe(b"a"), Verdict::Duplicate); // pos 3
                                                         // pos 4: the valid a@0 slid out; duplicates never extended it.
        assert_eq!(d.observe(b"a"), Verdict::Distinct);
    }

    #[test]
    fn zero_false_negatives_vs_exact_oracle() {
        let n = 64;
        let mut d = tbf(n, 1 << 14, 6);
        let mut oracle = ExactSlidingDedup::new(n);
        for i in 0..20_000u64 {
            let key = (i % 89).to_le_bytes();
            let got = d.observe(&key);
            let want = oracle.observe(&key);
            if want == Verdict::Duplicate {
                assert_eq!(got, Verdict::Duplicate, "false negative at element {i}");
            }
        }
    }

    #[test]
    fn zero_false_negatives_across_many_wraparounds() {
        // Small range (N + C) forces many timestamp reuses.
        let cfg = TbfConfig::builder(16)
            .entries(1 << 12)
            .hash_count(5)
            .range_extension(3) // range 19: wraps every 19 elements
            .seed(5)
            .build()
            .unwrap();
        let mut d = Tbf::new(cfg).unwrap();
        let mut oracle = ExactSlidingDedup::new(16);
        for i in 0..50_000u64 {
            let key = (i % 23).to_le_bytes();
            let got = d.observe(&key);
            let want = oracle.observe(&key);
            if want == Verdict::Duplicate {
                assert_eq!(got, Verdict::Duplicate, "false negative at element {i}");
            }
        }
    }

    #[test]
    fn false_positive_rate_is_low_with_adequate_memory() {
        // ~14.6 entries per element, k = 10 -> FP ~ 1e-3 region.
        let n = 1 << 12;
        let m = n * 14 + n / 2;
        let mut d = tbf(n, m, 10);
        let mut fps = 0u64;
        let total = 20 * n as u64;
        for i in 0..total {
            if d.observe(&i.to_le_bytes()) == Verdict::Duplicate {
                fps += 1;
            }
        }
        let rate = fps as f64 / total as f64;
        assert!(rate < 0.01, "fp rate {rate} too high");
    }

    #[test]
    fn stale_aliases_never_cause_false_negatives_nor_unbounded_fp() {
        // Distinct stream with a tiny C: aliasing pressure is maximal.
        let cfg = TbfConfig::builder(256)
            .entries(8 * 1024)
            .hash_count(6)
            .range_extension(1)
            .seed(3)
            .build()
            .unwrap();
        let mut d = Tbf::new(cfg).unwrap();
        let mut fps = 0u64;
        let total = 100_000u64;
        for i in 0..total {
            if d.observe(&i.to_le_bytes()) == Verdict::Duplicate {
                fps += 1;
            }
        }
        assert!(
            (fps as f64 / total as f64) < 0.05,
            "fp rate exploded: {fps}"
        );
    }

    #[test]
    fn cleaning_keeps_occupancy_near_window_content() {
        let n = 512;
        let m = n * 16;
        let mut d = tbf(n, m, 8);
        for i in 0..20_000u64 {
            d.observe(&i.to_le_bytes());
        }
        // Non-empty entries were written within the last N + sweep-cycle
        // arrivals (an entry expires at age N and is erased within one
        // sweep cycle after that), so occupancy <= k * (N + cycle).
        let cycle = m.div_ceil(d.config().clean_quota());
        let upper = 8 * (n + cycle);
        assert!(
            d.occupied_entries() <= upper,
            "occupancy {} above bound {upper}",
            d.occupied_entries()
        );
        // And the sweep must actually be erasing things.
        assert!(d.ops().clean_writes > 0);
    }

    #[test]
    fn entry_ops_match_theorem_2_cost_model() {
        let n = 1 << 10;
        let mut d = tbf(n, 1 << 14, 7);
        let elements = 5_000u64;
        for i in 0..elements {
            d.observe(&i.to_le_bytes());
        }
        let ops = d.ops();
        assert_eq!(ops.elements, elements);
        // Probe reads <= k per element (early exit allowed).
        assert!(ops.probe_reads <= elements * 7);
        // Clean reads = quota per element, exactly.
        assert_eq!(ops.clean_reads, elements * d.config().clean_quota() as u64);
        assert_eq!(ops.hash_evals, elements);
    }

    #[test]
    fn reset_restores_empty_state() {
        let mut d = tbf(16, 1 << 10, 4);
        d.observe(b"k");
        d.reset();
        assert_eq!(d.observe(b"k"), Verdict::Distinct);
        assert_eq!(d.occupied_entries(), 4_usize.min(d.config().m));
    }

    #[test]
    fn memory_bits_scales_with_entry_width() {
        let d = tbf(1 << 10, 1000, 4);
        // C = N-1 -> range 2N-1 -> 11 bits per entry for N = 2^10.
        assert_eq!(d.config().entry_bits(), 11);
        assert!(d.memory_bits() >= 1000 * 11);
    }

    fn blocked_tbf(n: usize, m: usize, k: usize) -> Tbf {
        Tbf::new(
            TbfConfig::builder(n)
                .entries(m)
                .hash_count(k)
                .seed(77)
                .probe(crate::config::ProbeLayout::Blocked)
                .build()
                .expect("valid blocked config"),
        )
        .expect("valid blocked tbf")
    }

    #[test]
    fn blocked_mode_has_zero_false_negatives() {
        let n = 64;
        let mut d = blocked_tbf(n, 1 << 14, 6);
        let mut oracle = ExactSlidingDedup::new(n);
        for i in 0..20_000u64 {
            let key = (i % 89).to_le_bytes();
            let got = d.observe(&key);
            let want = oracle.observe(&key);
            if want == Verdict::Duplicate {
                assert_eq!(got, Verdict::Duplicate, "false negative at element {i}");
            }
        }
    }

    #[test]
    fn blocked_batch_matches_sequential() {
        let keys: Vec<Vec<u8>> = (0..6000u64)
            .map(|i| (i % 700).to_le_bytes().to_vec())
            .collect();
        let slices: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let mut sequential = blocked_tbf(256, 1 << 14, 6);
        let mut batched = blocked_tbf(256, 1 << 14, 6);
        let want: Vec<Verdict> = slices.iter().map(|id| sequential.observe(id)).collect();
        let mut got = Vec::new();
        for chunk in slices.chunks(513) {
            got.extend(batched.observe_batch(chunk));
        }
        assert_eq!(got, want);
    }

    #[test]
    fn blocked_fp_stays_usable_with_adequate_memory() {
        // 13-bit entries at N = 2^12 -> 32 slots per 512-bit line, so
        // k = 10 survives the saturation cap. Per-block load variance
        // still costs FP relative to the scattered layout; with 16
        // entries per element the rate must stay in the few-percent
        // range (cfd_analysis::blocked quantifies the bound).
        let n = 1 << 12;
        let mut d = blocked_tbf(n, n * 16, 10);
        assert_eq!(d.config().entry_bits(), 13);
        assert_eq!(d.effective_hash_count(), 10);
        let mut fps = 0u64;
        let total = 20 * n as u64;
        for i in 0..total {
            if d.observe(&i.to_le_bytes()) == Verdict::Duplicate {
                fps += 1;
            }
        }
        let rate = fps as f64 / total as f64;
        assert!(rate < 0.06, "blocked fp rate {rate} too high");
    }

    #[test]
    fn occupancy_scans_counts_table_passes_only() {
        let mut d = tbf(256, 1 << 12, 5);
        let keys: Vec<Vec<u8>> = (0..2000u64).map(|i| i.to_le_bytes().to_vec()).collect();
        let slices: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        d.observe_batch(&slices);
        assert_eq!(d.occupancy_scans(), 0, "hot path must not scan");
        let _ = d.occupied_entries();
        let _ = d.fill_ratios();
        assert_eq!(d.occupancy_scans(), 2);
        let _ = d.health();
        assert_eq!(d.occupancy_scans(), 3, "health pays exactly one scan");
    }
}
