//! TBF over *time-based* sliding windows (§4.1 extension).
//!
//! "Suppose the entire sliding window is equally divided into `R` time
//! units. In Step 1, the cleaning procedure executes once in each time
//! unit ... instead of inserting the counting-based position, the time
//! unit information is inserted into the entries of TBF."
//!
//! Entries store the wraparound *time-unit index* of their last insertion.
//! The window covers the last `R` units (the current unit included), so
//! two clicks within the same unit are duplicates. The paper's per-unit
//! cleaning daemon is implemented *lazily but faithfully*: when an
//! observation advances the clock by `g` units, the sweeps of the skipped
//! units are replayed one unit at a time, each evaluated at its own
//! virtual "now" — byte-for-byte the schedule an on-time daemon would
//! have produced. A gap of `R` or more units simply clears the table
//! (everything is expired by then), bounding the replay cost.

use crate::config::ConfigError;
use crate::ops::OpCounters;
use cfd_bits::words::bits_for_value;
use cfd_bits::PackedIntVec;
use cfd_hash::{DoubleHashFamily, HashFamily, Planner, ProbePlan};
use cfd_windows::time::UnitClock;
use cfd_windows::{TimedDuplicateDetector, Verdict, WindowSpec};

/// Configuration of a [`TimeTbf`] detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeTbfConfig {
    /// Window span in time units (`R`).
    pub window_units: u64,
    /// Ticks per time unit (granularity of expiry).
    pub unit_ticks: u64,
    /// Number of TBF entries (`m`).
    pub m: usize,
    /// Hash functions per element (`k`).
    pub k: usize,
    /// Unit-range extension (`C` in units; default `R`).
    pub c_units: u64,
    /// Hash seed.
    pub seed: u64,
}

impl TimeTbfConfig {
    /// Creates a validated configuration with the default `C = R`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on zero dimensions or bad `k`.
    pub fn new(
        window_units: u64,
        unit_ticks: u64,
        m: usize,
        k: usize,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        let cfg = Self {
            window_units,
            unit_ticks,
            m,
            k,
            c_units: window_units,
            seed,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// The wraparound unit range (`R + C`).
    #[must_use]
    pub fn range(&self) -> u64 {
        self.window_units + self.c_units
    }

    /// Bits per entry (`⌈log2(R + C + 1)⌉`, all-ones reserved as empty).
    #[must_use]
    pub fn entry_bits(&self) -> u32 {
        bits_for_value(self.range())
    }

    /// Entries swept per *time unit* (`⌈m / C⌉`): the cleanable band of
    /// an entry spans `C` units, so one full table cycle fits inside it.
    #[must_use]
    pub fn clean_chunk(&self) -> usize {
        self.m.div_ceil(self.c_units.max(1) as usize)
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.window_units == 0 || self.c_units == 0 {
            return Err(ConfigError::ZeroDimension("window units"));
        }
        if self.unit_ticks == 0 {
            return Err(ConfigError::ZeroDimension("ticks per unit"));
        }
        if self.m == 0 {
            return Err(ConfigError::ZeroDimension("entry count m"));
        }
        if !(1..=64).contains(&self.k) {
            return Err(ConfigError::BadHashCount(self.k));
        }
        Ok(())
    }
}

/// Timing-Bloom-filter duplicate detector over time-based sliding
/// windows.
///
/// ```rust
/// use cfd_core::tbf_time::{TimeTbf, TimeTbfConfig};
/// use cfd_windows::{TimedDuplicateDetector, Verdict};
///
/// # fn main() -> Result<(), cfd_core::ConfigError> {
/// // Window = 60 units of 1000 ticks (e.g. a one-minute window in ms).
/// let cfg = TimeTbfConfig::new(60, 1000, 1 << 16, 6, 0)?;
/// let mut d = TimeTbf::new(cfg)?;
/// assert_eq!(d.observe_at(b"ip|cookie|ad", 1_000), Verdict::Distinct);
/// assert_eq!(d.observe_at(b"ip|cookie|ad", 30_000), Verdict::Duplicate);
/// assert_eq!(d.observe_at(b"ip|cookie|ad", 90_000), Verdict::Distinct);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TimeTbf {
    cfg: TimeTbfConfig,
    entries: PackedIntVec,
    units: UnitClock,
    family: DoubleHashFamily,
    /// Absolute unit of the last observation (`None` before the first).
    cur_unit: Option<u64>,
    clean_next: usize,
    clean_chunk: usize,
    empty: u64,
    ops: OpCounters,
    probe_buf: Vec<usize>,
}

impl TimeTbf {
    /// Creates a detector from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is inconsistent.
    pub fn new(cfg: TimeTbfConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let entries = PackedIntVec::new_all_ones(cfg.m, cfg.entry_bits());
        let empty = entries.max_value();
        Ok(Self {
            units: UnitClock::new(cfg.unit_ticks),
            family: DoubleHashFamily::new(cfg.seed),
            cur_unit: None,
            clean_next: 0,
            clean_chunk: cfg.clean_chunk(),
            empty,
            ops: OpCounters::new(),
            probe_buf: vec![0; cfg.k],
            entries,
            cfg,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> TimeTbfConfig {
        self.cfg
    }

    /// Memory-operation counters.
    #[must_use]
    pub fn ops(&self) -> OpCounters {
        self.ops
    }

    /// Unit age of stamp `e` as seen from absolute unit `abs_now`
    /// (0 = written this unit).
    #[inline]
    fn unit_age(&self, abs_now: u64, e: u64) -> u64 {
        let range = self.cfg.range();
        let now = abs_now % range;
        if now >= e {
            now - e
        } else {
            range - e + now
        }
    }

    #[inline]
    fn is_active(&self, abs_now: u64, e: u64) -> bool {
        self.unit_age(abs_now, e) < self.cfg.window_units
    }

    /// One unit's worth of the cleaning daemon, evaluated at virtual unit
    /// `abs_unit`.
    fn sweep_one_unit(&mut self, abs_unit: u64) {
        let m = self.cfg.m;
        for _ in 0..self.clean_chunk {
            let i = self.clean_next;
            self.clean_next += 1;
            if self.clean_next == m {
                self.clean_next = 0;
            }
            let e = self.entries.get(i);
            self.ops.clean_reads += 1;
            if e != self.empty && !self.is_active(abs_unit, e) {
                self.entries.set(i, self.empty);
                self.ops.clean_writes += 1;
            }
        }
    }

    /// Advances the clock to `unit`, replaying skipped units' sweeps.
    fn advance_to(&mut self, unit: u64) -> u64 {
        let last = match self.cur_unit {
            None => {
                self.cur_unit = Some(unit);
                return unit;
            }
            Some(last) => last,
        };
        // One-pass streams may deliver slightly out-of-order ticks; clamp
        // them to the current unit rather than moving time backwards.
        let unit = unit.max(last);
        let crossed = unit - last;
        if crossed >= self.cfg.window_units {
            // Everything written before the gap is expired: clearing the
            // table is both correct and cheaper than replaying the gap.
            self.entries.fill(self.empty);
            self.ops.clean_writes += self.cfg.m as u64;
            self.clean_next = 0;
        } else {
            for u in (last + 1)..=unit {
                self.sweep_one_unit(u);
            }
        }
        self.cur_unit = Some(unit);
        unit
    }

    /// The pure hashing half of this detector, shareable across threads.
    #[must_use]
    pub fn planner(&self) -> Planner {
        Planner::from_family(self.family)
    }

    /// Hashes `id` into a replayable [`ProbePlan`] (pure; no state touched).
    #[inline]
    #[must_use]
    pub fn plan(&self, id: &[u8]) -> ProbePlan {
        ProbePlan::from_pair(self.family.pair(id))
    }

    /// The stateful half of a timed observation; `observe_at(id, tick)` ≡
    /// `apply_at(plan(id), tick)`. The hash evaluation is accounted to
    /// this element regardless of where it was computed.
    pub fn apply_at(&mut self, plan: ProbePlan, tick: u64) -> Verdict {
        self.ops.elements += 1;
        self.ops.hash_evals += 1;
        let unit = self.advance_to(self.units.unit_of(tick));
        let stamp_now = unit % self.cfg.range();

        plan.fill(self.cfg.m, &mut self.probe_buf);

        let mut present_and_active = true;
        for &i in &self.probe_buf {
            let e = self.entries.get(i);
            self.ops.probe_reads += 1;
            if e == self.empty || !self.is_active(unit, e) {
                present_and_active = false;
                break;
            }
        }

        if present_and_active {
            Verdict::Duplicate
        } else {
            for &i in &self.probe_buf {
                self.entries.set(i, stamp_now);
            }
            self.ops.insert_writes += self.probe_buf.len() as u64;
            Verdict::Distinct
        }
    }
}

impl TimedDuplicateDetector for TimeTbf {
    fn observe_at(&mut self, id: &[u8], tick: u64) -> Verdict {
        let plan = self.plan(id);
        self.apply_at(plan, tick)
    }

    fn window(&self) -> WindowSpec {
        WindowSpec::TimeSliding {
            ticks: self.cfg.window_units * self.cfg.unit_ticks,
        }
    }

    fn memory_bits(&self) -> usize {
        self.entries.memory_bits()
    }

    fn reset(&mut self) {
        *self = Self::new(self.cfg).expect("configuration was already validated");
    }

    fn name(&self) -> &'static str {
        "time-tbf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, VecDeque};

    fn ttbf(window_units: u64, unit_ticks: u64, m: usize, k: usize) -> TimeTbf {
        TimeTbf::new(TimeTbfConfig::new(window_units, unit_ticks, m, k, 9).unwrap()).unwrap()
    }

    /// Exact time-sliding oracle: valid click per id kept while within the
    /// last R units.
    struct ExactTimeSliding {
        window_units: u64,
        unit_ticks: u64,
        valid: HashMap<Vec<u8>, u64>, // id -> unit of the valid click
        order: VecDeque<(u64, Vec<u8>)>,
    }

    impl ExactTimeSliding {
        fn new(window_units: u64, unit_ticks: u64) -> Self {
            Self {
                window_units,
                unit_ticks,
                valid: HashMap::new(),
                order: VecDeque::new(),
            }
        }

        fn observe_at(&mut self, id: &[u8], tick: u64) -> Verdict {
            let unit = tick / self.unit_ticks;
            let oldest_active = unit.saturating_sub(self.window_units - 1);
            while let Some(&(u, _)) = self.order.front() {
                if u < oldest_active {
                    let (u0, id0) = self.order.pop_front().expect("non-empty");
                    if self.valid.get(&id0) == Some(&u0) {
                        self.valid.remove(&id0);
                    }
                } else {
                    break;
                }
            }
            if let Some(&u) = self.valid.get(id) {
                if unit.saturating_sub(u) < self.window_units {
                    return Verdict::Duplicate;
                }
            }
            self.valid.insert(id.to_vec(), unit);
            self.order.push_back((unit, id.to_vec()));
            Verdict::Distinct
        }
    }

    #[test]
    fn duplicate_within_window_distinct_after() {
        let mut d = ttbf(10, 100, 1 << 14, 6);
        assert_eq!(d.observe_at(b"x", 0), Verdict::Distinct);
        assert_eq!(d.observe_at(b"x", 500), Verdict::Duplicate); // unit 5
        assert_eq!(d.observe_at(b"x", 999), Verdict::Duplicate); // unit 9
                                                                 // unit 10: the valid click at unit 0 left the 10-unit window.
        assert_eq!(d.observe_at(b"x", 1_000), Verdict::Distinct);
    }

    #[test]
    fn same_unit_repeats_are_duplicates() {
        let mut d = ttbf(5, 1_000, 1 << 12, 5);
        assert_eq!(d.observe_at(b"a", 123), Verdict::Distinct);
        assert_eq!(d.observe_at(b"a", 456), Verdict::Duplicate);
    }

    #[test]
    fn long_quiet_gap_clears_everything() {
        let mut d = ttbf(10, 1, 1 << 12, 5);
        d.observe_at(b"a", 0);
        d.observe_at(b"b", 1);
        // Gap of 1000 units: table cleared, both distinct again.
        assert_eq!(d.observe_at(b"a", 1_000), Verdict::Distinct);
        assert_eq!(d.observe_at(b"b", 1_001), Verdict::Distinct);
    }

    #[test]
    fn zero_false_negatives_vs_exact_timed_oracle() {
        let mut d = ttbf(16, 10, 1 << 14, 6);
        let mut oracle = ExactTimeSliding::new(16, 10);
        // Bursty stream: ids repeat at various lags, time advances in
        // irregular steps (including intra-unit bursts and small gaps).
        let mut tick = 0u64;
        for i in 0..30_000u64 {
            tick += match i % 7 {
                0 => 0,
                1 | 2 => 3,
                3 => 17,
                4 => 1,
                5 => 25,
                _ => 6,
            };
            let key = (i % 61).to_le_bytes();
            let got = d.observe_at(&key, tick);
            let want = oracle.observe_at(&key, tick);
            if want == Verdict::Duplicate {
                assert_eq!(
                    got,
                    Verdict::Duplicate,
                    "false negative at i={i} tick={tick}"
                );
            }
        }
    }

    #[test]
    fn aliasing_controlled_across_many_wraparounds() {
        // Range = 2R = 32 units; run thousands of units with a distinct
        // stream and verify the FP rate stays small.
        let mut d = ttbf(16, 1, 1 << 13, 6);
        let mut fps = 0u64;
        let total = 50_000u64;
        for i in 0..total {
            if d.observe_at(&i.to_le_bytes(), i / 3) == Verdict::Duplicate {
                fps += 1;
            }
        }
        assert!(
            (fps as f64 / total as f64) < 0.02,
            "fp rate too high: {fps}"
        );
    }

    #[test]
    fn out_of_order_ticks_are_clamped() {
        let mut d = ttbf(10, 100, 1 << 12, 5);
        d.observe_at(b"a", 10_000);
        // An earlier tick arrives late: processed at the current unit.
        assert_eq!(d.observe_at(b"a", 2_000), Verdict::Duplicate);
        assert_eq!(d.observe_at(b"new", 1), Verdict::Distinct);
    }

    #[test]
    fn entry_bits_follow_unit_range() {
        let cfg = TimeTbfConfig::new(60, 1000, 100, 4, 0).unwrap();
        // range = 120 -> 7 bits.
        assert_eq!(cfg.entry_bits(), 7);
        assert_eq!(cfg.clean_chunk(), 2); // ceil(100/60)
    }

    #[test]
    fn reset_restores_empty_state() {
        let mut d = ttbf(8, 10, 1 << 10, 4);
        d.observe_at(b"k", 5);
        d.reset();
        assert_eq!(d.observe_at(b"k", 6), Verdict::Distinct);
    }
}
